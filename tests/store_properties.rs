//! Property tests for the persistent evaluation store: a store hit is
//! bitwise-equivalent to a cold evaluation, serialization round-trips
//! arbitrary bit patterns exactly, and corruption of any kind reads as a
//! *miss* — never as a wrong answer.

use dovado::persist::{decode_evaluation, encode_evaluation};
use dovado::{DesignPoint, EvalConfig, Evaluation, Evaluator, HdlSource};
use dovado_eda::{EvalKey, EvalStore};
use dovado_fpga::{ResourceKind, ResourceSet};
use dovado_hdl::Language;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fs;
use std::path::PathBuf;

const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32
)(input logic clk_i, input logic [DATA_WIDTH-1:0] data_i);
endmodule"#;

fn evaluator() -> Evaluator {
    Evaluator::new(
        vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
        "fifo_v3",
        EvalConfig::default(),
    )
    .unwrap()
}

fn store_in(tag: &str, case: u64) -> EvalStore {
    let dir = std::env::temp_dir().join(format!(
        "dovado-store-prop-{tag}-{case}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    EvalStore::open(&dir).unwrap()
}

/// An evaluation whose every float is an arbitrary 64-bit pattern —
/// including NaNs, infinities and negative zero.
fn arbitrary_evaluation(rng: &mut StdRng) -> Evaluation {
    let mut utilization = ResourceSet::zero();
    for kind in ResourceKind::ALL {
        utilization.set(kind, rng.next_u64());
    }
    Evaluation {
        utilization,
        wns_ns: f64::from_bits(rng.next_u64()),
        period_ns: f64::from_bits(rng.next_u64()),
        fmax_mhz: f64::from_bits(rng.next_u64()),
        power_mw: f64::from_bits(rng.next_u64()),
        tool_time_s: f64::from_bits(rng.next_u64()),
    }
}

fn bits_of(e: &Evaluation) -> [u64; 5] {
    [
        e.wns_ns.to_bits(),
        e.period_ns.to_bits(),
        e.fmax_mhz.to_bits(),
        e.power_mw.to_bits(),
        e.tool_time_s.to_bits(),
    ]
}

proptest! {
    /// Serialization is bitwise for any float pattern and any counts.
    #[test]
    fn evaluation_roundtrips_arbitrary_bits(seed in 0u64..2000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = arbitrary_evaluation(&mut rng);
        let back = decode_evaluation(&encode_evaluation(&e)).unwrap();
        prop_assert_eq!(back.utilization, e.utilization);
        prop_assert_eq!(bits_of(&back), bits_of(&e));
    }

    /// A store hit is the cold evaluation, bit for bit: a storeless
    /// evaluator, the evaluator that fills the store, and a fresh
    /// evaluator answered purely from disk all agree on every float.
    #[test]
    fn store_hit_equals_cold_evaluation(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let point = DesignPoint::from_pairs(&[
            ("DEPTH", rng.gen_range(2i64..1024)),
            ("DATA_WIDTH", [8, 16, 32][rng.gen_range(0usize..3)]),
        ]);
        let cold = evaluator().evaluate(&point).unwrap();

        let store = store_in("hit", seed);
        let mut writer = evaluator();
        writer.attach_store(store.clone());
        let written = writer.evaluate(&point).unwrap();
        prop_assert_eq!(bits_of(&written), bits_of(&cold));

        let mut reader = evaluator();
        reader.attach_store(store);
        let read = reader.evaluate(&point).unwrap();
        prop_assert_eq!(bits_of(&read), bits_of(&cold));
        prop_assert_eq!(read.utilization, cold.utilization);
        prop_assert_eq!(reader.trace_summary().store_hits, 1);
        prop_assert_eq!(reader.trace_summary().attempts, 0);
    }

    /// Corrupting a stored entry — truncation at any point, or a single
    /// bit flip anywhere — turns the lookup into a miss, never a wrong
    /// answer, and the damaged file is removed so the slot heals.
    #[test]
    fn corruption_is_a_miss_never_a_wrong_answer(
        seed in 0u64..500,
        truncate in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = arbitrary_evaluation(&mut rng);
        let store = store_in("corrupt", seed);
        let key = EvalKey::from_parts(&["p", &seed.to_string()]);
        store.put(&key, &encode_evaluation(&e)).unwrap();

        let path: PathBuf = store.entry_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        if truncate {
            let keep = rng.gen_range(0usize..bytes.len());
            bytes.truncate(keep);
        } else {
            let at = rng.gen_range(0usize..bytes.len());
            let bit = rng.gen_range(0u32..8);
            bytes[at] ^= 1 << bit;
        }
        fs::write(&path, &bytes).unwrap();

        match store.get(&key) {
            None => prop_assert!(!path.exists(), "corrupt entry must self-heal"),
            // A flip may cancel out only by restoring the original byte —
            // impossible for XOR with a nonzero mask — so any surviving
            // answer must decode to the exact original.
            Some(payload) => {
                let back = decode_evaluation(&payload).unwrap();
                prop_assert_eq!(bits_of(&back), bits_of(&e));
            }
        }

        // The slot accepts a fresh write either way.
        store.put(&key, &encode_evaluation(&e)).unwrap();
        let healed = decode_evaluation(&store.get(&key).unwrap()).unwrap();
        prop_assert_eq!(bits_of(&healed), bits_of(&e));
    }
}
