//! Property tests for the persistent evaluation store: a store hit is
//! bitwise-equivalent to a cold evaluation, serialization round-trips
//! arbitrary bit patterns exactly, and corruption of any kind reads as a
//! *miss* — never as a wrong answer. The sharded layout carries the
//! same contract: legacy flat entries read bitwise-equal to sharded
//! ones, arbitrary interleavings of puts, gets, compactions, and
//! capacity evictions can only ever produce misses, and concurrent
//! readers and writers sharing one store round-trip exactly.

use dovado::persist::{decode_evaluation, encode_evaluation};
use dovado::{DesignPoint, EvalConfig, Evaluation, Evaluator, HdlSource};
use dovado_eda::{EvalKey, EvalStore};
use dovado_fpga::{ResourceKind, ResourceSet};
use dovado_hdl::Language;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fs;
use std::path::PathBuf;

const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32
)(input logic clk_i, input logic [DATA_WIDTH-1:0] data_i);
endmodule"#;

fn evaluator() -> Evaluator {
    Evaluator::new(
        vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
        "fifo_v3",
        EvalConfig::default(),
    )
    .unwrap()
}

fn store_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dovado-store-prop-{tag}-{case}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn store_in(tag: &str, case: u64) -> EvalStore {
    EvalStore::open(&store_dir(tag, case)).unwrap()
}

/// An evaluation whose every float is an arbitrary 64-bit pattern —
/// including NaNs, infinities and negative zero.
fn arbitrary_evaluation(rng: &mut StdRng) -> Evaluation {
    let mut utilization = ResourceSet::zero();
    for kind in ResourceKind::ALL {
        utilization.set(kind, rng.next_u64());
    }
    Evaluation {
        utilization,
        wns_ns: f64::from_bits(rng.next_u64()),
        period_ns: f64::from_bits(rng.next_u64()),
        fmax_mhz: f64::from_bits(rng.next_u64()),
        power_mw: f64::from_bits(rng.next_u64()),
        tool_time_s: f64::from_bits(rng.next_u64()),
    }
}

fn bits_of(e: &Evaluation) -> [u64; 5] {
    [
        e.wns_ns.to_bits(),
        e.period_ns.to_bits(),
        e.fmax_mhz.to_bits(),
        e.power_mw.to_bits(),
        e.tool_time_s.to_bits(),
    ]
}

proptest! {
    /// Serialization is bitwise for any float pattern and any counts.
    #[test]
    fn evaluation_roundtrips_arbitrary_bits(seed in 0u64..2000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = arbitrary_evaluation(&mut rng);
        let back = decode_evaluation(&encode_evaluation(&e)).unwrap();
        prop_assert_eq!(back.utilization, e.utilization);
        prop_assert_eq!(bits_of(&back), bits_of(&e));
    }

    /// A store hit is the cold evaluation, bit for bit: a storeless
    /// evaluator, the evaluator that fills the store, and a fresh
    /// evaluator answered purely from disk all agree on every float.
    #[test]
    fn store_hit_equals_cold_evaluation(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let point = DesignPoint::from_pairs(&[
            ("DEPTH", rng.gen_range(2i64..1024)),
            ("DATA_WIDTH", [8, 16, 32][rng.gen_range(0usize..3)]),
        ]);
        let cold = evaluator().evaluate(&point).unwrap();

        let store = store_in("hit", seed);
        let mut writer = evaluator();
        writer.attach_store(store.clone());
        let written = writer.evaluate(&point).unwrap();
        prop_assert_eq!(bits_of(&written), bits_of(&cold));

        let mut reader = evaluator();
        reader.attach_store(store);
        let read = reader.evaluate(&point).unwrap();
        prop_assert_eq!(bits_of(&read), bits_of(&cold));
        prop_assert_eq!(read.utilization, cold.utilization);
        prop_assert_eq!(reader.trace_summary().store_hits, 1);
        prop_assert_eq!(reader.trace_summary().attempts, 0);
    }

    /// Corrupting a stored entry — truncation at any point, or a single
    /// bit flip anywhere — turns the lookup into a miss, never a wrong
    /// answer, and the damaged file is removed so the slot heals.
    #[test]
    fn corruption_is_a_miss_never_a_wrong_answer(
        seed in 0u64..500,
        truncate in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = arbitrary_evaluation(&mut rng);
        let store = store_in("corrupt", seed);
        let key = EvalKey::from_parts(&["p", &seed.to_string()]);
        store.put(&key, &encode_evaluation(&e)).unwrap();

        let path: PathBuf = store.entry_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        if truncate {
            let keep = rng.gen_range(0usize..bytes.len());
            bytes.truncate(keep);
        } else {
            let at = rng.gen_range(0usize..bytes.len());
            let bit = rng.gen_range(0u32..8);
            bytes[at] ^= 1 << bit;
        }
        fs::write(&path, &bytes).unwrap();

        match store.get(&key) {
            None => prop_assert!(!path.exists(), "corrupt entry must self-heal"),
            // A flip may cancel out only by restoring the original byte —
            // impossible for XOR with a nonzero mask — so any surviving
            // answer must decode to the exact original.
            Some(payload) => {
                let back = decode_evaluation(&payload).unwrap();
                prop_assert_eq!(bits_of(&back), bits_of(&e));
            }
        }

        // The slot accepts a fresh write either way.
        store.put(&key, &encode_evaluation(&e)).unwrap();
        let healed = decode_evaluation(&store.get(&key).unwrap()).unwrap();
        prop_assert_eq!(bits_of(&healed), bits_of(&e));
    }

    /// A store whose entries sit in the legacy flat (unsharded) layout
    /// answers bitwise-identically to the sharded layout, and every
    /// flat entry a lookup touches is migrated into its shard.
    #[test]
    fn legacy_flat_entries_read_bitwise_equal_to_sharded(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dir = store_dir("flat", seed);
        let store = EvalStore::open(&dir).unwrap();
        let mut written = Vec::new();
        for i in 0..4u64 {
            let key = EvalKey::from_parts(&["flat", &seed.to_string(), &i.to_string()]);
            let payload = encode_evaluation(&arbitrary_evaluation(&mut rng));
            store.put(&key, &payload).unwrap();
            written.push((key, payload));
        }
        // Demote every other entry to the pre-shard flat layout.
        for (key, _) in written.iter().step_by(2) {
            let sharded = store.entry_path(key);
            let flat = dir.join(format!("{}.entry", key.hex()));
            fs::rename(&sharded, &flat).unwrap();
        }
        // A fresh open serves both layouts with identical bytes…
        let reopened = EvalStore::open(&dir).unwrap();
        for (key, payload) in &written {
            let found = reopened.get(key);
            prop_assert_eq!(found.as_ref(), Some(payload));
        }
        // …and the flat entries have been migrated into their shards.
        for (key, _) in &written {
            prop_assert!(reopened.entry_path(key).exists());
            prop_assert!(!dir.join(format!("{}.entry", key.hex())).exists());
        }
    }

    /// Arbitrary interleavings of puts, gets, compactions, and capacity
    /// evictions over a tightly bounded store: every lookup is either a
    /// miss or the exact latest payload written for that key — never a
    /// wrong answer — and the bound holds throughout.
    #[test]
    fn bounded_interleavings_only_ever_miss(seed in 0u64..300) {
        const CAPACITY: usize = 3;
        let mut rng = StdRng::seed_from_u64(seed);
        let dir = store_dir("interleave", seed);
        let store = EvalStore::open_bounded(&dir, Some(CAPACITY)).unwrap();
        let keys: Vec<EvalKey> = (0..6u64)
            .map(|i| EvalKey::from_parts(&["mix", &seed.to_string(), &i.to_string()]))
            .collect();
        let mut model: Vec<Option<String>> = vec![None; keys.len()];
        for _ in 0..40 {
            let k = rng.gen_range(0usize..keys.len());
            match rng.gen_range(0u32..10) {
                0..=4 => {
                    let payload = encode_evaluation(&arbitrary_evaluation(&mut rng));
                    store.put(&keys[k], &payload).unwrap();
                    model[k] = Some(payload);
                }
                5..=8 => match store.get(&keys[k]) {
                    // Eviction and capacity pressure may cost a hit…
                    None => {}
                    // …but can never change an answer.
                    Some(found) => {
                        prop_assert_eq!(Some(&found), model[k].as_ref(),
                            "lookup returned a value that was never the latest write");
                    }
                },
                _ => {
                    store.compact().unwrap();
                }
            }
            prop_assert!(store.len() <= CAPACITY, "capacity bound violated");
        }
    }
}

/// Concurrent writers and readers sharing one (unbounded) store: every
/// read-back is the exact payload its writer stored — shard-level
/// concurrency never tears or crosses entries.
#[test]
fn concurrent_readers_and_writers_round_trip() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 25;
    let dir = store_dir("concurrent", 0);
    let store = EvalStore::open(&dir).unwrap();
    let key_of = |t: u64, i: u64| EvalKey::from_parts(&["cc", &t.to_string(), &i.to_string()]);
    let payload_of = |t: u64, i: u64| {
        encode_evaluation(&arbitrary_evaluation(&mut StdRng::seed_from_u64(
            t * 1000 + i,
        )))
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let store = store.clone();
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    store.put(&key_of(t, i), &payload_of(t, i)).unwrap();
                }
            })
        })
        .collect();
    // Readers race the writers: a miss means "not written yet", a hit
    // must be exact.
    let readers: Vec<_> = (0..2u64)
        .map(|r| {
            let store = store.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(r);
                for _ in 0..200 {
                    let t = rng.gen_range(0u64..WRITERS);
                    let i = rng.gen_range(0u64..PER_WRITER);
                    if let Some(found) = store.get(&key_of(t, i)) {
                        assert_eq!(found, payload_of(t, i), "racing read returned wrong bytes");
                    }
                }
            })
        })
        .collect();
    for h in writers.into_iter().chain(readers) {
        h.join().unwrap();
    }
    // Quiesced and unbounded: every write is now a hit, bit for bit.
    for t in 0..WRITERS {
        for i in 0..PER_WRITER {
            assert_eq!(store.get(&key_of(t, i)), Some(payload_of(t, i)));
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Concurrent writers against a tightly bounded store: the capacity
/// bound holds under racing puts, and a post-quiescence compaction pass
/// leaves only exact answers behind.
#[test]
fn concurrent_bounded_writers_never_corrupt() {
    const CAPACITY: usize = 10;
    let dir = store_dir("concurrent-bounded", 0);
    let store = EvalStore::open_bounded(&dir, Some(CAPACITY)).unwrap();
    let key_of = |t: u64, i: u64| EvalKey::from_parts(&["cb", &t.to_string(), &i.to_string()]);
    let payload_of = |t: u64, i: u64| {
        encode_evaluation(&arbitrary_evaluation(&mut StdRng::seed_from_u64(
            7_000 + t * 1000 + i,
        )))
    };
    let writers: Vec<_> = (0..4u64)
        .map(|t| {
            let store = store.clone();
            std::thread::spawn(move || {
                for i in 0..25 {
                    store.put(&key_of(t, i), &payload_of(t, i)).unwrap();
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    assert!(store.len() <= CAPACITY, "bound violated under racing puts");
    store.compact().unwrap();
    assert!(store.len() <= CAPACITY);
    for t in 0..4u64 {
        for i in 0..25 {
            match store.get(&key_of(t, i)) {
                None => {} // evicted: a miss, which is always allowed
                Some(found) => assert_eq!(found, payload_of(t, i)),
            }
        }
    }
    let _ = fs::remove_dir_all(&dir);
}
