//! The explorer conformance suite: every `--explorer` value must run
//! end-to-end through the one algorithm-agnostic driver and obey the
//! engine-wide determinism contract — a serial run, a `--jobs 2` run,
//! and a `--workers 2` fleet run produce bitwise-identical reports and
//! byte-identical observability traces.
//!
//! Like the crash harness, the suite runs on the simulated Vivado by
//! default and CI reruns it on the scripted mock via `DOVADO_BACKEND=mock`:
//! the invariants live above the `ToolBackend` boundary and must hold on
//! both.

use dovado::dse::Explorer;
use dovado::obs::jsonl_string;
use dovado::{
    Domain, Dovado, DseConfig, DseReport, EvalConfig, HdlSource, Metric, MetricSet, ParameterSpace,
};
use dovado_fpga::ResourceKind;
use dovado_hdl::Language;
use dovado_moo::{Nsga2Config, Termination};

const FIFO_SV: &str = r#"
module fifo_conf #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32
)(input logic clk_i, input logic [DATA_WIDTH-1:0] data_i);
endmodule"#;

/// A fresh tool over a 96-point space (volume > the auto exhaustive
/// shortcut, small enough for the exhaustive explorer's limit).
fn tool() -> Dovado {
    let space = ParameterSpace::new()
        .with(
            "DEPTH",
            Domain::Range {
                lo: 2,
                hi: 64,
                step: 2,
            },
        )
        .with("DATA_WIDTH", Domain::Explicit(vec![8, 16, 32]));
    let sources = vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)];
    let config = EvalConfig::default();
    if std::env::var("DOVADO_BACKEND").as_deref() == Ok("mock") {
        let backend = std::sync::Arc::new(dovado::MockBackend::new(config.seed));
        Dovado::with_backend(sources, "fifo_conf", space, config, backend).unwrap()
    } else {
        Dovado::new(sources, "fifo_conf", space, config).unwrap()
    }
}

fn cfg(explorer: Explorer) -> DseConfig {
    DseConfig {
        explorer,
        algorithm: Nsga2Config {
            pop_size: 8,
            seed: 7,
            ..Default::default()
        },
        termination: Termination::Generations(4),
        metrics: MetricSet::new(vec![
            Metric::Utilization(ResourceKind::Lut),
            Metric::Utilization(ResourceKind::Register),
            Metric::Fmax,
        ]),
        surrogate: None,
        parallel: false,
        jobs: None,
        workers: None,
    }
}

/// Every configurable explorer, by its CLI token.
fn portfolio() -> Vec<(&'static str, Explorer)> {
    [
        "nsga2",
        "random",
        "wsga",
        "exhaustive",
        "sa",
        "bayes",
        "auto",
    ]
    .into_iter()
    .map(|t| (t, Explorer::parse_token(t).expect("token parses")))
    .collect()
}

fn assert_reports_bitwise(tag: &str, a: &DseReport, b: &DseReport) {
    assert_eq!(a.pareto.len(), b.pareto.len(), "{tag}: front sizes differ");
    for (x, y) in a.pareto.iter().zip(&b.pareto) {
        assert_eq!(x.point, y.point, "{tag}: genomes diverged");
        for (u, v) in x.values.iter().zip(&y.values) {
            assert_eq!(u.to_bits(), v.to_bits(), "{tag}: objective bits diverged");
        }
    }
    assert_eq!(a.generations, b.generations, "{tag}");
    assert_eq!(a.evaluations, b.evaluations, "{tag}");
    assert_eq!(a.tool_runs, b.tool_runs, "{tag}");
    assert_eq!(a.selection, b.selection, "{tag}: selection diverged");
}

#[test]
fn every_explorer_is_schedule_independent() {
    for (token, explorer) in portfolio() {
        let serial = tool().explore(&cfg(explorer.clone())).unwrap();
        assert!(
            !serial.pareto.is_empty(),
            "{token}: empty front from the generic driver"
        );
        let jobs = tool()
            .explore(&DseConfig {
                jobs: Some(2),
                parallel: true,
                ..cfg(explorer.clone())
            })
            .unwrap();
        let fleet = tool()
            .explore(&DseConfig {
                workers: Some(2),
                ..cfg(explorer.clone())
            })
            .unwrap();
        assert_reports_bitwise(token, &serial, &jobs);
        assert_reports_bitwise(token, &serial, &fleet);
        // The whole spine — every event line, in canonical order — must
        // be byte-identical, not just the folded counters.
        let canonical = jsonl_string(&serial.spine);
        assert_eq!(canonical, jsonl_string(&jobs.spine), "{token}: --jobs 2");
        assert_eq!(
            canonical,
            jsonl_string(&fleet.spine),
            "{token}: --workers 2"
        );
    }
}

#[test]
fn auto_charges_the_race_to_the_lowfi_ledger_only() {
    let report = tool().explore(&cfg(Explorer::Auto)).unwrap();
    let sel = report.selection.as_ref().expect("auto must journal");
    assert_eq!(sel.space_volume, 96);
    assert_eq!(sel.objectives, 3);
    assert!(sel.lowfi_runs > 0, "a 96-point 3-objective space races");
    assert_eq!(report.spine.lowfi_runs, sel.lowfi_runs);
    // Race legs are synthesis-only probes on a throwaway spine: none of
    // their runs may leak into the full-flow ledger.
    assert!(report.tool_runs > 0);
    assert!(
        report.spine.lowfi_time_s > 0.0,
        "race time must be ledgered"
    );
}
