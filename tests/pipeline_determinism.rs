//! The staged batch pipeline's hard invariant: per seed, a parallel run
//! produces bitwise-identical objective vectors, dataset contents, stats
//! and Pareto fronts to a sequential run — thread scheduling must never
//! leak into answers. Plus the amortized-reselection accuracy regression:
//! deferring LOO-CV must not change what batch decisions see.

use dovado::casestudies::corundum;
use dovado::{Domain, Evaluation};
use dovado::{
    DseConfig, DseProblem, EvalConfig, Evaluator, HdlSource, Metric, MetricSet, ParameterSpace,
    SurrogateConfig,
};
use dovado_fpga::ResourceKind;
use dovado_hdl::Language;
use dovado_moo::{Nsga2Config, Problem, Termination};
use dovado_surrogate::{mse_per_output, ProbeSet, ThresholdPolicy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32
)(input logic clk_i, input logic [DATA_WIDTH-1:0] data_i);
endmodule"#;

fn evaluator() -> Evaluator {
    Evaluator::new(
        vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
        "fifo_v3",
        EvalConfig::default(),
    )
    .unwrap()
}

fn space(depth_hi: i64, width_values: &[i64]) -> ParameterSpace {
    ParameterSpace::new()
        .with(
            "DEPTH",
            Domain::Range {
                lo: 2,
                hi: depth_hi,
                step: 2,
            },
        )
        .with("DATA_WIDTH", Domain::Explicit(width_values.to_vec()))
}

fn metrics() -> MetricSet {
    MetricSet::new(vec![
        Metric::Utilization(ResourceKind::Register),
        Metric::Utilization(ResourceKind::Lut),
        Metric::Fmax,
    ])
}

fn surrogate_problem(
    parallel: bool,
    depth_hi: i64,
    widths: &[i64],
    seed: u64,
    reselect_every: usize,
) -> DseProblem {
    let cfg = SurrogateConfig {
        policy: ThresholdPolicy::paper_default(),
        pretrain_samples: 20,
        seed,
        reselect_every,
        ..Default::default()
    };
    let mut p =
        DseProblem::new(evaluator(), space(depth_hi, widths), metrics(), Some(&cfg)).unwrap();
    p.schedule = dovado::Schedule::from_parallel_flag(parallel);
    p
}

proptest! {
    /// Parallel surrogate batches ≡ sequential surrogate batches:
    /// objectives (bitwise), stats, dataset length and contents, and the
    /// selected bandwidth, across random spaces, seeds and amortization
    /// periods.
    #[test]
    fn parallel_surrogate_equals_sequential(
        seed in 0u64..500,
        depth_n in 8i64..200,
        reselect_every in 1usize..40,
    ) {
        let widths = [8i64, 16, 32];
        let depth_hi = depth_n * 2;
        let mut seq = surrogate_problem(false, depth_hi, &widths, seed, reselect_every);
        let mut par = surrogate_problem(true, depth_hi, &widths, seed, reselect_every);

        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C4);
        for _generation in 0..3 {
            let genomes: Vec<Vec<i64>> = (0..12)
                .map(|_| vec![rng.gen_range(0..depth_n), rng.gen_range(0..3)])
                .collect();
            let a = seq.evaluate_batch(&genomes);
            let b = par.evaluate_batch(&genomes);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        prop_assert_eq!(seq.stats, par.stats);
        let (ds, dp) = (
            seq.surrogate().unwrap().dataset(),
            par.surrogate().unwrap().dataset(),
        );
        prop_assert_eq!(ds.len(), dp.len());
        prop_assert_eq!(ds.raw_points(), dp.raw_points());
        prop_assert_eq!(ds.outputs(), dp.outputs());
        prop_assert_eq!(
            seq.surrogate().unwrap().model().bandwidth.to_bits(),
            par.surrogate().unwrap().model().bandwidth.to_bits()
        );
        prop_assert_eq!(
            seq.surrogate().unwrap().gamma().to_bits(),
            par.surrogate().unwrap().gamma().to_bits()
        );
    }
}

/// Whole-run determinism: NSGA-II + surrogate, parallel vs sequential,
/// same seed → identical Pareto front and identical run counters.
#[test]
fn explore_parallel_equals_sequential_pareto() {
    let cs = corundum::case_study();
    let run = |parallel: bool| {
        let tool = cs.dovado().unwrap();
        tool.explore(&DseConfig {
            algorithm: Nsga2Config {
                pop_size: 16,
                seed: 11,
                ..Default::default()
            },
            termination: Termination::Generations(6),
            metrics: cs.metrics.clone(),
            surrogate: Some(SurrogateConfig {
                pretrain_samples: 40,
                ..Default::default()
            }),
            parallel,
            explorer: Default::default(),
            jobs: None,
            workers: None,
        })
        .unwrap()
    };
    let seq = run(false);
    let par = run(true);

    assert_eq!(seq.pareto.len(), par.pareto.len());
    for (a, b) in seq.pareto.iter().zip(&par.pareto) {
        assert_eq!(a.point, b.point);
        for (x, y) in a.values.iter().zip(&b.values) {
            assert_eq!(x.to_bits(), y.to_bits(), "{:?} vs {:?}", a.values, b.values);
        }
    }
    assert_eq!(seq.generations, par.generations);
    assert_eq!(seq.evaluations, par.evaluations);
    assert_eq!(seq.tool_runs, par.tool_runs);
    assert_eq!(seq.cached_runs, par.cached_runs);
    assert_eq!(seq.estimates, par.estimates);
    assert_eq!(seq.failures, par.failures);
    assert_eq!(seq.retries, par.retries);
}

/// Regression: amortizing LOO-CV reselection (`reselect_every` > 1) must
/// not change estimate accuracy as seen by batch decisions — the pipeline
/// refreshes any stale bandwidth before deciding, so after the refresh the
/// amortized controller's model is bitwise the eager one's.
#[test]
fn amortized_reselection_keeps_estimate_accuracy() {
    let widths = [8i64, 16, 32];
    let mut eager = surrogate_problem(false, 400, &widths, 42, 1);
    let mut lazy = surrogate_problem(false, 400, &widths, 42, 25);

    // Grow both datasets through identical generations.
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..3 {
        let genomes: Vec<Vec<i64>> = (0..16)
            .map(|_| vec![rng.gen_range(0..200), rng.gen_range(0..3)])
            .collect();
        let _ = eager.evaluate_batch(&genomes);
        let _ = lazy.evaluate_batch(&genomes);
    }

    // Probe truths from a fresh tool-only problem.
    let mut truth = DseProblem::new(evaluator(), space(400, &widths), metrics(), None).unwrap();
    let probes = ProbeSet::new(
        (0..20)
            .map(|i| {
                let g = vec![(i * 9 + 3) % 200, i % 3];
                let t = truth.evaluate(&g);
                (g, t)
            })
            .collect(),
    );
    let scales = [1000.0, 1000.0, 100.0];

    // The last generation's records may have left the lazy bandwidth
    // stale; the next generation's decide phase refreshes it before any
    // decision is made. An empty generation triggers exactly that batch
    // boundary without adding records of its own.
    let boundary: Vec<Vec<i64>> = Vec::new();
    let _ = eager.evaluate_batch(&boundary);
    let _ = lazy.evaluate_batch(&boundary);

    let e = eager.surrogate().unwrap();
    let l = lazy.surrogate().unwrap();
    assert_eq!(e.dataset().len(), l.dataset().len());
    assert_eq!(
        e.model().bandwidth.to_bits(),
        l.model().bandwidth.to_bits(),
        "after a batch boundary the amortized bandwidth must equal eager"
    );
    let mse_e = mse_per_output(&e.model(), e.dataset(), &probes, &scales).unwrap();
    let mse_l = mse_per_output(&l.model(), l.dataset(), &probes, &scales).unwrap();
    for (a, b) in mse_e.iter().zip(&mse_l) {
        assert_eq!(a.to_bits(), b.to_bits(), "{mse_e:?} vs {mse_l:?}");
    }
}

/// The type-level reminder that `Evaluation` stays shared between the
/// pipeline phases by value, not by handle: quality-of-result fields are
/// plain data, safe to fan out across threads.
#[allow(dead_code)]
fn _evaluation_is_send_sync(e: Evaluation) -> impl Send + Sync {
    e
}
