//! CLI-level integration: the `dovado` command driven as a library (the
//! binary is a thin wrapper around `dovado::cli::run`).

use dovado::cli::run;
use std::path::PathBuf;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn temp_file(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dovado-cli-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

const FIFO: &str = "module fifo_v3 #(parameter DEPTH = 8, parameter DATA_WIDTH = 32)\
                    (input logic clk_i); endmodule";

#[test]
fn explore_with_power_metric_and_csv() {
    let src = temp_file("pw.sv", FIFO);
    let csv = std::env::temp_dir()
        .join("dovado-cli-integration")
        .join("front.csv");
    let mut out = String::new();
    let code = run(
        &args(&[
            "explore",
            "--source",
            src.to_str().unwrap(),
            "--top",
            "fifo_v3",
            "--param",
            "DEPTH=2:64:2",
            "--metric",
            "lut,power,fmax",
            "--generations",
            "3",
            "--pop",
            "8",
            "--csv",
            csv.to_str().unwrap(),
        ]),
        &mut out,
    );
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("Power[mW]"), "{out}");
    let written = std::fs::read_to_string(&csv).unwrap();
    let rows = dovado::csv::parse(&written);
    assert!(rows.len() >= 2, "no data rows:\n{written}");
    assert_eq!(rows[0][0], "label");
    assert!(rows[0].contains(&"Power[mW]".to_string()));
    // Data rows carry numeric power values.
    let power_col = rows[0].iter().position(|c| c == "Power[mW]").unwrap();
    assert!(rows[1][power_col].parse::<f64>().unwrap() > 0.0);
}

#[test]
fn explore_with_random_algorithm() {
    let src = temp_file("ra.sv", FIFO);
    let mut out = String::new();
    let code = run(
        &args(&[
            "explore",
            "--source",
            src.to_str().unwrap(),
            "--top",
            "fifo_v3",
            "--param",
            "DEPTH=2:128",
            "--metric",
            "lut,fmax",
            "--generations",
            "3",
            "--pop",
            "10",
            "--algorithm",
            "random",
        ]),
        &mut out,
    );
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("non-dominated"));
}

#[test]
fn explore_exhaustive_small_space() {
    let src = temp_file("ex.sv", FIFO);
    let mut out = String::new();
    let code = run(
        &args(&[
            "explore",
            "--source",
            src.to_str().unwrap(),
            "--top",
            "fifo_v3",
            "--param",
            "DEPTH=pow2:2:5",
            "--metric",
            "ff,fmax",
            "--algorithm",
            "exhaustive",
        ]),
        &mut out,
    );
    assert_eq!(code, 0, "{out}");
    // 4 points evaluated exactly once each.
    assert!(out.contains("4 evaluation(s)"), "{out}");
}

#[test]
fn explore_with_deadline_and_surrogate() {
    let src = temp_file("dl.sv", FIFO);
    let mut out = String::new();
    let code = run(
        &args(&[
            "explore",
            "--source",
            src.to_str().unwrap(),
            "--top",
            "fifo_v3",
            "--param",
            "DEPTH=2:512:2",
            "--metric",
            "lut,ff,fmax",
            "--generations",
            "50",
            "--pop",
            "8",
            "--surrogate",
            "20",
            "--deadline",
            "20000",
        ]),
        &mut out,
    );
    assert_eq!(code, 0, "{out}");
    // Surrogate columns appear in the summary.
    assert!(out.contains("estimated"), "{out}");
}

#[test]
fn evaluate_reports_power() {
    let src = temp_file("ev.sv", FIFO);
    let mut out = String::new();
    let code = run(
        &args(&[
            "evaluate",
            "--source",
            src.to_str().unwrap(),
            "--top",
            "fifo_v3",
            "--set",
            "DEPTH=32",
        ]),
        &mut out,
    );
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("Fmax"));
    assert!(out.contains("tool time"));
}

#[test]
fn bad_flag_reports_usage_hint() {
    let src = temp_file("bf.sv", FIFO);
    let mut out = String::new();
    let code = run(
        &args(&[
            "explore",
            "--source",
            src.to_str().unwrap(),
            "--top",
            "fifo_v3",
            "--param",
            "DEPTH=2:8",
            "--warp-factor",
            "9",
        ]),
        &mut out,
    );
    assert_eq!(code, 1);
    assert!(out.contains("unknown flag"));
    assert!(out.contains("dovado help"));
}
