//! The observability spine, from the outside: the versioned JSONL wire
//! format is byte-pinned against a golden fixture, every derived counter
//! equals the fold of the event stream it summarizes (for synthetic
//! streams and for real evaluator runs alike), and canonical event
//! ordering makes serial and parallel explorations produce
//! byte-identical `--trace-out` files.

use dovado::obs::jsonl_string;
use dovado::{
    fold_totals, AttemptOutcome, CandidateScore, DesignPoint, Domain, Dovado, DseConfig,
    EvalConfig, Evaluator, EventBus, EventKey, FlowEvent, FlowStep, HdlSource, Metric, MetricSet,
    ObsEvent, ParameterSpace, SurrogateConfig, TraceSummary,
};
use dovado_eda::FaultPlan;
use dovado_fpga::ResourceKind;
use dovado_hdl::Language;
use dovado_moo::{Nsga2Config, Termination};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32
)(input logic clk_i, input logic [DATA_WIDTH-1:0] data_i);
endmodule"#;

fn evaluator(faults: FaultPlan) -> Evaluator {
    Evaluator::new(
        vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
        "fifo_v3",
        EvalConfig {
            faults,
            ..EvalConfig::default()
        },
    )
    .unwrap()
}

fn dovado(faults: FaultPlan) -> Dovado {
    let space = ParameterSpace::new()
        .with(
            "DEPTH",
            Domain::Range {
                lo: 2,
                hi: 512,
                step: 2,
            },
        )
        .with("DATA_WIDTH", Domain::Explicit(vec![8, 16, 32]));
    Dovado::new(
        vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
        "fifo_v3",
        space,
        EvalConfig {
            faults,
            ..EvalConfig::default()
        },
    )
    .unwrap()
}

fn metrics() -> MetricSet {
    MetricSet::new(vec![
        Metric::Utilization(ResourceKind::Lut),
        Metric::Utilization(ResourceKind::Register),
        Metric::Fmax,
    ])
}

// ---------------------------------------------------------------------------
// Golden wire format
// ---------------------------------------------------------------------------

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// One of every event type, at hand-picked keys, with values that
/// exercise string escaping and float formatting.
fn golden_snapshot() -> dovado::SpineSnapshot {
    let bus = EventBus::new();
    bus.emit(
        EventKey { seq: 0, sub: 1 },
        ObsEvent::Attempt(FlowEvent {
            point: "DEPTH=64 DATA_WIDTH=32".into(),
            attempt: 1,
            step: FlowStep::Synthesis,
            outcome: AttemptOutcome::TransientFailure("synth_design crashed \"hard\"".into()),
            tool_time_s: 12.5,
            backoff_s: 0.0,
            incremental: false,
            cached: false,
        }),
    );
    bus.emit(
        EventKey { seq: 0, sub: 2 },
        ObsEvent::Attempt(FlowEvent {
            point: "DEPTH=64 DATA_WIDTH=32".into(),
            attempt: 2,
            step: FlowStep::Implementation,
            outcome: AttemptOutcome::Success,
            tool_time_s: 340.0,
            backoff_s: 30.0,
            incremental: true,
            cached: false,
        }),
    );
    bus.emit(
        EventKey { seq: 1, sub: 0 },
        ObsEvent::StoreHit {
            point: "DEPTH=128 DATA_WIDTH=8".into(),
        },
    );
    bus.emit(
        EventKey { seq: 2, sub: 0 },
        ObsEvent::TimeCharged { seconds: 45.5 },
    );
    bus.emit(
        EventKey { seq: 3, sub: 0 },
        ObsEvent::Resume {
            summary: TraceSummary {
                attempts: 7,
                retries: 2,
                transient_failures: 2,
                permanent_failures: 0,
                cache_hits: 1,
                store_hits: 3,
                backoff_s: 90.0,
            },
            runs: 5,
            tool_time_s: 1234.5,
        },
    );
    bus.emit(
        EventKey { seq: 4, sub: 0 },
        ObsEvent::Generation {
            generation: 1,
            evaluations: 10,
        },
    );
    bus.emit(
        EventKey { seq: 5, sub: 0 },
        ObsEvent::SurrogateDecision {
            point: "DEPTH=256 DATA_WIDTH=16".into(),
            choice: "estimated",
        },
    );
    bus.emit(
        EventKey { seq: 6, sub: 0 },
        ObsEvent::Reselected { bandwidth: 0.125 },
    );
    bus.emit(
        EventKey { seq: 7, sub: 0 },
        ObsEvent::GammaUpdated { gamma: 0.0375 },
    );
    bus.emit(
        EventKey { seq: 8, sub: 0 },
        ObsEvent::Fault {
            kind: "host_crash".into(),
        },
    );
    bus.emit(
        EventKey { seq: 9, sub: 0 },
        ObsEvent::SelectorDecision {
            explorer: "bayes".into(),
            space_volume: 768,
            objectives: 3,
            lowfi_runs: 24,
            lowfi_time_s: 96.25,
            candidates: vec![
                CandidateScore {
                    name: "nsga2".into(),
                    evaluations: 12,
                    hypervolume: 0.5,
                    slope: -0.125,
                },
                CandidateScore {
                    name: "bayes".into(),
                    evaluations: 12,
                    hypervolume: 0.75,
                    slope: 0.0,
                },
            ],
        },
    );
    bus.snapshot()
}

/// Schema v2 is byte-pinned: any change to field names, event types or
/// value encodings breaks this test and forces an `EVENT_SCHEMA_VERSION`
/// bump plus a fixture regeneration (run once with `DOVADO_BLESS=1`).
#[test]
fn jsonl_wire_format_is_byte_pinned_to_schema_v2() {
    let text = jsonl_string(&golden_snapshot());
    let path = fixture_path("trace_v2.jsonl");
    if std::env::var("DOVADO_BLESS").is_ok() {
        std::fs::write(&path, &text).unwrap();
    }
    let golden =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    assert_eq!(
        text, golden,
        "JSONL trace drifted from schema v2; bump EVENT_SCHEMA_VERSION \
         and regenerate the fixture together"
    );
}

// ---------------------------------------------------------------------------
// Summary ≡ fold of the event stream
// ---------------------------------------------------------------------------

fn random_event(rng: &mut StdRng) -> ObsEvent {
    match rng.gen_range(0u32..10) {
        0..=3 => {
            let attempt = rng.gen_range(1u32..4);
            let outcome = match rng.gen_range(0u32..4) {
                0 => AttemptOutcome::TransientFailure("tool crashed".into()),
                1 => AttemptOutcome::PermanentFailure("bad source".into()),
                _ => AttemptOutcome::Success,
            };
            ObsEvent::Attempt(FlowEvent {
                point: format!("DEPTH={}", rng.gen_range(2i64..512)),
                attempt,
                step: if rng.gen_bool(0.5) {
                    FlowStep::Synthesis
                } else {
                    FlowStep::Implementation
                },
                outcome,
                tool_time_s: rng.gen_range(0.0..900.0),
                backoff_s: if attempt > 1 {
                    rng.gen_range(0.0..120.0)
                } else {
                    0.0
                },
                incremental: rng.gen_bool(0.5),
                cached: rng.gen_bool(0.2),
            })
        }
        4 => ObsEvent::StoreHit {
            point: format!("DEPTH={}", rng.gen_range(2i64..512)),
        },
        5 => ObsEvent::TimeCharged {
            seconds: rng.gen_range(0.0..100.0),
        },
        6 => ObsEvent::Resume {
            summary: TraceSummary {
                attempts: rng.gen_range(0u64..20),
                retries: rng.gen_range(0u64..5),
                transient_failures: rng.gen_range(0u64..5),
                permanent_failures: rng.gen_range(0u64..2),
                cache_hits: rng.gen_range(0u64..5),
                store_hits: rng.gen_range(0u64..10),
                backoff_s: rng.gen_range(0.0..300.0),
            },
            runs: rng.gen_range(0u64..15),
            tool_time_s: rng.gen_range(0.0..5000.0),
        },
        7 => ObsEvent::Generation {
            generation: rng.gen_range(1u64..50),
            evaluations: rng.gen_range(1u64..500),
        },
        8 => ObsEvent::SelectorDecision {
            explorer: "sa".into(),
            space_volume: rng.gen_range(1u64..1000),
            objectives: rng.gen_range(1u32..4),
            lowfi_runs: rng.gen_range(0u64..50),
            lowfi_time_s: rng.gen_range(0.0..500.0),
            candidates: Vec::new(),
        },
        _ => ObsEvent::Reselected {
            bandwidth: rng.gen_range(0.01..1.0),
        },
    }
}

proptest! {
    /// The bus's incrementally-maintained totals, the snapshot summary,
    /// and the trailing JSONL summary line all equal the from-scratch
    /// fold of the event stream, for arbitrary streams.
    #[test]
    fn bus_totals_equal_the_fold_for_any_stream(seed in 0u64..400) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bus = EventBus::new();
        let mut events = Vec::new();
        for _ in 0..rng.gen_range(0usize..60) {
            let e = random_event(&mut rng);
            events.push(e.clone());
            bus.emit_next(e);
        }
        let folded = fold_totals(&events);
        let snap = bus.snapshot();
        prop_assert_eq!(bus.totals(), folded);
        prop_assert_eq!(snap.summary, folded.summary);
        prop_assert_eq!(snap.runs, folded.runs);
        prop_assert_eq!(snap.tool_time_s.to_bits(), folded.tool_time_s.to_bits());

        let text = jsonl_string(&snap);
        let last = text.lines().last().unwrap();
        prop_assert!(last.starts_with("{\"type\":\"summary\""), "{}", last);
        prop_assert!(
            last.contains(&format!("\"attempts\":{}", folded.summary.attempts)),
            "{}", last
        );
        prop_assert!(last.contains(&format!("\"runs\":{}", folded.runs)), "{}", last);
        prop_assert!(
            last.contains(&format!("\"store_hits\":{}", folded.summary.store_hits)),
            "{}", last
        );
    }

    /// The real emission path: after a faulty evaluator run, every
    /// `TraceSummary` field (and the run/time ledger) equals the fold of
    /// the events actually on the spine — there is no second bookkeeping
    /// path that could drift.
    #[test]
    fn evaluator_counters_are_the_fold_of_their_events(seed in 0u64..40) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0B5E_55ED);
        let eval = evaluator(FaultPlan {
            seed,
            synth_crash: 0.15,
            route_timeout: 0.10,
            report_truncated: 0.05,
            crash_cost_s: 25.0,
            timeout_cost_s: 100.0,
            ..FaultPlan::none()
        });
        let points: Vec<DesignPoint> = (0..10)
            .map(|_| {
                DesignPoint::from_pairs(&[
                    ("DEPTH", rng.gen_range(1i64..64) * 2),
                    ("DATA_WIDTH", 32),
                ])
            })
            .collect();
        let _ = eval.evaluate_many(&points, false);
        // Re-evaluating a prefix exercises the cache-hit path too.
        let _ = eval.evaluate_many(&points[..4], false);

        let snap = eval.snapshot();
        prop_assert_eq!(snap.dropped, 0, "short runs must retain every event");
        let folded = fold_totals(snap.events.iter().map(|(_, e)| e));
        prop_assert_eq!(folded.summary, eval.trace_summary());
        prop_assert_eq!(folded.runs, eval.total_runs());
        prop_assert_eq!(
            folded.tool_time_s.to_bits(),
            eval.total_tool_time().to_bits()
        );
    }
}

// ---------------------------------------------------------------------------
// Canonical ordering: serial ≡ parallel, byte for byte
// ---------------------------------------------------------------------------

/// `evaluate_many` under a 4-thread pool writes the same trace bytes as
/// the serial path: seq blocks are allocated in input order before the
/// fan-out, so the canonical stream is schedule-independent.
#[test]
fn batch_trace_bytes_are_identical_serial_and_parallel() {
    let run = |parallel: bool| {
        let eval = evaluator(FaultPlan::none());
        let points: Vec<DesignPoint> = (1..=24)
            .map(|i| DesignPoint::from_pairs(&[("DEPTH", i * 2), ("DATA_WIDTH", 16)]))
            .collect();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        pool.install(|| {
            let _ = eval.evaluate_many(&points, parallel);
        });
        jsonl_string(&eval.snapshot())
    };
    let serial = run(false);
    let parallel = run(true);
    assert!(serial.lines().count() > 24, "trace unexpectedly small");
    assert_eq!(serial, parallel, "trace bytes depend on scheduling");
}

/// Whole explorations too: NSGA-II + surrogate, `--jobs 4` vs serial,
/// same seed → byte-identical `--trace-out` content (generations,
/// surrogate decisions, retrains and Γ moves included).
#[test]
fn explore_trace_bytes_are_identical_serial_and_parallel() {
    let run = |parallel: bool| {
        let tool = dovado(FaultPlan::none());
        let report = tool
            .explore(&DseConfig {
                algorithm: Nsga2Config {
                    pop_size: 10,
                    seed: 7,
                    ..Default::default()
                },
                termination: Termination::Generations(4),
                metrics: metrics(),
                surrogate: Some(SurrogateConfig {
                    pretrain_samples: 15,
                    ..Default::default()
                }),
                parallel,
                explorer: Default::default(),
                jobs: None,
                workers: None,
            })
            .unwrap();
        jsonl_string(&report.spine)
    };
    let serial = run(false);
    let parallel = {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        pool.install(|| run(true))
    };
    assert!(
        serial.contains("\"type\":\"generation\""),
        "explore must emit generation boundaries"
    );
    assert!(
        serial.contains("\"type\":\"surrogate_decision\""),
        "surrogate decisions must be on the spine"
    );
    assert_eq!(serial, parallel, "explore trace bytes depend on scheduling");
}
