//! Backend conformance: every [`dovado::ToolBackend`] must be
//! indistinguishable to the layers above the boundary. The same engine
//! pipeline — store lookup, retry/backoff, degradation, trace
//! accounting — runs against both shipped backends (the simulated
//! Vivado and the scripted mock) and must produce the same report
//! shapes, the same error taxonomy, the same store semantics and the
//! same fault-injection behavior on each.
//!
//! The last test enforces the boundary at the source level: outside
//! `crates/core/src/backend.rs`, core never names a concrete simulator
//! type.

use dovado::{
    DesignPoint, DovadoError, ErrorClass, EvalConfig, Evaluator, FlowStep, HdlSource, MockBackend,
    RetryPolicy, SimBackend, ToolBackend,
};
use dovado_eda::{EdaError, EvalStore, FaultPlan};
use dovado_hdl::Language;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32
)(input logic clk_i, input logic [DATA_WIDTH-1:0] data_i);
endmodule"#;

/// The two shipped backends, built from the same evaluation config.
fn backends(config: &EvalConfig) -> Vec<(&'static str, Arc<dyn ToolBackend>)> {
    vec![
        (
            "vivado-sim",
            Arc::new(SimBackend::with_faults(config.seed, config.faults.clone())),
        ),
        (
            "mock",
            Arc::new(MockBackend::with_faults(config.seed, config.faults.clone())),
        ),
    ]
}

fn evaluator_on(backend: Arc<dyn ToolBackend>, config: EvalConfig) -> Evaluator {
    Evaluator::with_backend(
        vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
        "fifo_v3",
        config,
        backend,
    )
    .unwrap()
}

fn point(depth: i64) -> DesignPoint {
    DesignPoint::from_pairs(&[("DEPTH", depth), ("DATA_WIDTH", 32)])
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dovado-conformance-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn report_shapes_match_across_backends() {
    let config = EvalConfig::default();
    for (name, backend) in backends(&config) {
        assert_eq!(backend.name(), name);
        let evaluator = evaluator_on(backend, config.clone());
        let eval = evaluator.evaluate(&point(64)).unwrap();
        // Same scraped shape from both report writers: real utilization
        // rows, a timing result against the configured clock, power.
        assert!(
            eval.utilization.get(dovado_fpga::ResourceKind::Lut) > 0,
            "{name}: no LUTs scraped"
        );
        assert!(
            eval.utilization.get(dovado_fpga::ResourceKind::Register) > 0,
            "{name}: no registers scraped"
        );
        assert_eq!(eval.period_ns, config.target_period_ns, "{name}");
        assert!(eval.fmax_mhz > 0.0, "{name}: fmax {}", eval.fmax_mhz);
        assert!(eval.power_mw > 0.0, "{name}: power {}", eval.power_mw);
        assert!(eval.tool_time_s > 0.0, "{name}");
        assert_eq!(evaluator.total_runs(), 1, "{name}");
    }
}

#[test]
fn unknown_part_is_a_permanent_error_on_both() {
    let config = EvalConfig {
        part: "no-such-part".into(),
        ..EvalConfig::default()
    };
    for (name, backend) in backends(&config) {
        let evaluator = evaluator_on(backend, config.clone());
        let err = evaluator.evaluate(&point(8)).unwrap_err();
        assert!(
            matches!(&err, DovadoError::Eda(EdaError::UnknownPart(_))),
            "{name}: {err:?}"
        );
        assert_eq!(err.class(), ErrorClass::Permanent, "{name}");
        // Permanent failures never consume the retry budget.
        assert_eq!(evaluator.trace_summary().retries, 0, "{name}");
    }
}

#[test]
fn certain_crash_exhausts_retries_identically() {
    let config = EvalConfig {
        faults: FaultPlan {
            synth_crash: 1.0,
            ..FaultPlan::none()
        },
        retry: RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        },
        ..EvalConfig::default()
    };
    for (name, backend) in backends(&config) {
        let evaluator = evaluator_on(backend, config.clone());
        let err = evaluator.evaluate(&point(8)).unwrap_err();
        match &err {
            DovadoError::RetriesExhausted { attempts, last } => {
                assert_eq!(*attempts, 3, "{name}");
                assert!(
                    matches!(last.as_ref(), DovadoError::Eda(EdaError::ToolCrash(_))),
                    "{name}: {last:?}"
                );
            }
            other => panic!("{name}: expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(err.class(), ErrorClass::Transient, "{name}");
        assert_eq!(evaluator.trace_summary().attempts, 3, "{name}");
        assert_eq!(evaluator.trace_summary().retries, 2, "{name}");
    }
}

#[test]
fn route_timeouts_degrade_to_synthesis_on_both() {
    let config = EvalConfig {
        faults: FaultPlan {
            route_timeout: 1.0,
            ..FaultPlan::none()
        },
        retry: RetryPolicy {
            max_attempts: 4,
            degrade_after_timeouts: Some(2),
            ..RetryPolicy::default()
        },
        ..EvalConfig::default()
    };
    for (name, backend) in backends(&config) {
        let evaluator = evaluator_on(backend, config.clone());
        // Routing always times out; after two timeouts the engine degrades
        // the flow to synthesis-only, which succeeds — on any backend.
        let eval = evaluator.evaluate(&point(8)).unwrap();
        assert!(eval.fmax_mhz > 0.0, "{name}");
        assert_eq!(evaluator.trace_summary().retries, 2, "{name}");
        assert_eq!(evaluator.trace_summary().transient_failures, 2, "{name}");
    }
}

#[test]
fn report_faults_surface_as_transient_scrape_errors() {
    let config = EvalConfig {
        step: FlowStep::Synthesis,
        faults: FaultPlan {
            report_truncated: 1.0,
            ..FaultPlan::none()
        },
        retry: RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        },
        ..EvalConfig::default()
    };
    for (name, backend) in backends(&config) {
        assert!(
            backend.injector().is_some(),
            "{name}: active plan must expose its injector"
        );
        let evaluator = evaluator_on(backend, config.clone());
        let err = evaluator.evaluate(&point(8)).unwrap_err();
        assert_eq!(err.class(), ErrorClass::Transient, "{name}: {err:?}");
    }
    // An empty plan exposes no injector on either backend.
    for (name, backend) in backends(&EvalConfig::default()) {
        assert!(backend.injector().is_none(), "{name}");
    }
}

#[test]
fn store_round_trips_on_each_backend_and_isolates_across_them() {
    let config = EvalConfig::default();
    let dir = fresh_dir("store");
    let mut evals = Vec::new();
    for (name, backend) in backends(&config) {
        // Cold run populates the shared store under this backend's key.
        let mut cold = evaluator_on(backend.clone(), config.clone());
        cold.attach_store(EvalStore::open(&dir.join("store")).unwrap());
        let cold_eval = cold.evaluate(&point(64)).unwrap();
        assert_eq!(cold.trace_summary().store_hits, 0, "{name}");
        assert_eq!(cold.trace_summary().attempts, 1, "{name}");

        // A fresh evaluator on the same backend is answered from disk,
        // bitwise, with zero tool attempts.
        let mut warm = evaluator_on(backend, config.clone());
        warm.attach_store(EvalStore::open(&dir.join("store")).unwrap());
        let warm_eval = warm.evaluate(&point(64)).unwrap();
        assert_eq!(warm.trace_summary().attempts, 0, "{name}: tool touched");
        assert_eq!(warm.trace_summary().store_hits, 1, "{name}");
        assert_eq!(warm_eval, cold_eval, "{name}");
        evals.push(cold_eval);
    }
    // Isolation: both backends shared one store directory, yet each ran
    // its own cold evaluation — the backend name is part of the content
    // key, so one backend's entries can never answer for another's.
    let sim_key = evaluator_on(backends(&config)[0].1.clone(), config.clone()).content_key();
    let mock_key = evaluator_on(backends(&config)[1].1.clone(), config.clone()).content_key();
    assert_ne!(sim_key.hex(), mock_key.hex());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mock_parallel_batch_is_bitwise_serial() {
    let config = EvalConfig::default();
    let points: Vec<DesignPoint> = (1..=6).map(|i| point(i * 32)).collect();
    let run = |parallel: bool| {
        let evaluator = evaluator_on(
            Arc::new(MockBackend::new(config.seed)),
            EvalConfig::default(),
        );
        evaluator
            .evaluate_many(&points, parallel)
            .into_iter()
            .map(|r| r.unwrap())
            .collect::<Vec<_>>()
    };
    let serial = run(false);
    let parallel = run(true);
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a, b);
        assert_eq!(a.fmax_mhz.to_bits(), b.fmax_mhz.to_bits());
        assert_eq!(a.power_mw.to_bits(), b.power_mw.to_bits());
    }
}

/// One spine trace per schedule, on in-process and fleet-backed
/// evaluators alike: evaluate `points` under `schedule`, return the
/// JSONL trace and the unwrapped evaluations.
fn traced_run(
    backend: Arc<dyn ToolBackend>,
    config: &EvalConfig,
    points: &[dovado::DesignPoint],
    schedule: dovado::Schedule,
) -> (String, Vec<dovado::Evaluation>) {
    let evaluator = evaluator_on(backend, config.clone());
    let evals = evaluator
        .evaluate_many_scheduled(points, schedule)
        .into_iter()
        .map(|r| r.unwrap())
        .collect::<Vec<_>>();
    (
        dovado::obs::jsonl_string(&evaluator.spine().snapshot()),
        evals,
    )
}

/// Thread-backed worker fleet speaking the real wire protocol, serving
/// the same simulated backend the in-process evaluator uses.
fn fleet_for(kind: &str, seed: u64, workers: usize) -> dovado::RemoteBackend {
    dovado::worker::thread_fleet(&format!("{kind}:{seed}"), workers)
        .expect("thread fleet must spawn")
}

#[test]
fn serial_rayon_and_distributed_traces_are_byte_identical() {
    let config = EvalConfig::default();
    let points: Vec<DesignPoint> = (1..=8).map(|i| point(i * 16)).collect();
    for idx in 0..backends(&config).len() {
        // A fresh in-process backend per run: the simulated tool keeps a
        // checkpoint store of its own, and reusing one instance would let
        // the second run see the first run's checkpoints.
        let name = backends(&config)[idx].0;
        let (serial_trace, serial_evals) = traced_run(
            backends(&config)[idx].1.clone(),
            &config,
            &points,
            dovado::Schedule::Serial,
        );
        let (rayon_trace, rayon_evals) = traced_run(
            backends(&config)[idx].1.clone(),
            &config,
            &points,
            dovado::Schedule::Parallel,
        );
        let fleet = Arc::new(fleet_for(name, config.seed, 4));
        let (dist_trace, dist_evals) = traced_run(
            fleet,
            &config,
            &points,
            dovado::Schedule::Distributed { workers: 4 },
        );
        assert_eq!(serial_trace, rayon_trace, "{name}: rayon trace diverged");
        assert_eq!(
            serial_trace, dist_trace,
            "{name}: distributed trace diverged"
        );
        for ((a, b), c) in serial_evals.iter().zip(&rayon_evals).zip(&dist_evals) {
            assert_eq!(a, b, "{name}");
            assert_eq!(a, c, "{name}");
            assert_eq!(a.fmax_mhz.to_bits(), c.fmax_mhz.to_bits(), "{name}");
            assert_eq!(a.power_mw.to_bits(), c.power_mw.to_bits(), "{name}");
        }
    }
}

#[test]
fn distributed_traces_survive_a_seeded_worker_kill_mid_batch() {
    let config = EvalConfig::default();
    let points: Vec<DesignPoint> = (1..=8).map(|i| point(i * 16)).collect();
    for (name, backend) in backends(&config) {
        let (serial_trace, serial_evals) =
            traced_run(backend, &config, &points, dovado::Schedule::Serial);

        let fleet = Arc::new(fleet_for(name, config.seed, 4));
        // Sever the serving worker's link right before the third
        // dispatched eval: the session replays its op log onto a fresh
        // worker and the batch must come out bitwise unchanged.
        fleet.kill_worker_before_eval(3);
        let evaluator = evaluator_on(fleet.clone(), config.clone());
        dovado::worker::attach_lifecycle(&fleet, evaluator.spine());
        let evals = evaluator
            .evaluate_many_scheduled(&points, dovado::Schedule::Distributed { workers: 4 })
            .into_iter()
            .map(|r| r.unwrap())
            .collect::<Vec<_>>();

        let trace = dovado::obs::jsonl_string(&evaluator.spine().snapshot());
        assert_eq!(
            serial_trace, trace,
            "{name}: worker death leaked into the canonical trace"
        );
        for (a, c) in serial_evals.iter().zip(&evals) {
            assert_eq!(a, c, "{name}");
        }
        // The death is visible where it belongs: on the lifecycle side
        // channel, never in the canonical stream.
        let kinds: Vec<&str> = evaluator
            .spine()
            .worker_events()
            .iter()
            .filter_map(|e| match e {
                dovado::ObsEvent::Worker { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert!(kinds.contains(&"spawned"), "{name}: {kinds:?}");
        assert!(kinds.contains(&"died"), "{name}: {kinds:?}");
        assert!(kinds.contains(&"requeued"), "{name}: {kinds:?}");
    }
}

#[test]
fn distributed_and_serial_runs_share_one_store() {
    let config = EvalConfig::default();
    let points: Vec<DesignPoint> = (1..=4).map(|i| point(i * 16)).collect();
    for (name, backend) in backends(&config) {
        let dir = fresh_dir(&format!("dist-store-{name}"));

        // Cold distributed run populates the store...
        let fleet: Arc<dyn ToolBackend> = Arc::new(fleet_for(name, config.seed, 2));
        let mut cold = evaluator_on(fleet, config.clone());
        cold.attach_store(EvalStore::open(&dir).unwrap());
        let cold_evals = cold
            .evaluate_many_scheduled(&points, dovado::Schedule::Distributed { workers: 2 })
            .into_iter()
            .map(|r| r.unwrap())
            .collect::<Vec<_>>();
        assert_eq!(cold.trace_summary().store_hits, 0, "{name}");

        // ...and a plain serial evaluator on the in-process backend is
        // answered from disk with zero tool attempts: the fleet writes
        // under the inner backend's name, so the content keys line up.
        let mut warm = evaluator_on(backend, config.clone());
        warm.attach_store(EvalStore::open(&dir).unwrap());
        let warm_evals = warm
            .evaluate_many_scheduled(&points, dovado::Schedule::Serial)
            .into_iter()
            .map(|r| r.unwrap())
            .collect::<Vec<_>>();
        assert_eq!(warm.trace_summary().attempts, 0, "{name}: tool touched");
        assert_eq!(
            warm.trace_summary().store_hits,
            points.len() as u64,
            "{name}"
        );
        assert_eq!(cold_evals, warm_evals, "{name}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Source files under `crates/core/src`, recursively.
fn core_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            core_sources(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

#[test]
fn core_names_no_concrete_simulator_outside_the_boundary() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/core/src");
    let mut files = Vec::new();
    core_sources(&dir, &mut files);
    assert!(files.len() > 10, "core sources not found at {dir:?}");
    for path in files {
        if path.file_name().and_then(|n| n.to_str()) == Some("backend.rs") {
            continue; // the one sanctioned import site
        }
        let text = std::fs::read_to_string(&path).unwrap();
        for token in ["VivadoSim", "vivado::", "project::", "dovado_eda::backend"] {
            assert!(
                !text.contains(token),
                "{} names `{token}` outside the backend boundary module",
                path.display()
            );
        }
    }
}
