//! Service-level harness for `dovado serve`: boots the daemon
//! in-process, drives it over real sockets with the line-delimited JSON
//! protocol, and pins the core service contracts:
//!
//! * concurrent tenants' streamed event lines each fold to exactly the
//!   totals (and the bitwise-identical Pareto front) of a standalone
//!   `explore` run of the same job;
//! * a warm shared store answers a repeated job with zero tool
//!   attempts;
//! * a capacity-bounded store under forced eviction still completes
//!   correctly — eviction costs recomputation, never answers;
//! * cancellation lands at a generation boundary and releases the slot;
//! * a client that drops mid-stream can reconnect and `attach` to
//!   replay the stream, deduplicating by event key.

use dovado::serve::{fold_stream, parse_event_line, Client, JobSpec, Json, ServeConfig, Server};
use dovado::worker::backend_from_spec;
use dovado::{
    fold_totals, Dovado, DseConfig, DseReport, EvalConfig, HdlSource, MetricSet, ParameterSpace,
    Totals,
};
use dovado_eda::EvalStore;
use dovado_hdl::Language;
use dovado_moo::{Nsga2Config, Termination};
use std::sync::Arc;

const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32
)(input logic clk_i, input logic [DATA_WIDTH-1:0] data_i);
endmodule"#;

const DEPTH_SPEC: &str = "2:512:2";
const WIDTH_SPEC: &str = "8,16,32";

/// The wire-side job: same sources, space, and optimizer settings as
/// [`direct_report`] builds in-process.
fn fifo_spec(seed: u64, generations: u32, use_store: bool) -> JobSpec {
    JobSpec {
        sources: vec![("fifo.sv".into(), FIFO_SV.into())],
        top: "fifo_v3".into(),
        params: vec![
            ("DEPTH".into(), DEPTH_SPEC.into()),
            ("DATA_WIDTH".into(), WIDTH_SPEC.into()),
        ],
        generations,
        pop: 6,
        seed,
        backend: format!("mock:{seed}"),
        use_store,
        ..JobSpec::default()
    }
}

/// The same job executed standalone, without the daemon: the oracle the
/// streamed results must match.
fn direct_report(seed: u64, generations: u32) -> DseReport {
    let backend: Arc<dyn dovado::ToolBackend> =
        Arc::from(backend_from_spec(&format!("mock:{seed}")).expect("mock spec"));
    let space = ParameterSpace::new()
        .with("DEPTH", dovado::cli::parse_domain(DEPTH_SPEC).unwrap())
        .with("DATA_WIDTH", dovado::cli::parse_domain(WIDTH_SPEC).unwrap());
    let tool = Dovado::with_backend(
        vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
        "fifo_v3",
        space,
        EvalConfig::default(),
        backend,
    )
    .unwrap();
    tool.explore(&DseConfig {
        algorithm: Nsga2Config {
            pop_size: 6,
            seed,
            ..Nsga2Config::default()
        },
        termination: Termination::Generations(generations),
        metrics: MetricSet::area_frequency(),
        ..DseConfig::default()
    })
    .unwrap()
}

fn pareto_bits(report: &DseReport) -> Vec<Vec<u64>> {
    report
        .pareto
        .iter()
        .map(|e| e.values.iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn done_pareto_bits(done: &Json) -> Vec<Vec<u64>> {
    done.get("pareto")
        .and_then(Json::as_arr)
        .expect("done carries a pareto array")
        .iter()
        .map(|entry| {
            entry
                .get("bits")
                .and_then(Json::as_arr)
                .expect("pareto entry carries bits")
                .iter()
                .map(|b| u64::from_str_radix(b.as_str().unwrap(), 16).unwrap())
                .collect()
        })
        .collect()
}

fn connect(server: &Server, tenant: &str) -> Client {
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    client.hello(tenant).expect("hello");
    client
}

#[test]
fn concurrent_tenants_fold_to_their_standalone_runs() {
    let mut server = Server::start(ServeConfig {
        slots: 2,
        ..ServeConfig::default()
    })
    .unwrap();

    // Two tenants, two different jobs, submitted concurrently over
    // separate connections; storeless so each run is self-contained.
    let jobs = [(11u64, "alice"), (23u64, "bob")];
    let handles: Vec<_> = jobs
        .map(|(seed, tenant)| {
            let addr = server.addr().to_string();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client.hello(tenant).unwrap();
                let spec = fifo_spec(seed, 4, false);
                let job = client.submit(tenant, 1, &spec).unwrap();
                let outcome = client.stream_until_done().unwrap();
                (job, outcome)
            })
        })
        .into_iter()
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for ((seed, _), (job, outcome)) in jobs.iter().zip(&outcomes) {
        assert_eq!(outcome.status(), "done", "{job}");
        let direct = direct_report(*seed, 4);
        let streamed = fold_stream(outcome.lines.iter().map(String::as_str));
        let oracle = fold_totals(direct.spine.events.iter().map(|(_, e)| e));
        assert_eq!(
            streamed, oracle,
            "{job}: streamed events must fold to the standalone run's totals"
        );
        assert_eq!(
            done_pareto_bits(&outcome.done),
            pareto_bits(&direct),
            "{job}: Pareto front must be bitwise identical to the standalone run"
        );
        // The canonical stream never carries side-channel events.
        assert!(
            !outcome
                .lines
                .iter()
                .any(|l| l.contains("\"store_evicted\"") || l.contains("\"type\":\"worker\"")),
            "{job}: side-channel events leaked into the canonical stream"
        );
    }
    server.shutdown();
}

#[test]
fn warm_shared_store_answers_a_repeat_job_with_zero_tool_runs() {
    let root = tempdir("serve-warm");
    let mut server = Server::start(ServeConfig {
        root: Some(root.clone()),
        ..ServeConfig::default()
    })
    .unwrap();

    let spec = fifo_spec(7, 3, true);
    let mut client = connect(&server, "alice");
    let job = client.submit("alice", 1, &spec).unwrap();
    let cold = client.stream_until_done().unwrap();
    assert_eq!(cold.status(), "done", "{job}");
    let cold_totals = fold_stream(cold.lines.iter().map(String::as_str));
    assert!(cold_totals.summary.attempts > 0, "cold run calls the tool");

    // Same job, different tenant: every evaluation is a store hit.
    let mut client = connect(&server, "bob");
    let job = client.submit("bob", 1, &spec).unwrap();
    let warm = client.stream_until_done().unwrap();
    assert_eq!(warm.status(), "done", "{job}");
    let warm_totals = fold_stream(warm.lines.iter().map(String::as_str));
    assert_eq!(
        warm_totals.summary.attempts, 0,
        "warm run must make zero tool attempts"
    );
    assert!(warm_totals.summary.store_hits > 0);
    assert_eq!(
        done_pareto_bits(&warm.done),
        done_pareto_bits(&cold.done),
        "store answers must reproduce the cold run bit-for-bit"
    );
    server.shutdown();
    rm(&root);
}

#[test]
fn differently_seeded_backends_never_share_store_answers() {
    // `ToolBackend::name` omits the construction seed, so a shared
    // multi-tenant store must scope its keys by the full backend spec:
    // a `mock:8` job after a `mock:7` job over the same design must
    // recompute everything and reproduce its *own* standalone answers.
    let root = tempdir("serve-seeds");
    let mut server = Server::start(ServeConfig {
        root: Some(root.clone()),
        ..ServeConfig::default()
    })
    .unwrap();

    let mut client = connect(&server, "alice");
    client.submit("alice", 1, &fifo_spec(7, 3, true)).unwrap();
    assert_eq!(client.stream_until_done().unwrap().status(), "done");

    let mut client = connect(&server, "bob");
    client.submit("bob", 1, &fifo_spec(8, 3, true)).unwrap();
    let other = client.stream_until_done().unwrap();
    assert_eq!(other.status(), "done");
    let totals = fold_stream(other.lines.iter().map(String::as_str));
    assert_eq!(
        totals.summary.store_hits, 0,
        "a differently-seeded backend must never hit the other's entries"
    );
    assert!(totals.summary.attempts > 0);
    assert_eq!(
        done_pareto_bits(&other.done),
        pareto_bits(&direct_report(8, 3)),
        "the seed-8 job must reproduce its own standalone run bit-for-bit"
    );
    server.shutdown();
    rm(&root);
}

#[test]
fn forced_eviction_costs_recomputation_never_answers() {
    let root = tempdir("serve-evict");
    // A store this small evicts constantly under a multi-generation run.
    let mut server = Server::start(ServeConfig {
        root: Some(root.clone()),
        store_capacity: Some(2),
        ..ServeConfig::default()
    })
    .unwrap();

    let spec = fifo_spec(5, 4, true);
    let mut client = connect(&server, "alice");
    client.submit("alice", 1, &spec).unwrap();
    let bounded = client.stream_until_done().unwrap();
    assert_eq!(bounded.status(), "done");

    // The run completes with the same answers as a standalone run —
    // eviction may only ever force recomputation.
    let direct = direct_report(5, 4);
    assert_eq!(
        done_pareto_bits(&bounded.done),
        pareto_bits(&direct),
        "eviction must never change answers"
    );
    // Evictions happened (side channel), but never entered the stream.
    let retained = server
        .store()
        .map(EvalStore::len)
        .expect("daemon has a store");
    assert!(retained <= 2, "store stayed within its bound");
    assert!(
        !bounded
            .lines
            .iter()
            .any(|l| l.contains("\"store_evicted\"")),
        "eviction events must stay out of the canonical stream"
    );
    server.shutdown();
    rm(&root);
}

#[test]
fn zero_capacity_store_is_a_config_error() {
    let root = tempdir("serve-zero");
    let err = Server::start(ServeConfig {
        root: Some(root.clone()),
        store_capacity: Some(0),
        ..ServeConfig::default()
    })
    .err()
    .expect("Some(0) capacity must be rejected");
    assert!(
        err.to_string().contains("store-capacity"),
        "unexpected error: {err}"
    );
    // A rootless daemon fails store-using jobs with a config error.
    let mut server = Server::start(ServeConfig::default()).unwrap();
    let mut client = connect(&server, "alice");
    client.submit("alice", 1, &fifo_spec(1, 2, true)).unwrap();
    let outcome = client.stream_until_done().unwrap();
    assert_eq!(outcome.status(), "failed");
    assert!(
        outcome
            .done
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("")
            .contains("store"),
        "failure names the missing store"
    );
    server.shutdown();
    rm(&root);
}

#[test]
fn cancellation_lands_at_a_generation_boundary_and_frees_the_slot() {
    let mut server = Server::start(ServeConfig {
        slots: 1,
        ..ServeConfig::default()
    })
    .unwrap();

    // A long, slow job: spin keeps each generation long enough that the
    // cancel lands mid-run.
    let mut spec = fifo_spec(3, 200, false);
    spec.backend = "mock:3:spin=2".into();
    let mut streaming = connect(&server, "alice");
    let job = streaming.submit("alice", 1, &spec).unwrap();

    // Wait until the run demonstrably makes progress, then cancel from
    // a second connection.
    let mut seen_generation = false;
    let mut lines = Vec::new();
    while !seen_generation {
        let line = streaming.read_line().unwrap().expect("stream open");
        seen_generation = line.contains("\"type\":\"generation\"");
        lines.push(line);
    }
    let mut admin = connect(&server, "admin");
    admin.cancel(&job).unwrap();

    // The stream ends with a cancelled outcome, well short of the
    // requested 200 generations.
    let outcome = streaming.stream_until_done().unwrap();
    assert_eq!(outcome.status(), "cancelled");
    let generations = outcome
        .done
        .get("generations")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(
        (1..200).contains(&generations),
        "cancelled after {generations} generations"
    );

    // The slot is free again: a short follow-up job completes.
    let mut next = connect(&server, "bob");
    next.submit("bob", 1, &fifo_spec(9, 2, false)).unwrap();
    assert_eq!(next.stream_until_done().unwrap().status(), "done");
    server.shutdown();
}

#[test]
fn reconnect_attaches_and_replays_the_stream() {
    let mut server = Server::start(ServeConfig::default()).unwrap();
    let spec = fifo_spec(17, 4, false);

    // First connection submits, reads a few lines, and vanishes.
    let mut first = connect(&server, "alice");
    let job = first.submit("alice", 1, &spec).unwrap();
    let mut early = Vec::new();
    let mut cut_seq = 0u64;
    for _ in 0..5 {
        let line = first.read_line().unwrap().expect("stream open");
        if let Some((key, _)) = parse_event_line(&line) {
            cut_seq = cut_seq.max(key.seq);
        }
        early.push(line);
    }
    drop(first);

    // Reconnect and replay everything; the union of both streams —
    // dedup'd by key, which fold_stream does — matches the standalone
    // oracle exactly.
    let mut second = connect(&server, "alice");
    second.attach(&job, 0).unwrap();
    let replay = second.stream_until_done().unwrap();
    assert_eq!(replay.status(), "done");
    let all: Vec<&str> = early
        .iter()
        .map(String::as_str)
        .chain(replay.lines.iter().map(String::as_str))
        .collect();
    let direct = direct_report(17, 4);
    let oracle = fold_totals(direct.spine.events.iter().map(|(_, e)| e));
    assert_eq!(fold_stream(all), oracle);
    assert_eq!(done_pareto_bits(&replay.done), pareto_bits(&direct));

    // A partial attach honors from_seq: no replayed event sits below it.
    let mut partial = connect(&server, "alice");
    partial.attach(&job, cut_seq).unwrap();
    let tail = partial.stream_until_done().unwrap();
    for line in &tail.lines {
        if let Some((key, _)) = parse_event_line(line) {
            assert!(
                key.seq >= cut_seq,
                "attach from_seq={cut_seq} replayed seq {}",
                key.seq
            );
        }
    }
    server.shutdown();
}

#[test]
fn status_reports_jobs_and_tenant_ledgers() {
    let mut server = Server::start(ServeConfig::default()).unwrap();
    for (tenant, seed) in [("alice", 2u64), ("bob", 4u64)] {
        let mut client = connect(&server, tenant);
        client
            .submit(tenant, 1, &fifo_spec(seed, 2, false))
            .unwrap();
        assert_eq!(client.stream_until_done().unwrap().status(), "done");
    }
    let mut admin = connect(&server, "admin");
    let status = admin.status().unwrap();
    let jobs = status.get("jobs").and_then(Json::as_arr).unwrap();
    assert_eq!(jobs.len(), 2);
    assert!(jobs
        .iter()
        .all(|j| j.get("state").and_then(Json::as_str) == Some("done")));
    let tenants = status.get("tenants").and_then(Json::as_arr).unwrap();
    let names: Vec<&str> = tenants
        .iter()
        .filter_map(|t| t.get("tenant").and_then(Json::as_str))
        .collect();
    assert_eq!(names, ["alice", "bob"], "ledger is sorted by tenant");
    for t in tenants {
        assert!(t.get("runs").and_then(Json::as_u64).unwrap() > 0);
        assert!(t.get("tool_time_s").and_then(Json::as_f64).unwrap() > 0.0);
    }
    server.shutdown();
}

/// The totals type re-exported by the crate is what `fold_stream`
/// returns — this pins the client-side contract at compile time.
#[allow(dead_code)]
fn _fold_stream_returns_totals(lines: &[&str]) -> Totals {
    fold_stream(lines.iter().copied())
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dovado-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn rm(dir: &std::path::Path) {
    let _ = std::fs::remove_dir_all(dir);
}
