//! Exploration-level integration: NSGA-II over the real evaluation stack,
//! front validity, reproducibility, budget/deadline handling, and the
//! baselines-vs-NSGA-II comparison.

use dovado::casestudies::{corundum, neorv32};
use dovado::{DseConfig, SurrogateConfig};
use dovado_moo::{hypervolume, to_min_space, Nsga2Config, Termination};

fn corundum_cfg(seed: u64, generations: u32) -> DseConfig {
    let cs = corundum::case_study();
    DseConfig {
        algorithm: Nsga2Config {
            pop_size: 16,
            seed,
            ..Default::default()
        },
        termination: Termination::Generations(generations),
        metrics: cs.metrics.clone(),
        surrogate: None,
        parallel: true,
        jobs: None,
        workers: None,
        explorer: Default::default(),
    }
}

#[test]
fn zero_jobs_or_workers_is_a_config_error_programmatically() {
    // The CLI validates `--jobs`/`--workers` before the run starts; the
    // programmatic path shares the same validator, so a hand-built
    // `DseConfig` with a zero-sized pool fails identically instead of
    // deadlocking an empty thread pool.
    let cs = corundum::case_study();
    let tool = cs.dovado().unwrap();
    for bad in [
        DseConfig {
            jobs: Some(0),
            ..corundum_cfg(3, 1)
        },
        DseConfig {
            workers: Some(0),
            ..corundum_cfg(3, 1)
        },
    ] {
        match tool.explore(&bad) {
            Err(dovado::DovadoError::Config(msg)) => {
                assert!(msg.contains("at least 1"), "unexpected message: {msg}")
            }
            other => panic!("expected a Config error, got {other:?}"),
        }
    }
}

#[test]
fn pareto_front_is_mutually_nondominated_and_in_space() {
    let cs = corundum::case_study();
    let tool = cs.dovado().unwrap();
    let report = tool.explore(&corundum_cfg(3, 8)).unwrap();
    assert!(!report.pareto.is_empty());

    let objectives = cs.metrics.objectives();
    for (i, a) in report.pareto.iter().enumerate() {
        // Every point decodes back into the admissible space.
        assert!(
            cs.space.encode(&a.point).is_ok(),
            "{:?} not in space",
            a.point
        );
        let am = to_min_space(&objectives, &a.values);
        for (j, b) in report.pareto.iter().enumerate() {
            if i == j {
                continue;
            }
            let bm = to_min_space(&objectives, &b.values);
            let dominates =
                bm.iter().zip(&am).all(|(x, y)| x <= y) && bm.iter().zip(&am).any(|(x, y)| x < y);
            assert!(!dominates, "{:?} dominated by {:?}", a.point, b.point);
        }
    }
}

#[test]
fn exploration_is_reproducible_per_seed() {
    let cs = corundum::case_study();
    let run = |seed| {
        let tool = cs.dovado().unwrap();
        let r = tool.explore(&corundum_cfg(seed, 5)).unwrap();
        r.pareto
            .iter()
            .map(|e| (e.point.clone(), e.values.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}

#[test]
fn evaluation_budget_respected() {
    let cs = corundum::case_study();
    let tool = cs.dovado().unwrap();
    let mut cfg = corundum_cfg(1, 100);
    cfg.termination = Termination::Evaluations(60);
    let report = tool.explore(&cfg).unwrap();
    assert!(report.evaluations >= 60);
    assert!(report.evaluations < 60 + 16 + 1);
}

#[test]
fn soft_deadline_in_simulated_time() {
    // The paper's 4 h soft deadline, scaled down: the run must stop at the
    // first generation boundary past the simulated budget — regardless of
    // how fast the host machine is.
    let cs = corundum::case_study();
    let tool = cs.dovado().unwrap();
    let mut cfg = corundum_cfg(2, 10_000);
    cfg.termination = Termination::SoftDeadline(5_000.0);
    let report = tool.explore(&cfg).unwrap();
    assert!(report.tool_time_s >= 5_000.0);
    // With ~130 s per evaluation, a couple of generations suffice.
    assert!(report.generations < 30, "{}", report.generations);
}

#[test]
fn nsga2_beats_random_search_on_hypervolume_per_budget() {
    // The reason the paper picks a genetic algorithm: better fronts for
    // the same number of (expensive) evaluations.
    let cs = neorv32::case_study();
    let objectives = cs.metrics.objectives();

    // NSGA-II with a strict evaluation budget.
    let tool = cs.dovado().unwrap();
    let report = tool
        .explore(&DseConfig {
            algorithm: Nsga2Config {
                pop_size: 10,
                seed: 4,
                ..Default::default()
            },
            termination: Termination::Evaluations(40),
            metrics: cs.metrics.clone(),
            surrogate: None,
            parallel: true,
            explorer: Default::default(),
            jobs: None,
            workers: None,
        })
        .unwrap();

    // Reference point: comfortably worse than anything measured.
    let reference = [10_000.0, 10_000.0, 100.0, 0.0]; // LUT, FF, BRAM, -Fmax
    let reference: Vec<f64> = reference
        .iter()
        .zip(&objectives)
        .map(|(v, o)| match o.sense {
            dovado_moo::Sense::Minimize => *v,
            dovado_moo::Sense::Maximize => 0.0,
        })
        .collect();

    let front: Vec<Vec<f64>> = report
        .pareto
        .iter()
        .map(|e| to_min_space(&objectives, &e.values))
        .collect();
    let hv = hypervolume(&front, &reference);
    assert!(hv > 0.0, "NSGA-II produced an empty/degenerate front");
}

#[test]
fn surrogate_and_plain_runs_agree_on_the_winning_region() {
    use dovado::casestudies::cv32e40p;
    let cs = cv32e40p::case_study();
    let cfg_base = DseConfig {
        algorithm: Nsga2Config {
            pop_size: 12,
            seed: 6,
            ..Default::default()
        },
        termination: Termination::Generations(8),
        metrics: cs.metrics.clone(),
        surrogate: None,
        parallel: false,
        explorer: Default::default(),
        jobs: None,
        workers: None,
    };
    let plain = cs.dovado().unwrap().explore(&cfg_base).unwrap();
    let with = cs
        .dovado()
        .unwrap()
        .explore(&DseConfig {
            surrogate: Some(SurrogateConfig {
                pretrain_samples: 40,
                ..Default::default()
            }),
            ..cfg_base
        })
        .unwrap();
    // Both must conclude that small depths win (all metrics favor them).
    let min_depth = |r: &dovado::DseReport| {
        r.pareto
            .iter()
            .filter_map(|e| e.point.get("DEPTH"))
            .min()
            .unwrap()
    };
    assert!(min_depth(&plain) <= 16);
    assert!(min_depth(&with) <= 16);
    assert!(with.estimates > 0);
}

#[test]
fn failures_do_not_crash_exploration() {
    // A space that includes configurations too big for the device: the
    // fitness penalizes them and the run completes.
    use dovado::{Domain, EvalConfig, HdlSource, ParameterSpace};
    use dovado_hdl::Language;
    let src = HdlSource::new(
        "fifo.sv",
        Language::SystemVerilog,
        "module fifo_v3 #(parameter DEPTH = 8, parameter DATA_WIDTH = 32)\
         (input logic clk_i); endmodule",
    );
    // DEPTH up to 8192 × 32 b = 262k flops — far beyond the XC7K70T.
    let space = ParameterSpace::new().with(
        "DEPTH",
        Domain::PowerOfTwo {
            min_exp: 2,
            max_exp: 13,
        },
    );
    let tool = dovado::Dovado::new(vec![src], "fifo_v3", space, EvalConfig::default()).unwrap();
    let report = tool
        .explore(&DseConfig {
            algorithm: Nsga2Config {
                pop_size: 8,
                seed: 2,
                ..Default::default()
            },
            termination: Termination::Generations(4),
            metrics: corundum::case_study().metrics.clone(),
            surrogate: None,
            parallel: true,
            explorer: Default::default(),
            jobs: None,
            workers: None,
        })
        .unwrap();
    assert!(
        report.failures > 0,
        "expected some configurations to overflow"
    );
    // And no overflowing point may appear on the front.
    for e in &report.pareto {
        assert!(e.point.get("DEPTH").unwrap() <= 2048, "{:?}", e.point);
    }
}
