//! Catalog conformance: the case studies are now built *through* the
//! source catalog (dependency-graph compile order, graph-inferred top).
//! That refactor must be invisible at the artifact level — a hand-wired
//! legacy construction (explicit source order, explicit top module) and
//! the catalog construction must agree bitwise on every evaluation,
//! on the whole-run trace counters, on the serialized journal bytes,
//! and on the content-addressed evaluator key that store reuse hangs off.

use dovado::casestudies::{self, corundum, cv32e40p, neorv32, tirex, CaseStudy};
use dovado::{Dovado, EvalConfig, HdlSource};
use dovado_hdl::Language;

/// The pre-catalog construction of a case study: a hand-ordered source
/// list and a hand-wired top module, exactly as the modules spelled them
/// before `CaseStudy::from_tree` existed.
fn legacy_dovado(cs: &CaseStudy) -> Dovado {
    let (sources, top): (Vec<HdlSource>, &str) = match cs.name {
        "cv32e40p-fifo" => (
            vec![HdlSource::new(
                "fifo_v3.sv",
                Language::SystemVerilog,
                cv32e40p::FIFO_SV,
            )],
            "fifo_v3",
        ),
        "corundum-cpl-queue-manager" => (
            vec![HdlSource::new(
                "cpl_queue_manager.v",
                Language::Verilog,
                corundum::CPL_QUEUE_MANAGER_V,
            )],
            "cpl_queue_manager",
        ),
        "neorv32" => (
            vec![HdlSource::new(
                "neorv32_top.vhd",
                Language::Vhdl,
                neorv32::NEORV32_TOP_VHD,
            )],
            "neorv32_top",
        ),
        "tirex" => (
            vec![HdlSource::new(
                "tirex_top.vhd",
                Language::Vhdl,
                tirex::TIREX_TOP_VHD,
            )],
            "tirex_top",
        ),
        other => panic!("no legacy construction recorded for {other}"),
    };
    let config = EvalConfig {
        part: cs.part.to_string(),
        ..EvalConfig::default()
    };
    Dovado::new(sources, top, cs.space.clone(), config).unwrap()
}

/// Deterministic sample of in-space points: stride through each domain's
/// index range so corners and interior values are both covered.
fn sample_points(cs: &CaseStudy, count: u64) -> Vec<dovado::DesignPoint> {
    (0..count)
        .map(|i| {
            let indices: Vec<i64> = cs
                .space
                .params()
                .iter()
                .enumerate()
                .map(|(d, p)| {
                    let card = p.domain.cardinality();
                    ((i * 7 + d as u64 * 3 + 1) % card) as i64
                })
                .collect();
            cs.space.decode(&indices).unwrap()
        })
        .collect()
}

fn journal_bytes(tool: &Dovado) -> Vec<u8> {
    let mut buf = Vec::new();
    dovado::obs::write_jsonl(&tool.evaluator().snapshot(), &mut buf).unwrap();
    buf
}

#[test]
fn catalog_path_is_bitwise_identical_to_legacy_path() {
    for cs in casestudies::all() {
        let legacy = legacy_dovado(&cs);
        let cataloged = cs.dovado().unwrap();

        // Same store identity: a store written by the legacy construction
        // is readable by the catalog construction and vice versa.
        assert_eq!(
            legacy.evaluator().content_key(),
            cataloged.evaluator().content_key(),
            "{}: evaluator content key drifted",
            cs.name
        );

        for point in sample_points(&cs, 6) {
            let a = legacy.evaluate_point(&point).unwrap();
            let b = cataloged.evaluate_point(&point).unwrap();
            assert_eq!(a, b, "{}: evaluation drifted at {point}", cs.name);
            assert_eq!(
                a.fmax_mhz.to_bits(),
                b.fmax_mhz.to_bits(),
                "{}: fmax bits drifted at {point}",
                cs.name
            );
            assert_eq!(
                a.power_mw.to_bits(),
                b.power_mw.to_bits(),
                "{}: power bits drifted at {point}",
                cs.name
            );
        }

        assert_eq!(
            legacy.evaluator().trace_summary(),
            cataloged.evaluator().trace_summary(),
            "{}: trace counters drifted",
            cs.name
        );
        assert_eq!(
            journal_bytes(&legacy),
            journal_bytes(&cataloged),
            "{}: serialized journal drifted",
            cs.name
        );
    }
}

#[test]
fn catalog_orders_and_tops_match_the_legacy_wiring() {
    let expected = [
        ("cv32e40p-fifo", vec!["fifo_v3.sv"], "fifo_v3"),
        (
            "corundum-cpl-queue-manager",
            vec!["cpl_queue_manager.v"],
            "cpl_queue_manager",
        ),
        ("neorv32", vec!["neorv32_top.vhd"], "neorv32_top"),
        ("tirex", vec!["tirex_top.vhd"], "tirex_top"),
    ];
    for (cs, (name, files, top)) in casestudies::all().iter().zip(expected) {
        assert_eq!(cs.name, name);
        assert_eq!(cs.top, top);
        let order: Vec<&str> = cs.sources.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(order, files, "{name}: compile order drifted");
    }
}
