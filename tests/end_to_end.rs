//! End-to-end integration: every case study through the full pipeline —
//! parse → box → TCL frames → simulated Vivado → report scraping →
//! metrics — plus cross-cutting invariants the paper's flow relies on.

use dovado::casestudies::{all, corundum, cv32e40p, neorv32, tirex};
use dovado::{generate_box, DesignPoint, EvalConfig, FlowStep};
use dovado_fpga::ResourceKind;
use dovado_hdl::{parse_source, Language};

#[test]
fn every_case_study_evaluates_one_point() {
    for cs in all() {
        let tool = cs.dovado().unwrap_or_else(|e| panic!("{}: {e}", cs.name));
        // Take the midpoint of the space.
        let mid: Vec<i64> = cs
            .space
            .index_vars()
            .iter()
            .map(|v| (v.lo + v.hi) / 2)
            .collect();
        let point = cs.space.decode(&mid).unwrap();
        let eval = tool
            .evaluate_point(&point)
            .unwrap_or_else(|e| panic!("{}: {e}", cs.name));
        assert!(eval.utilization.get(ResourceKind::Lut) > 0, "{}", cs.name);
        assert!(
            eval.fmax_mhz > 50.0 && eval.fmax_mhz < 1000.0,
            "{}: {}",
            cs.name,
            eval.fmax_mhz
        );
        assert!(eval.tool_time_s > 0.0, "{}", cs.name);
    }
}

#[test]
fn box_sources_reparse_in_all_languages() {
    for cs in all() {
        let tool = cs.dovado().unwrap();
        let mid: Vec<i64> = cs
            .space
            .index_vars()
            .iter()
            .map(|v| (v.lo + v.hi) / 2)
            .collect();
        let point = cs.space.decode(&mid).unwrap();
        let boxed = generate_box(tool.evaluator().module(), &point).unwrap();
        let (file, diags) = parse_source(boxed.language, &boxed.source)
            .unwrap_or_else(|e| panic!("{}: box does not reparse: {e}", cs.name));
        assert!(!diags.has_errors(), "{}", cs.name);
        assert_eq!(file.modules[0].name, "box", "{}", cs.name);
        let inst = &file.instantiations[0];
        assert_eq!(inst.label, "BOXED", "{}", cs.name);
        assert_eq!(
            inst.target_simple().to_ascii_lowercase(),
            cs.top.to_ascii_lowercase(),
            "{}",
            cs.name
        );
        assert_eq!(inst.generics.len(), point.len(), "{}", cs.name);
    }
}

#[test]
fn synthesis_only_flow_is_cheaper_and_optimistic() {
    let cs = corundum::case_study();
    let point = DesignPoint::from_pairs(&[
        ("OP_TABLE_SIZE", 16),
        ("QUEUE_INDEX_WIDTH", 5),
        ("PIPELINE", 3),
    ]);
    let full = cs.dovado().unwrap().evaluate_point(&point).unwrap();
    let synth_only = cs
        .dovado_with(EvalConfig {
            part: cs.part.to_string(),
            step: FlowStep::Synthesis,
            ..Default::default()
        })
        .unwrap()
        .evaluate_point(&point)
        .unwrap();
    assert!(synth_only.tool_time_s < full.tool_time_s);
    assert!(synth_only.fmax_mhz > full.fmax_mhz);
}

#[test]
fn fmax_equation_consistent_across_the_stack() {
    // Eq. 1 must hold from the raw report numbers up to the Evaluation.
    let cs = cv32e40p::case_study();
    let tool = cs.dovado().unwrap();
    let e = tool
        .evaluate_point(&DesignPoint::from_pairs(&[("DEPTH", 256)]))
        .unwrap();
    let recomputed = 1000.0 / (e.period_ns - e.wns_ns);
    assert!((recomputed - e.fmax_mhz).abs() < 1e-9);
}

#[test]
fn determinism_across_fresh_instances() {
    let run = || {
        let cs = tirex::case_study();
        let tool = cs.dovado().unwrap();
        let p = DesignPoint::from_pairs(&[
            ("NCLUSTER", 2),
            ("STACK_SIZE", 32),
            ("IMEM_SIZE", 8),
            ("DMEM_SIZE", 16),
        ]);
        let e = tool.evaluate_point(&p).unwrap();
        (e.utilization, e.wns_ns)
    };
    assert_eq!(run(), run());
}

#[test]
fn different_devices_give_different_absolute_results() {
    let cs = tirex::case_study();
    let p = DesignPoint::from_pairs(&[
        ("NCLUSTER", 1),
        ("STACK_SIZE", 16),
        ("IMEM_SIZE", 8),
        ("DMEM_SIZE", 8),
    ]);
    let zu = cs.dovado().unwrap().evaluate_point(&p).unwrap();
    let k7 = cs
        .dovado_on(tirex::XC7K_PART)
        .unwrap()
        .evaluate_point(&p)
        .unwrap();
    assert!(zu.fmax_mhz > 1.8 * k7.fmax_mhz);
    // Same logical design: identical BRAM count on both devices.
    assert_eq!(
        zu.utilization.get(ResourceKind::Bram),
        k7.utilization.get(ResourceKind::Bram)
    );
}

#[test]
fn neorv32_vhdl_library_flow() {
    // The VHDL sources load under a named library (paper §III-A3's naming
    // constraint) and still elaborate.
    let cs = neorv32::case_study();
    let mut sources = cs.sources.clone();
    sources[0].library = Some("neorv32".into());
    let tool = dovado::Dovado::new(
        sources,
        &cs.top,
        cs.space.clone(),
        EvalConfig {
            part: cs.part.into(),
            ..Default::default()
        },
    )
    .unwrap();
    let e = tool
        .evaluate_point(&DesignPoint::from_pairs(&[
            ("MEM_INT_IMEM_SIZE", 4096),
            ("MEM_INT_DMEM_SIZE", 4096),
        ]))
        .unwrap();
    assert!(e.utilization.get(ResourceKind::Bram) >= 2);
}

#[test]
fn cached_reruns_are_cheap_and_identical() {
    let cs = cv32e40p::case_study();
    let tool = cs.dovado().unwrap();
    let p = DesignPoint::from_pairs(&[("DEPTH", 300)]);
    let first = tool.evaluate_point(&p).unwrap();
    let second = tool.evaluate_point(&p).unwrap();
    assert_eq!(first.utilization, second.utilization);
    assert_eq!(first.wns_ns, second.wns_ns);
    assert!(second.tool_time_s < 0.3 * first.tool_time_s);
}

#[test]
fn mixed_language_project() {
    // A SystemVerilog FIFO instantiated beside a Verilog module in the
    // same project: both languages flow through one evaluation.
    let fifo = dovado::HdlSource::new("fifo.sv", Language::SystemVerilog, cv32e40p::FIFO_SV);
    let side = dovado::HdlSource::new(
        "side.v",
        Language::Verilog,
        "module side_logic(input wire clk, output reg tick);\n\
         always @(posedge clk) tick <= ~tick;\nendmodule\n",
    );
    let space = dovado::ParameterSpace::new().with("DEPTH", dovado::Domain::range(2, 64));
    let tool =
        dovado::Dovado::new(vec![fifo, side], "fifo_v3", space, EvalConfig::default()).unwrap();
    let e = tool
        .evaluate_point(&DesignPoint::from_pairs(&[("DEPTH", 32)]))
        .unwrap();
    assert!(e.utilization.get(ResourceKind::Lut) > 0);
}
