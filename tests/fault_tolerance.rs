//! Fault-tolerance integration tests: the evaluator's retry loop must make
//! injected transient faults invisible to the optimizer, and failed runs
//! must never leak penalty vectors into the surrogate dataset.

use dovado::Domain;
use dovado::{
    DesignPoint, DovadoError, DseProblem, EvalConfig, Evaluator, HdlSource, Metric, MetricSet,
    ParameterSpace, RetryPolicy,
};
use dovado_eda::FaultPlan;
use dovado_fpga::ResourceKind;
use dovado_hdl::Language;
use dovado_moo::{nsga2, Nsga2Config, Termination};
use dovado_surrogate::ThresholdPolicy;
use proptest::prelude::*;

const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32
)(
    input  logic clk_i,
    input  logic [DATA_WIDTH-1:0] data_i,
    output logic [DATA_WIDTH-1:0] data_o
);
endmodule"#;

fn evaluator(config: EvalConfig) -> Evaluator {
    Evaluator::new(
        vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
        "fifo_v3",
        config,
    )
    .unwrap()
}

fn space() -> ParameterSpace {
    ParameterSpace::new().with(
        "DEPTH",
        Domain::Range {
            lo: 2,
            hi: 512,
            step: 2,
        },
    )
}

fn metrics() -> MetricSet {
    MetricSet::new(vec![
        Metric::Utilization(ResourceKind::Lut),
        Metric::Utilization(ResourceKind::Register),
        Metric::Fmax,
    ])
}

proptest! {
    /// Under *any* seeded plan of transient faults, retry either converges
    /// to metrics identical to the fault-free run or surfaces a
    /// transient-class `RetriesExhausted` — never silent wrong metrics,
    /// never a permanent-looking error.
    #[test]
    fn retry_converges_to_fault_free_metrics(
        seed in 0u64..1_000_000,
        synth_crash in 0.0f64..0.25,
        route_timeout in 0.0f64..0.25,
        report_garbled in 0.0f64..0.12,
        checkpoint_corrupt in 0.0f64..0.25,
        depth_step in 1i64..64,
    ) {
        let point = DesignPoint::from_pairs(&[("DEPTH", depth_step * 8)]);
        let truth = evaluator(EvalConfig::default()).evaluate(&point).unwrap();

        let faulty = evaluator(EvalConfig {
            faults: FaultPlan {
                seed,
                synth_crash,
                route_timeout,
                report_garbled,
                checkpoint_corrupt,
                ..FaultPlan::default()
            },
            retry: RetryPolicy { max_attempts: 12, ..Default::default() },
            ..Default::default()
        });
        match faulty.evaluate(&point) {
            Ok(e) => {
                prop_assert_eq!(e.utilization, truth.utilization);
                prop_assert_eq!(e.wns_ns, truth.wns_ns);
                prop_assert_eq!(e.period_ns, truth.period_ns);
                prop_assert_eq!(e.power_mw, truth.power_mw);
            }
            Err(err) => {
                prop_assert!(
                    matches!(err, DovadoError::RetriesExhausted { .. }),
                    "unexpected error shape: {}", err
                );
                prop_assert!(err.is_transient(), "exhaustion must stay transient: {}", err);
            }
        }
        // Every attempt is accounted for in the trace.
        let s = faulty.trace_summary();
        prop_assert!(s.attempts >= 1 && s.attempts <= 12);
        prop_assert_eq!(s.retries, s.attempts - 1);
    }
}

/// The headline acceptance run: a full NSGA-II exploration under a fault
/// plan where well over 20 % of tool attempts suffer a transient fault
/// must produce a Pareto front *identical* to the fault-free run, with a
/// surrogate dataset free of penalty sentinels.
#[test]
fn faulty_dse_matches_fault_free_front_and_dataset_stays_clean() {
    let surrogate_cfg = dovado::SurrogateConfig {
        policy: ThresholdPolicy::paper_default(),
        pretrain_samples: 20,
        ..Default::default()
    };
    let ga = Nsga2Config {
        pop_size: 10,
        seed: 7,
        ..Default::default()
    };
    let termination = Termination::Generations(5);

    let run = |faults: FaultPlan| {
        let ev = evaluator(EvalConfig {
            faults,
            retry: RetryPolicy {
                max_attempts: 8,
                ..Default::default()
            },
            ..Default::default()
        });
        let mut problem = DseProblem::new(ev, space(), metrics(), Some(&surrogate_cfg)).unwrap();
        let result = nsga2(&mut problem, &ga, &termination);
        let mut front: Vec<(Vec<i64>, Vec<f64>)> = result
            .sorted_pareto()
            .into_iter()
            .map(|ind| (ind.genome.clone(), ind.raw.clone()))
            .collect();
        front.sort_by(|a, b| a.0.cmp(&b.0));
        (front, problem)
    };

    let (clean_front, clean_problem) = run(FaultPlan::none());
    let faulty_plan = FaultPlan {
        seed: 0xFA17,
        synth_crash: 0.10,
        synth_timeout: 0.08,
        route_crash: 0.08,
        route_timeout: 0.10,
        report_truncated: 0.02,
        report_garbled: 0.02,
        checkpoint_corrupt: 0.10,
        ..FaultPlan::default()
    };
    let (faulty_front, faulty_problem) = run(faulty_plan);

    // The faults really fired at scale: at least 20 % of tool attempts
    // failed transiently and were retried.
    let s = faulty_problem.evaluator().trace_summary();
    assert!(s.transient_failures > 0, "no faults injected: {s:?}");
    assert!(
        s.transient_failures as f64 >= 0.2 * (s.attempts - s.retries) as f64,
        "fault rate below 20%: {s:?}"
    );
    assert_eq!(
        faulty_problem.stats.transient_failures, 0,
        "retry budget was exhausted; pick a friendlier seed"
    );

    // Identical Pareto front, point for point, metric for metric.
    assert_eq!(clean_front, faulty_front);

    // No penalty sentinel ever entered either surrogate dataset.
    for problem in [&clean_problem, &faulty_problem] {
        let dataset = problem.surrogate().unwrap().dataset();
        assert!(!dataset.is_empty());
        let max = dataset
            .outputs()
            .iter()
            .flat_map(|o| o.iter().copied())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max.is_finite() && max < 1e9,
            "penalty entry recorded: max {max}"
        );
    }

    // The clean run saw no failures at all.
    assert_eq!(clean_problem.stats.failures, 0);
    assert_eq!(
        clean_problem.evaluator().trace_summary().transient_failures,
        0
    );
}

/// Exhausted retries reach the fitness layer as transient failures and are
/// counted as such — penalized for the optimizer, but never recorded.
#[test]
fn exhausted_retries_are_penalized_but_not_recorded() {
    let ev = evaluator(EvalConfig {
        // Synthesis always crashes: every evaluation exhausts its budget.
        faults: FaultPlan {
            synth_crash: 1.0,
            ..FaultPlan::default()
        },
        retry: RetryPolicy {
            max_attempts: 2,
            ..Default::default()
        },
        ..Default::default()
    });
    let surrogate_cfg = dovado::SurrogateConfig {
        policy: ThresholdPolicy::paper_default(),
        pretrain_samples: 0,
        ..Default::default()
    };
    let mut problem = DseProblem::new(ev, space(), metrics(), Some(&surrogate_cfg)).unwrap();

    use dovado_moo::Problem;
    let values = problem.evaluate(&[10]);
    // The optimizer sees the penalty vector…
    assert!(values.iter().any(|&v| v >= 1e9), "{values:?}");
    // …but the failure is classified transient and the dataset stays empty.
    assert_eq!(problem.stats.transient_failures, 1);
    assert_eq!(problem.stats.permanent_failures, 0);
    assert_eq!(problem.stats.failures, 1);
    assert!(problem.surrogate().unwrap().dataset().is_empty());
}
