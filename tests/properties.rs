//! Property-based tests over the core data structures and invariants,
//! spanning all workspace crates.

use dovado::csv;
use dovado::{fmax_mhz, DesignPoint, Domain, ParameterSpace};
use dovado_eda::tcl::expr::eval_expr;
use dovado_moo::{fast_non_dominated_sort, hypervolume, non_dominated_indices, Individual};
use dovado_surrogate::{
    loo_mse, BandwidthSelector, Bounds, Dataset, Kernel, NadarayaWatson, ThresholdPolicy,
};
use proptest::prelude::*;

// ---------------------------------------------------------------- space --

fn domain_strategy() -> impl Strategy<Value = Domain> {
    prop_oneof![
        (any::<i32>(), 1i64..500, 1i64..7).prop_map(|(lo, n, step)| {
            let lo = lo as i64 % 10_000;
            Domain::Range {
                lo,
                hi: lo + (n - 1) * step,
                step,
            }
        }),
        (0u32..20, 0u32..20).prop_map(|(a, b)| Domain::PowerOfTwo {
            min_exp: a.min(b),
            max_exp: a.max(b),
        }),
        proptest::collection::btree_set(-1000i64..1000, 1..12)
            .prop_map(|s| Domain::Explicit(s.into_iter().collect())),
        Just(Domain::Bool),
    ]
}

proptest! {
    #[test]
    fn domain_index_value_roundtrip(d in domain_strategy()) {
        prop_assert!(d.validate().is_ok());
        let n = d.cardinality();
        prop_assert!(n >= 1);
        for idx in 0..n.min(64) {
            let v = d.value(idx).expect("index in range");
            prop_assert_eq!(d.index_of(v), Some(idx));
        }
        prop_assert!(d.value(n).is_none());
    }

    #[test]
    fn domain_values_strictly_increasing(d in domain_strategy()) {
        let n = d.cardinality().min(64);
        let vals: Vec<i64> = (0..n).map(|i| d.value(i).unwrap()).collect();
        prop_assert!(vals.windows(2).all(|w| w[0] < w[1]), "{:?}", vals);
    }

    #[test]
    fn space_decode_encode_roundtrip(
        d1 in domain_strategy(),
        d2 in domain_strategy(),
        seed in 0u64..1000,
    ) {
        let space = ParameterSpace::new().with("A", d1).with("B", d2);
        let vars = space.index_vars();
        let g: Vec<i64> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| v.lo + ((seed as i64 + i as i64 * 31) % (v.hi - v.lo + 1)))
            .collect();
        let point = space.decode(&g).expect("genome in range");
        prop_assert_eq!(space.encode(&point).unwrap(), g);
    }
}

// ------------------------------------------------------------ surrogate --

proptest! {
    #[test]
    fn nw_prediction_bounded_by_dataset_outputs(
        pts in proptest::collection::btree_map(0i64..1000, -100.0f64..100.0, 2..30),
        query in 0i64..1000,
        bw in 0.01f64..2.0,
    ) {
        let mut ds = Dataset::new(Bounds::new(vec![(0, 1000)]), 1);
        for (x, y) in &pts {
            ds.insert(vec![*x], vec![*y]);
        }
        let lo = pts.values().cloned().fold(f64::INFINITY, f64::min);
        let hi = pts.values().cloned().fold(f64::NEG_INFINITY, f64::max);
        let nw = NadarayaWatson { kernel: Kernel::Gaussian, bandwidth: bw };
        let y = nw.predict(&ds, &[query]).unwrap()[0];
        prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9, "{y} outside [{lo}, {hi}]");
    }

    #[test]
    fn adaptive_gamma_nonnegative_and_bounded(
        pts in proptest::collection::btree_set(0i64..1000, 2..40),
    ) {
        let mut ds = Dataset::new(Bounds::new(vec![(0, 1000)]), 1);
        for x in &pts {
            ds.insert(vec![*x], vec![0.0]);
        }
        let g = ThresholdPolicy::paper_default().gamma(&ds);
        prop_assert!(g >= 0.0);
        // Γ is a mean of normalized nearest-neighbour distances ≤ 1.
        prop_assert!(g <= 1.0 + 1e-12, "gamma {g}");
    }

    #[test]
    fn phi_zero_iff_exact_point(
        pts in proptest::collection::btree_set(0i64..1000, 1..20),
        q in 0i64..1000,
    ) {
        let mut ds = Dataset::new(Bounds::new(vec![(0, 1000)]), 1);
        for x in &pts {
            ds.insert(vec![*x], vec![1.0]);
        }
        let phi = dovado_surrogate::phi_n(&ds, &[q], 1).unwrap();
        if pts.contains(&q) {
            prop_assert_eq!(phi, 0.0);
        } else {
            prop_assert!(phi > 0.0);
        }
    }

    #[test]
    fn truncated_prediction_bitwise_exact_when_k_covers_dataset(
        pts in proptest::collection::btree_map(0i64..1000, -100.0f64..100.0, 2..30),
        query in 0i64..1000,
        bw in 0.01f64..2.0,
        extra in 0usize..4,
    ) {
        // With k ≥ M the truncated estimator keeps every candidate and
        // re-accumulates them in row order — so it must reproduce the
        // exact path bit for bit, not merely approximately.
        let mut ds = Dataset::new(Bounds::new(vec![(0, 1000)]), 1);
        for (x, y) in &pts {
            ds.insert(vec![*x], vec![*y]);
        }
        let nw = NadarayaWatson { kernel: Kernel::Gaussian, bandwidth: bw };
        let exact = nw.predict(&ds, &[query]).unwrap()[0];
        let trunc = nw.predict_topk(&ds, &[query], ds.len() + extra).unwrap()[0];
        prop_assert_eq!(exact.to_bits(), trunc.to_bits());
    }

    #[test]
    fn truncated_prediction_within_truncation_bound(
        pts in proptest::collection::btree_map(0i64..1000, -100.0f64..100.0, 4..40),
        query in 0i64..1000,
        bw in 0.05f64..2.0,
        k in 1usize..12,
    ) {
        // Dropping the M−k farthest points can move a weighted average by
        // at most range·(M−k)/M: every dropped weight is bounded by the
        // smallest kept one (the kernel is monotone in distance). The
        // bandwidth floor keeps the Gaussian weights far from the
        // underflow fallback so the bound applies on both paths.
        let mut ds = Dataset::new(Bounds::new(vec![(0, 1000)]), 1);
        for (x, y) in &pts {
            ds.insert(vec![*x], vec![*y]);
        }
        let m = ds.len();
        let lo = pts.values().cloned().fold(f64::INFINITY, f64::min);
        let hi = pts.values().cloned().fold(f64::NEG_INFINITY, f64::max);
        let nw = NadarayaWatson { kernel: Kernel::Gaussian, bandwidth: bw };
        let exact = nw.predict(&ds, &[query]).unwrap()[0];
        let trunc = nw.predict_topk(&ds, &[query], k).unwrap()[0];
        let dropped = m.saturating_sub(k) as f64;
        let bound = (hi - lo) * dropped / m as f64 + 1e-9;
        prop_assert!(
            (exact - trunc).abs() <= bound,
            "|{exact} - {trunc}| > {bound} (M = {m}, k = {k})"
        );
    }

    #[test]
    fn incremental_loocv_matches_recomputed_bitwise(
        pts in proptest::collection::btree_map(
            (0i64..1000, 0i64..50), -100.0f64..100.0, 4..60),
        splits in proptest::collection::vec(1usize..8, 1..6),
        bw in 0.01f64..2.0,
    ) {
        // A selector that extends its distance matrix across arbitrary
        // growth batches must score bandwidths bitwise like one built
        // fresh from the final dataset at every step.
        let mut ds = Dataset::new(Bounds::new(vec![(0, 1000), (0, 50)]), 1);
        let mut persistent = BandwidthSelector::new();
        let mut batch = Vec::new();
        let mut sizes = splits.iter().cycle();
        let mut pending = *sizes.next().unwrap();
        for ((x, y), v) in &pts {
            ds.insert(vec![*x, *y], vec![*v]);
            pending -= 1;
            if pending == 0 {
                pending = *sizes.next().unwrap();
                batch.push(ds.len());
                let inc = persistent.loo_mse(&ds, Kernel::Gaussian, bw, 64);
                let fresh = loo_mse(&ds, Kernel::Gaussian, bw);
                prop_assert_eq!(
                    inc.map(f64::to_bits),
                    fresh.map(f64::to_bits),
                    "diverged after batches {:?}", batch
                );
            }
        }
        let inc = persistent.loo_mse(&ds, Kernel::Gaussian, bw, 64);
        let fresh = loo_mse(&ds, Kernel::Gaussian, bw);
        prop_assert_eq!(inc.map(f64::to_bits), fresh.map(f64::to_bits));
    }
}

// ------------------------------------------------------------------ moo --

fn objectives_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, 2..4), 1..25).prop_filter(
        "uniform arity",
        |v| {
            let n = v[0].len();
            v.iter().all(|o| o.len() == n)
        },
    )
}

proptest! {
    #[test]
    fn front_zero_matches_nondominated_filter(objs in objectives_strategy()) {
        let mut pop: Vec<Individual> = objs
            .iter()
            .map(|o| Individual::new(vec![], o.clone(), o.clone()))
            .collect();
        let fronts = fast_non_dominated_sort(&mut pop);
        let f0: std::collections::BTreeSet<usize> = fronts[0].iter().cloned().collect();
        // Every front-0 member is undominated.
        for &i in &f0 {
            for (j, other) in pop.iter().enumerate() {
                if i != j {
                    prop_assert!(!other.dominates(&pop[i]));
                }
            }
        }
        // Every non-front-0 member is dominated by someone.
        for (i, ind) in pop.iter().enumerate() {
            if !f0.contains(&i) {
                prop_assert!(pop.iter().any(|o| o.dominates(ind)));
            }
        }
        // The filter agrees up to duplicate handling.
        let filt = non_dominated_indices(&pop);
        for &i in &filt {
            prop_assert!(f0.contains(&i));
        }
    }

    #[test]
    fn fronts_partition_population(objs in objectives_strategy()) {
        let mut pop: Vec<Individual> = objs
            .iter()
            .map(|o| Individual::new(vec![], o.clone(), o.clone()))
            .collect();
        let fronts = fast_non_dominated_sort(&mut pop);
        let total: usize = fronts.iter().map(Vec::len).sum();
        prop_assert_eq!(total, pop.len());
        let mut seen = std::collections::BTreeSet::new();
        for f in &fronts {
            for &i in f {
                prop_assert!(seen.insert(i), "index {i} in two fronts");
            }
        }
    }

    #[test]
    fn hypervolume_monotone_and_bounded(
        objs in proptest::collection::vec(
            proptest::collection::vec(0.0f64..10.0, 2..3), 1..12),
        extra in proptest::collection::vec(0.0f64..10.0, 2),
    ) {
        let m = objs[0].len();
        let objs: Vec<Vec<f64>> =
            objs.iter().filter(|o| o.len() == m).cloned().collect();
        let reference = vec![10.0; m];
        let hv = hypervolume(&objs, &reference);
        prop_assert!(hv >= 0.0);
        prop_assert!(hv <= 10f64.powi(m as i32) + 1e-9);
        // Adding a point never shrinks the dominated volume.
        let mut bigger = objs.clone();
        bigger.push(extra[..m].to_vec());
        let hv2 = hypervolume(&bigger, &reference);
        prop_assert!(hv2 + 1e-9 >= hv, "{hv2} < {hv}");
    }
}

// ----------------------------------------------------------------- misc --

proptest! {
    #[test]
    fn fmax_eq1_positive_for_physical_inputs(
        period in 0.1f64..100.0,
        delay in 0.01f64..100.0,
    ) {
        // WNS = period - delay; Eq. 1 then gives 1000/delay.
        let wns = period - delay;
        let f = fmax_mhz(period, wns).unwrap();
        prop_assert!((f - 1000.0 / delay).abs() < 1e-6);
        prop_assert!(f > 0.0);
    }

    #[test]
    fn csv_roundtrips_arbitrary_fields(
        rows in proptest::collection::vec(
            proptest::collection::vec("[ -~]{0,20}", 3), 1..8),
    ) {
        let mut w = csv::CsvWriter::new();
        w.header(&["a", "b", "c"]);
        for r in &rows {
            // Skip fully empty trailing rows (parser cannot distinguish).
            w.row(&[r[0].clone(), r[1].clone(), r[2].clone()]);
        }
        let parsed = csv::parse(w.as_str());
        prop_assert_eq!(parsed.len(), rows.len() + 1);
        for (got, want) in parsed[1..].iter().zip(&rows) {
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn tcl_expr_matches_reference_arithmetic(
        a in -1000i64..1000,
        b in -1000i64..1000,
        c in 1i64..100,
    ) {
        let src = format!("({a} + {b}) * {c}");
        let expect = (a + b) * c;
        prop_assert_eq!(eval_expr(&src).unwrap(), expect.to_string());

        let cmp = format!("{a} < {b}");
        prop_assert_eq!(eval_expr(&cmp).unwrap(), ((a < b) as i64).to_string());

        let div = format!("{a} / {c}");
        prop_assert_eq!(eval_expr(&div).unwrap(), a.div_euclid(c).to_string());
    }

    #[test]
    fn tcl_parser_never_panics(src in "[ -~\\n]{0,200}") {
        let _ = dovado_eda::tcl::parse_script(&src);
    }

    #[test]
    fn tcl_expr_never_panics(src in "[ -~]{0,80}") {
        let _ = dovado_eda::tcl::expr::eval_expr(&src);
    }

    #[test]
    fn report_parsers_never_panic(src in "[ -~\\n|]{0,300}") {
        let _ = dovado_eda::report::parse_utilization_report(&src);
        let _ = dovado_eda::report::parse_wns(&src);
        let _ = dovado_eda::report::parse_period(&src);
        let _ = dovado_eda::power::parse_power_mw(&src);
    }

    #[test]
    fn lexers_never_panic(src in "[ -~\\n]{0,200}") {
        let _ = dovado_hdl::vhdl::lexer::lex(&src);
        let _ = dovado_hdl::verilog::lexer::lex(&src);
    }

    #[test]
    fn parsers_never_panic(src in "[ -~\\n]{0,200}") {
        let _ = dovado_hdl::parse_source(dovado_hdl::Language::Vhdl, &src);
        let _ = dovado_hdl::parse_source(dovado_hdl::Language::Verilog, &src);
    }

    #[test]
    fn box_generation_reparses_for_any_point(
        depth in 1i64..1_000_000,
        width in 1i64..4096,
    ) {
        let (f, _) = dovado_hdl::parse_source(
            dovado_hdl::Language::Verilog,
            "module m #(parameter DEPTH = 8, parameter DATA_WIDTH = 32)\
             (input logic clk_i); endmodule",
        )
        .unwrap();
        let point = DesignPoint::from_pairs(&[("DEPTH", depth), ("DATA_WIDTH", width)]);
        let boxed = dovado::generate_box(&f.modules[0], &point).unwrap();
        let (bf, diags) = dovado_hdl::parse_source(boxed.language, &boxed.source).unwrap();
        prop_assert!(!diags.has_errors());
        let inst = &bf.instantiations[0];
        let env: std::collections::BTreeMap<String, i64> = Default::default();
        prop_assert_eq!(inst.generics[0].1.eval(&env).unwrap(), depth);
        prop_assert_eq!(inst.generics[1].1.eval(&env).unwrap(), width);
    }
}
