//! Parser robustness against realistic, messy RTL — the "wide variety of
//! declaration styles" (§III-A1) plus the body constructs the scanners must
//! skip without losing their place.

use dovado_hdl::{parse_source, Direction, Language};
use std::collections::BTreeMap;

const NEORV32_STYLE_PACKAGE: &str = r#"
-- Package in the Neorv32 style: constants, records, functions.
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

package neorv32_package is

  -- Architecture constants
  constant data_width_c : natural := 32;
  constant def_rst_val_c : std_ulogic := '0';
  constant mem_size_c    : natural := 16#4000#;

  -- Internal interface record
  type bus_req_t is record
    addr : std_ulogic_vector(31 downto 0);
    data : std_ulogic_vector(31 downto 0);
    we   : std_ulogic;
  end record;

  -- Component declaration with generics
  component neorv32_cpu
    generic (
      HW_THREAD_ID : natural := 0;
      CPU_BOOT_ADDR : std_ulogic_vector(31 downto 0) := x"00000000"
    );
    port (
      clk_i  : in  std_ulogic;
      rstn_i : in  std_ulogic
    );
  end component;

  function index_size_f(input : natural) return natural;

end neorv32_package;

package body neorv32_package is

  function index_size_f(input : natural) return natural is
  begin
    for i in 0 to natural'high loop
      if (2**i >= input) then
        return i;
      end if;
    end loop;
    return 0;
  end function index_size_f;

end neorv32_package;
"#;

#[test]
fn vhdl_package_with_records_and_functions() {
    let (f, d) = parse_source(Language::Vhdl, NEORV32_STYLE_PACKAGE).unwrap();
    assert!(!d.has_errors(), "{:?}", d.iter().collect::<Vec<_>>());
    assert_eq!(f.packages.len(), 1);
    assert_eq!(f.packages[0].name, "neorv32_package");
    // No phantom modules out of the package internals.
    assert!(f.modules.is_empty());
}

const GENERATE_HEAVY_VHDL: &str = r#"
library ieee;
use ieee.std_logic_1164.all;

entity ring_buffer is
  generic (
    LANES : positive := 4;
    DEPTH : positive := 64;
    WIDTH : positive := 8
  );
  port (
    clk     : in  std_logic;
    arst_n  : in  std_logic;
    din     : in  std_logic_vector(LANES*WIDTH-1 downto 0);
    dout    : out std_logic_vector(LANES*WIDTH-1 downto 0);
    lvl     : out std_logic_vector(7 downto 0)
  );
end ring_buffer;

architecture rtl of ring_buffer is
  type lane_array_t is array (0 to LANES-1) of std_logic_vector(WIDTH-1 downto 0);
  signal lanes_q : lane_array_t;
begin
  gen_lanes: for i in 0 to LANES-1 generate
    lane_proc: process (clk, arst_n)
    begin
      if arst_n = '0' then
        lanes_q(i) <= (others => '0');
      elsif rising_edge(clk) then
        lanes_q(i) <= din((i+1)*WIDTH-1 downto i*WIDTH);
      end if;
    end process lane_proc;
    dout((i+1)*WIDTH-1 downto i*WIDTH) <= lanes_q(i);
  end generate gen_lanes;

  cond_gen: if DEPTH > 32 generate
    lvl <= (others => '1');
  end generate cond_gen;
end architecture rtl;
"#;

#[test]
fn vhdl_generate_blocks_skipped_cleanly() {
    let (f, d) = parse_source(Language::Vhdl, GENERATE_HEAVY_VHDL).unwrap();
    assert!(!d.has_errors(), "{:?}", d.iter().collect::<Vec<_>>());
    let m = f.module("ring_buffer").unwrap();
    assert_eq!(m.parameters.len(), 3);
    assert_eq!(m.ports.len(), 5);
    // Symbolic product width resolves under a binding.
    let mut env = BTreeMap::new();
    env.insert("LANES".to_string(), 4i64);
    env.insert("WIDTH".to_string(), 8i64);
    assert_eq!(m.port("din").unwrap().ty.bit_width(&env).unwrap(), 32);
    assert_eq!(
        f.architectures,
        vec![("rtl".to_string(), "ring_buffer".to_string())]
    );
}

const MESSY_SV: &str = r#"
`timescale 1ns/1ps
`define DEBUG_LEVEL 2

package axi_pkg;
  typedef enum logic [1:0] { OKAY, EXOKAY, SLVERR, DECERR } resp_e;
  localparam int unsigned StrbWidth = 8;
endpackage : axi_pkg

import axi_pkg::*;

module axi_buffer
  import axi_pkg::*;
#(
    parameter int unsigned AddrWidth  = 32,
    parameter int unsigned DataWidth  = 64,
    parameter bit          PassThru   = 1'b0,
    parameter int unsigned NumSlots   = (DataWidth > 32) ? 4 : 2,
    localparam int unsigned SlotBits  = $clog2(NumSlots)
) (
    input  logic                 clk_i,
    input  logic                 rst_ni,
    input  logic [AddrWidth-1:0] awaddr_i,
    input  logic [DataWidth-1:0] wdata_i,
    input  logic [DataWidth/8-1:0] wstrb_i,
    output logic [1:0]           bresp_o,
    output logic                 full_o
);

  // function with input args (must not become ports)
  function automatic logic [SlotBits-1:0] next_slot(input logic [SlotBits-1:0] cur);
    next_slot = cur + 1'b1;
  endfunction

  logic [SlotBits-1:0] wr_slot_q;
  logic [DataWidth-1:0] slots_q [NumSlots];

  generate
    if (PassThru) begin : g_pass
      assign bresp_o = 2'b00;
    end else begin : g_buf
      always_ff @(posedge clk_i or negedge rst_ni) begin
        if (!rst_ni) begin
          wr_slot_q <= '0';
        end else begin
          wr_slot_q <= next_slot(wr_slot_q);
          slots_q[wr_slot_q] <= wdata_i;
        end
      end
      assign bresp_o = 2'b01;
    end
  endgenerate

  assign full_o = &wr_slot_q;

endmodule : axi_buffer
"#;

#[test]
fn systemverilog_with_package_imports_and_generates() {
    let (f, d) = parse_source(Language::SystemVerilog, MESSY_SV).unwrap();
    assert!(!d.has_errors(), "{:?}", d.iter().collect::<Vec<_>>());
    assert_eq!(f.packages.len(), 1);
    assert_eq!(f.packages[0].name, "axi_pkg");
    let m = f.module("axi_buffer").unwrap();
    // 4 free parameters + 1 localparam.
    assert_eq!(m.free_parameters().count(), 4);
    assert!(m.parameter("SlotBits").unwrap().local);
    // The function's `input` argument did not leak into the port list.
    assert_eq!(m.ports.len(), 7);
    assert!(m.port("cur").is_none());
    assert_eq!(m.port("wstrb_i").unwrap().direction, Direction::In);
    // Width with division resolves.
    let mut env = BTreeMap::new();
    env.insert("DataWidth".to_string(), 64i64);
    assert_eq!(m.port("wstrb_i").unwrap().ty.bit_width(&env).unwrap(), 8);
    // Ternary localparam evaluates through bind_parameters.
    let bound = dovado_eda::bind_parameters(m, &BTreeMap::new()).unwrap();
    assert_eq!(bound["NumSlots"], 4);
    assert_eq!(bound["SlotBits"], 2);
}

const LEGACY_VERILOG: &str = r#"
/* 1995-style module with non-ANSI everything. */
module shift_reg (clk, rst, en, d, q, tap);
  parameter LEN = 16;
  parameter TAP_POS = 7;

  input clk;
  input rst;
  input en;
  input d;
  output q;
  output tap;

  reg [LEN-1:0] sr;

  always @(posedge clk or posedge rst)
    if (rst)
      sr <= {LEN{1'b0}};
    else if (en)
      sr <= {sr[LEN-2:0], d};

  assign q   = sr[LEN-1];
  assign tap = sr[TAP_POS];

endmodule
"#;

#[test]
fn legacy_verilog_non_ansi() {
    let (f, d) = parse_source(Language::Verilog, LEGACY_VERILOG).unwrap();
    assert!(!d.has_errors(), "{:?}", d.iter().collect::<Vec<_>>());
    let m = f.module("shift_reg").unwrap();
    assert_eq!(m.language, Language::Verilog);
    assert_eq!(m.parameters.len(), 2);
    assert_eq!(m.ports.len(), 6);
    assert_eq!(m.port("q").unwrap().direction, Direction::Out);
    assert_eq!(m.port("clk").unwrap().direction, Direction::In);
    assert_eq!(m.clock_port().unwrap().name, "clk");
}

#[test]
fn all_fixtures_evaluate_through_the_flow() {
    // Every fixture module must survive box generation + the full flow via
    // the generic architecture model.
    use dovado::{DesignPoint, Domain, Dovado, EvalConfig, HdlSource, ParameterSpace};
    let cases: Vec<(&str, Language, &str, ParameterSpace, DesignPoint)> = vec![
        (
            "ring_buffer",
            Language::Vhdl,
            GENERATE_HEAVY_VHDL,
            ParameterSpace::new().with("DEPTH", Domain::range(8, 256)),
            DesignPoint::from_pairs(&[("DEPTH", 64)]),
        ),
        (
            "shift_reg",
            Language::Verilog,
            LEGACY_VERILOG,
            ParameterSpace::new().with("LEN", Domain::range(4, 64)),
            DesignPoint::from_pairs(&[("LEN", 32)]),
        ),
        (
            "axi_buffer",
            Language::SystemVerilog,
            MESSY_SV,
            ParameterSpace::new().with("DataWidth", Domain::Explicit(vec![32, 64, 128])),
            DesignPoint::from_pairs(&[("DataWidth", 64)]),
        ),
    ];
    for (top, lang, src, space, point) in cases {
        let tool = Dovado::new(
            vec![HdlSource::new(format!("{top}.x"), lang, src)],
            top,
            space,
            EvalConfig::default(),
        )
        .unwrap_or_else(|e| panic!("{top}: {e}"));
        let eval = tool
            .evaluate_point(&point)
            .unwrap_or_else(|e| panic!("{top}: {e}"));
        assert!(eval.fmax_mhz > 10.0, "{top}: {}", eval.fmax_mhz);
        assert!(eval.power_mw > 0.0, "{top}");
    }
}
