//! The crash/restart harness: a persistent exploration interrupted by a
//! simulated host crash and resumed from its journal must be
//! bitwise-identical to the same exploration run without interruption —
//! same Pareto front (genomes and raw objective bits), same fitness
//! counters, same surrogate dataset — under both a single worker thread
//! and a capped parallel pool.
//!
//! The crash generation is randomized through the fault-plan seed; CI
//! sweeps it via the `DOVADO_CRASH_SEED` environment variable.

use dovado::persist::read_journal;
use dovado::{
    Domain, Dovado, DovadoError, DseConfig, DseReport, EvalConfig, HdlSource, Metric, MetricSet,
    ParameterSpace, PersistConfig, SurrogateConfig,
};
use dovado_eda::FaultPlan;
use dovado_fpga::ResourceKind;
use dovado_hdl::Language;
use dovado_moo::{Nsga2Config, Termination};
use std::path::{Path, PathBuf};

const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32
)(input logic clk_i, input logic [DATA_WIDTH-1:0] data_i);
endmodule"#;

const GENERATIONS: u32 = 6;

/// Seed for the randomized crash position; CI sweeps this.
fn crash_seed() -> u64 {
    std::env::var("DOVADO_CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "dovado-resume-{tag}-{}-{}",
        crash_seed(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn tool(faults: FaultPlan) -> Dovado {
    let space = ParameterSpace::new()
        .with(
            "DEPTH",
            Domain::Range {
                lo: 2,
                hi: 512,
                step: 2,
            },
        )
        .with("DATA_WIDTH", Domain::Explicit(vec![8, 16, 32]));
    let sources = vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)];
    let config = EvalConfig {
        faults,
        ..EvalConfig::default()
    };
    // `DOVADO_BACKEND=mock` reruns the whole harness on the scripted mock
    // backend (CI does this): crash/resume must be backend-independent,
    // since everything above the `ToolBackend` boundary is shared.
    if std::env::var("DOVADO_BACKEND").as_deref() == Ok("mock") {
        let backend = std::sync::Arc::new(dovado::MockBackend::with_faults(
            config.seed,
            config.faults.clone(),
        ));
        Dovado::with_backend(sources, "fifo_v3", space, config, backend).unwrap()
    } else {
        Dovado::new(sources, "fifo_v3", space, config).unwrap()
    }
}

/// Optional distributed-fleet size for the whole harness; CI sweeps the
/// crash tests across a worker fleet with `DOVADO_WORKERS=4`.
fn env_workers() -> Option<usize> {
    std::env::var("DOVADO_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
}

/// A [`Dovado`] whose evaluations run on a thread-backed worker fleet
/// speaking the real wire protocol (same simulated tool behind it).
fn fleet_tool(faults: FaultPlan, workers: usize) -> Dovado {
    let space = ParameterSpace::new()
        .with(
            "DEPTH",
            Domain::Range {
                lo: 2,
                hi: 512,
                step: 2,
            },
        )
        .with("DATA_WIDTH", Domain::Explicit(vec![8, 16, 32]));
    let sources = vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)];
    let config = EvalConfig {
        faults,
        ..EvalConfig::default()
    };
    let kind = if std::env::var("DOVADO_BACKEND").as_deref() == Ok("mock") {
        "mock"
    } else {
        "vivado-sim"
    };
    let backend = std::sync::Arc::new(
        dovado::worker::thread_fleet(&format!("{kind}:{}", config.seed), workers)
            .expect("thread fleet must spawn")
            .with_fault_plan(config.faults.clone()),
    );
    Dovado::with_backend(sources, "fifo_v3", space, config, backend).unwrap()
}

fn cfg(surrogate: bool, parallel: bool) -> DseConfig {
    DseConfig {
        explorer: Default::default(),
        algorithm: Nsga2Config {
            pop_size: 10,
            seed: 21,
            ..Default::default()
        },
        termination: Termination::Generations(GENERATIONS),
        metrics: MetricSet::new(vec![
            Metric::Utilization(ResourceKind::Lut),
            Metric::Utilization(ResourceKind::Register),
            Metric::Fmax,
        ]),
        surrogate: surrogate.then(|| SurrogateConfig {
            pretrain_samples: 15,
            ..Default::default()
        }),
        parallel,
        jobs: None,
        workers: env_workers(),
    }
}

/// Optional entry-count bound on the crash harness's evaluation store;
/// CI sweeps the bounded-store crash test via `DOVADO_STORE_CAPACITY`.
fn env_store_capacity() -> usize {
    std::env::var("DOVADO_STORE_CAPACITY")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

/// Runs a persistent exploration to completion, resuming from the journal
/// after every simulated host crash. Returns the final report and the
/// number of interruptions survived.
fn run_until_complete(tool: &Dovado, cfg: &DseConfig, dir: &Path) -> (DseReport, u32) {
    run_until_complete_with(tool, cfg, PersistConfig::new(dir))
}

/// [`run_until_complete`] with an explicit persistence config (e.g. a
/// capacity-bounded store).
fn run_until_complete_with(
    tool: &Dovado,
    cfg: &DseConfig,
    start: PersistConfig,
) -> (DseReport, u32) {
    let resume = PersistConfig {
        resume: true,
        ..start.clone()
    };
    let mut crashes = 0u32;
    let mut outcome = tool.explore_persistent(cfg, &start);
    loop {
        match outcome {
            Ok(report) => return (report, crashes),
            Err(DovadoError::Interrupted { generation }) => {
                crashes += 1;
                assert!(
                    crashes <= 4 * GENERATIONS,
                    "crash/resume loop failed to make progress (last crash at \
                     generation {generation})"
                );
                outcome = tool.explore_persistent(cfg, &resume);
            }
            Err(e) => panic!("unexpected exploration error: {e}"),
        }
    }
}

/// Bitwise report comparison: Pareto front (genomes and raw objective
/// bits) plus every deterministic run counter.
fn assert_reports_bitwise(a: &DseReport, b: &DseReport) {
    assert_eq!(a.pareto.len(), b.pareto.len(), "front sizes differ");
    for (x, y) in a.pareto.iter().zip(&b.pareto) {
        assert_eq!(x.point, y.point);
        for (u, v) in x.values.iter().zip(&y.values) {
            assert_eq!(u.to_bits(), v.to_bits(), "{:?} vs {:?}", x.values, y.values);
        }
    }
    assert_eq!(a.generations, b.generations);
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(a.tool_runs, b.tool_runs);
    assert_eq!(a.cached_runs, b.cached_runs);
    assert_eq!(a.estimates, b.estimates);
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.transient_failures, b.transient_failures);
    assert_eq!(a.permanent_failures, b.permanent_failures);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.selection, b.selection, "selection records diverged");
}

/// Whole-run observability totals: every counter the spine folds must be
/// interruption- and schedule-independent. Kept separate from
/// [`assert_reports_bitwise`] because warm-store reruns legitimately
/// start from a zero trace while reproducing the same report.
fn assert_traces_match(a: &DseReport, b: &DseReport) {
    assert_eq!(a.trace.attempts, b.trace.attempts, "attempts diverged");
    assert_eq!(a.trace.retries, b.trace.retries, "retries diverged");
    assert_eq!(a.trace.transient_failures, b.trace.transient_failures);
    assert_eq!(a.trace.permanent_failures, b.trace.permanent_failures);
    assert_eq!(
        a.trace.cache_hits, b.trace.cache_hits,
        "cache hits diverged"
    );
    assert_eq!(
        a.trace.store_hits, b.trace.store_hits,
        "store hits diverged"
    );
    assert_eq!(a.trace.backoff_s.to_bits(), b.trace.backoff_s.to_bits());
    assert_eq!(a.spine.summary, b.spine.summary, "spine totals diverged");
    assert_eq!(a.spine.runs, b.spine.runs, "spine run counts diverged");
}

/// The journals both runs leave behind hold the full optimizer state;
/// everything that determines future behavior must be bitwise-identical.
/// (The configuration fingerprints differ — the crashed run carries a
/// fault plan — so they are not compared.)
fn assert_final_journals_match(baseline_dir: &Path, crashed_dir: &Path) {
    let a = read_journal(&PersistConfig::new(baseline_dir).journal_path()).unwrap();
    let b = read_journal(&PersistConfig::new(crashed_dir).journal_path()).unwrap();
    assert!(a.complete && b.complete);
    assert_eq!(a.stats, b.stats, "fitness counters diverged");
    assert_eq!(
        a.snapshot.kind(),
        b.snapshot.kind(),
        "explorer kind diverged"
    );
    assert_eq!(a.snapshot.generation(), b.snapshot.generation());
    assert_eq!(a.snapshot.evaluations(), b.snapshot.evaluations());
    // The tagged snapshot carries the explorer's full state (RNG,
    // population, archive, …); one comparison covers every variant.
    // External costs in the history are the exception: they track tool
    // spend, which legitimately varies with store capacity and repeated
    // post-crash work, so they are zeroed before comparing.
    let sans_cost = |mut s: dovado_moo::ExplorerSnapshot| {
        for h in s.history_mut() {
            h.external_cost = 0.0;
        }
        s
    };
    assert_eq!(
        sans_cost(a.snapshot),
        sans_cost(b.snapshot),
        "explorer state diverged"
    );
    assert_eq!(a.selection, b.selection, "selection records diverged");
    match (&a.surrogate, &b.surrogate) {
        (None, None) => {}
        (Some(sa), Some(sb)) => {
            assert_eq!(sa.dataset_csv, sb.dataset_csv, "dataset diverged");
            assert_eq!(sa.bandwidth.to_bits(), sb.bandwidth.to_bits());
            assert_eq!(sa.gamma.to_bits(), sb.gamma.to_bits());
            assert_eq!(sa.inserts_since_retrain, sb.inserts_since_retrain);
            assert_eq!(sa.stats, sb.stats);
        }
        _ => panic!("one journal has surrogate state, the other does not"),
    }
}

/// A crash plan that fires only the host crash: every other fault
/// probability stays zero, so tool answers are bitwise those of a
/// fault-free run.
fn crash_plan(host_crash: f64) -> FaultPlan {
    FaultPlan {
        seed: crash_seed(),
        host_crash,
        ..FaultPlan::none()
    }
}

/// [`run_until_complete`] for `--explorer auto`, where a crash can land
/// *inside the selection race* — before any journal exists. Such an
/// attempt leaves no journal behind, so the retry must start fresh (and
/// re-race); once a journal exists, retries resume from it (and must
/// replay the journaled decision instead of re-racing). Returns the
/// report, total interruptions, and how many landed inside the race.
fn run_until_complete_auto(tool: &Dovado, cfg: &DseConfig, dir: &Path) -> (DseReport, u32, u32) {
    let start = PersistConfig::new(dir);
    let resume = PersistConfig {
        resume: true,
        ..start.clone()
    };
    let mut crashes = 0u32;
    let mut race_crashes = 0u32;
    loop {
        let journaled = start.journal_path().exists();
        let outcome = tool.explore_persistent(cfg, if journaled { &resume } else { &start });
        match outcome {
            Ok(report) => return (report, crashes, race_crashes),
            Err(DovadoError::Interrupted { generation }) => {
                crashes += 1;
                // A boundary crash is drawn only after the snapshot is
                // durable, so "interrupted with no journal on disk" is
                // exactly a crash inside the selection race.
                if !journaled && !start.journal_path().exists() {
                    assert_eq!(generation, 0, "race crashes happen before generation 1");
                    race_crashes += 1;
                }
                assert!(
                    crashes <= 8 * GENERATIONS,
                    "crash/resume loop failed to make progress (last crash at \
                     generation {generation})"
                );
            }
            Err(e) => panic!("unexpected exploration error: {e}"),
        }
    }
}

fn auto_cfg() -> DseConfig {
    DseConfig {
        explorer: dovado::dse::Explorer::Auto,
        ..cfg(false, false)
    }
}

#[test]
fn crash_inside_the_selection_race_replays_the_journaled_decision() {
    let cfg = auto_cfg();
    let base_dir = fresh_dir("race-base");
    let (baseline, crashes) = run_until_complete(&tool(FaultPlan::none()), &cfg, &base_dir);
    assert_eq!(crashes, 0, "fault-free baseline must not be interrupted");
    let sel = baseline
        .selection
        .clone()
        .expect("auto must journal its decision");
    assert!(sel.lowfi_runs > 0, "a 768-point 3-objective space races");

    // A fixed seed whose first host-crash draw fires: the very first
    // persistent attempt dies inside the race, before any journal or
    // probe checkpoint exists, so the retry re-races from a cold
    // backend and must land on the same decision bitwise.
    let plan = FaultPlan {
        seed: 1,
        host_crash: 0.75,
        ..FaultPlan::none()
    };
    let crash_dir = fresh_dir("race-crash");
    let (resumed, crashes, race_crashes) = run_until_complete_auto(&tool(plan), &cfg, &crash_dir);
    assert!(
        race_crashes >= 1,
        "the fixed seed must crash at least once inside the race"
    );
    assert!(crashes >= race_crashes);
    assert_eq!(
        resumed.spine.lowfi_runs, sel.lowfi_runs,
        "resumed run re-raced instead of replaying the journaled decision"
    );
    assert_reports_bitwise(&baseline, &resumed);
    assert_traces_match(&baseline, &resumed);
    assert_final_journals_match(&base_dir, &crash_dir);
}

#[test]
fn randomized_selection_race_crashes_converge_bitwise() {
    // The env-seeded sweep companion: wherever `DOVADO_CRASH_SEED`
    // lands the interruptions — inside the race, at boundaries, or
    // nowhere — the completed auto run is bitwise the fault-free one.
    let cfg = auto_cfg();
    let base_dir = fresh_dir("race-rand-base");
    let (baseline, _) = run_until_complete(&tool(FaultPlan::none()), &cfg, &base_dir);

    let crash_dir = fresh_dir("race-rand-crash");
    let (resumed, _, _) = run_until_complete_auto(&tool(crash_plan(0.5)), &cfg, &crash_dir);

    assert_reports_bitwise(&baseline, &resumed);
    assert_traces_match(&baseline, &resumed);
    assert_final_journals_match(&base_dir, &crash_dir);
}

#[test]
fn crash_at_every_boundary_then_resume_matches_uninterrupted() {
    let cfg = cfg(false, false);
    let base_dir = fresh_dir("every-base");
    let (baseline, crashes) = run_until_complete(&tool(FaultPlan::none()), &cfg, &base_dir);
    assert_eq!(crashes, 0, "fault-free baseline must not be interrupted");

    // Probability 1: the run is interrupted at *every* generation
    // boundary; each resume still makes one generation of progress
    // because the crash is drawn only after the snapshot is durable.
    let crash_dir = fresh_dir("every-crash");
    let (resumed, crashes) = run_until_complete(&tool(crash_plan(1.0)), &cfg, &crash_dir);
    assert_eq!(crashes, GENERATIONS, "one interruption per boundary");

    assert_reports_bitwise(&baseline, &resumed);
    assert_traces_match(&baseline, &resumed);
    assert_final_journals_match(&base_dir, &crash_dir);
}

#[test]
fn randomized_crash_generation_matches_uninterrupted() {
    let cfg = cfg(false, false);
    let base_dir = fresh_dir("rand-base");
    let (baseline, _) = run_until_complete(&tool(FaultPlan::none()), &cfg, &base_dir);

    let crash_dir = fresh_dir("rand-crash");
    let (resumed, _) = run_until_complete(&tool(crash_plan(0.5)), &cfg, &crash_dir);

    assert_reports_bitwise(&baseline, &resumed);
    assert_traces_match(&baseline, &resumed);
    assert_final_journals_match(&base_dir, &crash_dir);
}

#[test]
fn surrogate_state_survives_crash_and_resume() {
    let cfg = cfg(true, false);
    let base_dir = fresh_dir("sur-base");
    let (baseline, _) = run_until_complete(&tool(FaultPlan::none()), &cfg, &base_dir);
    assert!(baseline.estimates > 0, "surrogate must actually engage");

    let crash_dir = fresh_dir("sur-crash");
    let (resumed, crashes) = run_until_complete(&tool(crash_plan(0.7)), &cfg, &crash_dir);
    assert!(
        crashes > 0,
        "seed {} produced no interruption",
        crash_seed()
    );

    assert_reports_bitwise(&baseline, &resumed);
    assert_traces_match(&baseline, &resumed);
    // Dataset, bandwidth, Γ and the amortization phase all round-trip.
    assert_final_journals_match(&base_dir, &crash_dir);
}

#[test]
fn crash_between_reselect_and_next_insert_matches_uninterrupted() {
    // With `reselect_every: 1` every record reselects the bandwidth, so a
    // crash at a generation boundary always lands *between* a reselection
    // and the next insert — the exact window where the controller's
    // incremental LOO-CV scratch and the dataset's neighbor index hold
    // derived state that is NOT journaled. The restored controller starts
    // with an empty selector and a tree rebuilt from the CSV; if either
    // rebuild could diverge from the warm in-memory state, the next
    // reselection's bandwidth bits (asserted below via the final
    // journals) would catch it. Crash probability 1 exercises the window
    // at every boundary.
    let cfg = DseConfig {
        surrogate: Some(SurrogateConfig {
            pretrain_samples: 15,
            reselect_every: 1,
            ..Default::default()
        }),
        ..cfg(true, false)
    };
    let base_dir = fresh_dir("resel-base");
    let (baseline, crashes) = run_until_complete(&tool(FaultPlan::none()), &cfg, &base_dir);
    assert_eq!(crashes, 0);
    assert!(baseline.estimates > 0, "surrogate must actually engage");

    let crash_dir = fresh_dir("resel-crash");
    let (resumed, crashes) = run_until_complete(&tool(crash_plan(1.0)), &cfg, &crash_dir);
    assert_eq!(crashes, GENERATIONS, "one interruption per boundary");

    assert_reports_bitwise(&baseline, &resumed);
    assert_traces_match(&baseline, &resumed);
    assert_final_journals_match(&base_dir, &crash_dir);
}

#[test]
fn crash_resume_is_identical_under_one_and_four_jobs() {
    let cfg = cfg(false, true);
    let run_with_jobs = |jobs: usize, tag: &str| {
        let dir = fresh_dir(tag);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(jobs)
            .build()
            .unwrap();
        let (report, _) = pool.install(|| run_until_complete(&tool(crash_plan(1.0)), &cfg, &dir));
        (report, dir)
    };
    let base_dir = fresh_dir("jobs-base");
    let (baseline, _) = run_until_complete(&tool(FaultPlan::none()), &cfg, &base_dir);
    let (one, one_dir) = run_with_jobs(1, "jobs-1");
    let (four, four_dir) = run_with_jobs(4, "jobs-4");

    assert_reports_bitwise(&baseline, &one);
    assert_reports_bitwise(&baseline, &four);
    assert_traces_match(&one, &four);
    assert_final_journals_match(&one_dir, &four_dir);
}

#[test]
fn resume_with_a_smaller_fleet_is_bitwise_identical() {
    let plain = cfg(false, false);
    let base_dir = fresh_dir("fleet-base");
    let (baseline, _) = run_until_complete(&tool(FaultPlan::none()), &plain, &base_dir);

    let dir = fresh_dir("fleet-crash");
    let start = PersistConfig::new(&dir);
    let resume = PersistConfig {
        resume: true,
        ..start.clone()
    };
    let four = DseConfig {
        workers: Some(4),
        ..plain.clone()
    };
    let one = DseConfig {
        workers: Some(1),
        ..plain.clone()
    };

    // Crash a 4-worker fleet at the first generation boundary...
    match fleet_tool(crash_plan(1.0), 4).explore_persistent(&four, &start) {
        Err(DovadoError::Interrupted { .. }) => {}
        other => panic!("4-worker run must be interrupted first, got {other:?}"),
    }

    // ...and finish the exploration on a single worker, still crashing at
    // every remaining boundary. The journal fingerprint deliberately
    // excludes `workers` (like `parallel` and `jobs`), so the fleet-size
    // change is accepted on resume — and because traces are
    // schedule-independent, the completed run is bitwise the baseline.
    let tool_one = fleet_tool(crash_plan(1.0), 1);
    let mut crashes = 1u32;
    let resumed = loop {
        match tool_one.explore_persistent(&one, &resume) {
            Ok(report) => break report,
            Err(DovadoError::Interrupted { generation }) => {
                crashes += 1;
                assert!(
                    crashes <= 4 * GENERATIONS,
                    "crash/resume loop stuck at generation {generation}"
                );
            }
            Err(e) => panic!("unexpected exploration error: {e}"),
        }
    };
    assert_eq!(crashes, GENERATIONS, "one interruption per boundary");

    assert_reports_bitwise(&baseline, &resumed);
    assert_traces_match(&baseline, &resumed);
    assert_final_journals_match(&base_dir, &dir);
}

#[test]
fn capacity_bounded_store_crash_resume_stays_correct() {
    // Crash/resume against a store that is too small to hold the whole
    // run (`DOVADO_STORE_CAPACITY`, default 8 entries for ~60 distinct
    // points). Evictions turn resume-time store hits back into tool
    // runs, so the flow counters legitimately diverge from the
    // unbounded baseline — but an eviction is only ever a *miss*: the
    // Pareto front, the optimizer trajectory, and the final journal
    // must stay bitwise those of the uninterrupted unbounded run.
    let cfg = cfg(false, false);
    let base_dir = fresh_dir("cap-base");
    let (baseline, _) = run_until_complete(&tool(FaultPlan::none()), &cfg, &base_dir);

    let dir = fresh_dir("cap-crash");
    let start = PersistConfig {
        store_capacity: Some(env_store_capacity()),
        ..PersistConfig::new(&dir)
    };
    let (resumed, crashes) = run_until_complete_with(&tool(crash_plan(1.0)), &cfg, start);
    assert_eq!(crashes, GENERATIONS, "one interruption per boundary");

    assert_eq!(baseline.pareto.len(), resumed.pareto.len());
    for (x, y) in baseline.pareto.iter().zip(&resumed.pareto) {
        assert_eq!(x.point, y.point);
        for (u, v) in x.values.iter().zip(&y.values) {
            assert_eq!(u.to_bits(), v.to_bits(), "objective bits diverged");
        }
    }
    assert_eq!(baseline.generations, resumed.generations);
    assert_eq!(baseline.evaluations, resumed.evaluations);
    assert_final_journals_match(&base_dir, &dir);
}

#[test]
fn warm_store_rerun_performs_zero_tool_runs() {
    let cfg = cfg(false, false);
    let dir = fresh_dir("warm");
    let (cold, _) = run_until_complete(&tool(FaultPlan::none()), &cfg, &dir);

    // Second run over the same directory (fresh tool instance, so its
    // flow trace starts at zero): every evaluation is answered from the
    // store; not a single tool attempt happens.
    let warm = tool(FaultPlan::none())
        .explore_persistent(&cfg, &PersistConfig::new(&dir))
        .unwrap();
    assert_eq!(warm.trace.attempts, 0, "warm run must not touch the tool");
    assert!(warm.trace.store_hits > 0);
    assert_reports_bitwise(&cold, &warm);
}
