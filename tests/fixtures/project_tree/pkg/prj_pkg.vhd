-- Shared constants for the fixture project.
package prj_pkg is
  constant PRJ_DATA_WIDTH : natural := 32;
end package prj_pkg;
