-- Deferred details of prj_pkg live here: editing this file must change
-- the catalog fingerprint and miss the evaluation store.
package body prj_pkg is
  -- deferred constant bodies would go here
end package body prj_pkg;
