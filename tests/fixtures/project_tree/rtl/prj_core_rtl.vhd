-- Default architecture of prj_core.
architecture rtl of prj_core is
  signal stage : std_logic_vector(31 downto 0);
begin
  hold: process (clk_i)
  begin
    if rising_edge(clk_i) then
      stage <= data_i;
    end if;
  end process hold;
  data_o <= stage;
end architecture rtl;
