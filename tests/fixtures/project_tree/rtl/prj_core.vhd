-- Fixture core: VHDL entity with an explorable depth generic. Its two
-- architectures live in separate files (rtl/prj_core_rtl.vhd and
-- rtl/prj_core_fast.vhd) to exercise secondary-unit cataloging.
library ieee;
use ieee.std_logic_1164.all;
use work.prj_pkg.all;

entity prj_core is
  generic (
    DEPTH : natural := 8
  );
  port (
    clk_i  : in  std_logic;
    rst_ni : in  std_logic;
    data_i : in  std_logic_vector(31 downto 0);
    data_o : out std_logic_vector(31 downto 0)
  );
end entity prj_core;
