// Fixture top: plain Verilog instantiating the VHDL core — the catalog
// orders this file after rtl/prj_core.vhd and infers it as the top.
module prj_top #(
    parameter DEPTH = 8
) (
    input  wire        clk,
    input  wire        rst_n,
    input  wire [31:0] data_i,
    output wire [31:0] data_o
);

  prj_core #(
      .DEPTH(DEPTH)
  ) u_core (
      .clk_i (clk),
      .rst_ni(rst_n),
      .data_i(data_i),
      .data_o(data_o)
  );

endmodule
