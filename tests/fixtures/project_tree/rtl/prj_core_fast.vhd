-- Second architecture of the same entity: the catalog must record both
-- secondary units and order each after the entity declaration.
architecture fast of prj_core is
begin
  data_o <= data_i;
end architecture fast;
