//! Golden-file tests: checked-in Vivado-style report fixtures under
//! `tests/fixtures/` pin both directions of the report interface — the
//! writers must emit exactly these bytes, and the scrapers must recover
//! exactly these numbers. A separate golden entry pins the on-disk
//! format of the persistent evaluation store: any change to the entry
//! envelope or payload encoding breaks these tests and forces a
//! `STORE_FORMAT_VERSION` bump.

use dovado::persist::{decode_evaluation, encode_evaluation};
use dovado::Evaluation;
use dovado_eda::netlist::Netlist;
use dovado_eda::place_route::ImplResult;
use dovado_eda::report::{
    parse_period, parse_utilization_report, parse_wns, write_timing_report,
    write_utilization_report,
};
use dovado_eda::{EvalKey, EvalStore, STORE_FORMAT_VERSION};
use dovado_fpga::{Catalog, ResourceKind, ResourceSet};
use std::fs;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn utilization_fixture_parses_to_exact_counts() {
    let used = parse_utilization_report(&fixture("utilization_xc7k70t.rpt")).unwrap();
    assert_eq!(used.get(ResourceKind::Lut), 3417);
    assert_eq!(used.get(ResourceKind::Register), 5213);
    assert_eq!(used.get(ResourceKind::Bram), 12);
    assert_eq!(used.get(ResourceKind::Dsp), 7);
    assert_eq!(used.get(ResourceKind::Carry), 204);
    assert_eq!(used.get(ResourceKind::Io), 41);
    assert_eq!(used.get(ResourceKind::Bufg), 2);
    // Series-7 part: no URAM row, so the count stays zero.
    assert_eq!(used.get(ResourceKind::Uram), 0);
}

#[test]
fn timing_fixtures_parse_to_exact_values() {
    let neg = fixture("timing_negative_wns.rpt");
    assert_eq!(parse_wns(&neg).unwrap().to_bits(), (-4.125f64).to_bits());
    assert_eq!(parse_period(&neg).unwrap().to_bits(), 1.0f64.to_bits());

    let pos = fixture("timing_positive_wns.rpt");
    assert_eq!(parse_wns(&pos).unwrap().to_bits(), 0.75f64.to_bits());
    assert_eq!(parse_period(&pos).unwrap().to_bits(), 5.0f64.to_bits());
}

#[test]
fn fmax_recovered_from_golden_report() {
    // Eq. 1: Fmax = 1000 / (T − WNS) = 1000 / (1 + 4.125) ≈ 195.122.
    let neg = fixture("timing_negative_wns.rpt");
    let fmax = 1000.0 / (parse_period(&neg).unwrap() - parse_wns(&neg).unwrap());
    assert!((fmax - 195.121_951).abs() < 1e-6, "{fmax}");
}

#[test]
fn noisy_report_with_unknown_rows_still_parses() {
    let used = parse_utilization_report(&fixture("utilization_noisy.rpt")).unwrap();
    assert_eq!(used.get(ResourceKind::Lut), 120);
    assert_eq!(used.get(ResourceKind::Register), 87);
    assert_eq!(used.get(ResourceKind::Uram), 3);
}

#[test]
fn report_writers_match_golden_bytes() {
    let part = Catalog::builtin().resolve("xc7k70t").unwrap().clone();
    let used = ResourceSet::from_pairs(&[
        (ResourceKind::Lut, 3417),
        (ResourceKind::Register, 5213),
        (ResourceKind::Bram, 12),
        (ResourceKind::Dsp, 7),
        (ResourceKind::Carry, 204),
        (ResourceKind::Io, 41),
        (ResourceKind::Bufg, 2),
    ]);
    assert_eq!(
        write_utilization_report("fifo_v3_box", &used, &part),
        fixture("utilization_xc7k70t.rpt"),
        "utilization writer drifted from its golden fixture"
    );

    let mut nl = Netlist::empty("fifo_v3_box");
    nl.crit_path = "data_i[12] -> mem_reg[12]".into();
    let neg = ImplResult {
        netlist: nl,
        utilization: 0.2,
        crit_delay_ns: 5.125,
        wns_ns: -4.125,
        period_ns: 1.0,
        runtime_s: 1.0,
        log: String::new(),
    };
    assert_eq!(
        write_timing_report("fifo_v3_box", &neg),
        fixture("timing_negative_wns.rpt"),
        "timing writer drifted from its golden fixture"
    );
}

/// The evaluation the store-entry fixture was written from.
fn golden_evaluation() -> Evaluation {
    let mut utilization = ResourceSet::zero();
    utilization.set(ResourceKind::Lut, 3417);
    utilization.set(ResourceKind::Register, 5213);
    utilization.set(ResourceKind::Bram, 12);
    Evaluation {
        utilization,
        wns_ns: -0.125,
        period_ns: 1.0,
        fmax_mhz: 888.888,
        power_mw: 120.5,
        tool_time_s: 654.25,
    }
}

#[test]
fn store_entry_format_is_pinned_to_version() {
    let text = fixture("store_entry_v1.entry");
    // The envelope header carries the current format version; bump the
    // constant and regenerate the fixture together.
    assert_eq!(
        text.lines().next().unwrap(),
        format!("dovado-store {STORE_FORMAT_VERSION}")
    );

    // A store that receives the fixture bytes under the right key reads
    // them back as a clean hit with the exact original values.
    let dir = std::env::temp_dir().join(format!("dovado-golden-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let store = EvalStore::open(&dir).unwrap();
    let key = EvalKey::from_parts(&["golden", "entry"]);
    assert_eq!(
        key.hex(),
        "028c2189016c471072a9e3a36a448370",
        "key fn drifted"
    );
    let entry = store.entry_path(&key);
    fs::create_dir_all(entry.parent().unwrap()).unwrap();
    fs::write(&entry, &text).unwrap();
    let e = decode_evaluation(&store.get(&key).unwrap()).unwrap();
    let g = golden_evaluation();
    assert_eq!(e.utilization, g.utilization);
    for (a, b) in [
        (e.wns_ns, g.wns_ns),
        (e.period_ns, g.period_ns),
        (e.fmax_mhz, g.fmax_mhz),
        (e.power_mw, g.power_mw),
        (e.tool_time_s, g.tool_time_s),
    ] {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // And a fresh put of the same evaluation produces the fixture
    // byte-for-byte — encoding changes must come with a version bump.
    store.put(&key, &encode_evaluation(&g)).unwrap();
    assert_eq!(fs::read_to_string(store.entry_path(&key)).unwrap(), text);
    let _ = fs::remove_dir_all(&dir);
}
