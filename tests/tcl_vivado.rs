//! Integration between the script frames the core generates and the
//! simulated tool's TCL engine: the whole paper workflow driven as pure
//! TCL text, exactly like the real Dovado drives the real Vivado.

use dovado::frames::{fill, read_sources_script, SourceEntry, IMPL_FRAME, SYNTH_FRAME};
use dovado_eda::{report, EdaError, FlowState, VivadoSim};
use dovado_hdl::Language;

const FIFO_SV: &str = "module fifo_v3 #(parameter DEPTH = 8, parameter DATA_WIDTH = 32)\
                       (input logic clk_i); endmodule";

fn filled_synth(sources: &str, generic: &str) -> String {
    let script = fill(
        SYNTH_FRAME,
        &[
            ("PROJECT", "dovado"),
            ("PART", "xc7k70tfbv676-1"),
            ("READ_SOURCES", sources),
            ("TOP", "fifo_v3"),
            ("INCREMENTAL", ""),
            ("SYNTH_DIRECTIVE", "Default"),
            ("PERIOD", "1.000"),
            ("CLOCK", "clk_i"),
            ("UTIL_RPT", "util.rpt"),
            ("TIMING_RPT", "timing.rpt"),
            ("POWER_RPT", "power.rpt"),
            ("SYNTH_DCP", "post_synth.dcp"),
        ],
    )
    .unwrap();
    // Inject the design point the way synth_design -generic does.
    script.replace(
        "synth_design -top fifo_v3",
        &format!("synth_design -top fifo_v3 -generic {generic}"),
    )
}

#[test]
fn frames_drive_the_full_flow() {
    let mut sim = VivadoSim::new(1);
    sim.write_file("src/fifo.sv", FIFO_SV);
    let entries = vec![SourceEntry {
        path: "src/fifo.sv".into(),
        language: Language::SystemVerilog,
        library: None,
        has_packages: false,
    }];
    let synth = filled_synth(read_sources_script(&entries).trim_end(), "DEPTH=64");
    sim.eval(&synth).unwrap();
    assert_eq!(sim.state(), FlowState::Synthesized);

    let impl_script = fill(
        IMPL_FRAME,
        &[
            ("IMPL_DIRECTIVE", "Default"),
            ("UTIL_RPT", "util_impl.rpt"),
            ("TIMING_RPT", "timing_impl.rpt"),
            ("POWER_RPT", "power_impl.rpt"),
            ("IMPL_DCP", "post_route.dcp"),
        ],
    )
    .unwrap();
    sim.eval(&impl_script).unwrap();
    assert_eq!(sim.state(), FlowState::Routed);

    // Reports land in the virtual filesystem and scrape back.
    let util = report::parse_utilization_report(sim.read_file("util_impl.rpt").unwrap()).unwrap();
    assert!(util.get(dovado_fpga::ResourceKind::Register) > 2000);
    let wns = report::parse_wns(sim.read_file("timing_impl.rpt").unwrap()).unwrap();
    assert!(wns < 0.0);
    // Checkpoints were written.
    assert!(sim.read_file("post_synth.dcp").is_some());
    assert!(sim.read_file("post_route.dcp").is_some());
}

#[test]
fn tcl_variables_and_logic_steer_the_flow() {
    // A script that reacts to results: if WNS is negative, rerun synthesis
    // with the performance directive — the kind of closed loop the TCL
    // interface exists for.
    let mut sim = VivadoSim::new(2);
    sim.write_file("src/fifo.sv", FIFO_SV);
    let (_, output) = sim
        .eval_with_output(
            r#"
create_project p -part xc7k70tfbv676-1
read_verilog -sv src/fifo.sv
synth_design -top fifo_v3 -generic DEPTH=512
create_clock -period 1.000 [get_ports clk_i]
route_design
set t 1.0
if {1} { puts "routed" }
"#,
        )
        .unwrap();
    assert!(output.contains("routed"));
    let wns = sim.impl_result().unwrap().wns_ns;
    assert!(wns < 0.0);

    // Second phase: escalate the directive from TCL.
    sim.eval(
        "synth_design -top fifo_v3 -generic DEPTH=512 -directive PerformanceOptimized\n\
         route_design -directive Explore",
    )
    .unwrap();
    let improved = sim.impl_result().unwrap().wns_ns;
    assert!(
        improved > wns,
        "explore directive must improve slack: {improved} vs {wns}"
    );
}

#[test]
fn foreach_sweep_over_generics() {
    // A parameter sweep written directly in TCL: evaluates three depths in
    // one session and prints one frequency per run.
    let mut sim = VivadoSim::new(3);
    sim.write_file("src/fifo.sv", FIFO_SV);
    let (_, output) = sim
        .eval_with_output(
            r#"
create_project sweep -part xc7k70tfbv676-1
read_verilog -sv src/fifo.sv
create_clock -period 1.000 [get_ports clk_i]
foreach depth {8 64 512} {
  synth_design -top fifo_v3 -generic DEPTH=$depth
  route_design
  puts "depth=$depth done"
}
"#,
        )
        .unwrap();
    assert_eq!(output.matches("done").count(), 3);
}

#[test]
fn sv_package_ordering_matters_to_the_frame_generator() {
    let entries = vec![
        SourceEntry {
            path: "src/top.sv".into(),
            language: Language::SystemVerilog,
            library: None,
            has_packages: false,
        },
        SourceEntry {
            path: "src/types_pkg.sv".into(),
            language: Language::SystemVerilog,
            library: None,
            has_packages: true,
        },
        SourceEntry {
            path: "src/neorv32_package.vhd".into(),
            language: Language::Vhdl,
            library: Some("neorv32".into()),
            has_packages: true,
        },
    ];
    let script = read_sources_script(&entries);
    let lines: Vec<&str> = script.lines().collect();
    // The SV package file is hoisted to the front…
    assert!(lines[0].contains("types_pkg.sv"));
    // …and the VHDL library flag is preserved.
    assert!(script.contains("read_vhdl -library neorv32 src/neorv32_package.vhd"));
}

#[test]
fn tool_errors_surface_as_tcl_errors() {
    let mut sim = VivadoSim::new(4);
    // Reading a missing file fails the script with a useful message.
    let err = sim
        .eval("create_project p -part xc7k70tfbv676-1\nread_verilog ghost.v")
        .unwrap_err();
    assert!(matches!(err, EdaError::FileNotFound(_)));
    // An unknown command names itself.
    let err2 = sim.eval("definitely_not_a_command").unwrap_err();
    assert!(err2.to_string().contains("definitely_not_a_command"));
}

#[test]
fn command_substitution_feeds_reports_into_variables() {
    let mut sim = VivadoSim::new(5);
    sim.write_file("src/fifo.sv", FIFO_SV);
    let (_, output) = sim
        .eval_with_output(
            r#"
create_project p -part xc7k70tfbv676-1
read_verilog -sv src/fifo.sv
synth_design -top fifo_v3 -generic DEPTH=32
create_clock -period 1.000 [get_ports clk_i]
route_design
set rpt [report_timing_summary]
puts "report captured: [string length $rpt] chars"
"#,
        )
        .unwrap();
    // The timing report is hundreds of characters long.
    let n: usize = output
        .trim()
        .rsplit(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("length printed");
    assert!(n > 200, "captured report too short: {n}");
}
