//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no crates-io access, so the workspace vendors
//! the slice of `rand` it actually uses: [`StdRng`] (xoshiro256** seeded by
//! SplitMix64), the [`Rng`]/[`SeedableRng`] traits, uniform ranges, and
//! [`seq::SliceRandom`]. Streams are deterministic per seed, which is all
//! the workspace relies on (it never assumes upstream rand's exact values).

#![warn(missing_docs)]

/// Types that can be drawn uniformly from an [`Rng`] via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (uniform_u128(rng, span)) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (uniform_u128(rng, span)) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Unbiased draw in `[0, span)` (Lemire-style rejection kept simple).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Rejection sampling over the top 64 bits keeps the bias below 2^-64
    // for any span the workspace uses; loop exits almost immediately.
    let zone = u128::from(u64::MAX) + 1;
    let limit = zone - zone % span;
    loop {
        let v = u128::from(rng.next_u64());
        if v < limit {
            return v % span;
        }
    }
}

/// The raw generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over the type's natural domain;
    /// `f64` is uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// Returns the raw xoshiro256** state for snapshotting.
        ///
        /// Together with [`StdRng::from_state`] this lets callers persist a
        /// generator mid-stream and resume it bitwise-identically — the
        /// foundation of crash-safe resumable exploration.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        ///
        /// The restored generator continues the exact stream the snapshotted
        /// one would have produced.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling and random element selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (None when empty).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn snapshot_resumes_exact_stream() {
        let mut a = StdRng::seed_from_u64(0xDEAD);
        for _ in 0..17 {
            let _: u64 = a.gen();
        }
        let snap = a.state();
        let ahead: Vec<u64> = (0..100).map(|_| a.gen::<u64>()).collect();
        let mut b = StdRng::from_state(snap);
        let resumed: Vec<u64> = (0..100).map(|_| b.gen::<u64>()).collect();
        assert_eq!(ahead, resumed);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = r.gen_range(0..10usize);
            assert!(u < 10);
            let f = r.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
        assert!([1u32, 2, 3].choose(&mut r).is_some());
        assert!(Vec::<u32>::new().choose(&mut r).is_none());
    }
}
