//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            reason: reason.into(),
        }
    }

    /// Type-erases the strategy (for heterogeneous `prop_oneof!` arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: String,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 candidates in a row",
            self.reason
        );
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union; panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Draws from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, broad magnitude spread.
        (rng.next_f64() - 0.5) * 2e9
    }
}

/// Strategy over a type's full domain.
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.int_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.int_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String strategy from a tiny regex subset: a literal, or one character
/// class `[a-z…]` with an optional `{m,n}`/`{n}` repetition.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_char_class(self) {
            Some((chars, lo, hi)) => {
                let len = rng.int_in(lo as i128, hi as i128) as usize;
                (0..len)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parses `[<set>]{m,n}` / `[<set>]{n}` / `[<set>]` into (alphabet, m, n).
fn parse_char_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let tail = &rest[close + 1..];

    let mut chars = Vec::new();
    let class_chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < class_chars.len() {
        if i + 2 < class_chars.len() && class_chars[i + 1] == '-' {
            let (a, b) = (class_chars[i], class_chars[i + 2]);
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class_chars[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }

    if tail.is_empty() {
        return Some((chars, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((chars, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (10i64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.5f64..1.5).generate(&mut rng);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn map_filter_compose() {
        let mut rng = TestRng::new(2);
        let s = (0i64..100)
            .prop_map(|v| v * 2)
            .prop_filter("nonzero", |v| *v != 0);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v != 0);
        }
    }

    #[test]
    fn union_hits_all_arms() {
        let mut rng = TestRng::new(3);
        let s = Union::new(vec![Just(1i32).boxed(), Just(2i32).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn string_regex_subset() {
        let mut rng = TestRng::new(4);
        let s: &'static str = "[a-c]{2,5}";
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..=5).contains(&v.len()), "{v:?}");
            assert!(v.chars().all(|c| ('a'..='c').contains(&c)), "{v:?}");
        }
        let printable: &'static str = "[ -~]{0,20}";
        for _ in 0..100 {
            let v = Strategy::generate(&printable, &mut rng);
            assert!(v.len() <= 20);
            assert!(v.chars().all(|c| (' '..='~').contains(&c)), "{v:?}");
        }
    }

    #[test]
    fn literal_string_passes_through() {
        let mut rng = TestRng::new(5);
        let s: &'static str = "hello";
        assert_eq!(Strategy::generate(&s, &mut rng), "hello");
    }
}
