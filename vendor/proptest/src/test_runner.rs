//! Deterministic case driver for the vendored proptest subset.

use std::fmt;

/// A failed proptest assertion (carried out of the case closure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Number of cases per property (env `PROPTEST_CASES`, default 64).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// Deterministic base seed per test name (FNV-1a over the name).
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The generator strategies draw from (SplitMix64 — deterministic per seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is ≤ bound/2^64 — negligible for test generation.
        self.next_u64() % bound
    }

    /// Uniform `i128` in `[lo, hi]` inclusive.
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        if span == 0 {
            // Full u128 span cannot occur for the 64-bit-or-smaller types
            // the strategies expose; treat defensively.
            return lo;
        }
        let draw = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span;
        lo + draw as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn int_in_respects_bounds() {
        let mut r = TestRng::new(9);
        for _ in 0..1000 {
            let v = r.int_in(-5, 5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn seed_differs_per_test_name() {
        assert_ne!(seed_for("a"), seed_for("b"));
    }
}
