//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates-io access, so the workspace vendors
//! the strategy combinators and macros its property tests actually use:
//! ranges and `any::<T>()` as strategies, tuples, `prop_map`/`prop_filter`,
//! `prop_oneof!`, `Just`, `proptest::collection::{vec, btree_set,
//! btree_map}`, a tiny `[lo-hi]{m,n}` string-regex strategy, and the
//! `proptest!`/`prop_assert*` macros. No shrinking: a failing case reports
//! its seed and generated inputs so it can be replayed deterministically
//! (set `PROPTEST_CASES` to change the per-test case count, default 64).

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, BoxedStrategy, Just, Strategy};

/// The customary glob import.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn` runs `PROPTEST_CASES` (default 64)
/// deterministic cases; a failing case panics with its seed and inputs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let base = $crate::test_runner::seed_for(stringify!($name));
                for case in 0..cases {
                    let seed = base.wrapping_add(case as u64);
                    let mut rng = $crate::test_runner::TestRng::new(seed);
                    let mut inputs = String::new();
                    $(
                        let value = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                        inputs.push_str(&format!(
                            "\n  {} = {:?}", stringify!($arg), value
                        ));
                        let $arg = value;
                    )+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed (seed {:#x}): {}\ninputs:{}",
                            case + 1, cases, seed, e, inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            )));
        }
    }};
}

/// `assert_ne!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}
