//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

/// Inclusive size bounds for a generated collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.int_in(self.lo as i128, self.hi as i128) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a size in `size` (bounded
/// insert attempts; duplicates may leave the set below the lower bound
/// only when the element domain is too small to fill it).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target * 20 + 100 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// Strategy for `BTreeMap<K::Value, V::Value>` with a size in `size`
/// (same bounded-attempt caveat as [`btree_set`]).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut map = BTreeMap::new();
        let mut attempts = 0;
        while map.len() < target && attempts < target * 20 + 100 {
            let k = self.key.generate(rng);
            let v = self.value.generate(rng);
            map.insert(k, v);
            attempts += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_sizes_in_range() {
        let mut rng = TestRng::new(11);
        let s = vec(0i64..10, 2..=6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=6).contains(&v.len()), "{v:?}");
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }

    #[test]
    fn exact_size_from_usize() {
        let mut rng = TestRng::new(12);
        let s = vec(0i64..100, 5usize);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut rng).len(), 5);
        }
    }

    #[test]
    fn set_and_map_fill_when_domain_is_large() {
        let mut rng = TestRng::new(13);
        let set = btree_set(0i64..1_000_000, 4..=8).generate(&mut rng);
        assert!((4..=8).contains(&set.len()), "{set:?}");
        let map = btree_map(0i64..1_000_000, 0i64..10, 3usize).generate(&mut rng);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn set_caps_attempts_on_tiny_domain() {
        let mut rng = TestRng::new(14);
        // Only 2 possible elements; asking for 5 must terminate anyway.
        let set = btree_set(0i64..2, 5usize).generate(&mut rng);
        assert!(set.len() <= 2);
    }
}
