//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! Only what the workspace uses: [`Mutex`] and [`RwLock`] whose lock
//! methods do not return poison `Result`s. A poisoned std lock (a panic
//! while holding the guard) is recovered by taking the inner guard, which
//! matches parking_lot's no-poisoning semantics.

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex that does not poison: `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: no poison error, the lock still works.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
