//! Offline drop-in subset of the `rayon` API.
//!
//! Implements the one shape the workspace uses — `slice.par_iter().map(f)
//! .collect()` — with real data parallelism on scoped `std::thread`s: the
//! index space is claimed work-stealing-style through an atomic cursor, and
//! results land in their original positions, so output order matches
//! `iter().map(f).collect()` exactly.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The customary import surface.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `&self -> par_iter()` entry point (the subset of rayon's trait family
/// the workspace needs).
pub trait IntoParallelRefIterator<'data> {
    /// Item yielded by the parallel iterator.
    type Item: 'data;
    /// The iterator type.
    type Iter;

    /// A parallel iterator over borrowed elements.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

/// Parallel iterator over a slice.
pub struct ParIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps each element through `f` (executed in parallel at collect time).
    pub fn map<U, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> U + Sync,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'data, T, F> {
    slice: &'data [T],
    f: F,
}

impl<'data, T: Sync, F> ParMap<'data, T, F> {
    /// Runs the map across threads and collects in input order.
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(&'data T) -> U + Sync,
        U: Send,
        C: FromIterator<U>,
    {
        parallel_map(self.slice, &self.f).into_iter().collect()
    }
}

/// Order-preserving parallel map over a slice.
fn parallel_map<'data, T, U, F>(slice: &'data [T], f: &F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&'data T) -> U + Sync,
{
    let n = slice.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if workers <= 1 || n <= 1 {
        return slice.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let done: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(&slice[i]);
                *done[i].lock().unwrap() = Some(value);
            });
        }
    });
    done.into_iter()
        .map(|cell| {
            cell.into_inner()
                .unwrap()
                .expect("every index visited exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn order_matches_sequential() {
        let input: Vec<u64> = (0..257).collect();
        let par: Vec<u64> = input.par_iter().map(|x| x * 3 + 1).collect();
        let seq: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one[..].par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let input: Vec<u32> = (0..64).collect();
        let _: Vec<()> = input
            .par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        let threads = ids.lock().unwrap().len();
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if cores > 1 {
            assert!(
                threads > 1,
                "expected parallel execution, saw {threads} thread(s)"
            );
        }
    }
}
