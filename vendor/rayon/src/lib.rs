//! Offline drop-in subset of the `rayon` API.
//!
//! Implements the shapes the workspace uses — `slice.par_iter().map(f)
//! .collect()` plus `ThreadPoolBuilder::new().num_threads(n).build()` with
//! [`ThreadPool::install`] — with real data parallelism on scoped
//! `std::thread`s: the index space is claimed work-stealing-style through
//! an atomic cursor, and results land in their original positions, so
//! output order matches `iter().map(f).collect()` exactly.
//!
//! `install` sets a thread-local worker-count cap rather than owning OS
//! threads; `par_iter` inside the installed closure spawns at most that
//! many workers. The cap does not propagate into nested `par_iter` calls
//! issued *from worker threads* — the workspace never nests parallelism,
//! so the simpler model suffices.

#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Per-thread cap on workers per `par_iter` (0 = no cap).
    static THREAD_LIMIT: Cell<usize> = const { Cell::new(0) };
}

/// Builder for a scoped [`ThreadPool`], mirroring rayon's API surface.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings (all available cores).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Caps the pool at `num_threads` workers (0 = all available cores).
    pub fn num_threads(mut self, num_threads: usize) -> ThreadPoolBuilder {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. Infallible here; the `Result` matches rayon.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error building a thread pool (never produced by this shim; the type
/// exists so caller code matches rayon's signatures).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped worker-count policy: while [`ThreadPool::install`] runs `op`,
/// `par_iter` on the calling thread uses at most this pool's thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread cap active on the current thread,
    /// restoring the previous cap afterwards (panic-safe).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_LIMIT.with(|l| l.set(self.0));
            }
        }
        let prev = THREAD_LIMIT.with(|l| l.replace(self.num_threads));
        let _restore = Restore(prev);
        op()
    }

    /// The cap this pool applies (0 = all available cores).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            available_cores()
        } else {
            self.num_threads
        }
    }
}

/// Worker count `par_iter` would use right now on this thread.
pub fn current_num_threads() -> usize {
    let cap = THREAD_LIMIT.with(|l| l.get());
    if cap == 0 {
        available_cores()
    } else {
        cap.min(available_cores())
    }
}

fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The customary import surface.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `&self -> par_iter()` entry point (the subset of rayon's trait family
/// the workspace needs).
pub trait IntoParallelRefIterator<'data> {
    /// Item yielded by the parallel iterator.
    type Item: 'data;
    /// The iterator type.
    type Iter;

    /// A parallel iterator over borrowed elements.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

/// Parallel iterator over a slice.
pub struct ParIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps each element through `f` (executed in parallel at collect time).
    pub fn map<U, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> U + Sync,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'data, T, F> {
    slice: &'data [T],
    f: F,
}

impl<'data, T: Sync, F> ParMap<'data, T, F> {
    /// Runs the map across threads and collects in input order.
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(&'data T) -> U + Sync,
        U: Send,
        C: FromIterator<U>,
    {
        parallel_map(self.slice, &self.f).into_iter().collect()
    }
}

/// Order-preserving parallel map over a slice.
fn parallel_map<'data, T, U, F>(slice: &'data [T], f: &F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&'data T) -> U + Sync,
{
    let n = slice.len();
    let workers = current_num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return slice.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let done: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(&slice[i]);
                *done[i].lock().unwrap() = Some(value);
            });
        }
    });
    done.into_iter()
        .map(|cell| {
            cell.into_inner()
                .unwrap()
                .expect("every index visited exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn order_matches_sequential() {
        let input: Vec<u64> = (0..257).collect();
        let par: Vec<u64> = input.par_iter().map(|x| x * 3 + 1).collect();
        let seq: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one[..].par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn install_caps_worker_count() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 1);
        let input: Vec<u32> = (0..32).collect();
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let out: Vec<u32> = pool.install(|| {
            assert_eq!(crate::current_num_threads(), 1);
            input
                .par_iter()
                .map(|x| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    x + 1
                })
                .collect()
        });
        assert_eq!(out, (1..=32).collect::<Vec<u32>>());
        assert_eq!(ids.lock().unwrap().len(), 1, "cap of 1 must serialize");
    }

    #[test]
    fn install_restores_previous_cap() {
        let outer = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let inner = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        outer.install(|| {
            let cores = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            assert_eq!(crate::current_num_threads(), 3.min(cores));
            inner.install(|| assert_eq!(crate::current_num_threads(), 1));
            assert_eq!(crate::current_num_threads(), 3.min(cores));
        });
        // Back to uncapped after install returns.
        let uncapped = crate::current_num_threads();
        assert!(uncapped >= 1);
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let pool = crate::ThreadPoolBuilder::new().build().unwrap();
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert_eq!(pool.current_num_threads(), cores);
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let input: Vec<u32> = (0..64).collect();
        let _: Vec<()> = input
            .par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        let threads = ids.lock().unwrap().len();
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if cores > 1 {
            assert!(
                threads > 1,
                "expected parallel execution, saw {threads} thread(s)"
            );
        }
    }
}
