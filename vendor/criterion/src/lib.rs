//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no crates-io access, so the workspace vendors
//! the benchmark surface its `[[bench]]` targets use: `Criterion`,
//! `bench_function`, `benchmark_group` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a fixed-budget timing loop (no statistics or
//! HTML reports); results print as mean ns/iter, with bytes/s when a
//! throughput is set.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark measurement budget (env `CRITERION_MEASURE_MS`, default 300).
fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(300);
    Duration::from_millis(ms)
}

/// Declared input volume per iteration, for derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled by the parameter's `Display` form.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    /// An id from a function name and a parameter.
    pub fn new<P: std::fmt::Display>(function_name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Runs timing loops for one benchmark body.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` repeatedly until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (fills caches, triggers lazy init).
        black_box(f());
        let budget = measure_budget();
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

/// Benchmark driver (construct via `Criterion::default()`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Measures a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the declared per-iteration input volume for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.throughput, &mut f);
        self
    }

    /// Measures a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.label);
        run_one(&name, self.throughput, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; no summary state).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, f: &mut F) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        // Body never called `iter` — nothing measured.
        println!("{name:<48} (no measurement)");
        return;
    }
    let ns_per_iter = bencher.total.as_nanos() as f64 / bencher.iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:>10.1} MiB/s",
                n as f64 / 1048576.0 / (ns_per_iter * 1e-9)
            )
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.1} elem/s", n as f64 / (ns_per_iter * 1e-9))
        }
        None => String::new(),
    };
    println!(
        "{name:<48} {ns_per_iter:>14.1} ns/iter  ({} iters){rate}",
        bencher.iters
    );
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        std::env::set_var("CRITERION_MEASURE_MS", "1");
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_with_input_and_throughput() {
        std::env::set_var("CRITERION_MEASURE_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(128));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
