//! Fault tolerance: run the same exploration under a seeded plan of
//! transient tool faults and watch retry/backoff make them invisible —
//! the Pareto front matches the fault-free run exactly.
//!
//! Run with: `cargo run --example fault_tolerance`

use dovado::{
    Domain, Dovado, DseConfig, EvalConfig, HdlSource, Metric, MetricSet, ParameterSpace,
    RetryPolicy,
};
use dovado_eda::FaultPlan;
use dovado_fpga::ResourceKind;
use dovado_hdl::Language;
use dovado_moo::{Nsga2Config, Termination};

const MY_MODULE: &str = r#"
module fifo_v3 #(
    parameter int unsigned DEPTH      = 8,
    parameter int unsigned DATA_WIDTH = 32
) (
    input  logic                  clk_i,
    input  logic [DATA_WIDTH-1:0] data_i,
    output logic [DATA_WIDTH-1:0] data_o
);
endmodule
"#;

fn space() -> ParameterSpace {
    ParameterSpace::new()
        .with("DEPTH", Domain::range(2, 512))
        .with("DATA_WIDTH", Domain::Explicit(vec![8, 16, 32, 64]))
}

fn tool(faults: FaultPlan) -> Dovado {
    Dovado::new(
        vec![HdlSource::new(
            "fifo.sv",
            Language::SystemVerilog,
            MY_MODULE,
        )],
        "fifo_v3",
        space(),
        EvalConfig {
            faults,
            retry: RetryPolicy {
                max_attempts: 8,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("sources parse and the module exists")
}

fn explore(tool: &Dovado) -> dovado::DseReport {
    tool.explore(&DseConfig {
        algorithm: Nsga2Config {
            pop_size: 12,
            seed: 3,
            ..Default::default()
        },
        termination: Termination::Generations(6),
        metrics: MetricSet::new(vec![
            Metric::Utilization(ResourceKind::Lut),
            Metric::Utilization(ResourceKind::Register),
            Metric::Fmax,
        ]),
        surrogate: None,
        parallel: false,
        explorer: Default::default(),
        jobs: None,
        workers: None,
    })
    .expect("exploration runs")
}

fn main() {
    // A deterministic plan: roughly one in five tool attempts crashes,
    // times out, or corrupts its checkpoint.
    let plan = FaultPlan {
        seed: 0xDEAD,
        synth_crash: 0.08,
        route_timeout: 0.08,
        checkpoint_corrupt: 0.06,
        ..FaultPlan::default()
    };

    println!("=== fault-free run ===");
    let clean = explore(&tool(FaultPlan::none()));
    println!("{clean}");
    println!();

    println!("=== same exploration under injected faults ===");
    let faulty = explore(&tool(plan));
    println!("{faulty}");
    let log = faulty.flow_log(12);
    if !log.is_empty() {
        println!("flow events (failed/retried attempts):");
        print!("{log}");
    }
    println!();

    let same = clean.pareto.len() == faulty.pareto.len()
        && clean
            .pareto
            .iter()
            .zip(&faulty.pareto)
            .all(|(a, b)| a.point == b.point && a.values == b.values);
    println!(
        "Pareto fronts identical: {same} ({} retries absorbed {} transient faults, \
         {:.0} s of backoff charged to the ledger)",
        faulty.trace.retries, faulty.trace.transient_failures, faulty.trace.backoff_s
    );
}
