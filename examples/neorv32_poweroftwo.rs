//! Neorv32 exploration (§IV-C), the paper's VHDL case study: memory sizes
//! restricted to powers of two — "to explore a larger parameter space
//! without considering meaningless parameter assignments".
//!
//! Also demonstrates Dovado's *exact exploration* mode: the restricted
//! space is small enough to enumerate, so the genetic front can be checked
//! against ground truth.
//!
//! Run with: `cargo run --example neorv32_poweroftwo`

use dovado::casestudies::neorv32;
use dovado::DseConfig;
use dovado_fpga::ResourceKind;
use dovado_moo::{Nsga2Config, Termination};

fn main() {
    let cs = neorv32::case_study();
    println!("case study : {}", cs.name);
    println!("module     : {} (VHDL)", cs.top);
    println!("space      : {}", cs.space);
    println!(
        "volume     : {} points (power-of-two restriction)",
        cs.space.volume()
    );
    println!();

    let tool = cs.dovado().expect("case study builds");

    // Genetic exploration.
    let report = tool
        .explore(&DseConfig {
            algorithm: Nsga2Config {
                pop_size: 14,
                seed: 5,
                ..Default::default()
            },
            termination: Termination::Generations(10),
            metrics: cs.metrics.clone(),
            surrogate: None,
            parallel: true,
            explorer: Default::default(),
            jobs: None,
            workers: None,
        })
        .expect("exploration runs");
    println!("{}", report.summary());
    println!();
    println!("{}", report.configuration_table());
    println!("{}", report.metric_table());

    // Exact exploration over all 49 points.
    let exhaustive = tool
        .evaluate_exhaustive(64, true)
        .expect("49 points are enumerable");
    let ok = exhaustive.iter().filter(|r| r.result.is_ok()).count();
    println!(
        "exact exploration: {ok}/{} points evaluated",
        exhaustive.len()
    );

    // The Fig. 5 observation: between 2^14 and 2^15 the BRAM count jumps
    // while the other metrics barely move.
    let find = |imem: i64, dmem: i64| {
        exhaustive
            .iter()
            .find(|r| {
                r.point.get("MEM_INT_IMEM_SIZE") == Some(imem)
                    && r.point.get("MEM_INT_DMEM_SIZE") == Some(dmem)
            })
            .and_then(|r| r.result.as_ref().ok())
            .expect("point evaluated")
    };
    let mid = find(1 << 14, 1 << 13);
    let big = find(1 << 15, 1 << 15);
    println!();
    println!("the Fig. 5 step:");
    println!(
        "  imem=2^14, dmem=2^13 -> BRAM {:>2}, LUT {}, Fmax {:.1} MHz",
        mid.utilization.get(ResourceKind::Bram),
        mid.utilization.get(ResourceKind::Lut),
        mid.fmax_mhz
    );
    println!(
        "  imem=2^15, dmem=2^15 -> BRAM {:>2}, LUT {}, Fmax {:.1} MHz",
        big.utilization.get(ResourceKind::Bram),
        big.utilization.get(ResourceKind::Lut),
        big.fmax_mhz
    );
}
