//! TiReX on two technologies (§IV-D): the same exploration on a 16 nm
//! Zynq UltraScale+ ZU3EG and a 28 nm Kintex-7 XC7K70T — "in this way, we
//! can analyze technology impacts … in resource usage and achievable
//! frequencies" (≈550 vs ≈190 MHz in the paper).
//!
//! Run with: `cargo run --example tirex_multiboard`

use dovado::casestudies::tirex;
use dovado::{DesignPoint, DseConfig};
use dovado_moo::{Nsga2Config, Termination};

fn main() {
    let cs = tirex::case_study();
    println!(
        "case study : {} (VHDL domain-specific architecture)",
        cs.name
    );
    println!("space      : {}", cs.space);
    println!();

    let devices = [
        ("xczu3eg-sbva484-1-e", "16 nm"),
        (tirex::XC7K_PART, "28 nm"),
    ];
    let mut best = Vec::new();

    for (part, node) in devices {
        let tool = cs.dovado_on(part).expect("case study builds");
        let report = tool
            .explore(&DseConfig {
                algorithm: Nsga2Config {
                    pop_size: 16,
                    seed: 11,
                    ..Default::default()
                },
                termination: Termination::Generations(8),
                metrics: cs.metrics.clone(),
                surrogate: None,
                parallel: true,
                explorer: Default::default(),
                jobs: None,
                workers: None,
            })
            .expect("exploration runs");
        println!("--- {part} ({node}) ---");
        println!("{}", report.summary());
        println!("{}", report.configuration_table());
        println!("{}", report.metric_table());
        let best_fmax = report
            .pareto
            .iter()
            .map(|e| e.values[3])
            .fold(0.0f64, f64::max);
        best.push((part, best_fmax));
    }

    println!("technology comparison (same architecture, same exploration):");
    for (part, fmax) in &best {
        println!("  {part:<24} best Fmax {fmax:.1} MHz");
    }
    let ratio = best[0].1 / best[1].1;
    println!("  16 nm / 28 nm frequency ratio: {ratio:.2}x");

    // And a like-for-like single configuration, as Table II invites.
    let p = DesignPoint::from_pairs(&[
        ("NCLUSTER", 1),
        ("STACK_SIZE", 16),
        ("IMEM_SIZE", 8),
        ("DMEM_SIZE", 8),
    ]);
    println!();
    println!("fixed configuration {p}:");
    for (part, _) in devices {
        let tool = cs.dovado_on(part).expect("case study builds");
        let e = tool.evaluate_point(&p).expect("evaluation runs");
        println!("  {part:<24} {:.1} MHz", e.fmax_mhz);
    }
}
