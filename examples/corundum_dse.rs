//! Corundum completion-queue-manager exploration (§IV-B), the paper's
//! Verilog case study: direct tool evaluations (approximator disabled),
//! LUT/FF/BRAM/Fmax objectives, Kintex-7 target.
//!
//! Run with: `cargo run --example corundum_dse`

use dovado::casestudies::corundum;
use dovado::{point_label, DseConfig};
use dovado_moo::{Nsga2Config, Termination};

fn main() {
    let cs = corundum::case_study();
    println!("case study : {}", cs.name);
    println!("module     : {} (Verilog)", cs.top);
    println!("space      : {} ({} points)", cs.space, cs.space.volume());
    println!("part       : {}", cs.part);
    println!();

    let tool = cs.dovado().expect("case study builds");
    let report = tool
        .explore(&DseConfig {
            algorithm: Nsga2Config {
                pop_size: 20,
                seed: 7,
                ..Default::default()
            },
            termination: Termination::Generations(10),
            metrics: cs.metrics.clone(),
            surrogate: None, // "disabling the approximator model to employ
            // direct Vivado evaluations" (§IV-B)
            parallel: true,
            explorer: Default::default(),
            jobs: None,
            workers: None,
        })
        .expect("exploration runs");

    println!("{}", report.summary());
    println!();
    println!("{}", report.configuration_table());
    println!("{}", report.metric_table());

    // Walk the trade-offs the way a hardware developer would read Fig. 4.
    println!("reading the front:");
    for (i, e) in report.pareto.iter().enumerate() {
        println!(
            "  {}: {} -> {:.0} LUT, {:.0} FF, {:.0} BRAM, {:.1} MHz",
            point_label(i),
            e.point,
            e.values[0],
            e.values[1],
            e.values[2],
            e.values[3],
        );
    }
}
