//! The fitness-approximation model at work (§III-C / §IV-A): pre-train the
//! Nadaraya-Watson estimator on a synthetic dataset, then watch the
//! control model route design points to the cache, the estimator, or the
//! tool — and compare an exploration with and without the approximation.
//!
//! Run with: `cargo run --example surrogate_accuracy`

use dovado::casestudies::cv32e40p;
use dovado::{DseConfig, SurrogateConfig};
use dovado_moo::{Nsga2Config, Termination};
use dovado_surrogate::ThresholdPolicy;

fn main() {
    let cs = cv32e40p::case_study();
    println!(
        "case study : {} (SystemVerilog FIFO, DEPTH over 500 values)",
        cs.name
    );
    println!();

    let algorithm = Nsga2Config {
        pop_size: 16,
        seed: 21,
        ..Default::default()
    };
    let termination = Termination::Generations(12);

    // Exploration WITHOUT the model: every fitness call pays for the tool.
    let plain = cs
        .dovado()
        .expect("case study builds")
        .explore(&DseConfig {
            algorithm: algorithm.clone(),
            termination: termination.clone(),
            metrics: cs.metrics.clone(),
            surrogate: None,
            parallel: false,
            explorer: Default::default(),
            jobs: None,
            workers: None,
        })
        .expect("exploration runs");

    // Exploration WITH the model: M = 100 pre-training samples (the paper's
    // default), adaptive threshold Γ, Gaussian kernel.
    let with = cs
        .dovado()
        .expect("case study builds")
        .explore(&DseConfig {
            algorithm,
            termination,
            metrics: cs.metrics.clone(),
            surrogate: Some(SurrogateConfig {
                policy: ThresholdPolicy::paper_default(),
                pretrain_samples: 100,
                ..Default::default()
            }),
            parallel: false,
            explorer: Default::default(),
            jobs: None,
            workers: None,
        })
        .expect("exploration runs");

    println!("without approximation: {}", plain.summary());
    println!("with approximation   : {}", with.summary());
    println!();

    let explore_tool_runs = with.tool_runs.saturating_sub(100);
    println!("during exploration itself (pre-training excluded):");
    println!(
        "  tool runs   : {} -> {}",
        plain.tool_runs, explore_tool_runs
    );
    println!("  estimates   : {}", with.estimates);
    println!("  cached hits : {}", with.cached_runs);
    let saved = 1.0 - explore_tool_runs as f64 / plain.tool_runs.max(1) as f64;
    println!("  tool-run reduction: {:.0} %", 100.0 * saved);
    println!();
    println!(
        "simulated tool time: {:.0} s -> {:.0} s (includes the one-off {} pre-training runs)",
        plain.tool_time_s, with.tool_time_s, 100
    );
    println!();
    println!("non-dominated sets:");
    println!("  without: {} point(s)", plain.pareto.len());
    println!("  with   : {} point(s)", with.pareto.len());
}
