//! Quickstart: evaluate one design point of your own module, then run a
//! small design space exploration — the two flows of the paper's Fig. 1.
//!
//! Run with: `cargo run --example quickstart`

use dovado::{
    DesignPoint, Domain, Dovado, DseConfig, EvalConfig, HdlSource, Metric, MetricSet,
    ParameterSpace,
};
use dovado_fpga::ResourceKind;
use dovado_hdl::Language;
use dovado_moo::{Nsga2Config, Termination};

// Any parametrizable RTL module works; here a small SystemVerilog FIFO.
const MY_MODULE: &str = r#"
module fifo_v3 #(
    parameter int unsigned DEPTH      = 8,
    parameter int unsigned DATA_WIDTH = 32
) (
    input  logic                  clk_i,
    input  logic                  rst_ni,
    input  logic [DATA_WIDTH-1:0] data_i,
    input  logic                  push_i,
    output logic [DATA_WIDTH-1:0] data_o,
    input  logic                  pop_i
);
endmodule
"#;

fn main() {
    // 1. Declare the free parameters and their ranges.
    let space = ParameterSpace::new()
        .with("DEPTH", Domain::range(2, 512))
        .with("DATA_WIDTH", Domain::Explicit(vec![8, 16, 32, 64]));

    // 2. Point Dovado at the sources, the top module and the target part.
    let tool = Dovado::new(
        vec![HdlSource::new(
            "fifo.sv",
            Language::SystemVerilog,
            MY_MODULE,
        )],
        "fifo_v3",
        space,
        EvalConfig {
            part: "xc7k70tfbv676-1".into(),
            target_period_ns: 1.0, // 1 GHz probe, as in the paper
            ..Default::default()
        },
    )
    .expect("sources parse and the module exists");

    // 3. Design automation: evaluate a single point.
    let point = DesignPoint::from_pairs(&[("DEPTH", 64), ("DATA_WIDTH", 32)]);
    let eval = tool.evaluate_point(&point).expect("evaluation runs");
    println!("single-point evaluation of {point}:");
    println!("  LUTs      : {}", eval.utilization.get(ResourceKind::Lut));
    println!(
        "  registers : {}",
        eval.utilization.get(ResourceKind::Register)
    );
    println!(
        "  WNS       : {:.3} ns at a {:.3} ns target",
        eval.wns_ns, eval.period_ns
    );
    println!(
        "  Fmax      : {:.1} MHz  (Eq. 1: 1000/(T - WNS))",
        eval.fmax_mhz
    );
    println!("  tool time : {:.0} simulated seconds", eval.tool_time_s);
    println!();

    // 4. Design space exploration: find the non-dominated set.
    let report = tool
        .explore(&DseConfig {
            algorithm: Nsga2Config {
                pop_size: 16,
                seed: 1,
                ..Default::default()
            },
            termination: Termination::Generations(8),
            metrics: MetricSet::new(vec![
                Metric::Utilization(ResourceKind::Lut),
                Metric::Utilization(ResourceKind::Register),
                Metric::Fmax,
            ]),
            surrogate: None,
            parallel: true,
            explorer: Default::default(),
            jobs: None,
            workers: None,
        })
        .expect("exploration runs");

    println!("design space exploration:");
    println!("{report}");
}
