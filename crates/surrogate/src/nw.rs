//! Nadaraya-Watson regression (the paper's Eq. 2).
//!
//! `ŷ = Σ K_h(x, xᵢ)·yᵢ / Σ K_h(x, xᵢ)` — "loosely speaking a weighted
//! average of the dataset points, where the weights are defined by a
//! Gaussian Kernel function". Being non-parametric, "training" is just
//! keeping the dataset; the bandwidth `h` is the only free parameter
//! (selected by LOO cross-validation, see [`crate::loocv`]).

use crate::dataset::Dataset;
use crate::kernel::Kernel;

/// A Nadaraya-Watson estimator: kernel + bandwidth over a [`Dataset`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NadarayaWatson {
    /// Kernel function.
    pub kernel: Kernel,
    /// Bandwidth `h` in normalized-coordinate units.
    pub bandwidth: f64,
}

impl Default for NadarayaWatson {
    fn default() -> Self {
        NadarayaWatson {
            kernel: Kernel::Gaussian,
            bandwidth: 0.1,
        }
    }
}

impl NadarayaWatson {
    /// Predicts all outputs at the (raw, integer) query point.
    ///
    /// Returns `None` when the dataset is empty. When all kernel weights
    /// underflow (query far from every sample under a compact kernel), the
    /// estimator degrades to the nearest neighbour's outputs — a defined
    /// answer is always available once the dataset is non-empty.
    pub fn predict(&self, dataset: &Dataset, point: &[i64]) -> Option<Vec<f64>> {
        self.predict_excluding(dataset, point, None)
    }

    /// Truncated prediction: sums only the `k` nearest dataset rows (by
    /// normalized distance) instead of all M, turning the O(M·m) exact
    /// estimate into O(k·(log M + m)) via the dataset's KD-tree. `k == 0`
    /// requests the exact estimator.
    ///
    /// The truncation is *bitwise-exact* once `k ≥ M`: the candidate set
    /// is then every row, candidates are accumulated in ascending row
    /// order — the exact path's iteration order — and each distance comes
    /// from the same [`crate::kernel::dist2`] kernel, so the sums agree
    /// bit for bit. For `k < M` only the negligible far-field Gaussian
    /// mass is dropped: the absolute error is bounded by
    /// `(M−k)/M · output range` (the dropped weights are each no larger
    /// than the smallest kept weight).
    pub fn predict_topk(&self, dataset: &Dataset, point: &[i64], k: usize) -> Option<Vec<f64>> {
        if k == 0 {
            return self.predict(dataset, point);
        }
        let x = dataset.normalize(point);
        let mut out = vec![0.0f64; dataset.n_outputs()];
        let mut nbuf = Vec::new();
        self.predict_norm_topk_into(dataset, &x, k, None, &mut out, &mut nbuf)
            .then_some(out)
    }

    /// The allocation-reusing truncated-prediction core behind
    /// [`NadarayaWatson::predict_topk`]: `nbuf` is the caller's neighbour
    /// scratch buffer. See there for the exactness contract; the
    /// all-weights-underflow fallback below picks the same nearest row —
    /// lowest row index on distance ties — as the exact path, because the
    /// KD-tree ranks candidates by `(d², row)` and the globally nearest
    /// row is always among the k kept.
    pub fn predict_norm_topk_into(
        &self,
        dataset: &Dataset,
        x_norm: &[f64],
        k: usize,
        exclude: Option<usize>,
        out: &mut [f64],
        nbuf: &mut Vec<(f64, usize)>,
    ) -> bool {
        debug_assert!(k > 0);
        dataset.k_nearest(x_norm, k, exclude, nbuf);
        if nbuf.is_empty() {
            return false;
        }
        debug_assert_eq!(out.len(), dataset.n_outputs());
        // The fallback row: minimum (d², row) — identical to the exact
        // path's first-wins linear scan.
        let fallback = nbuf[0].1;
        // Accumulate in ascending row order so a full candidate set
        // (k ≥ M) reproduces the exact path's sums bitwise.
        nbuf.sort_unstable_by_key(|&(_, i)| i);
        out.fill(0.0);
        let mut den = 0.0f64;
        for &(d2, i) in nbuf.iter() {
            let w = self.kernel.weight(d2, self.bandwidth);
            den += w;
            for (acc, y) in out.iter_mut().zip(&dataset.outputs()[i]) {
                *acc += w * y;
            }
        }
        if den <= f64::MIN_POSITIVE * 1e3 {
            // All weights vanished: nearest-neighbour fallback.
            out.copy_from_slice(&dataset.outputs()[fallback]);
            return true;
        }
        for v in out.iter_mut() {
            *v /= den;
        }
        true
    }

    /// Like [`NadarayaWatson::predict`], excluding dataset row `exclude`
    /// (used for leave-one-out validation).
    pub fn predict_excluding(
        &self,
        dataset: &Dataset,
        point: &[i64],
        exclude: Option<usize>,
    ) -> Option<Vec<f64>> {
        let x = dataset.normalize(point);
        let mut out = vec![0.0f64; dataset.n_outputs()];
        self.predict_norm_into(dataset, &x, exclude, &mut out)
            .then_some(out)
    }

    /// The allocation-free prediction core: takes an already-normalized
    /// query and writes the estimate into `out` (length
    /// [`Dataset::n_outputs`], pre-zeroed by this function). Returns
    /// `false` when no prediction exists (empty effective dataset).
    ///
    /// LOO-CV calls this once per (row, bandwidth) pair — with the
    /// dataset's stored normalized rows as queries — so the hot loop never
    /// allocates and never re-normalizes.
    pub fn predict_norm_into(
        &self,
        dataset: &Dataset,
        x_norm: &[f64],
        exclude: Option<usize>,
        out: &mut [f64],
    ) -> bool {
        let n = dataset.len();
        let effective = n - usize::from(exclude.is_some() && n > 0);
        if effective == 0 {
            return false;
        }
        debug_assert_eq!(out.len(), dataset.n_outputs());
        out.fill(0.0);
        let mut den = 0.0f64;
        let mut nearest: Option<(f64, usize)> = None;
        for i in 0..n {
            if Some(i) == exclude {
                continue;
            }
            let d2 = dataset.dist2_to(x_norm, i);
            let w = self.kernel.weight(d2, self.bandwidth);
            den += w;
            for (acc, y) in out.iter_mut().zip(&dataset.outputs()[i]) {
                *acc += w * y;
            }
            if nearest.is_none_or(|(bd, _)| d2 < bd) {
                nearest = Some((d2, i));
            }
        }
        if den <= f64::MIN_POSITIVE * 1e3 {
            // All weights vanished: nearest-neighbour fallback.
            let Some((_, i)) = nearest else { return false };
            out.copy_from_slice(&dataset.outputs()[i]);
            return true;
        }
        for v in out.iter_mut() {
            *v /= den;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Bounds;

    fn line_dataset() -> Dataset {
        // y = 2x over x ∈ [0, 100].
        let mut d = Dataset::new(Bounds::new(vec![(0, 100)]), 1);
        for x in (0..=100).step_by(5) {
            d.insert(vec![x], vec![2.0 * x as f64]);
        }
        d
    }

    #[test]
    fn empty_dataset_gives_none() {
        let d = Dataset::new(Bounds::new(vec![(0, 10)]), 1);
        let nw = NadarayaWatson::default();
        assert!(nw.predict(&d, &[5]).is_none());
    }

    #[test]
    fn exact_sample_recovered_with_small_bandwidth() {
        let d = line_dataset();
        let nw = NadarayaWatson {
            kernel: Kernel::Gaussian,
            bandwidth: 0.01,
        };
        let y = nw.predict(&d, &[50]).unwrap()[0];
        assert!((y - 100.0).abs() < 1.0, "y = {y}");
    }

    #[test]
    fn interpolates_between_samples() {
        let d = line_dataset();
        let nw = NadarayaWatson {
            kernel: Kernel::Gaussian,
            bandwidth: 0.03,
        };
        let y = nw.predict(&d, &[52]).unwrap()[0];
        assert!((y - 104.0).abs() < 6.0, "y = {y}");
    }

    #[test]
    fn huge_bandwidth_tends_to_global_mean() {
        let d = line_dataset();
        let nw = NadarayaWatson {
            kernel: Kernel::Gaussian,
            bandwidth: 100.0,
        };
        let y = nw.predict(&d, &[0]).unwrap()[0];
        // Global mean of y = 2x over 0..=100 step 5 is 100.
        assert!((y - 100.0).abs() < 2.0, "y = {y}");
    }

    #[test]
    fn weighted_average_is_bounded_by_data() {
        let d = line_dataset();
        for h in [0.01, 0.05, 0.2, 1.0] {
            let nw = NadarayaWatson {
                kernel: Kernel::Gaussian,
                bandwidth: h,
            };
            let y = nw.predict(&d, &[33]).unwrap()[0];
            assert!((0.0..=200.0).contains(&y));
        }
    }

    #[test]
    fn compact_kernel_falls_back_to_nearest_neighbour() {
        let mut d = Dataset::new(Bounds::new(vec![(0, 1000)]), 1);
        d.insert(vec![0], vec![7.0]);
        d.insert(vec![1000], vec![9.0]);
        let nw = NadarayaWatson {
            kernel: Kernel::Epanechnikov,
            bandwidth: 0.05,
        };
        // Query in the middle, slightly nearer to 1000.
        let y = nw.predict(&d, &[600]).unwrap()[0];
        assert_eq!(y, 9.0);
    }

    #[test]
    fn multi_output_prediction() {
        let mut d = Dataset::new(Bounds::new(vec![(0, 10)]), 2);
        for x in 0..=10 {
            d.insert(vec![x], vec![x as f64, 10.0 - x as f64]);
        }
        let nw = NadarayaWatson {
            kernel: Kernel::Gaussian,
            bandwidth: 0.05,
        };
        let y = nw.predict(&d, &[4]).unwrap();
        assert!((y[0] - 4.0).abs() < 0.5);
        assert!((y[1] - 6.0).abs() < 0.5);
    }

    #[test]
    fn loo_exclusion_changes_prediction() {
        let mut d = Dataset::new(Bounds::new(vec![(0, 10)]), 1);
        d.insert(vec![0], vec![0.0]);
        d.insert(vec![5], vec![100.0]);
        d.insert(vec![10], vec![0.0]);
        let nw = NadarayaWatson {
            kernel: Kernel::Gaussian,
            bandwidth: 0.2,
        };
        let with = nw.predict(&d, &[5]).unwrap()[0];
        let without = nw.predict_excluding(&d, &[5], Some(1)).unwrap()[0];
        assert!(with > without, "{with} vs {without}");
    }

    #[test]
    fn topk_with_full_candidate_set_is_bitwise_exact() {
        let d = line_dataset();
        for h in [0.01, 0.05, 0.2, 1.0] {
            let nw = NadarayaWatson {
                kernel: Kernel::Gaussian,
                bandwidth: h,
            };
            for q in [0i64, 17, 52, 100] {
                let exact = nw.predict(&d, &[q]).unwrap();
                for k in [d.len(), d.len() + 10] {
                    let trunc = nw.predict_topk(&d, &[q], k).unwrap();
                    assert_eq!(exact[0].to_bits(), trunc[0].to_bits(), "h={h} q={q} k={k}");
                }
            }
        }
    }

    #[test]
    fn topk_zero_means_exact() {
        let d = line_dataset();
        let nw = NadarayaWatson::default();
        assert_eq!(
            nw.predict(&d, &[37]).unwrap()[0].to_bits(),
            nw.predict_topk(&d, &[37], 0).unwrap()[0].to_bits()
        );
    }

    #[test]
    fn truncation_stays_close_to_exact() {
        let d = line_dataset(); // 21 points
        let nw = NadarayaWatson {
            kernel: Kernel::Gaussian,
            bandwidth: 0.1,
        };
        let exact = nw.predict(&d, &[52]).unwrap()[0];
        let trunc = nw.predict_topk(&d, &[52], 8).unwrap()[0];
        // 8 nearest of 21 at h = 0.1 hold almost all the Gaussian mass.
        assert!((exact - trunc).abs() < 1.0, "{exact} vs {trunc}");
    }

    #[test]
    fn underflow_fallback_breaks_ties_by_lowest_row_in_both_paths() {
        // Two rows equidistant from the query; a compact kernel far from
        // both underflows every weight, forcing the nearest-neighbour
        // fallback. Insertion order puts the *larger* coordinate first,
        // so "lowest row index" is distinguishable from "smallest value".
        let mut d = Dataset::new(Bounds::new(vec![(0, 100)]), 1);
        d.insert(vec![60], vec![7.0]); // row 0
        d.insert(vec![40], vec![9.0]); // row 1 — same distance from 50
        let nw = NadarayaWatson {
            kernel: Kernel::Epanechnikov,
            bandwidth: 0.05,
        };
        let exact = nw.predict(&d, &[50]).unwrap()[0];
        assert_eq!(exact, 7.0, "exact path must fall back to row 0");
        for k in [1, 2, 5] {
            let trunc = nw.predict_topk(&d, &[50], k).unwrap()[0];
            assert_eq!(trunc, 7.0, "truncated path (k={k}) must agree");
        }
    }

    #[test]
    fn duplicate_design_points_tie_break_deterministically() {
        // A degenerate second axis makes two distinct raw points
        // coincident in normalized space — duplicates at distance zero.
        let mut d = Dataset::new(Bounds::new(vec![(0, 100), (3, 3)]), 1);
        d.insert(vec![50, 3], vec![1.0]); // row 0
        d.insert(vec![50, 9], vec![2.0]); // row 1, same normalized point
        d.insert(vec![0, 3], vec![3.0]); // row 2, far away
        let nw = NadarayaWatson {
            kernel: Kernel::Uniform,
            bandwidth: 0.01,
        };
        // Query far from everything: all weights vanish; both rows 0 and
        // 1 are nearest at the same distance — row 0 must win, exact and
        // truncated alike.
        let exact = nw.predict(&d, &[80, 3]).unwrap()[0];
        let trunc1 = nw.predict_topk(&d, &[80, 3], 1).unwrap()[0];
        let trunc3 = nw.predict_topk(&d, &[80, 3], 3).unwrap()[0];
        assert_eq!(exact, 1.0);
        assert_eq!(trunc1, 1.0);
        assert_eq!(trunc3, 1.0);
    }

    #[test]
    fn single_point_dataset_predicts_constant() {
        let mut d = Dataset::new(Bounds::new(vec![(0, 10)]), 1);
        d.insert(vec![3], vec![42.0]);
        let nw = NadarayaWatson::default();
        assert_eq!(nw.predict(&d, &[9]).unwrap()[0], 42.0);
        // LOO on a single point: nothing left.
        assert!(nw.predict_excluding(&d, &[3], Some(0)).is_none());
    }
}
