//! The control model: decide whether the tool or the estimator answers.
//!
//! The paper's three cases (§III-C): "First, if our design point is already
//! in the dataset, Dovado calls Vivado, which employs cached results as the
//! answer. Second, if the generated design point is similar enough to one
//! of the dataset points, Dovado employs the statistical model for an
//! estimate. Finally, if none of these applies, Dovado calls Vivado, adds
//! the new design pair to the dataset, and applies a new training/validation
//! step."

use crate::dataset::{Bounds, Dataset};
use crate::kernel::Kernel;
use crate::loocv::BandwidthSelector;
use crate::nw::NadarayaWatson;
use crate::similarity::phi_n;
use crate::threshold::ThresholdPolicy;
use rayon::prelude::*;

/// Default neighborhood size for truncated Nadaraya-Watson prediction.
/// 64 neighbors keep the estimate within the truncation bound on every
/// dataset the bench sweeps while making prediction cost O(k·log M)
/// instead of O(M). Set [`SurrogateController::neighbor_k`] to 0 for the
/// exact all-points estimator.
pub const DEFAULT_NEIGHBOR_K: usize = 64;

/// What the controller decided for a query point.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// The exact point is in the dataset: call the tool, which answers from
    /// its cache (cheap). The stored metrics are attached.
    Cached(Vec<f64>),
    /// Similar enough (Φ ≤ Γ): use the estimator's prediction.
    Estimate(Vec<f64>),
    /// Too novel: run the tool, then feed the result back via
    /// [`SurrogateController::record`].
    Evaluate,
}

/// Statistics the controller keeps about its own decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Exact-hit decisions.
    pub cached: u64,
    /// Model estimates served.
    pub estimated: u64,
    /// Full evaluations requested.
    pub evaluated: u64,
}

impl ControlStats {
    /// Total decisions taken.
    pub fn total(&self) -> u64 {
        self.cached + self.estimated + self.evaluated
    }

    /// Fraction of decisions answered without a fresh tool run.
    pub fn savings_ratio(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.cached + self.estimated) as f64 / self.total() as f64
    }
}

/// A model-management event the controller logged: retrains and Γ moves.
///
/// The controller has no dependency on the host's telemetry, so it keeps
/// a small drainable log instead of emitting directly; the DSE layer
/// drains it with [`SurrogateController::take_events`] and forwards onto
/// its observability spine.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlEvent {
    /// LOO-CV re-selected the kernel bandwidth (a retrain).
    Reselected {
        /// The bandwidth chosen.
        bandwidth: f64,
    },
    /// A recorded pair moved the adaptive threshold Γ.
    GammaUpdated {
        /// The new Γ.
        gamma: f64,
    },
}

/// The fitness-approximation controller: dataset + NW model + threshold.
#[derive(Debug, Clone)]
pub struct SurrogateController {
    dataset: Dataset,
    model: NadarayaWatson,
    policy: ThresholdPolicy,
    /// Cached Γ, recomputed on every insertion.
    gamma: f64,
    /// Bandwidth grid for LOO-CV (empty = default grid).
    grid: Vec<f64>,
    /// Retrain (LOO-CV) every `retrain_every` insertions (1 = paper's
    /// "applies a new training/validation step" after every addition).
    pub retrain_every: usize,
    inserts_since_retrain: usize,
    /// Decision counters.
    pub stats: ControlStats,
    /// Undrained model-management events (retrains, Γ moves).
    events: Vec<ControlEvent>,
    /// Neighborhood size for truncated prediction and large-dataset
    /// LOO-CV (0 = exact, all points — the legacy quadratic path).
    pub neighbor_k: usize,
    /// Persistent LOO-CV state: the pairwise-distance scratch survives
    /// across reselections and is *extended* by the rows recorded since,
    /// instead of being rebuilt from scratch each time.
    selector: BandwidthSelector,
}

impl SurrogateController {
    /// Creates a controller for points within `bounds` producing
    /// `n_outputs` metrics.
    pub fn new(bounds: Bounds, n_outputs: usize, policy: ThresholdPolicy) -> Self {
        SurrogateController {
            dataset: Dataset::new(bounds, n_outputs),
            model: NadarayaWatson {
                kernel: Kernel::Gaussian,
                bandwidth: 0.1,
            },
            policy,
            gamma: 0.0,
            grid: Vec::new(),
            retrain_every: 1,
            inserts_since_retrain: 0,
            stats: ControlStats::default(),
            events: Vec::new(),
            neighbor_k: DEFAULT_NEIGHBOR_K,
            selector: BandwidthSelector::new(),
        }
    }

    /// Uses a non-default kernel (ablation).
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.model.kernel = kernel;
        self
    }

    /// Rebuilds a controller from journaled state, bitwise.
    ///
    /// Unlike [`SurrogateController::pretrain`], nothing is recomputed:
    /// the bandwidth, Γ, counters and — critically — the
    /// `inserts_since_retrain` phase of the amortized reselection cycle
    /// are installed exactly as captured, so a resumed run reselects its
    /// bandwidth at the same absolute record counts as an uninterrupted
    /// one. (A pretrain-based restore would reset the phase to zero and
    /// drift every later reselection by up to `retrain_every − 1`
    /// records.)
    ///
    /// Derived acceleration state is *not* journaled: the dataset's
    /// KD-tree arrives already rebuilt (CSV load goes through the bulk
    /// path) and the LOO-CV selector starts empty, so its distance
    /// scratch is rebuilt on the first post-resume reselection. Both are
    /// deterministic functions of the dataset and never leak into
    /// answers, so a resumed run stays bitwise an uninterrupted one.
    /// `neighbor_k` is config, not state — the caller re-applies it after
    /// restore, exactly as at construction.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        dataset: Dataset,
        kernel: Kernel,
        bandwidth: f64,
        policy: ThresholdPolicy,
        gamma: f64,
        retrain_every: usize,
        inserts_since_retrain: usize,
        stats: ControlStats,
    ) -> Self {
        SurrogateController {
            dataset,
            model: NadarayaWatson { kernel, bandwidth },
            policy,
            gamma,
            grid: Vec::new(),
            retrain_every,
            inserts_since_retrain,
            stats,
            events: Vec::new(),
            neighbor_k: DEFAULT_NEIGHBOR_K,
            selector: BandwidthSelector::new(),
        }
    }

    /// Drains the model-management events logged since the last drain
    /// (in the order they happened).
    pub fn take_events(&mut self) -> Vec<ControlEvent> {
        std::mem::take(&mut self.events)
    }

    /// Insertions since the last LOO-CV reselection (the amortization
    /// phase; journaled so resume keeps the reselection cadence aligned).
    pub fn inserts_since_retrain(&self) -> usize {
        self.inserts_since_retrain
    }

    /// Access to the dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The current model (kernel + selected bandwidth).
    pub fn model(&self) -> NadarayaWatson {
        self.model
    }

    /// The current threshold Γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Decides how to answer for `point`, updating the counters.
    pub fn decide(&mut self, point: &[i64]) -> Decision {
        if let Some(cached) = self.dataset.get(point) {
            self.stats.cached += 1;
            return Decision::Cached(cached.to_vec());
        }
        if let Some(phi) = phi_n(&self.dataset, point, 1) {
            if phi <= self.gamma {
                if let Some(est) = self
                    .model
                    .predict_topk(&self.dataset, point, self.neighbor_k)
                {
                    self.stats.estimated += 1;
                    return Decision::Estimate(est);
                }
            }
        }
        self.stats.evaluated += 1;
        Decision::Evaluate
    }

    /// Peeks at the decision without touching counters. This is the pure
    /// read-only core shared by [`SurrogateController::decide`] and the
    /// parallel decide phase of [`SurrogateController::decide_batch`].
    pub fn peek(&self, point: &[i64]) -> Decision {
        if let Some(cached) = self.dataset.get(point) {
            return Decision::Cached(cached.to_vec());
        }
        if let Some(phi) = phi_n(&self.dataset, point, 1) {
            if phi <= self.gamma {
                if let Some(est) = self
                    .model
                    .predict_topk(&self.dataset, point, self.neighbor_k)
                {
                    return Decision::Estimate(est);
                }
            }
        }
        Decision::Evaluate
    }

    /// Decides a whole generation at once against an immutable snapshot of
    /// the dataset — the read-only *decide* phase of the staged batch
    /// pipeline. Any bandwidth left stale by amortized recording is
    /// refreshed first, then every point is peeked (in parallel when
    /// `parallel` is set) and the counters are tallied serially in input
    /// order.
    ///
    /// Because the snapshot is fixed for the whole batch and `peek` is
    /// pure, the returned decisions are identical for the parallel and
    /// serial paths — thread count cannot leak into the answers.
    pub fn decide_batch(&mut self, points: &[Vec<i64>], parallel: bool) -> Vec<Decision> {
        self.refresh_model();
        let decisions: Vec<Decision> = if parallel {
            points.par_iter().map(|p| self.peek(p)).collect()
        } else {
            points.iter().map(|p| self.peek(p)).collect()
        };
        for d in &decisions {
            match d {
                Decision::Cached(_) => self.stats.cached += 1,
                Decision::Estimate(_) => self.stats.estimated += 1,
                Decision::Evaluate => self.stats.evaluated += 1,
            }
        }
        decisions
    }

    /// Re-runs LOO-CV bandwidth selection if insertions happened since the
    /// last selection. With `retrain_every == 1` (the paper's policy) the
    /// model can never be stale and this is a no-op; with amortized
    /// recording this is the point where the batch pipeline pays the
    /// selection cost once per generation instead of once per insert.
    pub fn refresh_model(&mut self) {
        if self.inserts_since_retrain > 0 {
            self.model.bandwidth = self.selector.select(
                &self.dataset,
                self.model.kernel,
                &self.grid,
                self.neighbor_k,
            );
            self.inserts_since_retrain = 0;
            self.events.push(ControlEvent::Reselected {
                bandwidth: self.model.bandwidth,
            });
        }
    }

    /// Feeds back a fresh tool result: inserts the pair, updates Γ, and —
    /// every [`SurrogateController::retrain_every`]-th insertion —
    /// re-validates the model (LOO-CV bandwidth). Between reselections the
    /// bandwidth is *stale*; [`SurrogateController::decide_batch`] refreshes
    /// it before the next generation's decisions, so amortization changes
    /// when selection runs, never which data decisions see. Returns whether
    /// the pair entered the dataset: non-finite outputs and
    /// penalty-magnitude sentinels are refused (defense in depth — the
    /// fitness layer already gates them, but one poisoned pair skews
    /// Nadaraya-Watson estimates for every neighboring query, so the
    /// dataset defends itself too).
    pub fn record(&mut self, point: Vec<i64>, outputs: Vec<f64>) -> bool {
        if !credible(&outputs) {
            return false;
        }
        self.dataset.insert(point, outputs);
        self.inserts_since_retrain += 1;
        if self.inserts_since_retrain >= self.retrain_every {
            self.model.bandwidth = self.selector.select(
                &self.dataset,
                self.model.kernel,
                &self.grid,
                self.neighbor_k,
            );
            self.inserts_since_retrain = 0;
            self.events.push(ControlEvent::Reselected {
                bandwidth: self.model.bandwidth,
            });
        }
        self.gamma = self.policy.gamma(&self.dataset);
        self.events
            .push(ControlEvent::GammaUpdated { gamma: self.gamma });
        true
    }

    /// Pre-trains on an existing synthetic dataset (the paper's M ≈ 100
    /// random Vivado calls before exploration starts). Pairs with
    /// non-credible outputs (see [`SurrogateController::record`]) are
    /// skipped.
    pub fn pretrain(&mut self, mut pairs: Vec<(Vec<i64>, Vec<f64>)>) {
        pairs.retain(|(_, o)| credible(o));
        self.dataset.insert_bulk(pairs);
        self.model.bandwidth = self.selector.select(
            &self.dataset,
            self.model.kernel,
            &self.grid,
            self.neighbor_k,
        );
        self.gamma = self.policy.gamma(&self.dataset);
        self.inserts_since_retrain = 0;
        self.events.push(ControlEvent::Reselected {
            bandwidth: self.model.bandwidth,
        });
        self.events
            .push(ControlEvent::GammaUpdated { gamma: self.gamma });
    }

    /// Direct model prediction regardless of the control policy (used for
    /// accuracy probes). Honors the configured truncation.
    pub fn predict(&self, point: &[i64]) -> Option<Vec<f64>> {
        self.model
            .predict_topk(&self.dataset, point, self.neighbor_k)
    }
}

/// Output magnitudes at or above this are treated as failure sentinels,
/// not measurements (the fitness layer's penalty vectors use 1e9).
const MAX_CREDIBLE_OUTPUT: f64 = 1e9;

/// Whether an output vector looks like a genuine measurement.
fn credible(outputs: &[f64]) -> bool {
    outputs
        .iter()
        .all(|v| v.is_finite() && v.abs() < MAX_CREDIBLE_OUTPUT)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> Bounds {
        Bounds::new(vec![(0, 1000)])
    }

    fn truth(x: i64) -> Vec<f64> {
        let xf = x as f64 / 1000.0;
        vec![2.0 * xf + 0.3, 1.0 - xf]
    }

    fn pretrained(policy: ThresholdPolicy) -> SurrogateController {
        let mut c = SurrogateController::new(bounds(), 2, policy);
        let pairs: Vec<_> = (0..=20)
            .map(|i| {
                let x = i * 50;
                (vec![x], truth(x))
            })
            .collect();
        c.pretrain(pairs);
        c
    }

    #[test]
    fn case1_exact_point_is_cached() {
        let mut c = pretrained(ThresholdPolicy::paper_default());
        match c.decide(&[500]) {
            Decision::Cached(v) => assert_eq!(v, truth(500)),
            other => panic!("expected Cached, got {other:?}"),
        }
        assert_eq!(c.stats.cached, 1);
    }

    #[test]
    fn case2_near_point_is_estimated() {
        let mut c = pretrained(ThresholdPolicy::paper_default());
        // Grid spacing 50/1000 = 0.05 normalized → Γ = 0.05. Point 510 is
        // 0.01 from the nearest sample → estimate.
        match c.decide(&[510]) {
            Decision::Estimate(v) => {
                assert!((v[0] - truth(510)[0]).abs() < 0.05, "{v:?}");
            }
            other => panic!("expected Estimate, got {other:?}"),
        }
        assert_eq!(c.stats.estimated, 1);
    }

    #[test]
    fn case3_far_point_is_evaluated_and_learned() {
        // With the adaptive policy on a sparse dataset Γ would be huge and
        // everything would be estimated; a small fixed Γ forces evaluation.
        let mut c = pretrained(ThresholdPolicy::Fixed(0.001));
        match c.decide(&[777]) {
            Decision::Evaluate => {}
            other => panic!("expected Evaluate, got {other:?}"),
        }
        c.record(vec![777], truth(777));
        // Now it's cached.
        assert!(matches!(c.decide(&[777]), Decision::Cached(_)));
        assert_eq!(c.stats.evaluated, 1);
        assert_eq!(c.stats.cached, 1);
    }

    #[test]
    fn never_policy_always_evaluates_new_points() {
        let mut c = pretrained(ThresholdPolicy::Never);
        assert!(matches!(c.decide(&[510]), Decision::Evaluate));
        // …but exact hits still answer from cache (paper case 1).
        assert!(matches!(c.decide(&[500]), Decision::Cached(_)));
    }

    #[test]
    fn gamma_updates_on_record() {
        let mut c = pretrained(ThresholdPolicy::paper_default());
        let g0 = c.gamma();
        assert!(g0 > 0.0);
        // Insert a point very close to an existing one → Γ shrinks.
        c.record(vec![501], truth(501));
        assert!(c.gamma() < g0);
    }

    #[test]
    fn retraining_selects_bandwidth() {
        let c = pretrained(ThresholdPolicy::paper_default());
        // Smooth dense data: bandwidth must not be the huge end of the grid.
        assert!(c.model().bandwidth < 0.5);
    }

    #[test]
    fn empty_controller_evaluates_everything() {
        let mut c = SurrogateController::new(bounds(), 2, ThresholdPolicy::paper_default());
        assert!(matches!(c.decide(&[3]), Decision::Evaluate));
        assert_eq!(c.stats.evaluated, 1);
    }

    #[test]
    fn savings_ratio() {
        let mut c = pretrained(ThresholdPolicy::paper_default());
        let _ = c.decide(&[500]); // cached
        let _ = c.decide(&[510]); // estimate
        let _ = c.decide(&[503]); // estimate (close to grid)
        let s = c.stats;
        assert_eq!(s.total(), 3);
        assert!(s.savings_ratio() > 0.99);
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = pretrained(ThresholdPolicy::paper_default());
        let _ = c.peek(&[500]);
        assert_eq!(c.stats.total(), 0);
        let _ = c.decide(&[500]);
        assert_eq!(c.stats.total(), 1);
    }

    #[test]
    fn record_refuses_penalty_and_non_finite_outputs() {
        let mut c = pretrained(ThresholdPolicy::paper_default());
        let n0 = c.dataset().len();
        let g0 = c.gamma();
        assert!(!c.record(vec![333], vec![0.0, 1e9]));
        assert!(!c.record(vec![334], vec![f64::NAN, 0.5]));
        assert!(!c.record(vec![335], vec![f64::INFINITY, 0.5]));
        assert_eq!(
            c.dataset().len(),
            n0,
            "sentinel outputs must not be learned"
        );
        assert_eq!(c.gamma(), g0, "refused pairs must not move Γ");
        assert!(c.record(vec![336], truth(336)));
        assert_eq!(c.dataset().len(), n0 + 1);
    }

    #[test]
    fn pretrain_skips_sentinel_pairs() {
        let mut c = SurrogateController::new(bounds(), 2, ThresholdPolicy::paper_default());
        c.pretrain(vec![
            (vec![0], truth(0)),
            (vec![500], vec![1e9, 0.0]), // a failed sample's penalty vector
            (vec![1000], truth(1000)),
        ]);
        assert_eq!(c.dataset().len(), 2);
        assert!(c.dataset().get(&[500]).is_none());
    }

    #[test]
    fn decide_batch_matches_sequential_peeks() {
        let points: Vec<Vec<i64>> = vec![vec![500], vec![510], vec![777], vec![500]];
        let a = pretrained(ThresholdPolicy::paper_default());
        let expect: Vec<Decision> = points.iter().map(|p| a.peek(p)).collect();
        for parallel in [false, true] {
            let mut c = pretrained(ThresholdPolicy::paper_default());
            let got = c.decide_batch(&points, parallel);
            assert_eq!(got, expect, "parallel = {parallel}");
            assert_eq!(c.stats.total(), points.len() as u64);
            assert_eq!(c.stats.cached, 2);
        }
    }

    #[test]
    fn parallel_and_serial_batches_agree_bitwise() {
        let points: Vec<Vec<i64>> = (0..64).map(|i| vec![i * 16 + 3]).collect();
        let mut serial = pretrained(ThresholdPolicy::paper_default());
        let mut par = pretrained(ThresholdPolicy::paper_default());
        let ds = serial.decide_batch(&points, false);
        let dp = par.decide_batch(&points, true);
        for (a, b) in ds.iter().zip(&dp) {
            match (a, b) {
                (Decision::Estimate(x), Decision::Estimate(y))
                | (Decision::Cached(x), Decision::Cached(y)) => {
                    for (u, v) in x.iter().zip(y) {
                        assert_eq!(u.to_bits(), v.to_bits());
                    }
                }
                (Decision::Evaluate, Decision::Evaluate) => {}
                other => panic!("decisions diverged: {other:?}"),
            }
        }
        assert_eq!(serial.stats, par.stats);
    }

    #[test]
    fn amortized_record_defers_reselection() {
        let mut eager = pretrained(ThresholdPolicy::paper_default());
        let mut lazy = pretrained(ThresholdPolicy::paper_default());
        lazy.retrain_every = 8;
        let h0 = lazy.model().bandwidth;
        // Pile correlated points into one corner: the eager controller's
        // bandwidth moves, the lazy one's must not until refreshed.
        for x in [901, 903, 905, 907] {
            eager.record(vec![x], truth(x));
            lazy.record(vec![x], truth(x));
        }
        assert_eq!(lazy.model().bandwidth, h0, "reselection must be deferred");
        // Γ still tracks every insertion even when the bandwidth lags.
        assert_eq!(lazy.gamma(), eager.gamma());
        // A batch decide refreshes the stale bandwidth to the eager value:
        // both controllers hold identical datasets, so LOO-CV agrees.
        let _ = lazy.decide_batch(&[vec![910]], false);
        assert_eq!(lazy.model().bandwidth, eager.model().bandwidth);
    }

    #[test]
    fn restore_preserves_amortization_phase() {
        let policy = ThresholdPolicy::paper_default();
        let mut a = pretrained(policy);
        a.retrain_every = 4;
        for x in [901, 903] {
            a.record(vec![x], truth(x)); // phase is now 2 of 4
        }
        assert_eq!(a.inserts_since_retrain(), 2);

        // Bitwise restore carries the phase...
        let mut b = SurrogateController::restore(
            a.dataset().clone(),
            a.model().kernel,
            a.model().bandwidth,
            policy,
            a.gamma(),
            a.retrain_every,
            a.inserts_since_retrain(),
            a.stats,
        );
        // ...while a pretrain-style rebuild resets it to 0 (the off-by-K
        // drift this constructor exists to prevent).
        let mut c = SurrogateController::new(bounds(), 2, policy);
        c.pretrain(
            a.dataset()
                .raw_points()
                .iter()
                .zip(a.dataset().outputs())
                .map(|(p, o)| (p.clone(), o.clone()))
                .collect(),
        );
        c.retrain_every = a.retrain_every;

        // Two more records cross the a/b reselection boundary (2+2 = 4).
        for x in [905, 907] {
            a.record(vec![x], truth(x));
            b.record(vec![x], truth(x));
            c.record(vec![x], truth(x));
        }
        assert_eq!(a.inserts_since_retrain(), 0, "a reselected at 4 inserts");
        assert_eq!(
            b.model().bandwidth.to_bits(),
            a.model().bandwidth.to_bits(),
            "restored controller must reselect at the same absolute count"
        );
        assert_eq!(b.inserts_since_retrain(), a.inserts_since_retrain());
        assert_eq!(
            c.inserts_since_retrain(),
            2,
            "the naive rebuild is mid-cycle and has not reselected"
        );
    }

    #[test]
    fn control_events_are_logged_and_drained() {
        let mut c = pretrained(ThresholdPolicy::paper_default());
        let setup = c.take_events();
        assert!(
            setup
                .iter()
                .any(|e| matches!(e, ControlEvent::Reselected { .. })),
            "pretrain must log its reselection: {setup:?}"
        );
        c.record(vec![911], truth(911)); // retrain_every = 1 → reselect + Γ
        let evs = c.take_events();
        assert!(matches!(evs[0], ControlEvent::Reselected { bandwidth } if bandwidth > 0.0));
        assert!(matches!(evs[1], ControlEvent::GammaUpdated { gamma } if gamma > 0.0));
        assert!(c.take_events().is_empty(), "drain must empty the log");
    }

    #[test]
    fn refresh_model_is_noop_when_fresh() {
        let mut c = pretrained(ThresholdPolicy::paper_default());
        c.record(vec![911], truth(911)); // retrain_every = 1 → reselects now
        let h = c.model().bandwidth;
        c.refresh_model();
        assert_eq!(c.model().bandwidth, h);
    }

    #[test]
    fn default_truncation_is_bitwise_exact_below_k_rows() {
        // With fewer dataset rows than neighbor_k, the truncated
        // estimator must reproduce the exact one bit for bit — the whole
        // candidate set is kept and re-accumulated in row order.
        let trunc = pretrained(ThresholdPolicy::paper_default());
        let mut exact = pretrained(ThresholdPolicy::paper_default());
        exact.neighbor_k = 0;
        assert!(trunc.dataset().len() <= trunc.neighbor_k);
        for x in (0..1000).step_by(37) {
            let a = exact.predict(&[x]).unwrap();
            let b = trunc.predict(&[x]).unwrap();
            for (u, v) in a.iter().zip(&b) {
                assert_eq!(u.to_bits(), v.to_bits(), "x = {x}");
            }
        }
    }

    #[test]
    fn estimates_track_truth_on_smooth_metrics() {
        let c = pretrained(ThresholdPolicy::paper_default());
        let mut worst = 0.0f64;
        for x in (25..1000).step_by(100) {
            let est = c.predict(&[x]).unwrap();
            let t = truth(x);
            worst = worst.max((est[0] - t[0]).abs()).max((est[1] - t[1]).abs());
        }
        assert!(worst < 0.08, "worst error {worst}");
    }
}
