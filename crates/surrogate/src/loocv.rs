//! Leave-one-out cross-validation for bandwidth selection.
//!
//! "We adopt Leave-One-Out cross-validation given the small size of the
//! dataset and the NWM cheap computational cost" (§III-C). Each candidate
//! bandwidth is scored by predicting every dataset point from the others;
//! the winner minimizes the summed per-output MSE (outputs are variance-
//! normalized first so a large-magnitude metric cannot drown the rest).

use crate::dataset::Dataset;
use crate::kernel::Kernel;
use crate::nw::NadarayaWatson;

/// Default candidate grid: log-spaced bandwidths in normalized units.
pub fn default_bandwidth_grid() -> Vec<f64> {
    vec![
        0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.18, 0.27, 0.40, 0.60, 1.0,
    ]
}

/// Shared scratch for scoring many bandwidths on one dataset: the
/// per-output normalization, the full pairwise squared-distance matrix,
/// and each row's nearest other row. Building it costs one O(M²·d) pass;
/// every `(kernel, h)` score afterwards is O(M²·m) with zero allocation
/// and zero distance recomputation — the old path re-derived all of this
/// per grid candidate.
struct LooScratch {
    /// Per-output standard deviation (≥ 1e-12) for error normalization.
    sd: Vec<f64>,
    /// Flattened M×M squared normalized distances (`d2[i * n + j]`).
    d2: Vec<f64>,
    /// Per-row index of the nearest other row (kernel-underflow fallback).
    nearest: Vec<usize>,
}

impl LooScratch {
    /// Builds the scratch; `None` for datasets with fewer than 2 points.
    fn build(dataset: &Dataset) -> Option<LooScratch> {
        let n = dataset.len();
        if n < 2 {
            return None;
        }
        let m = dataset.n_outputs();
        let mut mean = vec![0.0f64; m];
        for out in dataset.outputs() {
            for (a, y) in mean.iter_mut().zip(out) {
                *a += y;
            }
        }
        for a in &mut mean {
            *a /= n as f64;
        }
        let mut var = vec![0.0f64; m];
        for out in dataset.outputs() {
            for ((v, y), mu) in var.iter_mut().zip(out).zip(&mean) {
                *v += (y - mu) * (y - mu);
            }
        }
        let sd: Vec<f64> = var
            .iter()
            .map(|v| (v / n as f64).sqrt().max(1e-12))
            .collect();

        // Pairwise distances: compute the upper triangle, mirror the rest
        // (squared Euclidean distance is exactly symmetric).
        let mut d2 = vec![0.0f64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = dataset.dist2_to(&dataset.points()[i], j);
                d2[i * n + j] = v;
                d2[j * n + i] = v;
            }
        }
        let nearest: Vec<usize> = (0..n)
            .map(|i| {
                let row = &d2[i * n..(i + 1) * n];
                let mut best = usize::MAX;
                let mut best_d2 = f64::INFINITY;
                for (j, &v) in row.iter().enumerate() {
                    if j != i && v < best_d2 {
                        best_d2 = v;
                        best = j;
                    }
                }
                best
            })
            .collect();
        Some(LooScratch { sd, d2, nearest })
    }

    /// LOO-CV error of `(kernel, h)` using the precomputed geometry. The
    /// arithmetic — accumulation order included — mirrors
    /// [`NadarayaWatson::predict_norm_into`] exactly, so scoring through
    /// the scratch yields bit-identical errors to the direct path.
    fn score(&self, dataset: &Dataset, kernel: Kernel, bandwidth: f64) -> f64 {
        let n = dataset.len();
        let m = dataset.n_outputs();
        let mut num = vec![0.0f64; m];
        let mut total = 0.0f64;
        for i in 0..n {
            let row = &self.d2[i * n..(i + 1) * n];
            num.fill(0.0);
            let mut den = 0.0f64;
            for (j, out) in dataset.outputs().iter().enumerate() {
                if j == i {
                    continue;
                }
                let w = kernel.weight(row[j], bandwidth);
                den += w;
                for (acc, y) in num.iter_mut().zip(out) {
                    *acc += w * y;
                }
            }
            let truth = &dataset.outputs()[i];
            if den <= f64::MIN_POSITIVE * 1e3 {
                // All weights vanished: nearest-neighbour fallback.
                let fb = &dataset.outputs()[self.nearest[i]];
                for ((p, t), s) in fb.iter().zip(truth).zip(&self.sd) {
                    let e = (p - t) / s;
                    total += e * e;
                }
            } else {
                for ((p, t), s) in num.iter().zip(truth).zip(&self.sd) {
                    let e = (p / den - t) / s;
                    total += e * e;
                }
            }
        }
        total / (n * m) as f64
    }
}

/// LOO-CV mean squared error of `(kernel, h)` on the dataset, summed over
/// variance-normalized outputs. Returns `None` for datasets with fewer
/// than 2 points (no held-out prediction possible).
pub fn loo_mse(dataset: &Dataset, kernel: Kernel, bandwidth: f64) -> Option<f64> {
    LooScratch::build(dataset).map(|s| s.score(dataset, kernel, bandwidth))
}

/// Selects the bandwidth minimizing LOO-CV error over `grid` (the default
/// grid when empty). Falls back to `NadarayaWatson::default().bandwidth`
/// when the dataset is too small to validate.
///
/// The pairwise distance matrix and output normalization are computed
/// once and shared across the whole grid, so selection costs
/// O(M²·d + M²·m·|grid|) instead of the former O(M²·(d + m)·|grid|) with
/// per-candidate re-normalization and allocation.
pub fn select_bandwidth(dataset: &Dataset, kernel: Kernel, grid: &[f64]) -> f64 {
    let grid_owned;
    let grid = if grid.is_empty() {
        grid_owned = default_bandwidth_grid();
        &grid_owned[..]
    } else {
        grid
    };
    let mut best = NadarayaWatson::default().bandwidth;
    let Some(scratch) = LooScratch::build(dataset) else {
        return best;
    };
    let mut best_err = f64::INFINITY;
    for &h in grid {
        if h <= 0.0 {
            continue;
        }
        let err = scratch.score(dataset, kernel, h);
        if err < best_err {
            best_err = err;
            best = h;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Bounds, Dataset};

    fn smooth_dataset(n: usize) -> Dataset {
        // Smooth quadratic surface over one variable.
        let mut d = Dataset::new(Bounds::new(vec![(0, 1000)]), 1);
        for i in 0..n {
            let x = (i * 1000 / (n - 1)) as i64;
            let xf = x as f64 / 1000.0;
            d.insert(vec![x], vec![3.0 * xf * xf + 0.5 * xf]);
        }
        d
    }

    #[test]
    fn loo_requires_two_points() {
        let mut d = Dataset::new(Bounds::new(vec![(0, 10)]), 1);
        assert!(loo_mse(&d, Kernel::Gaussian, 0.1).is_none());
        d.insert(vec![0], vec![1.0]);
        assert!(loo_mse(&d, Kernel::Gaussian, 0.1).is_none());
        d.insert(vec![5], vec![2.0]);
        assert!(loo_mse(&d, Kernel::Gaussian, 0.1).is_some());
    }

    #[test]
    fn smooth_data_prefers_moderate_bandwidth() {
        let d = smooth_dataset(40);
        let h = select_bandwidth(&d, Kernel::Gaussian, &[]);
        // On a smooth function with dense samples, very large bandwidths
        // (global averaging) must lose.
        assert!(h < 0.5, "selected h = {h}");
        let err_best = loo_mse(&d, Kernel::Gaussian, h).unwrap();
        let err_huge = loo_mse(&d, Kernel::Gaussian, 1.0).unwrap();
        assert!(err_best < err_huge);
    }

    #[test]
    fn selection_minimizes_over_grid() {
        let d = smooth_dataset(25);
        let grid = [0.02, 0.1, 0.5];
        let h = select_bandwidth(&d, Kernel::Gaussian, &grid);
        let err_h = loo_mse(&d, Kernel::Gaussian, h).unwrap();
        for &g in &grid {
            assert!(err_h <= loo_mse(&d, Kernel::Gaussian, g).unwrap() + 1e-15);
        }
    }

    #[test]
    fn tiny_dataset_falls_back_to_default() {
        let d = Dataset::new(Bounds::new(vec![(0, 10)]), 1);
        let h = select_bandwidth(&d, Kernel::Gaussian, &[]);
        assert_eq!(h, NadarayaWatson::default().bandwidth);
    }

    #[test]
    fn normalization_balances_outputs() {
        // One output is 1000× the other; LOO error must not be dominated.
        let mut d = Dataset::new(Bounds::new(vec![(0, 100)]), 2);
        for x in (0..=100).step_by(10) {
            let xf = x as f64;
            d.insert(vec![x], vec![xf * 1000.0, xf]);
        }
        let e = loo_mse(&d, Kernel::Gaussian, 0.1).unwrap();
        // Both outputs are the same shape, so normalized error is modest.
        assert!(e < 1.0, "e = {e}");
    }

    #[test]
    fn non_positive_bandwidths_skipped() {
        let d = smooth_dataset(10);
        let h = select_bandwidth(&d, Kernel::Gaussian, &[-0.5, 0.0, 0.2]);
        assert_eq!(h, 0.2);
    }
}
