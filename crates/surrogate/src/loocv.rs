//! Leave-one-out cross-validation for bandwidth selection.
//!
//! "We adopt Leave-One-Out cross-validation given the small size of the
//! dataset and the NWM cheap computational cost" (§III-C). Each candidate
//! bandwidth is scored by predicting every dataset point from the others;
//! the winner minimizes the summed per-output MSE (outputs are variance-
//! normalized first so a large-magnitude metric cannot drown the rest).
//!
//! Selection cost is kept sub-quadratic in the dataset size M by a
//! persistent [`BandwidthSelector`]:
//!
//! * **Small datasets** (≤ [`BandwidthSelector::dense_cap`] rows) keep the
//!   full pairwise squared-distance matrix and *extend* it with the new
//!   rows/columns on each reselect — O(ΔM·M·d) instead of the former
//!   O(M²·d) rebuild — with every entry bitwise the recomputed one.
//! * **Large datasets** switch to a truncated estimate: a deterministic
//!   stride-sample of at most [`BandwidthSelector::sample_cap`] LOO rows,
//!   each scored against only its `k` nearest neighbours (served by the
//!   dataset's KD-tree), making a full grid selection
//!   O(S·k·(log M + m·|grid|)) — independent of M up to the tree query.
//!
//! The one-shot [`loo_mse`] / [`select_bandwidth`] functions keep the
//! legacy exact dense behavior for callers without a persistent selector
//! (ablation benches, tests).

use crate::dataset::Dataset;
use crate::kernel::{dist2, Kernel};
use crate::nw::NadarayaWatson;

/// Default candidate grid: log-spaced bandwidths in normalized units.
pub fn default_bandwidth_grid() -> Vec<f64> {
    vec![
        0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.18, 0.27, 0.40, 0.60, 1.0,
    ]
}

/// Largest dataset scored through the dense incremental matrix.
const DEFAULT_DENSE_CAP: usize = 512;

/// LOO rows scored per selection in truncated mode.
const DEFAULT_SAMPLE_CAP: usize = 512;

/// Precomputed geometry shared across one selection's whole grid.
#[derive(Debug, Clone)]
enum Geometry {
    /// Full pairwise matrix, extended incrementally as the dataset grows.
    Dense {
        /// Row-major `stride × stride` buffer; the valid block is
        /// `rows × rows` (`d2[i * stride + j]`).
        d2: Vec<f64>,
        /// Allocated row length (`≥ rows`, grows by powers of two).
        stride: usize,
        /// Per-row index of the nearest other row (underflow fallback);
        /// lowest index on distance ties.
        nearest: Vec<u32>,
    },
    /// Stride-sampled truncated lists for large datasets, rebuilt from
    /// the KD-tree on every selection (the sample and `k` change with M).
    Truncated {
        /// One scored row per entry.
        lists: Vec<RowList>,
    },
}

/// One sampled LOO row in truncated mode.
#[derive(Debug, Clone)]
struct RowList {
    /// The held-out dataset row.
    row: u32,
    /// Its nearest other row (underflow fallback; lowest index on ties).
    nearest: u32,
    /// The k nearest `(row, d²)` neighbours, ascending by row index so
    /// accumulation matches the exact path's iteration order.
    pairs: Vec<(u32, f64)>,
}

/// Geometry plus per-output normalization for one dataset snapshot.
#[derive(Debug, Clone)]
struct LooScratch {
    /// Dataset rows covered by `geometry`.
    rows: usize,
    /// Per-output standard deviation (≥ 1e-12) for error normalization.
    sd: Vec<f64>,
    geometry: Geometry,
}

/// Persistent LOO-CV state: owns the scratch across reselections so the
/// distance matrix is extended, not recomputed. One selector pairs with
/// one growing dataset (the controller owns both); feeding it a
/// *different* dataset of the same size is not detected — call
/// [`BandwidthSelector::invalidate`] when swapping datasets.
#[derive(Debug, Clone)]
pub struct BandwidthSelector {
    scratch: Option<LooScratch>,
    /// Largest dataset kept as a dense incremental matrix; beyond this
    /// (and with a non-zero `neighbor_k`) selection goes truncated.
    pub dense_cap: usize,
    /// Maximum LOO rows scored per selection in truncated mode.
    pub sample_cap: usize,
}

impl Default for BandwidthSelector {
    fn default() -> Self {
        BandwidthSelector {
            scratch: None,
            dense_cap: DEFAULT_DENSE_CAP,
            sample_cap: DEFAULT_SAMPLE_CAP,
        }
    }
}

impl BandwidthSelector {
    /// A selector with no cached geometry yet.
    pub fn new() -> BandwidthSelector {
        BandwidthSelector::default()
    }

    /// Drops the cached geometry; the next selection rebuilds from
    /// scratch. Used on journal restore: rebuilding is a deterministic
    /// function of the dataset, so a resumed run's selections stay
    /// bitwise those of the uninterrupted one.
    pub fn invalidate(&mut self) {
        self.scratch = None;
    }

    /// Selects the bandwidth minimizing LOO-CV error over `grid` (the
    /// default grid when empty), reusing and extending the cached
    /// geometry. `neighbor_k` is the prediction-side truncation (0 =
    /// exact); it also bounds the truncated-mode neighbourhoods.
    pub fn select(
        &mut self,
        dataset: &Dataset,
        kernel: Kernel,
        grid: &[f64],
        neighbor_k: usize,
    ) -> f64 {
        let grid_owned;
        let grid = if grid.is_empty() {
            grid_owned = default_bandwidth_grid();
            &grid_owned[..]
        } else {
            grid
        };
        let mut best = NadarayaWatson::default().bandwidth;
        self.sync(dataset, neighbor_k);
        let Some(scratch) = &self.scratch else {
            return best;
        };
        let mut best_err = f64::INFINITY;
        for &h in grid {
            if h <= 0.0 {
                continue;
            }
            let err = scratch.score(dataset, kernel, h);
            if err < best_err {
                best_err = err;
                best = h;
            }
        }
        best
    }

    /// LOO-CV error of `(kernel, bandwidth)` through the persistent
    /// scratch (`None` below 2 rows) — the testable core of
    /// [`BandwidthSelector::select`], exposed so equivalence properties
    /// can compare incremental against recomputed scoring.
    pub fn loo_mse(
        &mut self,
        dataset: &Dataset,
        kernel: Kernel,
        bandwidth: f64,
        neighbor_k: usize,
    ) -> Option<f64> {
        self.sync(dataset, neighbor_k);
        self.scratch
            .as_ref()
            .map(|s| s.score(dataset, kernel, bandwidth))
    }

    /// Brings the scratch up to date with the dataset: recomputes the
    /// output normalization (outputs can be replaced in place), extends
    /// the dense matrix with any new rows, or rebuilds the truncated
    /// sample. Normalization bounds are fixed per dataset, so cached
    /// distances never go stale — only growth has to be folded in.
    fn sync(&mut self, dataset: &Dataset, neighbor_k: usize) {
        let n = dataset.len();
        if n < 2 {
            self.scratch = None;
            return;
        }
        let want_dense = neighbor_k == 0 || n <= self.dense_cap;
        let sd = output_sd(dataset);
        // Decide reuse: dense scratch extends in place; truncated lists
        // are cheap and depend on (n, k), so they rebuild each time.
        let reusable = match &self.scratch {
            Some(LooScratch {
                rows,
                geometry: Geometry::Dense { .. },
                ..
            }) => want_dense && *rows <= n,
            _ => false,
        };
        if !reusable && want_dense {
            self.scratch = Some(LooScratch {
                rows: 0,
                sd: Vec::new(),
                geometry: Geometry::Dense {
                    d2: Vec::new(),
                    stride: 0,
                    nearest: Vec::new(),
                },
            });
        }
        if want_dense {
            let scratch = self.scratch.as_mut().expect("dense scratch installed");
            scratch.sd = sd;
            scratch.extend_dense(dataset, n);
        } else {
            let k = neighbor_k.max(2);
            self.scratch = Some(LooScratch {
                rows: n,
                sd,
                geometry: build_truncated(dataset, k, self.sample_cap),
            });
        }
    }
}

impl LooScratch {
    /// Folds rows `self.rows..n` into the dense matrix: new distances are
    /// computed once and mirrored, existing rows' nearest-neighbour
    /// entries are updated where the newcomer is strictly closer (ties
    /// keep the incumbent lower index). Every entry equals — bitwise —
    /// what a from-scratch rebuild would produce, because each pair goes
    /// through the same [`dist2`] kernel and `(a−b)²` is IEEE-symmetric.
    fn extend_dense(&mut self, dataset: &Dataset, n: usize) {
        let Geometry::Dense {
            d2,
            stride,
            nearest,
        } = &mut self.geometry
        else {
            unreachable!("extend_dense on non-dense geometry");
        };
        let r0 = self.rows;
        if n == r0 {
            return;
        }
        if n > *stride {
            let new_stride = n.next_power_of_two().max(8);
            let mut grown = vec![0.0f64; new_stride * new_stride];
            for i in 0..r0 {
                grown[i * new_stride..i * new_stride + r0]
                    .copy_from_slice(&d2[i * *stride..i * *stride + r0]);
            }
            *d2 = grown;
            *stride = new_stride;
        }
        let s = *stride;
        nearest.resize(n, u32::MAX);
        for i in r0..n {
            let xi = dataset.point(i);
            let mut best = u32::MAX;
            let mut best_d2 = f64::INFINITY;
            for j in 0..i {
                let v = dist2(xi, dataset.point(j));
                d2[i * s + j] = v;
                d2[j * s + i] = v;
                if v < best_d2 {
                    best_d2 = v;
                    best = j as u32;
                }
                let jn = nearest[j];
                if jn == u32::MAX || v < d2[j * s + jn as usize] {
                    nearest[j] = i as u32;
                }
            }
            d2[i * s + i] = 0.0;
            nearest[i] = best;
        }
        self.rows = n;
    }

    /// LOO-CV error of `(kernel, h)` using the precomputed geometry. The
    /// arithmetic — accumulation order included — mirrors
    /// [`NadarayaWatson::predict_norm_into`] exactly, so scoring through
    /// the scratch yields bit-identical errors to the direct path; the
    /// truncated branch likewise mirrors the k-NN prediction path.
    fn score(&self, dataset: &Dataset, kernel: Kernel, bandwidth: f64) -> f64 {
        let n = self.rows;
        let m = dataset.n_outputs();
        let mut num = vec![0.0f64; m];
        let mut total = 0.0f64;
        let mut scored = 0usize;
        match &self.geometry {
            Geometry::Dense {
                d2,
                stride,
                nearest,
            } => {
                for i in 0..n {
                    let row = &d2[i * stride..i * stride + n];
                    num.fill(0.0);
                    let mut den = 0.0f64;
                    for (j, out) in dataset.outputs()[..n].iter().enumerate() {
                        if j == i {
                            continue;
                        }
                        let w = kernel.weight(row[j], bandwidth);
                        den += w;
                        for (acc, y) in num.iter_mut().zip(out) {
                            *acc += w * y;
                        }
                    }
                    self.fold_row(dataset, i, nearest[i] as usize, &num, den, &mut total);
                    scored += 1;
                }
            }
            Geometry::Truncated { lists } => {
                for list in lists {
                    num.fill(0.0);
                    let mut den = 0.0f64;
                    for &(j, d2v) in &list.pairs {
                        let w = kernel.weight(d2v, bandwidth);
                        den += w;
                        for (acc, y) in num.iter_mut().zip(&dataset.outputs()[j as usize]) {
                            *acc += w * y;
                        }
                    }
                    self.fold_row(
                        dataset,
                        list.row as usize,
                        list.nearest as usize,
                        &num,
                        den,
                        &mut total,
                    );
                    scored += 1;
                }
            }
        }
        total / (scored * m) as f64
    }

    /// Accumulates one held-out row's normalized squared error, with the
    /// all-weights-underflow nearest-neighbour fallback.
    fn fold_row(
        &self,
        dataset: &Dataset,
        row: usize,
        nearest: usize,
        num: &[f64],
        den: f64,
        total: &mut f64,
    ) {
        let truth = &dataset.outputs()[row];
        if den <= f64::MIN_POSITIVE * 1e3 {
            let fb = &dataset.outputs()[nearest];
            for ((p, t), s) in fb.iter().zip(truth).zip(&self.sd) {
                let e = (p - t) / s;
                *total += e * e;
            }
        } else {
            for ((p, t), s) in num.iter().zip(truth).zip(&self.sd) {
                let e = (p / den - t) / s;
                *total += e * e;
            }
        }
    }
}

/// Per-output standard deviation (≥ 1e-12) over the whole dataset.
fn output_sd(dataset: &Dataset) -> Vec<f64> {
    let n = dataset.len();
    let m = dataset.n_outputs();
    let mut mean = vec![0.0f64; m];
    for out in dataset.outputs() {
        for (a, y) in mean.iter_mut().zip(out) {
            *a += y;
        }
    }
    for a in &mut mean {
        *a /= n as f64;
    }
    let mut var = vec![0.0f64; m];
    for out in dataset.outputs() {
        for ((v, y), mu) in var.iter_mut().zip(out).zip(&mean) {
            *v += (y - mu) * (y - mu);
        }
    }
    var.iter()
        .map(|v| (v / n as f64).sqrt().max(1e-12))
        .collect()
}

/// Builds the truncated geometry: a deterministic stride-sample of LOO
/// rows (`0, step, 2·step, …` — a pure function of M and the cap), each
/// with its `k` nearest neighbours from the KD-tree. Nothing here depends
/// on tree structure: the k-NN sets are exact and `(d², row)`-ordered.
fn build_truncated(dataset: &Dataset, k: usize, sample_cap: usize) -> Geometry {
    let n = dataset.len();
    let step = n.div_ceil(sample_cap.max(1)).max(1);
    let mut buf: Vec<(f64, usize)> = Vec::new();
    let lists = (0..n)
        .step_by(step)
        .map(|i| {
            dataset.k_nearest(dataset.point(i), k, Some(i), &mut buf);
            let nearest = buf.first().map_or(0, |&(_, j)| j) as u32;
            let mut pairs: Vec<(u32, f64)> = buf.iter().map(|&(d2v, j)| (j as u32, d2v)).collect();
            pairs.sort_unstable_by_key(|&(j, _)| j);
            RowList {
                row: i as u32,
                nearest,
                pairs,
            }
        })
        .collect();
    Geometry::Truncated { lists }
}

/// LOO-CV mean squared error of `(kernel, h)` on the dataset, summed over
/// variance-normalized outputs. Returns `None` for datasets with fewer
/// than 2 points (no held-out prediction possible). One-shot and exact
/// (dense, all rows) regardless of dataset size — the persistent
/// [`BandwidthSelector`] is the sub-quadratic path.
pub fn loo_mse(dataset: &Dataset, kernel: Kernel, bandwidth: f64) -> Option<f64> {
    let mut sel = BandwidthSelector::new();
    sel.loo_mse(dataset, kernel, bandwidth, 0)
}

/// Selects the bandwidth minimizing LOO-CV error over `grid` (the default
/// grid when empty). Falls back to `NadarayaWatson::default().bandwidth`
/// when the dataset is too small to validate. One-shot and exact; the
/// controller's persistent [`BandwidthSelector`] amortizes this across
/// reselections instead.
pub fn select_bandwidth(dataset: &Dataset, kernel: Kernel, grid: &[f64]) -> f64 {
    let mut sel = BandwidthSelector::new();
    sel.select(dataset, kernel, grid, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Bounds, Dataset};

    fn smooth_dataset(n: usize) -> Dataset {
        // Smooth quadratic surface over one variable.
        let mut d = Dataset::new(Bounds::new(vec![(0, 1000)]), 1);
        for i in 0..n {
            let x = (i * 1000 / (n - 1)) as i64;
            let xf = x as f64 / 1000.0;
            d.insert(vec![x], vec![3.0 * xf * xf + 0.5 * xf]);
        }
        d
    }

    #[test]
    fn loo_requires_two_points() {
        let mut d = Dataset::new(Bounds::new(vec![(0, 10)]), 1);
        assert!(loo_mse(&d, Kernel::Gaussian, 0.1).is_none());
        d.insert(vec![0], vec![1.0]);
        assert!(loo_mse(&d, Kernel::Gaussian, 0.1).is_none());
        d.insert(vec![5], vec![2.0]);
        assert!(loo_mse(&d, Kernel::Gaussian, 0.1).is_some());
    }

    #[test]
    fn smooth_data_prefers_moderate_bandwidth() {
        let d = smooth_dataset(40);
        let h = select_bandwidth(&d, Kernel::Gaussian, &[]);
        // On a smooth function with dense samples, very large bandwidths
        // (global averaging) must lose.
        assert!(h < 0.5, "selected h = {h}");
        let err_best = loo_mse(&d, Kernel::Gaussian, h).unwrap();
        let err_huge = loo_mse(&d, Kernel::Gaussian, 1.0).unwrap();
        assert!(err_best < err_huge);
    }

    #[test]
    fn selection_minimizes_over_grid() {
        let d = smooth_dataset(25);
        let grid = [0.02, 0.1, 0.5];
        let h = select_bandwidth(&d, Kernel::Gaussian, &grid);
        let err_h = loo_mse(&d, Kernel::Gaussian, h).unwrap();
        for &g in &grid {
            assert!(err_h <= loo_mse(&d, Kernel::Gaussian, g).unwrap() + 1e-15);
        }
    }

    #[test]
    fn tiny_dataset_falls_back_to_default() {
        let d = Dataset::new(Bounds::new(vec![(0, 10)]), 1);
        let h = select_bandwidth(&d, Kernel::Gaussian, &[]);
        assert_eq!(h, NadarayaWatson::default().bandwidth);
    }

    #[test]
    fn normalization_balances_outputs() {
        // One output is 1000× the other; LOO error must not be dominated.
        let mut d = Dataset::new(Bounds::new(vec![(0, 100)]), 2);
        for x in (0..=100).step_by(10) {
            let xf = x as f64;
            d.insert(vec![x], vec![xf * 1000.0, xf]);
        }
        let e = loo_mse(&d, Kernel::Gaussian, 0.1).unwrap();
        // Both outputs are the same shape, so normalized error is modest.
        assert!(e < 1.0, "e = {e}");
    }

    #[test]
    fn non_positive_bandwidths_skipped() {
        let d = smooth_dataset(10);
        let h = select_bandwidth(&d, Kernel::Gaussian, &[-0.5, 0.0, 0.2]);
        assert_eq!(h, 0.2);
    }

    #[test]
    fn incremental_extension_matches_fresh_build_bitwise() {
        // Grow a dataset in uneven batches; a selector that extends its
        // matrix across the growth must score every bandwidth bitwise
        // like a freshly-built one.
        let mut d = Dataset::new(Bounds::new(vec![(0, 1000), (0, 9)]), 2);
        let mut persistent = BandwidthSelector::new();
        let mut row = 0i64;
        for batch in [2usize, 1, 7, 25, 3, 40] {
            for _ in 0..batch {
                let x = (row * 131) % 1001;
                let y = (row * 17) % 10;
                let xf = x as f64 / 1000.0;
                d.insert(vec![x, y], vec![xf * xf, 1.0 - xf]);
                row += 1;
            }
            for h in [0.02, 0.1, 0.6] {
                let inc = persistent.loo_mse(&d, Kernel::Gaussian, h, 64);
                let fresh = loo_mse(&d, Kernel::Gaussian, h);
                assert_eq!(
                    inc.map(f64::to_bits),
                    fresh.map(f64::to_bits),
                    "h={h} after {} rows",
                    d.len()
                );
            }
            assert_eq!(
                persistent.select(&d, Kernel::Gaussian, &[], 64),
                select_bandwidth(&d, Kernel::Gaussian, &[])
            );
        }
    }

    #[test]
    fn truncated_equals_dense_bitwise_when_unclipped() {
        // With the sample covering every row and k ≥ M−1, the truncated
        // score must reproduce the dense score bit for bit — the
        // truncation only ever drops far-field terms, never reorders the
        // kept ones.
        let d = smooth_dataset(60);
        let mut forced = BandwidthSelector::new();
        forced.dense_cap = 0; // force truncated mode
        for h in [0.02, 0.1, 0.6, 1.0] {
            let trunc = forced.loo_mse(&d, Kernel::Gaussian, h, d.len()).unwrap();
            let dense = loo_mse(&d, Kernel::Gaussian, h).unwrap();
            assert_eq!(trunc.to_bits(), dense.to_bits(), "h={h}");
        }
    }

    #[test]
    fn truncated_mode_selects_sensible_bandwidth() {
        // Past the dense cap the sampled/truncated selector must still
        // recognize smooth data (no global averaging).
        let d = smooth_dataset(700);
        let mut sel = BandwidthSelector::new();
        assert!(d.len() > sel.dense_cap);
        let h = sel.select(&d, Kernel::Gaussian, &[], 64);
        assert!(h < 0.5, "selected h = {h}");
    }

    #[test]
    fn invalidate_forces_identical_rebuild() {
        let d = smooth_dataset(30);
        let mut sel = BandwidthSelector::new();
        let before = sel.select(&d, Kernel::Gaussian, &[], 64);
        sel.invalidate();
        let after = sel.select(&d, Kernel::Gaussian, &[], 64);
        assert_eq!(before.to_bits(), after.to_bits());
    }
}
