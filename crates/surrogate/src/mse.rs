//! Accuracy probes: mean squared error of the estimator against held-out
//! truth (the measurement behind the paper's Fig. 3).

use crate::dataset::Dataset;
use crate::nw::NadarayaWatson;

/// A held-out probe set with known true metric vectors.
#[derive(Debug, Clone, Default)]
pub struct ProbeSet {
    /// `(point, true outputs)` pairs.
    pub pairs: Vec<(Vec<i64>, Vec<f64>)>,
}

impl ProbeSet {
    /// Creates a probe set.
    pub fn new(pairs: Vec<(Vec<i64>, Vec<f64>)>) -> ProbeSet {
        ProbeSet { pairs }
    }

    /// Number of probes.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Per-output MSE of `model` over the probe set, with outputs scaled by
/// `scales` first (pass the metric ranges to get the paper's normalized
/// 1e-2-magnitude MSE values). Returns `None` if the model cannot predict
/// (empty dataset) or the probe set is empty.
pub fn mse_per_output(
    model: &NadarayaWatson,
    dataset: &Dataset,
    probes: &ProbeSet,
    scales: &[f64],
) -> Option<Vec<f64>> {
    if probes.is_empty() || dataset.is_empty() {
        return None;
    }
    let m = dataset.n_outputs();
    assert_eq!(scales.len(), m, "one scale per output required");
    let mut acc = vec![0.0f64; m];
    for (point, truth) in &probes.pairs {
        let pred = model.predict(dataset, point)?;
        for i in 0..m {
            let s = if scales[i] != 0.0 { scales[i] } else { 1.0 };
            let e = (pred[i] - truth[i]) / s;
            acc[i] += e * e;
        }
    }
    for a in &mut acc {
        *a /= probes.len() as f64;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Bounds;
    use crate::kernel::Kernel;

    fn setup(n_samples: usize) -> (Dataset, ProbeSet) {
        let f = |x: i64| {
            let xf = x as f64 / 1000.0;
            vec![100.0 * xf, 50.0 * (1.0 - xf)]
        };
        let mut d = Dataset::new(Bounds::new(vec![(0, 1000)]), 2);
        for i in 0..n_samples {
            let x = (i * 997 / n_samples.max(1)) as i64 % 1001;
            d.insert(vec![x], f(x));
        }
        let probes = ProbeSet::new((0..40).map(|i| (vec![i * 25 + 7], f(i * 25 + 7))).collect());
        (d, probes)
    }

    #[test]
    fn mse_decreases_with_more_samples() {
        let model = NadarayaWatson {
            kernel: Kernel::Gaussian,
            bandwidth: 0.05,
        };
        let (d_small, probes) = setup(8);
        let (d_big, _) = setup(120);
        let small = mse_per_output(&model, &d_small, &probes, &[100.0, 50.0]).unwrap();
        let big = mse_per_output(&model, &d_big, &probes, &[100.0, 50.0]).unwrap();
        assert!(big[0] < small[0], "{big:?} vs {small:?}");
        assert!(big[1] < small[1]);
    }

    #[test]
    fn normalized_mse_is_small_for_good_model() {
        let model = NadarayaWatson {
            kernel: Kernel::Gaussian,
            bandwidth: 0.03,
        };
        let (d, probes) = setup(100);
        let mse = mse_per_output(&model, &d, &probes, &[100.0, 50.0]).unwrap();
        // Linear metrics with dense samples: normalized MSE well below 1e-2
        // (the Fig. 3 magnitude scale).
        assert!(mse.iter().all(|&e| e < 1e-2), "{mse:?}");
    }

    #[test]
    fn empty_inputs_give_none() {
        let model = NadarayaWatson::default();
        let (d, probes) = setup(10);
        let empty_ds = Dataset::new(Bounds::new(vec![(0, 1000)]), 2);
        assert!(mse_per_output(&model, &empty_ds, &probes, &[1.0, 1.0]).is_none());
        let empty_probes = ProbeSet::default();
        assert!(mse_per_output(&model, &d, &empty_probes, &[1.0, 1.0]).is_none());
    }

    #[test]
    fn zero_scale_treated_as_identity() {
        let model = NadarayaWatson {
            kernel: Kernel::Gaussian,
            bandwidth: 0.05,
        };
        let (d, probes) = setup(50);
        let a = mse_per_output(&model, &d, &probes, &[0.0, 1.0]).unwrap();
        let b = mse_per_output(&model, &d, &probes, &[1.0, 1.0]).unwrap();
        assert_eq!(a[0], b[0]);
    }
}
