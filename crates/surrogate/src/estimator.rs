//! Alternative approximation models.
//!
//! The paper's future work plans "to explore different statistical models,
//! either parametric or non-parametric, to amortize the expensive synthetic
//! dataset generation" (§V). This module implements that comparison
//! surface: the Nadaraya-Watson regressor used by the paper, plus two
//! classic non-parametric baselines — inverse-distance weighting (Shepard)
//! and k-nearest-neighbour averaging — behind one interface.

use crate::dataset::Dataset;
use crate::loocv::select_bandwidth;
use crate::nw::NadarayaWatson;
use std::fmt;

/// A pluggable estimator over a [`Dataset`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Estimator {
    /// The paper's model: Nadaraya-Watson kernel regression.
    Nw(NadarayaWatson),
    /// Shepard's inverse-distance weighting with the given power
    /// (2.0 is the classic choice). Exact points are returned verbatim.
    InverseDistance {
        /// Distance exponent (> 0).
        power: f64,
    },
    /// Mean of the `k` nearest neighbours (`k = 1` is table lookup).
    KNearest {
        /// Neighbourhood size (≥ 1).
        k: usize,
    },
}

impl Estimator {
    /// Short name for tables.
    pub fn name(&self) -> String {
        match self {
            Estimator::Nw(m) => format!("nw-{}", m.kernel),
            Estimator::InverseDistance { power } => format!("idw-p{power}"),
            Estimator::KNearest { k } => format!("{k}-nn"),
        }
    }

    /// Re-fits any free parameters from the dataset (only the NW bandwidth
    /// has one; the baselines are hyperparameter-frozen).
    pub fn retrain(&mut self, dataset: &Dataset) {
        if let Estimator::Nw(m) = self {
            m.bandwidth = select_bandwidth(dataset, m.kernel, &[]);
        }
    }

    /// Predicts all outputs at the (raw, integer) query point; `None` on an
    /// empty dataset.
    pub fn predict(&self, dataset: &Dataset, point: &[i64]) -> Option<Vec<f64>> {
        self.predict_excluding(dataset, point, None)
    }

    /// Like [`Estimator::predict`], excluding one dataset row (for LOO).
    pub fn predict_excluding(
        &self,
        dataset: &Dataset,
        point: &[i64],
        exclude: Option<usize>,
    ) -> Option<Vec<f64>> {
        match self {
            Estimator::Nw(m) => m.predict_excluding(dataset, point, exclude),
            Estimator::InverseDistance { power } => idw_predict(dataset, point, *power, exclude),
            Estimator::KNearest { k } => knn_predict(dataset, point, (*k).max(1), exclude),
        }
    }
}

impl Default for Estimator {
    fn default() -> Self {
        Estimator::Nw(NadarayaWatson::default())
    }
}

impl fmt::Display for Estimator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

fn idw_predict(
    dataset: &Dataset,
    point: &[i64],
    power: f64,
    exclude: Option<usize>,
) -> Option<Vec<f64>> {
    let n = dataset.len();
    if n == 0 || (n == 1 && exclude.is_some()) {
        return None;
    }
    let x = dataset.normalize(point);
    let m = dataset.n_outputs();
    let mut num = vec![0.0f64; m];
    let mut den = 0.0f64;
    for i in 0..n {
        if Some(i) == exclude {
            continue;
        }
        let d2 = dataset.dist2_to(&x, i);
        if d2 == 0.0 {
            // Exact hit: return the stored outputs verbatim.
            return Some(dataset.outputs()[i].clone());
        }
        let w = d2.powf(-power / 2.0);
        den += w;
        for (acc, y) in num.iter_mut().zip(&dataset.outputs()[i]) {
            *acc += w * y;
        }
    }
    if den == 0.0 {
        return None;
    }
    Some(num.into_iter().map(|v| v / den).collect())
}

fn knn_predict(
    dataset: &Dataset,
    point: &[i64],
    k: usize,
    exclude: Option<usize>,
) -> Option<Vec<f64>> {
    let n = dataset.len();
    if n == 0 || (n == 1 && exclude.is_some()) {
        return None;
    }
    let x = dataset.normalize(point);
    let sorted = dataset.sorted_dist2(&x, exclude);
    let take = k.min(sorted.len());
    let m = dataset.n_outputs();
    let mut acc = vec![0.0f64; m];
    for (i, _) in sorted.iter().take(take) {
        for (a, y) in acc.iter_mut().zip(&dataset.outputs()[*i]) {
            *a += y;
        }
    }
    for a in &mut acc {
        *a /= take as f64;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Bounds;
    use crate::kernel::Kernel;

    fn line_dataset() -> Dataset {
        let mut d = Dataset::new(Bounds::new(vec![(0, 100)]), 1);
        for x in (0..=100).step_by(10) {
            d.insert(vec![x], vec![2.0 * x as f64]);
        }
        d
    }

    fn estimators() -> Vec<Estimator> {
        vec![
            Estimator::Nw(NadarayaWatson {
                kernel: Kernel::Gaussian,
                bandwidth: 0.05,
            }),
            Estimator::InverseDistance { power: 2.0 },
            Estimator::KNearest { k: 1 },
            Estimator::KNearest { k: 3 },
        ]
    }

    #[test]
    fn all_estimators_interpolate_a_line() {
        let d = line_dataset();
        for e in estimators() {
            let y = e.predict(&d, &[52]).unwrap()[0];
            assert!(
                (y - 104.0).abs() < 15.0,
                "{}: predicted {y} at x=52 (expect ≈104)",
                e.name()
            );
        }
    }

    #[test]
    fn idw_and_knn_exact_hits_are_verbatim() {
        let d = line_dataset();
        for e in [
            Estimator::InverseDistance { power: 2.0 },
            Estimator::KNearest { k: 1 },
        ] {
            assert_eq!(e.predict(&d, &[50]).unwrap()[0], 100.0, "{}", e.name());
        }
    }

    #[test]
    fn empty_dataset_none_for_all() {
        let d = Dataset::new(Bounds::new(vec![(0, 10)]), 1);
        for e in estimators() {
            assert!(e.predict(&d, &[3]).is_none(), "{}", e.name());
        }
    }

    #[test]
    fn predictions_bounded_by_data() {
        let d = line_dataset();
        for e in estimators() {
            for q in [0i64, 17, 55, 99] {
                let y = e.predict(&d, &[q]).unwrap()[0];
                assert!((0.0..=200.0).contains(&y), "{}: {y}", e.name());
            }
        }
    }

    #[test]
    fn knn_k_larger_than_dataset_is_global_mean() {
        let d = line_dataset(); // 11 points, mean output 100
        let e = Estimator::KNearest { k: 100 };
        let y = e.predict(&d, &[0]).unwrap()[0];
        assert!((y - 100.0).abs() < 1e-9);
    }

    #[test]
    fn loo_exclusion_supported_everywhere() {
        let d = line_dataset();
        for e in estimators() {
            let with = e.predict(&d, &[50]).unwrap()[0];
            let without = e.predict_excluding(&d, &[50], Some(5)).unwrap()[0];
            // Excluding the exact sample must change (or at least not
            // crash) the prediction; for 1-NN it falls to a neighbour.
            if matches!(e, Estimator::KNearest { k: 1 }) {
                assert_ne!(with, without);
            }
        }
    }

    #[test]
    fn retrain_touches_only_nw() {
        let d = line_dataset();
        let mut nw = Estimator::Nw(NadarayaWatson {
            kernel: Kernel::Gaussian,
            bandwidth: 0.9,
        });
        nw.retrain(&d);
        match nw {
            Estimator::Nw(m) => assert!(m.bandwidth < 0.9),
            _ => unreachable!(),
        }
        let mut idw = Estimator::InverseDistance { power: 2.0 };
        idw.retrain(&d);
        assert_eq!(idw, Estimator::InverseDistance { power: 2.0 });
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<String> = estimators().iter().map(|e| e.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
