//! Exact k-nearest-neighbour index over the dataset's normalized rows.
//!
//! A KD-tree over the flat row-major coordinate buffer, rebuilt lazily:
//! the tree covers a prefix of the rows and newly inserted rows accumulate
//! in a linearly-scanned tail until the tail grows past a fraction of the
//! built prefix, at which point the whole tree is rebuilt. This keeps
//! insertion O(1) amortized-O(log²M) while queries stay O(log M + tail).
//!
//! **Determinism contract.** Queries are *exact*, not approximate: every
//! candidate distance is computed by [`crate::kernel::dist2`] and
//! candidates are ranked by the lexicographic `(d², row index)` order, so
//! the answer is the same value-set minimum a brute-force linear scan
//! would find — bitwise, regardless of how the tree happens to be split
//! or how much of the data sits in the unindexed tail. Tree structure can
//! therefore never leak into surrogate decisions, resumed runs, or
//! parallel-vs-serial traces.

use crate::kernel::dist2;

/// Rows per leaf; below this a linear scan beats tree traversal.
const LEAF_SIZE: usize = 16;

/// The tail may grow to `max(TAIL_MIN, built/8)` rows before a rebuild.
const TAIL_MIN: usize = 64;

/// One KD-tree node. Leaves reference a range of `order`; splits carry the
/// split axis and coordinate plus child node indices.
#[derive(Debug, Clone)]
enum Node {
    /// `order[start..start + len]` scanned linearly.
    Leaf {
        /// First index into `order`.
        start: u32,
        /// Number of rows in the leaf.
        len: u32,
    },
    /// Axis-aligned split: rows left of the plane in `left`, right in
    /// `right` (rows exactly on the plane may sit on either side).
    Split {
        /// Split dimension.
        axis: u32,
        /// Split coordinate along `axis`.
        value: f64,
        /// Node index of the low side.
        left: u32,
        /// Node index of the high side.
        right: u32,
    },
}

/// Lazily rebuilt exact KD-tree over a flat coordinate buffer.
///
/// The index stores only row *indices* — the coordinates live in the
/// dataset's buffer and are passed to every query, so the index never
/// holds a stale copy of the geometry.
#[derive(Debug, Clone, Default)]
pub struct NeighborIndex {
    /// Permutation of the first `built` row indices, leaf-contiguous.
    order: Vec<u32>,
    /// Tree nodes; `nodes[root]` is the root when `built > 0`.
    nodes: Vec<Node>,
    /// Root node index.
    root: u32,
    /// Rows covered by the tree; rows `built..n` are the linear tail.
    built: usize,
}

impl NeighborIndex {
    /// An empty index (everything in the tail).
    pub fn new() -> NeighborIndex {
        NeighborIndex::default()
    }

    /// Number of rows covered by the tree (the rest are scanned).
    pub fn covered(&self) -> usize {
        self.built
    }

    /// Called after rows were appended: rebuilds the tree when the
    /// unindexed tail outgrew `max(64, built/8)`. The decision depends
    /// only on the number of rows, never on their values or on query
    /// history, so identical insert sequences rebuild identically —
    /// and even a divergent rebuild schedule could not change query
    /// results (see the module-level determinism contract).
    pub fn sync(&mut self, coords: &[f64], dim: usize, n: usize) {
        debug_assert!(self.built <= n);
        let tail = n - self.built;
        if tail > TAIL_MIN.max(self.built / 8) {
            self.rebuild(coords, dim, n);
        }
    }

    /// Unconditionally rebuilds the tree over all `n` rows.
    pub fn rebuild(&mut self, coords: &[f64], dim: usize, n: usize) {
        self.nodes.clear();
        self.order = (0..n as u32).collect();
        self.built = n;
        if dim == 0 || n == 0 {
            // Degenerate geometry: leave everything to the tail scan.
            self.built = 0;
            self.order.clear();
            return;
        }
        let root = build(coords, dim, &mut self.order, 0, n, &mut self.nodes);
        self.root = root;
    }

    /// The nearest row to `x` (excluding `exclude`), as `(row, d²)`;
    /// `None` when no candidate exists. Ties on distance resolve to the
    /// lowest row index — the same answer as a first-wins linear scan.
    pub fn nearest(
        &self,
        coords: &[f64],
        dim: usize,
        n: usize,
        x: &[f64],
        exclude: Option<usize>,
    ) -> Option<(usize, f64)> {
        let mut best = Vec::with_capacity(1);
        self.k_nearest(coords, dim, n, x, 1, exclude, &mut best);
        best.first().map(|&(d2, i)| (i, d2))
    }

    /// The `k` nearest rows to `x` (excluding `exclude`), written into
    /// `out` as `(d², row)` sorted ascending by `(d², row)`. Fewer than
    /// `k` entries when the dataset is smaller.
    #[allow(clippy::too_many_arguments)]
    pub fn k_nearest(
        &self,
        coords: &[f64],
        dim: usize,
        n: usize,
        x: &[f64],
        k: usize,
        exclude: Option<usize>,
        out: &mut Vec<(f64, usize)>,
    ) {
        out.clear();
        if k == 0 || n == 0 {
            return;
        }
        debug_assert!(self.built <= n);
        if self.built > 0 {
            self.visit(self.root, coords, dim, x, k, exclude, out);
        }
        // Linear tail: rows appended since the last rebuild.
        for i in self.built..n {
            if Some(i) == exclude {
                continue;
            }
            let d2 = dist2(&coords[i * dim..i * dim + dim], x);
            consider(out, k, (d2, i));
        }
    }

    /// Recursive traversal: near child first, far child only when the
    /// split plane is not farther than the current k-th best (`<=`, so an
    /// equidistant candidate with a smaller row index is still reached).
    #[allow(clippy::too_many_arguments)]
    fn visit(
        &self,
        node: u32,
        coords: &[f64],
        dim: usize,
        x: &[f64],
        k: usize,
        exclude: Option<usize>,
        out: &mut Vec<(f64, usize)>,
    ) {
        match self.nodes[node as usize] {
            Node::Leaf { start, len } => {
                for &row in &self.order[start as usize..(start + len) as usize] {
                    let i = row as usize;
                    if Some(i) == exclude {
                        continue;
                    }
                    let d2 = dist2(&coords[i * dim..i * dim + dim], x);
                    consider(out, k, (d2, i));
                }
            }
            Node::Split {
                axis,
                value,
                left,
                right,
            } => {
                let diff = x[axis as usize] - value;
                let (near, far) = if diff < 0.0 {
                    (left, right)
                } else {
                    (right, left)
                };
                self.visit(near, coords, dim, x, k, exclude, out);
                let bound = diff * diff;
                if out.len() < k || bound <= out[out.len() - 1].0 {
                    self.visit(far, coords, dim, x, k, exclude, out);
                }
            }
        }
    }
}

/// Inserts a candidate into the sorted top-k buffer (ascending by
/// `(d², row)`), dropping the current worst when full. `k` is small (≤ a
/// few hundred), so ordered insertion beats a heap.
fn consider(out: &mut Vec<(f64, usize)>, k: usize, cand: (f64, usize)) {
    let pos = out.partition_point(|&c| c < cand);
    if out.len() == k {
        if pos == k {
            return;
        }
        out.pop();
    }
    out.insert(pos, cand);
}

/// Builds the subtree over `order[start..end]`, returning its node index.
fn build(
    coords: &[f64],
    dim: usize,
    order: &mut [u32],
    start: usize,
    end: usize,
    nodes: &mut Vec<Node>,
) -> u32 {
    let len = end - start;
    if len <= LEAF_SIZE {
        nodes.push(Node::Leaf {
            start: start as u32,
            len: len as u32,
        });
        return (nodes.len() - 1) as u32;
    }
    // Split along the axis with the widest spread (lowest axis on ties).
    let mut axis = 0usize;
    let mut best_spread = f64::NEG_INFINITY;
    for a in 0..dim {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &row in &order[start..end] {
            let v = coords[row as usize * dim + a];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let spread = hi - lo;
        if spread > best_spread {
            best_spread = spread;
            axis = a;
        }
    }
    // Median split by (coordinate, row index): total, deterministic.
    order[start..end].sort_unstable_by(|&a, &b| {
        let ca = coords[a as usize * dim + axis];
        let cb = coords[b as usize * dim + axis];
        ca.total_cmp(&cb).then(a.cmp(&b))
    });
    let mid = start + len / 2;
    let value = coords[order[mid] as usize * dim + axis];
    // Reserve our slot before recursing so children get later indices.
    let me = nodes.len() as u32;
    nodes.push(Node::Leaf { start: 0, len: 0 });
    let left = build(coords, dim, order, start, mid, nodes);
    let right = build(coords, dim, order, mid, end, nodes);
    nodes[me as usize] = Node::Split {
        axis: axis as u32,
        value,
        left,
        right,
    };
    me
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_k(
        coords: &[f64],
        dim: usize,
        n: usize,
        x: &[f64],
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<(f64, usize)> {
        let mut all: Vec<(f64, usize)> = (0..n)
            .filter(|&i| Some(i) != exclude)
            .map(|i| (dist2(&coords[i * dim..i * dim + dim], x), i))
            .collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }

    fn random_coords(n: usize, dim: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        // A coarse grid so distance ties actually happen.
        (0..n * dim)
            .map(|_| rng.gen_range(0..8) as f64 / 7.0)
            .collect()
    }

    #[test]
    fn k_nearest_matches_brute_force_bitwise() {
        for (n, dim, seed) in [
            (1usize, 1usize, 1u64),
            (17, 2, 2),
            (300, 3, 3),
            (1000, 2, 4),
        ] {
            let coords = random_coords(n, dim, seed);
            let mut idx = NeighborIndex::new();
            idx.rebuild(&coords, dim, n);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xFF);
            let mut out = Vec::new();
            for _ in 0..50 {
                let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(0..8) as f64 / 7.0).collect();
                for k in [1usize, 3, 8, n + 5] {
                    idx.k_nearest(&coords, dim, n, &x, k, None, &mut out);
                    let want = brute_k(&coords, dim, n, &x, k, None);
                    assert_eq!(out.len(), want.len());
                    for (a, b) in out.iter().zip(&want) {
                        assert_eq!(a.0.to_bits(), b.0.to_bits(), "n={n} k={k}");
                        assert_eq!(a.1, b.1, "n={n} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn tail_rows_participate_without_rebuild() {
        let dim = 2;
        let mut coords = random_coords(100, dim, 9);
        let mut idx = NeighborIndex::new();
        idx.rebuild(&coords, dim, 100);
        // Append 30 rows; sync must keep them in the tail (30 ≤ 64)...
        coords.extend(random_coords(30, dim, 10));
        idx.sync(&coords, dim, 130);
        assert_eq!(idx.covered(), 100);
        // ...and queries must still see them, identically to brute force.
        let mut out = Vec::new();
        idx.k_nearest(&coords, dim, 130, &[0.5, 0.5], 7, None, &mut out);
        assert_eq!(out, brute_k(&coords, dim, 130, &[0.5, 0.5], 7, None));
    }

    #[test]
    fn sync_rebuilds_once_tail_outgrows_threshold() {
        let dim = 1;
        let mut coords = random_coords(16, dim, 11);
        let mut idx = NeighborIndex::new();
        // 16 rows, never built: tail 16 ≤ 64 → still uncovered.
        idx.sync(&coords, dim, 16);
        assert_eq!(idx.covered(), 0);
        coords.extend(random_coords(60, dim, 12));
        idx.sync(&coords, dim, 76);
        assert_eq!(idx.covered(), 76, "tail 76 > 64 must trigger a rebuild");
    }

    #[test]
    fn distance_ties_resolve_to_lowest_row() {
        // Rows 0 and 2 are coincident; row 1 is elsewhere.
        let coords = vec![0.25, 0.9, 0.25];
        let mut idx = NeighborIndex::new();
        idx.rebuild(&coords, 1, 3);
        let (i, d2) = idx.nearest(&coords, 1, 3, &[0.25], None).unwrap();
        assert_eq!((i, d2), (0, 0.0));
        // Excluding the winner promotes the equidistant higher row.
        let (i, _) = idx.nearest(&coords, 1, 3, &[0.25], Some(0)).unwrap();
        assert_eq!(i, 2);
    }

    #[test]
    fn empty_and_excluded_sets_return_nothing() {
        let idx = NeighborIndex::new();
        assert!(idx.nearest(&[], 1, 0, &[0.5], None).is_none());
        let coords = vec![0.5];
        let mut one = NeighborIndex::new();
        one.rebuild(&coords, 1, 1);
        assert!(one.nearest(&coords, 1, 1, &[0.5], Some(0)).is_none());
    }
}
