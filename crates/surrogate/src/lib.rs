//! # dovado-surrogate
//!
//! The fitness-function approximation model of the Dovado DSE framework
//! (paper §III-C): a Nadaraya-Watson kernel regressor over a synthetic
//! dataset of `(design point, metrics)` pairs, with leave-one-out
//! cross-validated bandwidth, the Φ similarity measure (Eq. 4), the
//! adaptive threshold Γ, and the three-way control model that decides per
//! design point whether to answer from cache, from the estimator, or by
//! paying for a real synthesis/implementation run.
//!
//! ```
//! use dovado_surrogate::{Bounds, Decision, SurrogateController, ThresholdPolicy};
//!
//! let mut ctl = SurrogateController::new(
//!     Bounds::new(vec![(0, 1000)]), 1, ThresholdPolicy::paper_default());
//! ctl.pretrain((0..=10).map(|i| (vec![i * 100], vec![i as f64])).collect());
//! match ctl.decide(&[505]) {
//!     Decision::Estimate(v) => assert!((v[0] - 5.0).abs() < 1.0),
//!     other => panic!("{other:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod control;
pub mod dataset;
pub mod estimator;
pub mod kernel;
pub mod loocv;
pub mod mse;
pub mod neighbor;
pub mod nw;
pub mod similarity;
pub mod threshold;

pub use control::{ControlEvent, ControlStats, Decision, SurrogateController, DEFAULT_NEIGHBOR_K};
pub use dataset::{Bounds, Dataset};
pub use estimator::Estimator;
pub use kernel::{dist2, Kernel};
pub use loocv::{default_bandwidth_grid, loo_mse, select_bandwidth, BandwidthSelector};
pub use mse::{mse_per_output, ProbeSet};
pub use neighbor::NeighborIndex;
pub use nw::NadarayaWatson;
pub use similarity::{phi_n, phi_within};
pub use threshold::ThresholdPolicy;
