//! Estimate-or-evaluate threshold policies.
//!
//! "The threshold setting is a non-trivial problem that depends on run-time
//! information … we employ an adaptive threshold set Γ by averaging the
//! distance between dataset points and updating it after an addition to the
//! dataset, Γ = Σ Φⁱₙ / L" (§III-C). A fixed-threshold policy is kept for
//! the ablation bench.

use crate::dataset::Dataset;
use crate::similarity::phi_within;

/// How the controller derives Γ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// The paper's adaptive Γ: mean over the dataset of each point's Φ to
    /// its nearest neighbour, optionally scaled (scale 1.0 = paper).
    Adaptive {
        /// Multiplier applied to the mean distance.
        scale: f64,
    },
    /// A fixed Γ in normalized-coordinate units.
    Fixed(f64),
    /// Γ = 0: never trust the estimator (always evaluate) — the
    /// "approximator disabled" mode used by the paper's Corundum, Neorv32
    /// and TiReX experiments.
    Never,
}

impl ThresholdPolicy {
    /// The paper's default policy.
    pub fn paper_default() -> ThresholdPolicy {
        ThresholdPolicy::Adaptive { scale: 1.0 }
    }

    /// Computes Γ for the current dataset.
    ///
    /// The adaptive policy reads each row's nearest-neighbour distance from
    /// the dataset's incremental cache, so the whole computation is O(L)
    /// rather than the naive O(L²·d) all-pairs scan — cheap enough to run
    /// after every insertion, as the paper prescribes.
    pub fn gamma(&self, dataset: &Dataset) -> f64 {
        match self {
            ThresholdPolicy::Fixed(g) => *g,
            ThresholdPolicy::Never => 0.0,
            ThresholdPolicy::Adaptive { scale } => {
                let l = dataset.len();
                if l < 2 {
                    return 0.0;
                }
                let sum: f64 = (0..l).filter_map(|i| phi_within(dataset, i)).sum();
                scale * sum / l as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Bounds, Dataset};

    fn grid_dataset(step: i64) -> Dataset {
        let mut d = Dataset::new(Bounds::new(vec![(0, 100)]), 1);
        let mut x = 0;
        while x <= 100 {
            d.insert(vec![x], vec![0.0]);
            x += step;
        }
        d
    }

    #[test]
    fn adaptive_gamma_matches_grid_spacing() {
        // Evenly spaced points at distance 10/100 = 0.1 normalized; every
        // nearest-neighbour Φ is 0.1, so Γ = 0.1.
        let d = grid_dataset(10);
        let g = ThresholdPolicy::paper_default().gamma(&d);
        assert!((g - 0.1).abs() < 1e-12, "gamma = {g}");
    }

    #[test]
    fn denser_dataset_shrinks_gamma() {
        let sparse = ThresholdPolicy::paper_default().gamma(&grid_dataset(25));
        let dense = ThresholdPolicy::paper_default().gamma(&grid_dataset(5));
        assert!(dense < sparse);
    }

    #[test]
    fn gamma_updates_after_insertion() {
        let mut d = grid_dataset(20);
        let before = ThresholdPolicy::paper_default().gamma(&d);
        // Insert a point snuggled next to an existing one.
        d.insert(vec![21], vec![0.0]);
        let after = ThresholdPolicy::paper_default().gamma(&d);
        assert!(after < before);
    }

    #[test]
    fn small_dataset_gamma_zero() {
        let mut d = Dataset::new(Bounds::new(vec![(0, 10)]), 1);
        assert_eq!(ThresholdPolicy::paper_default().gamma(&d), 0.0);
        d.insert(vec![5], vec![0.0]);
        assert_eq!(ThresholdPolicy::paper_default().gamma(&d), 0.0);
    }

    #[test]
    fn fixed_and_never() {
        let d = grid_dataset(10);
        assert_eq!(ThresholdPolicy::Fixed(0.42).gamma(&d), 0.42);
        assert_eq!(ThresholdPolicy::Never.gamma(&d), 0.0);
    }

    #[test]
    fn scale_multiplies() {
        let d = grid_dataset(10);
        let g1 = ThresholdPolicy::Adaptive { scale: 1.0 }.gamma(&d);
        let g2 = ThresholdPolicy::Adaptive { scale: 2.0 }.gamma(&d);
        assert!((g2 - 2.0 * g1).abs() < 1e-12);
    }
}
