//! Kernel functions for Nadaraya-Watson regression.
//!
//! The paper uses a Gaussian kernel (Eq. 3), following Shapiai et al. \[28\]
//! who "have shown how the NWM model performs better with a Gaussian
//! kernel, leaving the bandwidth as the only free parameter". Alternative
//! kernels are provided for the ablation bench that revisits that claim.

use std::fmt;
use std::str::FromStr;

/// Available kernels. All take the squared distance `d²` and bandwidth `h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// `K_h(d) = (1/√(2π)) · exp(−d² / (2h²))` — the paper's Eq. 3.
    #[default]
    Gaussian,
    /// Parabolic kernel with compact support: `¾(1 − u²)` for `|u| ≤ 1`.
    Epanechnikov,
    /// `(1 − |u|³)³` for `|u| ≤ 1`.
    Tricube,
    /// Constant within the bandwidth, zero outside.
    Uniform,
}

/// `1/√(2π)`, the Gaussian kernel's normalization constant, precomputed so
/// the hot weight loop does not re-derive a square root per call. Matches
/// `1.0 / (2.0 * PI).sqrt()` bit-for-bit (asserted in tests).
const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// Squared Euclidean distance between two flat coordinate slices.
///
/// This is *the* distance kernel of the whole surrogate: the dataset, the
/// KD-tree, the NW estimator and LOO-CV all compute every pairwise
/// distance through this one function, so any two call sites given the
/// same pair of rows produce bit-identical values — the property the
/// determinism suites lean on when the neighbor index reorders traversal.
///
/// The slices are contiguous row-major views into the dataset's flat
/// coordinate buffer (no per-row `Vec`), which lets the compiler unroll
/// and vectorize the loop; the accumulation itself stays a sequential
/// dimension-order sum because floating-point reassociation would break
/// bitwise reproducibility.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

impl Kernel {
    /// Kernel weight for squared distance `dist2` at bandwidth `h`.
    #[inline]
    pub fn weight(&self, dist2: f64, h: f64) -> f64 {
        debug_assert!(h > 0.0, "bandwidth must be positive");
        match self {
            Kernel::Gaussian => INV_SQRT_2PI * (-dist2 / (2.0 * h * h)).exp(),
            Kernel::Epanechnikov => {
                let u2 = dist2 / (h * h);
                if u2 <= 1.0 {
                    0.75 * (1.0 - u2)
                } else {
                    0.0
                }
            }
            Kernel::Tricube => {
                let u = (dist2.sqrt() / h).abs();
                if u <= 1.0 {
                    let t = 1.0 - u * u * u;
                    t * t * t
                } else {
                    0.0
                }
            }
            Kernel::Uniform => {
                if dist2 <= h * h {
                    0.5
                } else {
                    0.0
                }
            }
        }
    }

    /// All kernels (for ablation sweeps).
    pub const ALL: [Kernel; 4] = [
        Kernel::Gaussian,
        Kernel::Epanechnikov,
        Kernel::Tricube,
        Kernel::Uniform,
    ];
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Kernel::Gaussian => "gaussian",
            Kernel::Epanechnikov => "epanechnikov",
            Kernel::Tricube => "tricube",
            Kernel::Uniform => "uniform",
        };
        write!(f, "{s}")
    }
}

impl FromStr for Kernel {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "gaussian" => Ok(Kernel::Gaussian),
            "epanechnikov" => Ok(Kernel::Epanechnikov),
            "tricube" => Ok(Kernel::Tricube),
            "uniform" => Ok(Kernel::Uniform),
            _ => Err(format!("unknown kernel `{s}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn hoisted_constant_is_exact() {
        assert_eq!(INV_SQRT_2PI.to_bits(), (1.0 / (2.0 * PI).sqrt()).to_bits());
    }

    #[test]
    fn gaussian_matches_eq3() {
        // At d = 0: 1/sqrt(2π).
        let k = Kernel::Gaussian;
        assert!((k.weight(0.0, 1.0) - 0.3989422804014327).abs() < 1e-12);
        // At d = h: exp(-1/2)/sqrt(2π).
        let expect = (-0.5f64).exp() / (2.0 * PI).sqrt();
        assert!((k.weight(1.0, 1.0) - expect).abs() < 1e-12);
    }

    #[test]
    fn all_kernels_decrease_with_distance() {
        for k in Kernel::ALL {
            let w0 = k.weight(0.0, 0.5);
            let w1 = k.weight(0.04, 0.5);
            let w2 = k.weight(0.16, 0.5);
            assert!(w0 >= w1 && w1 >= w2, "{k} not monotone: {w0} {w1} {w2}");
            assert!(w0 > 0.0);
        }
    }

    #[test]
    fn compact_kernels_vanish_outside_bandwidth() {
        for k in [Kernel::Epanechnikov, Kernel::Tricube, Kernel::Uniform] {
            assert_eq!(k.weight(4.0, 1.0), 0.0, "{k}");
        }
        // Gaussian never fully vanishes.
        assert!(Kernel::Gaussian.weight(4.0, 1.0) > 0.0);
    }

    #[test]
    fn larger_bandwidth_flattens() {
        let k = Kernel::Gaussian;
        assert!(k.weight(1.0, 2.0) > k.weight(1.0, 0.5));
    }

    #[test]
    fn dist2_symmetric_to_the_bit() {
        // (a−b)² and (b−a)² are IEEE-identical, so argument order can
        // never leak into cached distances.
        let a = [0.25, 0.75, 0.1];
        let b = [0.5, 0.0, 0.9];
        assert_eq!(dist2(&a, &b).to_bits(), dist2(&b, &a).to_bits());
        assert_eq!(dist2(&a, &a), 0.0);
        assert_eq!(dist2(&[], &[]), 0.0);
    }

    #[test]
    fn parse_roundtrip() {
        for k in Kernel::ALL {
            assert_eq!(k.to_string().parse::<Kernel>().unwrap(), k);
        }
        assert!("nope".parse::<Kernel>().is_err());
    }
}
