//! The similarity measure Φ (the paper's Eq. 4, after Shokri et al. \[27\]).
//!
//! `Φₙ(x) = sqrt( Σⱼ (xⱼ − zⁿⱼ)² / m )` — the root-mean-square per-dimension
//! distance between a candidate point `x` and its n-th nearest dataset
//! point `zⁿ`. Computed in normalized coordinates so Φ is comparable
//! across parameters with different ranges (the "run-time information"
//! the paper's adaptive threshold accounts for).

use crate::dataset::Dataset;

/// Φₙ for the query against the dataset (`n = 1` → nearest point).
/// `None` when the dataset holds fewer than `n` points.
///
/// The `n = 1` case — the one the control model asks on every decide — is
/// a single linear scan with no sort and no per-row allocation.
pub fn phi_n(dataset: &Dataset, point: &[i64], n: usize) -> Option<f64> {
    debug_assert!(n >= 1);
    if dataset.len() < n {
        return None;
    }
    let x = dataset.normalize(point);
    let d2 = if n == 1 {
        dataset.min_dist2(&x)?.1
    } else {
        dataset.sorted_dist2(&x, None)[n - 1].1
    };
    Some((d2 / dataset.dim() as f64).sqrt())
}

/// Φ₁ between dataset row `i` and its nearest *other* row — the
/// ingredient of the adaptive threshold Γ. Served from the dataset's
/// incremental nearest-neighbour cache in O(1).
pub fn phi_within(dataset: &Dataset, i: usize) -> Option<f64> {
    if dataset.len() < 2 {
        return None;
    }
    Some((dataset.nn_dist2(i) / dataset.dim() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Bounds, Dataset};

    fn ds() -> Dataset {
        let mut d = Dataset::new(Bounds::new(vec![(0, 100), (0, 100)]), 1);
        d.insert(vec![0, 0], vec![0.0]);
        d.insert(vec![100, 100], vec![0.0]);
        d.insert(vec![50, 50], vec![0.0]);
        d
    }

    #[test]
    fn phi_of_exact_point_is_zero() {
        assert_eq!(phi_n(&ds(), &[50, 50], 1), Some(0.0));
    }

    #[test]
    fn phi_matches_eq4_by_hand() {
        // Query (10, 0): nearest is (0,0); normalized deltas (0.1, 0).
        // Φ₁ = sqrt((0.01 + 0) / 2) ≈ 0.0707.
        let phi = phi_n(&ds(), &[10, 0], 1).unwrap();
        assert!((phi - (0.01f64 / 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn phi_second_nearest() {
        let phi1 = phi_n(&ds(), &[10, 0], 1).unwrap();
        let phi2 = phi_n(&ds(), &[10, 0], 2).unwrap();
        assert!(phi2 > phi1);
    }

    #[test]
    fn phi_none_when_dataset_too_small() {
        let empty = Dataset::new(Bounds::new(vec![(0, 10)]), 1);
        assert_eq!(phi_n(&empty, &[0], 1), None);
        assert_eq!(phi_n(&ds(), &[0, 0], 4), None);
    }

    #[test]
    fn phi_within_nearest_other() {
        let d = ds();
        // Row 2 = (50,50): nearest other is (0,0) or (100,100), both at
        // normalized distance sqrt(0.5)/sqrt(2) = 0.5.
        let phi = phi_within(&d, 2).unwrap();
        assert!((phi - 0.5).abs() < 1e-12);
    }

    #[test]
    fn phi_within_needs_two_points() {
        let mut d = Dataset::new(Bounds::new(vec![(0, 10)]), 1);
        d.insert(vec![3], vec![0.0]);
        assert_eq!(phi_within(&d, 0), None);
    }

    #[test]
    fn phi_scale_free_across_ranges() {
        // Same relative geometry in a space with a huge range must give
        // the same Φ as in a small range.
        let mut small = Dataset::new(Bounds::new(vec![(0, 10)]), 1);
        small.insert(vec![0], vec![0.0]);
        let mut big = Dataset::new(Bounds::new(vec![(0, 1_000_000)]), 1);
        big.insert(vec![0], vec![0.0]);
        let ps = phi_n(&small, &[5], 1).unwrap();
        let pb = phi_n(&big, &[500_000], 1).unwrap();
        assert!((ps - pb).abs() < 1e-12);
    }
}
