//! The synthetic dataset behind the approximation model.
//!
//! Stores `(design point, metric vector)` pairs. Points are integer
//! parameter assignments; they are normalized to `[0, 1]` per dimension
//! (using the exploration ranges) so one bandwidth and one threshold are
//! meaningful across parameters with wildly different ranges — the
//! "run-time information, i.e. the parameters' range" the paper says the
//! threshold must depend on.

use std::collections::HashMap;

/// Per-dimension integer bounds used for normalization.
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    /// Inclusive `(lo, hi)` per dimension.
    pub dims: Vec<(i64, i64)>,
}

impl Bounds {
    /// Creates bounds; inverted pairs are normalized.
    pub fn new(dims: Vec<(i64, i64)>) -> Bounds {
        Bounds {
            dims: dims
                .into_iter()
                .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
                .collect(),
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// Normalizes an integer point to `[0, 1]^d` (degenerate dims → 0.5).
    pub fn normalize(&self, point: &[i64]) -> Vec<f64> {
        debug_assert_eq!(point.len(), self.dims.len());
        point
            .iter()
            .zip(&self.dims)
            .map(|(&v, &(lo, hi))| {
                if hi == lo {
                    0.5
                } else {
                    (v - lo) as f64 / (hi - lo) as f64
                }
            })
            .collect()
    }
}

/// The dataset: normalized points with raw metric vectors.
#[derive(Debug, Clone)]
pub struct Dataset {
    bounds: Bounds,
    n_outputs: usize,
    points: Vec<Vec<f64>>,
    raw_points: Vec<Vec<i64>>,
    outputs: Vec<Vec<f64>>,
    /// Exact-match index from raw point to row.
    index: HashMap<Vec<i64>, usize>,
    /// Squared normalized distance from each row to its nearest *other*
    /// row (`INFINITY` while the row has no neighbour). Maintained
    /// incrementally on insertion — O(M·d) per insert — so the adaptive
    /// threshold Γ never needs the O(M²·d) all-pairs recomputation.
    nn2: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset for points within `bounds` and metric
    /// vectors of length `n_outputs`.
    pub fn new(bounds: Bounds, n_outputs: usize) -> Dataset {
        Dataset {
            bounds,
            n_outputs,
            points: Vec::new(),
            raw_points: Vec::new(),
            outputs: Vec::new(),
            index: HashMap::new(),
            nn2: Vec::new(),
        }
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality of points.
    pub fn dim(&self) -> usize {
        self.bounds.dim()
    }

    /// Number of outputs per point.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// The normalization bounds.
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    /// Inserts a pair; replaces the outputs if the point already exists.
    pub fn insert(&mut self, point: Vec<i64>, outputs: Vec<f64>) {
        assert_eq!(
            point.len(),
            self.bounds.dim(),
            "point dimensionality mismatch"
        );
        assert_eq!(outputs.len(), self.n_outputs, "output arity mismatch");
        if let Some(&row) = self.index.get(&point) {
            self.outputs[row] = outputs;
            return;
        }
        let norm = self.bounds.normalize(&point);
        // Fold the newcomer into the nearest-neighbour cache: one O(M·d)
        // sweep updates every existing row's minimum and derives the new
        // row's own nearest distance.
        let mut own_nn2 = f64::INFINITY;
        for (i, cached) in self.nn2.iter_mut().enumerate() {
            let d2 = self.points[i]
                .iter()
                .zip(&norm)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
            if d2 < *cached {
                *cached = d2;
            }
            if d2 < own_nn2 {
                own_nn2 = d2;
            }
        }
        self.nn2.push(own_nn2);
        self.index.insert(point.clone(), self.points.len());
        self.points.push(norm);
        self.raw_points.push(point);
        self.outputs.push(outputs);
    }

    /// Exact lookup by raw point.
    pub fn get(&self, point: &[i64]) -> Option<&[f64]> {
        self.index
            .get(point)
            .map(|&row| self.outputs[row].as_slice())
    }

    /// Whether the exact point is stored.
    pub fn contains(&self, point: &[i64]) -> bool {
        self.index.contains_key(point)
    }

    /// Normalized points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// Raw integer points.
    pub fn raw_points(&self) -> &[Vec<i64>] {
        &self.raw_points
    }

    /// Output vectors.
    pub fn outputs(&self) -> &[Vec<f64>] {
        &self.outputs
    }

    /// Normalizes an external point with the dataset's bounds.
    pub fn normalize(&self, point: &[i64]) -> Vec<f64> {
        self.bounds.normalize(point)
    }

    /// Squared Euclidean distance between a normalized query and row `i`.
    pub fn dist2_to(&self, x_norm: &[f64], i: usize) -> f64 {
        x_norm
            .iter()
            .zip(&self.points[i])
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Squared normalized distance from row `i` to its nearest other row
    /// (`INFINITY` for a single-row dataset). Served from the incremental
    /// cache — O(1).
    pub fn nn_dist2(&self, i: usize) -> f64 {
        self.nn2[i]
    }

    /// Smallest squared distance from a normalized query to any row, with
    /// the matching row index (first row on ties). `None` when empty.
    /// A single O(M·d) scan — no allocation, no sort.
    pub fn min_dist2(&self, x_norm: &[f64]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.len() {
            let d2 = self.dist2_to(x_norm, i);
            if best.is_none_or(|(_, bd)| d2 < bd) {
                best = Some((i, d2));
            }
        }
        best
    }

    /// Sorted squared distances from a normalized query to every row,
    /// excluding `exclude` (for LOO).
    pub fn sorted_dist2(&self, x_norm: &[f64], exclude: Option<usize>) -> Vec<(usize, f64)> {
        let mut d: Vec<(usize, f64)> = (0..self.len())
            .filter(|&i| Some(i) != exclude)
            .map(|i| (i, self.dist2_to(x_norm, i)))
            .collect();
        d.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        d
    }

    /// Serializes the dataset to a simple CSV text: a header row encoding
    /// the bounds, then one row per pair. Persisting the synthetic dataset
    /// between runs "amortizes the expensive synthetic dataset generation"
    /// (paper §V).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        // Header: #bounds lo..hi per dim, then arity.
        out.push_str("#bounds");
        for (lo, hi) in &self.bounds.dims {
            out.push_str(&format!(",{lo}:{hi}"));
        }
        out.push_str(&format!(";outputs={}\n", self.n_outputs));
        for (p, y) in self.raw_points.iter().zip(&self.outputs) {
            let px: Vec<String> = p.iter().map(i64::to_string).collect();
            let yx: Vec<String> = y.iter().map(|v| format!("{v}")).collect();
            out.push_str(&px.join(","));
            out.push('|');
            out.push_str(&yx.join(","));
            out.push('\n');
        }
        out
    }

    /// Deserializes a dataset written by [`Dataset::to_csv`].
    pub fn from_csv(text: &str) -> Result<Dataset, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty dataset file")?;
        let header = header
            .strip_prefix("#bounds")
            .ok_or("missing #bounds header")?;
        let (bounds_part, outputs_part) =
            header.split_once(';').ok_or("malformed header (no `;`)")?;
        let mut dims = Vec::new();
        for spec in bounds_part.split(',').filter(|s| !s.is_empty()) {
            let (lo, hi) = spec
                .split_once(':')
                .ok_or_else(|| format!("bad bound `{spec}`"))?;
            dims.push((
                lo.parse::<i64>()
                    .map_err(|_| format!("bad bound `{spec}`"))?,
                hi.parse::<i64>()
                    .map_err(|_| format!("bad bound `{spec}`"))?,
            ));
        }
        let n_outputs: usize = outputs_part
            .strip_prefix("outputs=")
            .and_then(|s| s.parse().ok())
            .ok_or("malformed outputs= field")?;
        let mut ds = Dataset::new(Bounds::new(dims), n_outputs);
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let (p, y) = line
                .split_once('|')
                .ok_or_else(|| format!("line {}: missing `|`", lineno + 2))?;
            let point: Vec<i64> = p
                .split(',')
                .map(|v| v.trim().parse::<i64>())
                .collect::<Result<_, _>>()
                .map_err(|e| format!("line {}: {e}", lineno + 2))?;
            let outputs: Vec<f64> = y
                .split(',')
                .map(|v| v.trim().parse::<f64>())
                .collect::<Result<_, _>>()
                .map_err(|e| format!("line {}: {e}", lineno + 2))?;
            if point.len() != ds.dim() || outputs.len() != n_outputs {
                return Err(format!("line {}: arity mismatch", lineno + 2));
            }
            ds.insert(point, outputs);
        }
        Ok(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::new(Bounds::new(vec![(0, 100), (0, 10)]), 2)
    }

    #[test]
    fn normalization() {
        let b = Bounds::new(vec![(0, 100), (50, 50)]);
        assert_eq!(b.normalize(&[50, 50]), vec![0.5, 0.5]);
        assert_eq!(b.normalize(&[0, 50]), vec![0.0, 0.5]);
        assert_eq!(b.normalize(&[100, 50]), vec![1.0, 0.5]);
    }

    #[test]
    fn inverted_bounds_normalized() {
        let b = Bounds::new(vec![(10, 0)]);
        assert_eq!(b.dims, vec![(0, 10)]);
    }

    #[test]
    fn insert_and_exact_lookup() {
        let mut d = ds();
        d.insert(vec![10, 5], vec![1.0, 2.0]);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&[10, 5]));
        assert_eq!(d.get(&[10, 5]), Some(&[1.0, 2.0][..]));
        assert_eq!(d.get(&[10, 6]), None);
    }

    #[test]
    fn reinsert_replaces_outputs() {
        let mut d = ds();
        d.insert(vec![10, 5], vec![1.0, 2.0]);
        d.insert(vec![10, 5], vec![3.0, 4.0]);
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(&[10, 5]), Some(&[3.0, 4.0][..]));
    }

    #[test]
    fn distances_sorted() {
        let mut d = ds();
        d.insert(vec![0, 0], vec![0.0, 0.0]);
        d.insert(vec![100, 10], vec![0.0, 0.0]);
        d.insert(vec![50, 5], vec![0.0, 0.0]);
        let q = d.normalize(&[10, 1]);
        let sorted = d.sorted_dist2(&q, None);
        assert_eq!(sorted[0].0, 0);
        assert_eq!(sorted[2].0, 1);
        assert!(sorted[0].1 <= sorted[1].1 && sorted[1].1 <= sorted[2].1);
    }

    #[test]
    fn loo_exclusion() {
        let mut d = ds();
        d.insert(vec![0, 0], vec![0.0, 0.0]);
        d.insert(vec![100, 10], vec![0.0, 0.0]);
        let q = d.normalize(&[0, 0]);
        let sorted = d.sorted_dist2(&q, Some(0));
        assert_eq!(sorted.len(), 1);
        assert_eq!(sorted[0].0, 1);
    }

    #[test]
    fn csv_roundtrip() {
        let mut d = ds();
        d.insert(vec![10, 5], vec![1.5, 2.0]);
        d.insert(vec![90, 2], vec![-3.25, 0.0]);
        let text = d.to_csv();
        let back = Dataset::from_csv(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.bounds(), d.bounds());
        assert_eq!(back.get(&[10, 5]), Some(&[1.5, 2.0][..]));
        assert_eq!(back.get(&[90, 2]), Some(&[-3.25, 0.0][..]));
        // Normalized geometry survives too.
        assert_eq!(back.normalize(&[50, 5]), d.normalize(&[50, 5]));
    }

    #[test]
    fn csv_roundtrip_empty_dataset() {
        let d = ds();
        let back = Dataset::from_csv(&d.to_csv()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.n_outputs(), 2);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(Dataset::from_csv("").is_err());
        assert!(Dataset::from_csv("nonsense").is_err());
        assert!(Dataset::from_csv("#bounds,0:10;outputs=1\n1,2|3").is_err()); // dim mismatch
        assert!(Dataset::from_csv("#bounds,0:10;outputs=2\n1|3").is_err()); // arity mismatch
        assert!(Dataset::from_csv("#bounds,0:10;outputs=1\n1;3").is_err()); // missing |
    }

    #[test]
    fn nn_cache_tracks_brute_force() {
        let mut d = Dataset::new(Bounds::new(vec![(0, 100), (0, 100)]), 1);
        let pts = [[0i64, 0], [100, 100], [50, 50], [52, 48], [10, 90]];
        for (k, p) in pts.iter().enumerate() {
            d.insert(p.to_vec(), vec![k as f64]);
            for i in 0..d.len() {
                let brute = (0..d.len())
                    .filter(|&j| j != i)
                    .map(|j| d.dist2_to(&d.points()[i].clone(), j))
                    .fold(f64::INFINITY, f64::min);
                assert_eq!(d.nn_dist2(i), brute, "row {i} after {k} inserts");
            }
        }
    }

    #[test]
    fn nn_cache_single_row_is_infinite() {
        let mut d = Dataset::new(Bounds::new(vec![(0, 10)]), 1);
        d.insert(vec![5], vec![0.0]);
        assert_eq!(d.nn_dist2(0), f64::INFINITY);
    }

    #[test]
    fn nn_cache_unchanged_by_output_replacement() {
        let mut d = ds();
        d.insert(vec![10, 5], vec![1.0, 2.0]);
        d.insert(vec![90, 2], vec![0.0, 0.0]);
        let before = d.nn_dist2(0);
        d.insert(vec![10, 5], vec![3.0, 4.0]); // replace outputs only
        assert_eq!(d.len(), 2);
        assert_eq!(d.nn_dist2(0), before);
    }

    #[test]
    fn min_dist2_matches_sorted_head() {
        let mut d = ds();
        d.insert(vec![0, 0], vec![0.0, 0.0]);
        d.insert(vec![100, 10], vec![0.0, 0.0]);
        d.insert(vec![50, 5], vec![0.0, 0.0]);
        let q = d.normalize(&[40, 4]);
        let (i, d2) = d.min_dist2(&q).unwrap();
        let sorted = d.sorted_dist2(&q, None);
        assert_eq!((i, d2), sorted[0]);
        assert!(Dataset::new(Bounds::new(vec![(0, 1)]), 1)
            .min_dist2(&[0.0])
            .is_none());
    }

    #[test]
    #[should_panic(expected = "output arity mismatch")]
    fn wrong_arity_panics() {
        let mut d = ds();
        d.insert(vec![0, 0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "point dimensionality mismatch")]
    fn wrong_dim_panics() {
        let mut d = ds();
        d.insert(vec![0], vec![1.0, 2.0]);
    }
}
