//! The synthetic dataset behind the approximation model.
//!
//! Stores `(design point, metric vector)` pairs. Points are integer
//! parameter assignments; they are normalized to `[0, 1]` per dimension
//! (using the exploration ranges) so one bandwidth and one threshold are
//! meaningful across parameters with wildly different ranges — the
//! "run-time information, i.e. the parameters' range" the paper says the
//! threshold must depend on.
//!
//! Normalized coordinates live in one contiguous row-major buffer (no
//! per-row `Vec`), and an exact lazily-rebuilt KD-tree
//! ([`crate::neighbor::NeighborIndex`]) serves nearest-neighbour queries,
//! so the per-decide similarity check and the truncated NW estimator stay
//! sub-linear in the dataset size.

use crate::kernel::dist2;
use crate::neighbor::NeighborIndex;
use std::collections::HashMap;

/// Per-dimension integer bounds used for normalization.
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    /// Inclusive `(lo, hi)` per dimension.
    pub dims: Vec<(i64, i64)>,
}

impl Bounds {
    /// Creates bounds; inverted pairs are normalized.
    pub fn new(dims: Vec<(i64, i64)>) -> Bounds {
        Bounds {
            dims: dims
                .into_iter()
                .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
                .collect(),
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// Normalizes an integer point to `[0, 1]^d`.
    ///
    /// A degenerate axis (`lo == hi` — a parameter that never varies)
    /// maps to exactly `0.0` rather than dividing by the zero range: the
    /// axis carries no information, so every point must land on the same
    /// coordinate and contribute zero to every distance.
    pub fn normalize(&self, point: &[i64]) -> Vec<f64> {
        debug_assert_eq!(point.len(), self.dims.len());
        point
            .iter()
            .zip(&self.dims)
            .map(|(&v, &(lo, hi))| {
                if hi == lo {
                    0.0
                } else {
                    (v - lo) as f64 / (hi - lo) as f64
                }
            })
            .collect()
    }
}

/// The dataset: normalized points with raw metric vectors.
#[derive(Debug, Clone)]
pub struct Dataset {
    bounds: Bounds,
    n_outputs: usize,
    /// Flat row-major normalized coordinates: row `i` occupies
    /// `coords[i*d .. (i+1)*d]`.
    coords: Vec<f64>,
    raw_points: Vec<Vec<i64>>,
    outputs: Vec<Vec<f64>>,
    /// Exact-match index from raw point to row.
    index: HashMap<Vec<i64>, usize>,
    /// Squared normalized distance from each row to its nearest *other*
    /// row (`INFINITY` while the row has no neighbour). Maintained
    /// incrementally on insertion — O(M·d) per insert — so the adaptive
    /// threshold Γ never needs the O(M²·d) all-pairs recomputation.
    nn2: Vec<f64>,
    /// Exact KD-tree over the rows, rebuilt lazily; query answers are
    /// bitwise those of a linear scan (see [`crate::neighbor`]).
    tree: NeighborIndex,
}

impl Dataset {
    /// Creates an empty dataset for points within `bounds` and metric
    /// vectors of length `n_outputs`.
    pub fn new(bounds: Bounds, n_outputs: usize) -> Dataset {
        Dataset {
            bounds,
            n_outputs,
            coords: Vec::new(),
            raw_points: Vec::new(),
            outputs: Vec::new(),
            index: HashMap::new(),
            nn2: Vec::new(),
            tree: NeighborIndex::new(),
        }
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.raw_points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.raw_points.is_empty()
    }

    /// Dimensionality of points.
    pub fn dim(&self) -> usize {
        self.bounds.dim()
    }

    /// Number of outputs per point.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// The normalization bounds.
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    /// Inserts a pair; replaces the outputs if the point already exists.
    pub fn insert(&mut self, point: Vec<i64>, outputs: Vec<f64>) {
        assert_eq!(
            point.len(),
            self.bounds.dim(),
            "point dimensionality mismatch"
        );
        assert_eq!(outputs.len(), self.n_outputs, "output arity mismatch");
        if let Some(&row) = self.index.get(&point) {
            self.outputs[row] = outputs;
            return;
        }
        let norm = self.bounds.normalize(&point);
        // Fold the newcomer into the nearest-neighbour cache: one O(M·d)
        // sweep updates every existing row's minimum and derives the new
        // row's own nearest distance.
        let d = self.dim();
        let mut own_nn2 = f64::INFINITY;
        for (i, cached) in self.nn2.iter_mut().enumerate() {
            let d2 = dist2(&self.coords[i * d..i * d + d], &norm);
            if d2 < *cached {
                *cached = d2;
            }
            if d2 < own_nn2 {
                own_nn2 = d2;
            }
        }
        self.nn2.push(own_nn2);
        self.index.insert(point.clone(), self.raw_points.len());
        self.coords.extend_from_slice(&norm);
        self.raw_points.push(point);
        self.outputs.push(outputs);
        self.tree.sync(&self.coords, d, self.raw_points.len());
    }

    /// Bulk insertion for pretraining and deserialization: identical
    /// replace-on-duplicate semantics to repeated [`Dataset::insert`]
    /// calls, but the nearest-neighbour cache is derived in one
    /// tree-backed O(M·log M) pass instead of M incremental O(M·d)
    /// sweeps. Each cached value is the minimum of the same
    /// [`dist2`]-computed candidates either way, so the resulting dataset
    /// is bitwise the sequential-insert one.
    pub fn insert_bulk(&mut self, pairs: impl IntoIterator<Item = (Vec<i64>, Vec<f64>)>) {
        let d = self.dim();
        for (point, outputs) in pairs {
            assert_eq!(point.len(), d, "point dimensionality mismatch");
            assert_eq!(outputs.len(), self.n_outputs, "output arity mismatch");
            if let Some(&row) = self.index.get(&point) {
                self.outputs[row] = outputs;
                continue;
            }
            let norm = self.bounds.normalize(&point);
            self.index.insert(point.clone(), self.raw_points.len());
            self.coords.extend_from_slice(&norm);
            self.raw_points.push(point);
            self.outputs.push(outputs);
        }
        let n = self.raw_points.len();
        self.tree.rebuild(&self.coords, d, n);
        self.nn2 = (0..n)
            .map(|i| {
                self.tree
                    .nearest(&self.coords, d, n, &self.coords[i * d..i * d + d], Some(i))
                    .map_or(f64::INFINITY, |(_, d2)| d2)
            })
            .collect();
    }

    /// Exact lookup by raw point.
    pub fn get(&self, point: &[i64]) -> Option<&[f64]> {
        self.index
            .get(point)
            .map(|&row| self.outputs[row].as_slice())
    }

    /// Whether the exact point is stored.
    pub fn contains(&self, point: &[i64]) -> bool {
        self.index.contains_key(point)
    }

    /// The normalized coordinates of row `i`.
    pub fn point(&self, i: usize) -> &[f64] {
        let d = self.dim();
        &self.coords[i * d..i * d + d]
    }

    /// The whole flat row-major coordinate buffer (row `i` at
    /// `coords()[i*dim()..(i+1)*dim()]`).
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Raw integer points.
    pub fn raw_points(&self) -> &[Vec<i64>] {
        &self.raw_points
    }

    /// Output vectors.
    pub fn outputs(&self) -> &[Vec<f64>] {
        &self.outputs
    }

    /// Normalizes an external point with the dataset's bounds.
    pub fn normalize(&self, point: &[i64]) -> Vec<f64> {
        self.bounds.normalize(point)
    }

    /// Squared Euclidean distance between a normalized query and row `i`.
    pub fn dist2_to(&self, x_norm: &[f64], i: usize) -> f64 {
        dist2(x_norm, self.point(i))
    }

    /// Squared normalized distance from row `i` to its nearest other row
    /// (`INFINITY` for a single-row dataset). Served from the incremental
    /// cache — O(1).
    pub fn nn_dist2(&self, i: usize) -> f64 {
        self.nn2[i]
    }

    /// Smallest squared distance from a normalized query to any row, with
    /// the matching row index (lowest row on ties). `None` when empty.
    /// Served by the KD-tree in O(log M + tail) — bitwise the first-wins
    /// linear scan's answer.
    pub fn min_dist2(&self, x_norm: &[f64]) -> Option<(usize, f64)> {
        self.tree
            .nearest(&self.coords, self.dim(), self.len(), x_norm, None)
    }

    /// The `k` nearest rows to a normalized query (excluding `exclude`),
    /// written into `out` as `(d², row)` sorted ascending by `(d², row)`.
    pub fn k_nearest(
        &self,
        x_norm: &[f64],
        k: usize,
        exclude: Option<usize>,
        out: &mut Vec<(f64, usize)>,
    ) {
        self.tree.k_nearest(
            &self.coords,
            self.dim(),
            self.len(),
            x_norm,
            k,
            exclude,
            out,
        );
    }

    /// Sorted squared distances from a normalized query to every row,
    /// excluding `exclude` (for LOO).
    pub fn sorted_dist2(&self, x_norm: &[f64], exclude: Option<usize>) -> Vec<(usize, f64)> {
        let mut d: Vec<(usize, f64)> = (0..self.len())
            .filter(|&i| Some(i) != exclude)
            .map(|i| (i, self.dist2_to(x_norm, i)))
            .collect();
        d.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        d
    }

    /// Serializes the dataset to a simple CSV text: a header row encoding
    /// the bounds, then one row per pair. Persisting the synthetic dataset
    /// between runs "amortizes the expensive synthetic dataset generation"
    /// (paper §V).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        // Header: #bounds lo..hi per dim, then arity.
        out.push_str("#bounds");
        for (lo, hi) in &self.bounds.dims {
            out.push_str(&format!(",{lo}:{hi}"));
        }
        out.push_str(&format!(";outputs={}\n", self.n_outputs));
        for (p, y) in self.raw_points.iter().zip(&self.outputs) {
            let px: Vec<String> = p.iter().map(i64::to_string).collect();
            let yx: Vec<String> = y.iter().map(|v| format!("{v}")).collect();
            out.push_str(&px.join(","));
            out.push('|');
            out.push_str(&yx.join(","));
            out.push('\n');
        }
        out
    }

    /// Deserializes a dataset written by [`Dataset::to_csv`]. Rows load
    /// through [`Dataset::insert_bulk`], so restoring a journaled
    /// million-point dataset costs O(M·log M), not O(M²).
    pub fn from_csv(text: &str) -> Result<Dataset, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty dataset file")?;
        let header = header
            .strip_prefix("#bounds")
            .ok_or("missing #bounds header")?;
        let (bounds_part, outputs_part) =
            header.split_once(';').ok_or("malformed header (no `;`)")?;
        let mut dims = Vec::new();
        for spec in bounds_part.split(',').filter(|s| !s.is_empty()) {
            let (lo, hi) = spec
                .split_once(':')
                .ok_or_else(|| format!("bad bound `{spec}`"))?;
            dims.push((
                lo.parse::<i64>()
                    .map_err(|_| format!("bad bound `{spec}`"))?,
                hi.parse::<i64>()
                    .map_err(|_| format!("bad bound `{spec}`"))?,
            ));
        }
        let n_outputs: usize = outputs_part
            .strip_prefix("outputs=")
            .and_then(|s| s.parse().ok())
            .ok_or("malformed outputs= field")?;
        let mut ds = Dataset::new(Bounds::new(dims), n_outputs);
        let mut rows = Vec::new();
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let (p, y) = line
                .split_once('|')
                .ok_or_else(|| format!("line {}: missing `|`", lineno + 2))?;
            let point: Vec<i64> = p
                .split(',')
                .map(|v| v.trim().parse::<i64>())
                .collect::<Result<_, _>>()
                .map_err(|e| format!("line {}: {e}", lineno + 2))?;
            let outputs: Vec<f64> = y
                .split(',')
                .map(|v| v.trim().parse::<f64>())
                .collect::<Result<_, _>>()
                .map_err(|e| format!("line {}: {e}", lineno + 2))?;
            if point.len() != ds.dim() || outputs.len() != n_outputs {
                return Err(format!("line {}: arity mismatch", lineno + 2));
            }
            rows.push((point, outputs));
        }
        ds.insert_bulk(rows);
        Ok(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::new(Bounds::new(vec![(0, 100), (0, 10)]), 2)
    }

    #[test]
    fn normalization() {
        let b = Bounds::new(vec![(0, 100)]);
        assert_eq!(b.normalize(&[50]), vec![0.5]);
        assert_eq!(b.normalize(&[0]), vec![0.0]);
        assert_eq!(b.normalize(&[100]), vec![1.0]);
    }

    #[test]
    fn degenerate_axis_normalizes_to_zero() {
        // A constant parameter (lo == hi) must yield exactly 0.0 — never
        // NaN or ±inf from the zero range — so it contributes nothing to
        // any distance.
        let b = Bounds::new(vec![(0, 100), (50, 50)]);
        assert_eq!(b.normalize(&[50, 50]), vec![0.5, 0.0]);
        assert_eq!(b.normalize(&[0, 50]), vec![0.0, 0.0]);
        // Even out-of-range values on the degenerate axis stay finite.
        let n = b.normalize(&[100, 7]);
        assert_eq!(n, vec![1.0, 0.0]);
        assert!(n.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn degenerate_axis_dataset_stays_finite_end_to_end() {
        // Regression for the constant-axis case: recording through a
        // dataset whose second axis never varies must keep every distance
        // and nearest-neighbour cache entry finite and NaN-free.
        let mut d = Dataset::new(Bounds::new(vec![(0, 100), (7, 7)]), 1);
        for (i, x) in [0i64, 30, 60, 90].iter().enumerate() {
            d.insert(vec![*x, 7], vec![i as f64]);
        }
        for i in 0..d.len() {
            assert!(d.nn_dist2(i).is_finite(), "row {i}: {}", d.nn_dist2(i));
            assert!(d.point(i).iter().all(|v| v.is_finite()));
        }
        let q = d.normalize(&[45, 7]);
        let (_, d2) = d.min_dist2(&q).unwrap();
        assert!(d2.is_finite() && d2 > 0.0);
    }

    #[test]
    fn inverted_bounds_normalized() {
        let b = Bounds::new(vec![(10, 0)]);
        assert_eq!(b.dims, vec![(0, 10)]);
    }

    #[test]
    fn insert_and_exact_lookup() {
        let mut d = ds();
        d.insert(vec![10, 5], vec![1.0, 2.0]);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&[10, 5]));
        assert_eq!(d.get(&[10, 5]), Some(&[1.0, 2.0][..]));
        assert_eq!(d.get(&[10, 6]), None);
    }

    #[test]
    fn reinsert_replaces_outputs() {
        let mut d = ds();
        d.insert(vec![10, 5], vec![1.0, 2.0]);
        d.insert(vec![10, 5], vec![3.0, 4.0]);
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(&[10, 5]), Some(&[3.0, 4.0][..]));
    }

    #[test]
    fn distances_sorted() {
        let mut d = ds();
        d.insert(vec![0, 0], vec![0.0, 0.0]);
        d.insert(vec![100, 10], vec![0.0, 0.0]);
        d.insert(vec![50, 5], vec![0.0, 0.0]);
        let q = d.normalize(&[10, 1]);
        let sorted = d.sorted_dist2(&q, None);
        assert_eq!(sorted[0].0, 0);
        assert_eq!(sorted[2].0, 1);
        assert!(sorted[0].1 <= sorted[1].1 && sorted[1].1 <= sorted[2].1);
    }

    #[test]
    fn loo_exclusion() {
        let mut d = ds();
        d.insert(vec![0, 0], vec![0.0, 0.0]);
        d.insert(vec![100, 10], vec![0.0, 0.0]);
        let q = d.normalize(&[0, 0]);
        let sorted = d.sorted_dist2(&q, Some(0));
        assert_eq!(sorted.len(), 1);
        assert_eq!(sorted[0].0, 1);
    }

    #[test]
    fn csv_roundtrip() {
        let mut d = ds();
        d.insert(vec![10, 5], vec![1.5, 2.0]);
        d.insert(vec![90, 2], vec![-3.25, 0.0]);
        let text = d.to_csv();
        let back = Dataset::from_csv(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.bounds(), d.bounds());
        assert_eq!(back.get(&[10, 5]), Some(&[1.5, 2.0][..]));
        assert_eq!(back.get(&[90, 2]), Some(&[-3.25, 0.0][..]));
        // Normalized geometry survives too.
        assert_eq!(back.normalize(&[50, 5]), d.normalize(&[50, 5]));
    }

    #[test]
    fn csv_roundtrip_empty_dataset() {
        let d = ds();
        let back = Dataset::from_csv(&d.to_csv()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.n_outputs(), 2);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(Dataset::from_csv("").is_err());
        assert!(Dataset::from_csv("nonsense").is_err());
        assert!(Dataset::from_csv("#bounds,0:10;outputs=1\n1,2|3").is_err()); // dim mismatch
        assert!(Dataset::from_csv("#bounds,0:10;outputs=2\n1|3").is_err()); // arity mismatch
        assert!(Dataset::from_csv("#bounds,0:10;outputs=1\n1;3").is_err()); // missing |
    }

    #[test]
    fn nn_cache_tracks_brute_force() {
        let mut d = Dataset::new(Bounds::new(vec![(0, 100), (0, 100)]), 1);
        let pts = [[0i64, 0], [100, 100], [50, 50], [52, 48], [10, 90]];
        for (k, p) in pts.iter().enumerate() {
            d.insert(p.to_vec(), vec![k as f64]);
            for i in 0..d.len() {
                let brute = (0..d.len())
                    .filter(|&j| j != i)
                    .map(|j| d.dist2_to(d.point(i).to_vec().as_slice(), j))
                    .fold(f64::INFINITY, f64::min);
                assert_eq!(d.nn_dist2(i), brute, "row {i} after {k} inserts");
            }
        }
    }

    #[test]
    fn bulk_insert_matches_sequential_inserts_bitwise() {
        let pairs: Vec<(Vec<i64>, Vec<f64>)> = (0..300)
            .map(|i| {
                let x = (i * 37) % 101;
                let y = (i * 53) % 11;
                (vec![x, y], vec![x as f64, y as f64])
            })
            .collect();
        let mut seq = ds();
        for (p, o) in pairs.clone() {
            seq.insert(p, o);
        }
        let mut bulk = ds();
        bulk.insert_bulk(pairs);
        assert_eq!(seq.len(), bulk.len());
        assert_eq!(seq.raw_points(), bulk.raw_points());
        assert_eq!(seq.outputs(), bulk.outputs());
        assert_eq!(seq.coords(), bulk.coords());
        for i in 0..seq.len() {
            assert_eq!(
                seq.nn_dist2(i).to_bits(),
                bulk.nn_dist2(i).to_bits(),
                "nn2 diverged at row {i}"
            );
        }
        // Replace-on-duplicate semantics match too.
        let mut dup = ds();
        dup.insert_bulk(vec![
            (vec![1, 1], vec![0.0, 0.0]),
            (vec![1, 1], vec![5.0, 6.0]),
        ]);
        assert_eq!(dup.len(), 1);
        assert_eq!(dup.get(&[1, 1]), Some(&[5.0, 6.0][..]));
    }

    #[test]
    fn k_nearest_matches_sorted_dist2_prefix() {
        let mut d = ds();
        for i in 0..40i64 {
            d.insert(vec![(i * 7) % 101, (i * 3) % 11], vec![0.0, 0.0]);
        }
        let q = d.normalize(&[33, 4]);
        let mut got = Vec::new();
        d.k_nearest(&q, 5, None, &mut got);
        let want = d.sorted_dist2(&q, None);
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.0.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn nn_cache_single_row_is_infinite() {
        let mut d = Dataset::new(Bounds::new(vec![(0, 10)]), 1);
        d.insert(vec![5], vec![0.0]);
        assert_eq!(d.nn_dist2(0), f64::INFINITY);
    }

    #[test]
    fn nn_cache_unchanged_by_output_replacement() {
        let mut d = ds();
        d.insert(vec![10, 5], vec![1.0, 2.0]);
        d.insert(vec![90, 2], vec![0.0, 0.0]);
        let before = d.nn_dist2(0);
        d.insert(vec![10, 5], vec![3.0, 4.0]); // replace outputs only
        assert_eq!(d.len(), 2);
        assert_eq!(d.nn_dist2(0), before);
    }

    #[test]
    fn min_dist2_matches_sorted_head() {
        let mut d = ds();
        d.insert(vec![0, 0], vec![0.0, 0.0]);
        d.insert(vec![100, 10], vec![0.0, 0.0]);
        d.insert(vec![50, 5], vec![0.0, 0.0]);
        let q = d.normalize(&[40, 4]);
        let (i, d2) = d.min_dist2(&q).unwrap();
        let sorted = d.sorted_dist2(&q, None);
        assert_eq!((i, d2), sorted[0]);
        assert!(Dataset::new(Bounds::new(vec![(0, 1)]), 1)
            .min_dist2(&[0.0])
            .is_none());
    }

    #[test]
    #[should_panic(expected = "output arity mismatch")]
    fn wrong_arity_panics() {
        let mut d = ds();
        d.insert(vec![0, 0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "point dimensionality mismatch")]
    fn wrong_dim_panics() {
        let mut d = ds();
        d.insert(vec![0], vec![1.0, 2.0]);
    }
}
