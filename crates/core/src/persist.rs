//! Crash-safe persistence: evaluation-store serialization and the
//! write-ahead exploration journal.
//!
//! Two artifacts live under one persistence directory:
//!
//! * `store/` — the content-addressed [`dovado_eda::EvalStore`]. Each
//!   entry is one successful [`Evaluation`], keyed by a 128-bit hash of
//!   everything that determines its outcome (sources, top module, the
//!   full [`EvalConfig`] including part/directives/seed/fault plan, and
//!   the design point). A warm store answers repeat evaluations without
//!   a single tool run; a corrupt or version-mismatched entry reads as a
//!   *miss*, never as a wrong answer.
//! * `journal.dovado` — a snapshot of the whole exploration state at a
//!   generation boundary: the explorer engine (a tagged
//!   [`ExplorerSnapshot`]: population/archive/history, raw RNG state,
//!   enumeration cursor or annealing temperature as the kind demands),
//!   fitness counters, the simulated-time ledger, the portfolio
//!   selection of an `--explorer auto` run, and — when the approximation
//!   model is on — the surrogate dataset, selected bandwidth, Γ, and the
//!   amortized-reselection phase. `explore --resume` rebuilds the run
//!   from this snapshot and continues bitwise-identically.
//!
//! Both artifacts use the checksummed envelope and atomic-rename
//! discipline of [`dovado_eda::store`]; floats are serialized as exact
//! bit patterns (`f64::to_bits` hex), so a journal round-trip is
//! bitwise, not approximately equal.

use crate::error::{DovadoError, DovadoResult};
use crate::fitness::FitnessStats;
use crate::flow::{EvalConfig, HdlSource};
use crate::metrics::Evaluation;
use dovado_eda::store::{atomic_write, decode_checked, encode_checked};
use dovado_eda::EvalKey;
use dovado_fpga::{ResourceKind, ResourceSet};
use dovado_moo::{
    AnnealingSnapshot, BayesSnapshot, ExhaustiveSnapshot, ExplorerSnapshot, GenStats, Individual,
    Nsga2Snapshot, RandomSnapshot, WsgaSnapshot,
};
use dovado_surrogate::ControlStats;
use std::fs;
use std::path::{Path, PathBuf};

/// Journal format version. Bump on any change to the journal payload
/// layout; old journals then refuse to resume instead of misparsing.
/// (v2 added the `trace` line: trace counters + successful runs, so
/// resume can splice whole-run totals onto the observability spine.
/// v3 made the engine snapshot a tagged per-explorer section and added
/// the `selection` block recording an `auto` run's portfolio decision.)
pub const JOURNAL_FORMAT_VERSION: u32 = 3;

/// Envelope tag of the exploration journal.
const JOURNAL_TAG: &str = "dovado-journal";

/// Where exploration state persists and whether to resume from it.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Root directory: holds `store/` and `journal.dovado`.
    pub dir: PathBuf,
    /// Resume from an existing journal instead of starting fresh.
    pub resume: bool,
    /// Journal every this many generations (1 = every boundary).
    pub journal_every: u32,
    /// Entry-count bound for the evaluation store. `None` — the explicit
    /// default — keeps the store unbounded; `Some(n)` evicts the
    /// least-recently-touched entries past `n` (evictions only ever
    /// produce misses, never wrong answers). `Some(0)` is rejected as a
    /// configuration error. Not part of the journal fingerprint: like
    /// `jobs`/`workers`, the bound changes *cost*, never *answers*.
    pub store_capacity: Option<usize>,
}

impl PersistConfig {
    /// Persistence rooted at `dir`, starting fresh, journaling every
    /// generation boundary, with an unbounded store.
    pub fn new(dir: impl Into<PathBuf>) -> PersistConfig {
        PersistConfig {
            dir: dir.into(),
            resume: false,
            journal_every: 1,
            store_capacity: None,
        }
    }

    /// The evaluation-store directory.
    pub fn store_dir(&self) -> PathBuf {
        self.dir.join("store")
    }

    /// The journal file path.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.dovado")
    }
}

// ---- bitwise float / integer helpers -----------------------------------

fn f64_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn f64_from_hex(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

// ---- evaluation serialization (store entries) --------------------------

/// Serializes an [`Evaluation`] for the store. Utilization counts are
/// decimal (they are exact integers); every float is its bit pattern.
pub fn encode_evaluation(e: &Evaluation) -> String {
    let util: Vec<String> = ResourceKind::ALL
        .iter()
        .map(|&k| e.utilization.get(k).to_string())
        .collect();
    format!(
        "util {}\ntiming {} {} {} {} {}\n",
        util.join(" "),
        f64_hex(e.wns_ns),
        f64_hex(e.period_ns),
        f64_hex(e.fmax_mhz),
        f64_hex(e.power_mw),
        f64_hex(e.tool_time_s),
    )
}

/// Parses a store entry back into an [`Evaluation`]. `None` on any
/// structural problem — the store treats that as a miss.
pub fn decode_evaluation(text: &str) -> Option<Evaluation> {
    let mut lines = text.lines();
    let util_line = lines.next()?.strip_prefix("util ")?;
    let counts: Vec<u64> = util_line
        .split_whitespace()
        .map(|t| t.parse().ok())
        .collect::<Option<Vec<u64>>>()?;
    if counts.len() != ResourceKind::ALL.len() {
        return None;
    }
    let mut utilization = ResourceSet::zero();
    for (&kind, &n) in ResourceKind::ALL.iter().zip(&counts) {
        utilization.set(kind, n);
    }
    let timing: Vec<f64> = lines
        .next()?
        .strip_prefix("timing ")?
        .split_whitespace()
        .map(f64_from_hex)
        .collect::<Option<Vec<f64>>>()?;
    if timing.len() != 5 {
        return None;
    }
    Some(Evaluation {
        utilization,
        wns_ns: timing[0],
        period_ns: timing[1],
        fmax_mhz: timing[2],
        power_mw: timing[3],
        tool_time_s: timing[4],
    })
}

/// The 128-bit identity of an evaluator: everything that determines an
/// evaluation's outcome except the design point itself — sources, top
/// module, configuration, and which tool backend answers. The per-point
/// store key extends this with the point's assignments.
///
/// Besides the raw per-file identity, the key folds in the source set's
/// catalog fingerprint, which covers the unit-level dependency graph —
/// so an edit to *any* file a design unit depends on (a package body the
/// top only reaches transitively, say) changes the key and correctly
/// misses the EvalStore.
pub fn evaluator_key(
    sources: &[HdlSource],
    top: &str,
    config: &EvalConfig,
    backend: &str,
) -> EvalKey {
    let mut parts: Vec<String> = Vec::with_capacity(sources.len() * 4 + 4);
    for s in sources {
        parts.push(s.name.clone());
        parts.push(format!("{:?}", s.language));
        parts.push(s.library.clone().unwrap_or_default());
        parts.push(s.content.clone());
    }
    parts.push(catalog_fingerprint(sources));
    parts.push(top.to_string());
    parts.push(format!("{config:?}"));
    parts.push(backend.to_string());
    EvalKey::from_parts(&parts)
}

/// The sources' catalog fingerprint: content plus dependency-graph
/// structure. A source set the catalog cannot order (an instantiation
/// cycle split across files) keys on a deterministic marker instead —
/// the raw per-file parts above still cover its content.
fn catalog_fingerprint(sources: &[HdlSource]) -> String {
    use dovado_hdl::catalog::{CatalogSource, SourceCatalog};
    let catalog_sources = sources
        .iter()
        .map(|s| CatalogSource {
            path: s.name.clone(),
            language: s.language,
            library: s.library.clone(),
            text: s.content.clone(),
        })
        .collect();
    match SourceCatalog::from_sources(catalog_sources) {
        Ok(cat) => cat.fingerprint().to_string(),
        Err(e) => format!("catalog-unavailable:{e}"),
    }
}

// ---- journal -----------------------------------------------------------

/// Journaled surrogate-controller state (everything
/// [`dovado_surrogate::SurrogateController::restore`] needs).
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateJournal {
    /// Selected Nadaraya-Watson bandwidth (bitwise).
    pub bandwidth: f64,
    /// Current threshold Γ (bitwise).
    pub gamma: f64,
    /// Insertions since the last LOO-CV reselection (the amortization
    /// phase — losing this drifts every later reselection).
    pub inserts_since_retrain: usize,
    /// Reselection cadence.
    pub retrain_every: usize,
    /// Decision counters.
    pub stats: ControlStats,
    /// The dataset, verbatim in its bitwise CSV form.
    pub dataset_csv: String,
}

/// One write-ahead snapshot of an exploration run.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    /// Hex fingerprint of the configuration that wrote the journal;
    /// resume refuses a mismatch instead of continuing a different run.
    pub fingerprint: String,
    /// Whether the run had satisfied its termination criterion when
    /// this snapshot was taken.
    pub complete: bool,
    /// Simulated tool seconds spent so far (bitwise).
    pub tool_time_s: f64,
    /// Fitness counters so far.
    pub stats: FitnessStats,
    /// Whole-run trace counters so far (the spine's folded totals;
    /// resume splices the deficit back as a `Resume` event).
    pub trace: crate::trace::TraceSummary,
    /// Successful tool invocations so far.
    pub runs: u64,
    /// The explorer engine state (tagged by kind).
    pub snapshot: ExplorerSnapshot,
    /// The portfolio decision of an `--explorer auto` run; resume
    /// commits to the recorded explorer instead of re-racing.
    pub selection: Option<crate::dse::SelectionRecord>,
    /// Surrogate state, when the approximation model is on.
    pub surrogate: Option<SurrogateJournal>,
}

fn individual_line(ind: &Individual) -> String {
    let ints = |v: &[i64]| {
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    let bits = |v: &[f64]| v.iter().map(|x| f64_hex(*x)).collect::<Vec<_>>().join(" ");
    format!(
        "{}|{}|{}|{}|{}",
        ints(&ind.genome),
        bits(&ind.raw),
        bits(&ind.min_objs),
        ind.rank,
        f64_hex(ind.crowding)
    )
}

fn parse_individual(line: &str) -> Option<Individual> {
    let fields: Vec<&str> = line.split('|').collect();
    if fields.len() != 5 {
        return None;
    }
    let genome: Vec<i64> = fields[0]
        .split_whitespace()
        .map(|t| t.parse().ok())
        .collect::<Option<_>>()?;
    let raw: Vec<f64> = fields[1]
        .split_whitespace()
        .map(f64_from_hex)
        .collect::<Option<_>>()?;
    let min_objs: Vec<f64> = fields[2]
        .split_whitespace()
        .map(f64_from_hex)
        .collect::<Option<_>>()?;
    Some(Individual {
        genome,
        raw,
        min_objs,
        rank: fields[3].parse().ok()?,
        crowding: f64_from_hex(fields[4])?,
    })
}

fn push_counters(out: &mut String, generation: u32, evaluations: u64) {
    out.push_str(&format!("generation {generation}\n"));
    out.push_str(&format!("evaluations {evaluations}\n"));
}

fn push_rng(out: &mut String, state: &[u64; 4]) {
    out.push_str(&format!(
        "rng {:016x} {:016x} {:016x} {:016x}\n",
        state[0], state[1], state[2], state[3]
    ));
}

fn push_history(out: &mut String, history: &[GenStats]) {
    out.push_str(&format!("history {}\n", history.len()));
    for g in history {
        out.push_str(&format!(
            "{} {} {} {}\n",
            g.generation,
            g.evaluations,
            g.front_size,
            f64_hex(g.external_cost)
        ));
    }
}

fn push_individuals(out: &mut String, tag: &str, inds: &[Individual]) {
    out.push_str(&format!("{tag} {}\n", inds.len()));
    for ind in inds {
        out.push_str(&individual_line(ind));
        out.push('\n');
    }
}

fn serialize_snapshot(out: &mut String, snap: &ExplorerSnapshot) {
    out.push_str(&format!("explorer {}\n", snap.kind()));
    match snap {
        ExplorerSnapshot::Nsga2(s) => {
            push_counters(out, s.generation, s.evaluations);
            push_rng(out, &s.rng_state);
            push_history(out, &s.history);
            push_individuals(out, "population", &s.population);
            push_individuals(out, "archive", &s.archive);
        }
        ExplorerSnapshot::Random(s) => {
            push_counters(out, s.generation, s.evaluations);
            push_rng(out, &s.rng_state);
            push_history(out, &s.history);
            push_individuals(out, "archive", &s.archive);
        }
        ExplorerSnapshot::Exhaustive(s) => {
            push_counters(out, s.generation, s.evaluations);
            match &s.cursor {
                None => out.push_str("cursor 0\n"),
                Some(c) => {
                    let toks: Vec<String> = c.iter().map(|x| x.to_string()).collect();
                    out.push_str(&format!("cursor 1 {}\n", toks.join(" ")));
                }
            }
            push_history(out, &s.history);
            push_individuals(out, "archive", &s.archive);
        }
        ExplorerSnapshot::WeightedSum(s) => {
            push_counters(out, s.generation, s.evaluations);
            push_rng(out, &s.rng_state);
            push_history(out, &s.history);
            push_individuals(out, "population", &s.population);
            push_individuals(out, "archive", &s.archive);
        }
        ExplorerSnapshot::Annealing(s) => {
            push_counters(out, s.generation, s.evaluations);
            push_rng(out, &s.rng_state);
            let toks: Vec<String> = s.current.iter().map(|x| x.to_string()).collect();
            out.push_str(&format!("current {}\n", toks.join(" ")));
            out.push_str(&format!("energy {}\n", f64_hex(s.energy)));
            out.push_str(&format!("temperature {}\n", f64_hex(s.temperature)));
            push_history(out, &s.history);
            push_individuals(out, "archive", &s.archive);
        }
        ExplorerSnapshot::Bayes(s) => {
            push_counters(out, s.generation, s.evaluations);
            push_rng(out, &s.rng_state);
            push_history(out, &s.history);
            push_individuals(out, "archive", &s.archive);
        }
    }
}

fn serialize_journal(j: &Journal) -> String {
    let s = &j.stats;
    let mut out = String::new();
    out.push_str(&format!("fingerprint {}\n", j.fingerprint));
    out.push_str(&format!("complete {}\n", u8::from(j.complete)));
    out.push_str(&format!("tool_time {}\n", f64_hex(j.tool_time_s)));
    out.push_str(&format!(
        "fitness {} {} {} {} {} {} {}\n",
        s.tool_runs,
        s.cached_runs,
        s.estimates,
        s.failures,
        s.transient_failures,
        s.permanent_failures,
        s.retries
    ));
    let t = &j.trace;
    out.push_str(&format!(
        "trace {} {} {} {} {} {} {} {}\n",
        t.attempts,
        t.retries,
        t.transient_failures,
        t.permanent_failures,
        t.cache_hits,
        t.store_hits,
        f64_hex(t.backoff_s),
        j.runs
    ));
    serialize_snapshot(&mut out, &j.snapshot);
    match &j.selection {
        None => out.push_str("selection 0\n"),
        Some(rec) => {
            out.push_str("selection 1\n");
            out.push_str(&format!("chosen {}\n", rec.explorer));
            out.push_str(&format!(
                "context {} {}\n",
                rec.space_volume, rec.objectives
            ));
            out.push_str(&format!(
                "lowfi {} {}\n",
                rec.lowfi_runs,
                f64_hex(rec.lowfi_time_s)
            ));
            out.push_str(&format!("candidates {}\n", rec.candidates.len()));
            for c in &rec.candidates {
                out.push_str(&format!(
                    "{} {} {} {}\n",
                    c.name,
                    c.evaluations,
                    f64_hex(c.hypervolume),
                    f64_hex(c.slope)
                ));
            }
        }
    }
    match &j.surrogate {
        None => out.push_str("surrogate 0\n"),
        Some(sj) => {
            out.push_str("surrogate 1\n");
            out.push_str(&format!("bandwidth {}\n", f64_hex(sj.bandwidth)));
            out.push_str(&format!("gamma {}\n", f64_hex(sj.gamma)));
            out.push_str(&format!(
                "phase {} {}\n",
                sj.inserts_since_retrain, sj.retrain_every
            ));
            out.push_str(&format!(
                "control {} {} {}\n",
                sj.stats.cached, sj.stats.estimated, sj.stats.evaluated
            ));
            let csv_lines = sj.dataset_csv.lines().count();
            out.push_str(&format!("dataset {csv_lines}\n"));
            for line in sj.dataset_csv.lines() {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

/// Line cursor over the journal payload.
struct Cursor<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> Cursor<'a> {
    fn next(&mut self) -> Option<&'a str> {
        self.lines.next()
    }

    /// Next line, stripped of a required `prefix `.
    fn tagged(&mut self, prefix: &str) -> Option<&'a str> {
        self.next()?.strip_prefix(prefix)?.strip_prefix(' ')
    }

    /// Next tagged line parsed as whitespace-separated `u64`s.
    fn tagged_u64s(&mut self, prefix: &str, n: usize) -> Option<Vec<u64>> {
        let vals: Vec<u64> = self
            .tagged(prefix)?
            .split_whitespace()
            .map(|t| t.parse().ok())
            .collect::<Option<_>>()?;
        (vals.len() == n).then_some(vals)
    }
}

fn parse_journal(payload: &str) -> Option<Journal> {
    let mut c = Cursor {
        lines: payload.lines(),
    };
    let fingerprint = c.tagged("fingerprint")?.to_string();
    let complete = match c.tagged("complete")? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let tool_time_s = f64_from_hex(c.tagged("tool_time")?)?;
    let f = c.tagged_u64s("fitness", 7)?;
    let stats = FitnessStats {
        tool_runs: f[0],
        cached_runs: f[1],
        estimates: f[2],
        failures: f[3],
        transient_failures: f[4],
        permanent_failures: f[5],
        retries: f[6],
    };
    let tr: Vec<&str> = c.tagged("trace")?.split_whitespace().collect();
    if tr.len() != 8 {
        return None;
    }
    let trace = crate::trace::TraceSummary {
        attempts: tr[0].parse().ok()?,
        retries: tr[1].parse().ok()?,
        transient_failures: tr[2].parse().ok()?,
        permanent_failures: tr[3].parse().ok()?,
        cache_hits: tr[4].parse().ok()?,
        store_hits: tr[5].parse().ok()?,
        backoff_s: f64_from_hex(tr[6])?,
    };
    let runs: u64 = tr[7].parse().ok()?;
    let snapshot = parse_snapshot(&mut c)?;
    let selection = match c.tagged("selection")? {
        "0" => None,
        "1" => {
            let explorer = c.tagged("chosen")?.to_string();
            let ctx = c.tagged_u64s("context", 2)?;
            let lowfi: Vec<&str> = c.tagged("lowfi")?.split_whitespace().collect();
            if lowfi.len() != 2 {
                return None;
            }
            let n_cand: usize = c.tagged("candidates")?.parse().ok()?;
            let mut candidates = Vec::with_capacity(n_cand);
            for _ in 0..n_cand {
                let toks: Vec<&str> = c.next()?.split_whitespace().collect();
                if toks.len() != 4 {
                    return None;
                }
                candidates.push(crate::obs::CandidateScore {
                    name: toks[0].to_string(),
                    evaluations: toks[1].parse().ok()?,
                    hypervolume: f64_from_hex(toks[2])?,
                    slope: f64_from_hex(toks[3])?,
                });
            }
            Some(crate::dse::SelectionRecord {
                explorer,
                space_volume: ctx[0],
                objectives: ctx[1] as u32,
                lowfi_runs: lowfi[0].parse().ok()?,
                lowfi_time_s: f64_from_hex(lowfi[1])?,
                candidates,
            })
        }
        _ => return None,
    };
    let surrogate = match c.tagged("surrogate")? {
        "0" => None,
        "1" => {
            let bandwidth = f64_from_hex(c.tagged("bandwidth")?)?;
            let gamma = f64_from_hex(c.tagged("gamma")?)?;
            let phase = c.tagged_u64s("phase", 2)?;
            let ctl = c.tagged_u64s("control", 3)?;
            let n_csv: usize = c.tagged("dataset")?.parse().ok()?;
            let mut dataset_csv = String::new();
            for _ in 0..n_csv {
                dataset_csv.push_str(c.next()?);
                dataset_csv.push('\n');
            }
            Some(SurrogateJournal {
                bandwidth,
                gamma,
                inserts_since_retrain: phase[0] as usize,
                retrain_every: phase[1] as usize,
                stats: ControlStats {
                    cached: ctl[0],
                    estimated: ctl[1],
                    evaluated: ctl[2],
                },
                dataset_csv,
            })
        }
        _ => return None,
    };
    Some(Journal {
        fingerprint,
        complete,
        tool_time_s,
        stats,
        trace,
        runs,
        snapshot,
        selection,
        surrogate,
    })
}

fn parse_counters(c: &mut Cursor) -> Option<(u32, u64)> {
    let generation: u32 = c.tagged("generation")?.parse().ok()?;
    let evaluations: u64 = c.tagged("evaluations")?.parse().ok()?;
    Some((generation, evaluations))
}

fn parse_rng(c: &mut Cursor) -> Option<[u64; 4]> {
    let rng: Vec<u64> = c
        .tagged("rng")?
        .split_whitespace()
        .map(|t| u64::from_str_radix(t, 16).ok())
        .collect::<Option<_>>()?;
    (rng.len() == 4).then(|| [rng[0], rng[1], rng[2], rng[3]])
}

fn parse_history(c: &mut Cursor) -> Option<Vec<GenStats>> {
    let n_history: usize = c.tagged("history")?.parse().ok()?;
    let mut history = Vec::with_capacity(n_history);
    for _ in 0..n_history {
        let toks: Vec<&str> = c.next()?.split_whitespace().collect();
        if toks.len() != 4 {
            return None;
        }
        history.push(GenStats {
            generation: toks[0].parse().ok()?,
            evaluations: toks[1].parse().ok()?,
            front_size: toks[2].parse().ok()?,
            external_cost: f64_from_hex(toks[3])?,
        });
    }
    Some(history)
}

fn parse_individuals(c: &mut Cursor, tag: &str) -> Option<Vec<Individual>> {
    let n: usize = c.tagged(tag)?.parse().ok()?;
    let mut inds = Vec::with_capacity(n);
    for _ in 0..n {
        inds.push(parse_individual(c.next()?)?);
    }
    Some(inds)
}

fn parse_snapshot(c: &mut Cursor) -> Option<ExplorerSnapshot> {
    let kind = c.tagged("explorer")?;
    Some(match kind {
        "nsga2" => {
            let (generation, evaluations) = parse_counters(c)?;
            let rng_state = parse_rng(c)?;
            let history = parse_history(c)?;
            let population = parse_individuals(c, "population")?;
            let archive = parse_individuals(c, "archive")?;
            ExplorerSnapshot::Nsga2(Nsga2Snapshot {
                generation,
                evaluations,
                rng_state,
                population,
                archive,
                history,
            })
        }
        "random" => {
            let (generation, evaluations) = parse_counters(c)?;
            let rng_state = parse_rng(c)?;
            let history = parse_history(c)?;
            let archive = parse_individuals(c, "archive")?;
            ExplorerSnapshot::Random(RandomSnapshot {
                generation,
                evaluations,
                rng_state,
                archive,
                history,
            })
        }
        "exhaustive" => {
            let (generation, evaluations) = parse_counters(c)?;
            let cursor_line = c.tagged("cursor")?;
            let cursor = match cursor_line
                .split_once(' ')
                .map_or((cursor_line, ""), |(a, b)| (a, b))
            {
                ("0", "") => None,
                ("1", rest) => Some(
                    rest.split_whitespace()
                        .map(|t| t.parse().ok())
                        .collect::<Option<Vec<i64>>>()?,
                ),
                _ => return None,
            };
            let history = parse_history(c)?;
            let archive = parse_individuals(c, "archive")?;
            ExplorerSnapshot::Exhaustive(ExhaustiveSnapshot {
                generation,
                evaluations,
                cursor,
                archive,
                history,
            })
        }
        "wsga" => {
            let (generation, evaluations) = parse_counters(c)?;
            let rng_state = parse_rng(c)?;
            let history = parse_history(c)?;
            let population = parse_individuals(c, "population")?;
            let archive = parse_individuals(c, "archive")?;
            ExplorerSnapshot::WeightedSum(WsgaSnapshot {
                generation,
                evaluations,
                rng_state,
                population,
                archive,
                history,
            })
        }
        "sa" => {
            let (generation, evaluations) = parse_counters(c)?;
            let rng_state = parse_rng(c)?;
            let current: Vec<i64> = c
                .tagged("current")?
                .split_whitespace()
                .map(|t| t.parse().ok())
                .collect::<Option<_>>()?;
            let energy = f64_from_hex(c.tagged("energy")?)?;
            let temperature = f64_from_hex(c.tagged("temperature")?)?;
            let history = parse_history(c)?;
            let archive = parse_individuals(c, "archive")?;
            ExplorerSnapshot::Annealing(AnnealingSnapshot {
                generation,
                evaluations,
                rng_state,
                current,
                energy,
                temperature,
                archive,
                history,
            })
        }
        "bayes" => {
            let (generation, evaluations) = parse_counters(c)?;
            let rng_state = parse_rng(c)?;
            let history = parse_history(c)?;
            let archive = parse_individuals(c, "archive")?;
            ExplorerSnapshot::Bayes(BayesSnapshot {
                generation,
                evaluations,
                rng_state,
                archive,
                history,
            })
        }
        _ => return None,
    })
}

/// Atomically writes the journal (tmp file + rename, checksummed
/// envelope): a crash mid-write leaves the previous snapshot intact.
pub fn write_journal(path: &Path, journal: &Journal) -> DovadoResult<()> {
    let text = encode_checked(
        JOURNAL_TAG,
        JOURNAL_FORMAT_VERSION,
        &serialize_journal(journal),
    );
    atomic_write(path, text.as_bytes()).map_err(|e| {
        DovadoError::Config(format!("journal write to {} failed: {e}", path.display()))
    })
}

/// Reads and verifies a journal. A missing file, failed checksum,
/// version mismatch, or structural damage all refuse loudly — resume
/// must never continue from a half-trusted snapshot.
pub fn read_journal(path: &Path) -> DovadoResult<Journal> {
    let text = fs::read_to_string(path).map_err(|e| {
        DovadoError::Config(format!("no resumable journal at {}: {e}", path.display()))
    })?;
    let payload = decode_checked(JOURNAL_TAG, JOURNAL_FORMAT_VERSION, &text).ok_or_else(|| {
        DovadoError::Config(format!(
            "journal at {} is corrupt or from an incompatible version \
             (wanted {JOURNAL_TAG} v{JOURNAL_FORMAT_VERSION})",
            path.display()
        ))
    })?;
    parse_journal(payload).ok_or_else(|| {
        DovadoError::Config(format!(
            "journal at {} passed its checksum but did not parse \
             (truncated payload?)",
            path.display()
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_eval() -> Evaluation {
        let mut utilization = ResourceSet::zero();
        utilization.set(ResourceKind::Lut, 1234);
        utilization.set(ResourceKind::Register, 5678);
        Evaluation {
            utilization,
            wns_ns: -0.731_250_000_000_1,
            period_ns: 1.0,
            fmax_mhz: 577.533_843_2,
            power_mw: 143.25,
            tool_time_s: 612.087_5,
        }
    }

    #[test]
    fn evaluation_roundtrip_is_bitwise() {
        let e = sample_eval();
        let back = decode_evaluation(&encode_evaluation(&e)).unwrap();
        assert_eq!(back.utilization, e.utilization);
        for (a, b) in [
            (back.wns_ns, e.wns_ns),
            (back.period_ns, e.period_ns),
            (back.fmax_mhz, e.fmax_mhz),
            (back.power_mw, e.power_mw),
            (back.tool_time_s, e.tool_time_s),
        ] {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn damaged_evaluation_payloads_decode_to_none() {
        let text = encode_evaluation(&sample_eval());
        assert!(decode_evaluation(text.lines().next().unwrap()).is_none());
        assert!(decode_evaluation(&text.replace("timing", "timimg")).is_none());
        assert!(decode_evaluation("").is_none());
        // Wrong utilization arity.
        let timing_line = text.lines().nth(1).unwrap();
        assert!(decode_evaluation(&format!("util 1 2 3\n{timing_line}\n")).is_none());
    }

    fn sample_journal(surrogate: bool) -> Journal {
        let ind = Individual {
            genome: vec![3, -7],
            raw: vec![1.5, 2.25],
            min_objs: vec![1.5, -2.25],
            rank: 0,
            crowding: f64::INFINITY,
        };
        Journal {
            fingerprint: "00112233445566778899aabbccddeeff".into(),
            complete: false,
            tool_time_s: 1234.5,
            stats: FitnessStats {
                tool_runs: 10,
                cached_runs: 2,
                estimates: 3,
                failures: 1,
                transient_failures: 1,
                permanent_failures: 0,
                retries: 4,
            },
            trace: crate::trace::TraceSummary {
                attempts: 15,
                retries: 4,
                transient_failures: 4,
                permanent_failures: 1,
                cache_hits: 2,
                store_hits: 6,
                backoff_s: 210.0,
            },
            runs: 10,
            snapshot: ExplorerSnapshot::Nsga2(Nsga2Snapshot {
                generation: 5,
                evaluations: 60,
                rng_state: [1, u64::MAX, 0xDEAD_BEEF, 42],
                population: vec![ind.clone()],
                archive: vec![
                    ind,
                    Individual {
                        genome: vec![1, 2],
                        raw: vec![0.0, -0.0],
                        min_objs: vec![0.0, 0.0],
                        rank: usize::MAX,
                        crowding: 0.125,
                    },
                ],
                history: vec![GenStats {
                    generation: 0,
                    evaluations: 12,
                    front_size: 4,
                    external_cost: 99.5,
                }],
            }),
            selection: surrogate.then(|| crate::dse::SelectionRecord {
                explorer: "bayes".into(),
                space_volume: 4096,
                objectives: 3,
                lowfi_runs: 96,
                lowfi_time_s: 512.25,
                candidates: vec![
                    crate::obs::CandidateScore {
                        name: "nsga2".into(),
                        evaluations: 32,
                        hypervolume: 10.5,
                        slope: -0.0,
                    },
                    crate::obs::CandidateScore {
                        name: "bayes".into(),
                        evaluations: 32,
                        hypervolume: 12.0,
                        slope: 1.5,
                    },
                ],
            }),
            surrogate: surrogate.then(|| SurrogateJournal {
                bandwidth: 0.173,
                gamma: 0.05,
                inserts_since_retrain: 7,
                retrain_every: 25,
                stats: ControlStats {
                    cached: 1,
                    estimated: 2,
                    evaluated: 3,
                },
                dataset_csv: "#bounds,0:10;outputs=1\n3,4.5\n".into(),
            }),
        }
    }

    #[test]
    fn journal_roundtrip_with_and_without_surrogate() {
        let dir = std::env::temp_dir().join(format!("dovado-journal-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        for surrogate in [false, true] {
            let j = sample_journal(surrogate);
            let path = dir.join(format!("j{surrogate}.dovado"));
            write_journal(&path, &j).unwrap();
            let back = read_journal(&path).unwrap();
            assert_eq!(back, j);
            // -0.0 must survive with its sign bit (PartialEq would pass
            // for +0.0 too, so check explicitly).
            if !surrogate {
                let ExplorerSnapshot::Nsga2(snap) = &back.snapshot else {
                    panic!("kind changed in roundtrip");
                };
                assert_eq!(snap.archive[1].raw[1].to_bits(), (-0.0f64).to_bits());
            } else {
                let sel = back.selection.as_ref().unwrap();
                assert_eq!(sel.candidates[0].slope.to_bits(), (-0.0f64).to_bits());
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_roundtrip_covers_every_explorer_kind() {
        use dovado_moo::{
            AnnealingSnapshot, BayesSnapshot, ExhaustiveSnapshot, RandomSnapshot, WsgaSnapshot,
        };
        let ind = Individual {
            genome: vec![4, 9],
            raw: vec![2.0],
            min_objs: vec![-2.0],
            rank: 0,
            crowding: 0.5,
        };
        let history = vec![GenStats {
            generation: 1,
            evaluations: 8,
            front_size: 1,
            external_cost: 10.0,
        }];
        let snapshots = vec![
            ExplorerSnapshot::Random(RandomSnapshot {
                generation: 1,
                evaluations: 8,
                rng_state: [9, 8, 7, 6],
                archive: vec![ind.clone()],
                history: history.clone(),
            }),
            ExplorerSnapshot::Exhaustive(ExhaustiveSnapshot {
                generation: 2,
                evaluations: 16,
                cursor: Some(vec![-3, 11]),
                archive: vec![ind.clone()],
                history: history.clone(),
            }),
            ExplorerSnapshot::Exhaustive(ExhaustiveSnapshot {
                generation: 3,
                evaluations: 24,
                cursor: None,
                archive: vec![ind.clone()],
                history: history.clone(),
            }),
            ExplorerSnapshot::WeightedSum(WsgaSnapshot {
                generation: 4,
                evaluations: 32,
                rng_state: [1, 2, 3, 4],
                population: vec![ind.clone()],
                archive: vec![ind.clone()],
                history: history.clone(),
            }),
            ExplorerSnapshot::Annealing(AnnealingSnapshot {
                generation: 5,
                evaluations: 40,
                rng_state: [5, 6, 7, 8],
                current: vec![12, -1],
                energy: -3.5,
                temperature: 0.8,
                archive: vec![ind.clone()],
                history: history.clone(),
            }),
            ExplorerSnapshot::Bayes(BayesSnapshot {
                generation: 6,
                evaluations: 48,
                rng_state: [11, 12, 13, 14],
                archive: vec![ind],
                history,
            }),
        ];
        let dir = std::env::temp_dir().join(format!("dovado-journal-kinds-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        for (i, snapshot) in snapshots.into_iter().enumerate() {
            let j = Journal {
                snapshot,
                selection: None,
                ..sample_journal(false)
            };
            let path = dir.join(format!("k{i}.dovado"));
            write_journal(&path, &j).unwrap();
            assert_eq!(read_journal(&path).unwrap(), j);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_or_missing_journal_refuses() {
        let dir = std::env::temp_dir().join(format!("dovado-journal-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.dovado");
        assert!(read_journal(&path).is_err(), "missing file must refuse");

        write_journal(&path, &sample_journal(true)).unwrap();
        let good = fs::read_to_string(&path).unwrap();
        // Flip one byte in the payload: checksum catches it.
        let flipped = good.replacen("generation 5", "generation 6", 1);
        fs::write(&path, &flipped).unwrap();
        assert!(read_journal(&path).is_err(), "bit-flip must refuse");
        // Truncate: structural parse catches what the checksum is told.
        let truncated: String = good.lines().take(6).collect::<Vec<_>>().join("\n");
        fs::write(&path, truncated).unwrap();
        assert!(read_journal(&path).is_err(), "truncation must refuse");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evaluator_key_tracks_config_and_sources() {
        use dovado_hdl::Language;
        let src = vec![HdlSource::new(
            "a.sv",
            Language::SystemVerilog,
            "module a; endmodule",
        )];
        let base = evaluator_key(&src, "a", &EvalConfig::default(), "vivado-sim");
        assert_eq!(
            base,
            evaluator_key(&src, "a", &EvalConfig::default(), "vivado-sim")
        );
        let other_cfg = EvalConfig {
            target_period_ns: 2.0,
            ..Default::default()
        };
        assert_ne!(base, evaluator_key(&src, "a", &other_cfg, "vivado-sim"));
        let edited = vec![HdlSource::new(
            "a.sv",
            Language::SystemVerilog,
            "module a;endmodule",
        )];
        assert_ne!(
            base,
            evaluator_key(&edited, "a", &EvalConfig::default(), "vivado-sim")
        );
        // A different backend must never answer for this one.
        assert_ne!(
            base,
            evaluator_key(&src, "a", &EvalConfig::default(), "mock")
        );
    }
}
