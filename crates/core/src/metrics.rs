//! Optimization metrics: user-selected utilization counters and the
//! maximum achievable frequency.
//!
//! "A hardware developer can specify a set of design points … and then
//! Dovado evaluates them in terms of maximum achievable frequency and/or
//! user-defined area usage metrics, e.g., LUTs, RAMs" (§I). Frequency is
//! Eq. 1: `Fmax = 1000 / (T − WNS)` with T and WNS in nanoseconds.

use dovado_fpga::{ResourceKind, ResourceSet};
use dovado_moo::{Objective, Sense};
use std::fmt;

/// One optimization metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// A utilization counter (minimized).
    Utilization(ResourceKind),
    /// Maximum achievable frequency in MHz (maximized).
    Fmax,
    /// Total on-chip power in mW at the achievable frequency (minimized) —
    /// the power axis of the power-delay-area literature the paper builds
    /// on (§II).
    Power,
}

impl Metric {
    /// Optimization direction.
    pub fn sense(&self) -> Sense {
        match self {
            Metric::Utilization(_) => Sense::Minimize,
            Metric::Fmax => Sense::Maximize,
            Metric::Power => Sense::Minimize,
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            Metric::Utilization(k) => k.to_string(),
            Metric::Fmax => "Fmax[MHz]".to_string(),
            Metric::Power => "Power[mW]".to_string(),
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// An ordered metric selection.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricSet {
    metrics: Vec<Metric>,
}

impl MetricSet {
    /// Creates a set from metrics (duplicates rejected).
    pub fn new(metrics: Vec<Metric>) -> MetricSet {
        for (i, m) in metrics.iter().enumerate() {
            assert!(!metrics[..i].contains(m), "duplicate metric {m}");
        }
        MetricSet { metrics }
    }

    /// The paper's default Corundum selection: LUTs, registers, BRAM, Fmax.
    pub fn area_frequency() -> MetricSet {
        MetricSet::new(vec![
            Metric::Utilization(ResourceKind::Lut),
            Metric::Utilization(ResourceKind::Register),
            Metric::Utilization(ResourceKind::Bram),
            Metric::Fmax,
        ])
    }

    /// The metrics, in order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Objectives for the optimizer.
    pub fn objectives(&self) -> Vec<Objective> {
        self.metrics
            .iter()
            .map(|m| Objective {
                name: m.label(),
                sense: m.sense(),
            })
            .collect()
    }

    /// Extracts the metric vector from a measured evaluation.
    pub fn extract(&self, eval: &Evaluation) -> Vec<f64> {
        self.metrics
            .iter()
            .map(|m| match m {
                Metric::Utilization(k) => eval.utilization.get(*k) as f64,
                Metric::Fmax => eval.fmax_mhz,
                Metric::Power => eval.power_mw,
            })
            .collect()
    }

    /// Normalization scales per metric against a device capacity and a
    /// frequency scale (used for comparable MSE magnitudes à la Fig. 3).
    pub fn scales(&self, capacity: &ResourceSet, fmax_scale_mhz: f64) -> Vec<f64> {
        self.metrics
            .iter()
            .map(|m| match m {
                Metric::Utilization(k) => (capacity.get(*k) as f64).max(1.0),
                Metric::Fmax => fmax_scale_mhz.max(1.0),
                Metric::Power => 1000.0,
            })
            .collect()
    }
}

/// Computes Eq. 1. Returns `None` for non-physical inputs
/// (`T − WNS ≤ 0` cannot happen for real paths).
pub fn fmax_mhz(target_period_ns: f64, wns_ns: f64) -> Option<f64> {
    let denom = target_period_ns - wns_ns;
    if denom <= 0.0 {
        return None;
    }
    Some(1000.0 / denom)
}

/// One measured design-point evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Resource usage scraped from the utilization report.
    pub utilization: ResourceSet,
    /// Worst negative slack in ns.
    pub wns_ns: f64,
    /// Constrained period in ns.
    pub period_ns: f64,
    /// Maximum achievable frequency (Eq. 1).
    pub fmax_mhz: f64,
    /// Total on-chip power at the achievable frequency, in mW.
    pub power_mw: f64,
    /// Simulated tool seconds spent producing this evaluation.
    pub tool_time_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_examples() {
        // 1 GHz target, WNS = -4 ns → 200 MHz.
        assert!((fmax_mhz(1.0, -4.0).unwrap() - 200.0).abs() < 1e-12);
        // Met timing with margin: 10 ns target, +2 ns slack → 125 MHz.
        assert!((fmax_mhz(10.0, 2.0).unwrap() - 125.0).abs() < 1e-12);
        // Degenerate input rejected.
        assert!(fmax_mhz(1.0, 1.0).is_none());
        assert!(fmax_mhz(1.0, 2.0).is_none());
    }

    #[test]
    fn senses() {
        assert_eq!(Metric::Fmax.sense(), Sense::Maximize);
        assert_eq!(
            Metric::Utilization(ResourceKind::Lut).sense(),
            Sense::Minimize
        );
    }

    #[test]
    fn extraction_order_matches_metrics() {
        let ms = MetricSet::area_frequency();
        let eval = Evaluation {
            utilization: ResourceSet::from_pairs(&[
                (ResourceKind::Lut, 100),
                (ResourceKind::Register, 200),
                (ResourceKind::Bram, 3),
            ]),
            wns_ns: -4.0,
            period_ns: 1.0,
            fmax_mhz: 200.0,
            power_mw: 350.0,
            tool_time_s: 60.0,
        };
        assert_eq!(ms.extract(&eval), vec![100.0, 200.0, 3.0, 200.0]);
    }

    #[test]
    fn objectives_align() {
        let ms = MetricSet::area_frequency();
        let objs = ms.objectives();
        assert_eq!(objs.len(), 4);
        assert_eq!(objs[3].sense, Sense::Maximize);
        assert_eq!(objs[0].name, "LUT");
    }

    #[test]
    fn scales_use_capacity() {
        let ms = MetricSet::area_frequency();
        let cap = ResourceSet::from_pairs(&[
            (ResourceKind::Lut, 41_000),
            (ResourceKind::Register, 82_000),
            (ResourceKind::Bram, 135),
        ]);
        let s = ms.scales(&cap, 1000.0);
        assert_eq!(s, vec![41_000.0, 82_000.0, 135.0, 1000.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate metric")]
    fn duplicates_rejected() {
        let _ = MetricSet::new(vec![Metric::Fmax, Metric::Fmax]);
    }
}
