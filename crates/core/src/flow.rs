//! Single-design-point evaluation (the paper's design-automation flow,
//! §III-A): parse → box → generate scripts → run the tool → scrape reports.
//!
//! [`Evaluator`] is cheap to clone and thread-safe: each evaluation spawns
//! its own tool session (as Dovado spawns Vivado subprocesses) while the
//! checkpoint store and the simulated-time ledger are shared, so the
//! incremental flow and soft-deadline accounting work across parallel
//! evaluations.

use crate::boxing::{generate_box, BOX_CLOCK, BOX_TOP};
use crate::error::{DovadoError, DovadoResult};
use crate::frames::{fill, read_sources_script, SourceEntry, IMPL_FRAME, SYNTH_FRAME};
use crate::metrics::{fmax_mhz, Evaluation};
use crate::point::DesignPoint;
use dovado_eda::{report, CheckpointStore, VivadoSim};
use dovado_hdl::{Language, ModuleInterface};
use parking_lot::Mutex;
use std::sync::Arc;

/// One HDL source handed to Dovado.
#[derive(Debug, Clone, PartialEq)]
pub struct HdlSource {
    /// File name (used in the tool's filesystem).
    pub name: String,
    /// Language.
    pub language: Language,
    /// Full source text.
    pub content: String,
    /// VHDL library (None = `work`).
    pub library: Option<String>,
}

impl HdlSource {
    /// Creates a `work`-library source.
    pub fn new(name: impl Into<String>, language: Language, content: impl Into<String>) -> Self {
        HdlSource { name: name.into(), language, content: content.into(), library: None }
    }
}

/// Which flow step produces the metrics (paper §III-A: "one of the typical
/// design steps, synthesis or implementation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowStep {
    /// Stop after synthesis (faster, estimated timing).
    Synthesis,
    /// Run through place & route (the paper's default for results).
    #[default]
    Implementation,
}

/// Evaluation configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Target part (catalog name or prefix).
    pub part: String,
    /// Target clock period in ns. The paper uses 1 ns ("we target for all
    /// of them a frequency of 1 GHz to better verify the maximum
    /// theoretical frequency").
    pub target_period_ns: f64,
    /// Flow depth.
    pub step: FlowStep,
    /// Synthesis directive name (Vivado spelling).
    pub synth_directive: String,
    /// Implementation directive name.
    pub impl_directive: String,
    /// Use the incremental flow when a prior checkpoint exists.
    pub incremental: bool,
    /// Tool noise seed.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            part: "xc7k70tfbv676-1".into(),
            target_period_ns: 1.0,
            step: FlowStep::Implementation,
            synth_directive: "Default".into(),
            impl_directive: "Default".into(),
            incremental: true,
            seed: 0xD0_5AD0,
        }
    }
}

/// The design-automation evaluator.
#[derive(Clone)]
pub struct Evaluator {
    sources: Arc<Vec<HdlSource>>,
    module: Arc<ModuleInterface>,
    config: EvalConfig,
    store: CheckpointStore,
    /// Cumulative simulated tool seconds across all evaluations.
    tool_time: Arc<Mutex<f64>>,
    /// Number of tool invocations.
    runs: Arc<Mutex<u64>>,
    /// Whether any prior run left a synthesis checkpoint (enables the
    /// incremental read on subsequent scripts).
    has_checkpoint: Arc<Mutex<bool>>,
}

impl Evaluator {
    /// Parses the sources, locates `top_module`, and builds an evaluator.
    pub fn new(
        sources: Vec<HdlSource>,
        top_module: &str,
        config: EvalConfig,
    ) -> DovadoResult<Evaluator> {
        let mut found: Option<ModuleInterface> = None;
        for src in &sources {
            let (file, diags) = dovado_hdl::parse_source(src.language, &src.content)
                .map_err(|e| DovadoError::Parse(format!("{}: {e}", src.name)))?;
            if diags.has_errors() {
                return Err(DovadoError::Parse(format!(
                    "{}: {}",
                    src.name,
                    diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("; ")
                )));
            }
            if let Some(m) = file.module(top_module) {
                found = Some(m.clone());
            }
        }
        let module = found.ok_or_else(|| DovadoError::UnknownModule(top_module.to_string()))?;
        if config.target_period_ns <= 0.0 {
            return Err(DovadoError::Config(format!(
                "target period {} must be positive",
                config.target_period_ns
            )));
        }
        Ok(Evaluator {
            sources: Arc::new(sources),
            module: Arc::new(module),
            config,
            store: CheckpointStore::new(),
            tool_time: Arc::new(Mutex::new(0.0)),
            runs: Arc::new(Mutex::new(0)),
            has_checkpoint: Arc::new(Mutex::new(false)),
        })
    }

    /// The parsed interface of the module under evaluation.
    pub fn module(&self) -> &ModuleInterface {
        &self.module
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// Cumulative simulated tool seconds.
    pub fn total_tool_time(&self) -> f64 {
        *self.tool_time.lock()
    }

    /// Number of tool invocations so far.
    pub fn total_runs(&self) -> u64 {
        *self.runs.lock()
    }

    /// Evaluates one design point end-to-end.
    pub fn evaluate(&self, point: &DesignPoint) -> DovadoResult<Evaluation> {
        let boxed = generate_box(&self.module, point)?;

        let mut sim = VivadoSim::new(self.config.seed);
        sim.set_checkpoint_store(self.store.clone());

        // Write user sources + the generated box into the tool filesystem.
        let mut entries = Vec::new();
        for src in self.sources.iter() {
            let path = format!("src/{}", src.name);
            sim.write_file(&path, src.content.clone());
            let has_packages = src.content.contains("package");
            entries.push(SourceEntry {
                path,
                language: src.language,
                library: src.library.clone(),
                has_packages,
            });
        }
        let box_path = format!("src/{}", boxed.file_name);
        sim.write_file(&box_path, boxed.source.clone());
        entries.push(SourceEntry {
            path: box_path,
            language: boxed.language,
            library: None,
            has_packages: false,
        });

        // Incremental flow: reuse the previous synthesis checkpoint when
        // one exists (Vivado reads it with `read_checkpoint -incremental`).
        let incremental_line = if self.config.incremental && *self.has_checkpoint.lock() {
            // The checkpoint file must exist in this session's filesystem.
            sim.write_file("post_synth.dcp", "dcp:incremental-basis");
            "read_checkpoint -incremental post_synth.dcp".to_string()
        } else {
            String::new()
        };

        let synth_script = fill(SYNTH_FRAME, &[
            ("PROJECT", "dovado"),
            ("PART", &self.config.part),
            ("READ_SOURCES", read_sources_script(&entries).trim_end()),
            ("TOP", BOX_TOP),
            ("INCREMENTAL", &incremental_line),
            ("SYNTH_DIRECTIVE", &self.config.synth_directive),
            ("PERIOD", &format!("{:.3}", self.config.target_period_ns)),
            ("CLOCK", BOX_CLOCK),
            ("UTIL_RPT", "util_synth.rpt"),
            ("TIMING_RPT", "timing_synth.rpt"),
            ("POWER_RPT", "power_synth.rpt"),
            ("SYNTH_DCP", "post_synth.dcp"),
        ])?;
        sim.eval(&synth_script)?;

        let (util_path, timing_path, power_path) = match self.config.step {
            FlowStep::Synthesis => {
                ("util_synth.rpt", "timing_synth.rpt", "power_synth.rpt")
            }
            FlowStep::Implementation => {
                let impl_script = fill(IMPL_FRAME, &[
                    ("IMPL_DIRECTIVE", &self.config.impl_directive),
                    ("UTIL_RPT", "util_impl.rpt"),
                    ("TIMING_RPT", "timing_impl.rpt"),
                    ("POWER_RPT", "power_impl.rpt"),
                    ("IMPL_DCP", "post_route.dcp"),
                ])?;
                sim.eval(&impl_script)?;
                ("util_impl.rpt", "timing_impl.rpt", "power_impl.rpt")
            }
        };

        // Scrape the reports — the same text protocol the real tool uses.
        let util_text = sim
            .read_file(util_path)
            .ok_or_else(|| DovadoError::Config(format!("missing report {util_path}")))?;
        let utilization = report::parse_utilization_report(util_text)?;
        let timing_text = sim
            .read_file(timing_path)
            .ok_or_else(|| DovadoError::Config(format!("missing report {timing_path}")))?;
        let wns_ns = report::parse_wns(timing_text)?;
        let period_ns = report::parse_period(timing_text)?;
        let fmax = fmax_mhz(period_ns, wns_ns).ok_or_else(|| {
            DovadoError::Config(format!("non-physical timing: T={period_ns} WNS={wns_ns}"))
        })?;
        let power_mw = sim
            .read_file(power_path)
            .and_then(dovado_eda::power::parse_power_mw)
            .ok_or_else(|| DovadoError::Config(format!("missing power report {power_path}")))?;

        *self.tool_time.lock() += sim.sim_time_s;
        *self.runs.lock() += 1;
        *self.has_checkpoint.lock() = true;

        Ok(Evaluation {
            utilization,
            wns_ns,
            period_ns,
            fmax_mhz: fmax,
            power_mw,
            tool_time_s: sim.sim_time_s,
        })
    }

    /// Evaluates many points, in parallel when `parallel` is set (each
    /// evaluation runs its own tool session; the checkpoint store is
    /// shared, matching how Dovado parallelizes real Vivado runs).
    pub fn evaluate_many(
        &self,
        points: &[DesignPoint],
        parallel: bool,
    ) -> Vec<DovadoResult<Evaluation>> {
        if parallel {
            use rayon::prelude::*;
            points.par_iter().map(|p| self.evaluate(p)).collect()
        } else {
            points.iter().map(|p| self.evaluate(p)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dovado_fpga::ResourceKind;

    const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32,
    parameter FALL_THROUGH = 1'b0
)(
    input  logic clk_i,
    input  logic rst_ni,
    input  logic [DATA_WIDTH-1:0] data_i,
    output logic [DATA_WIDTH-1:0] data_o
);
endmodule"#;

    fn evaluator(config: EvalConfig) -> Evaluator {
        Evaluator::new(
            vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
            "fifo_v3",
            config,
        )
        .unwrap()
    }

    #[test]
    fn full_evaluation_produces_metrics() {
        let ev = evaluator(EvalConfig::default());
        let e = ev.evaluate(&DesignPoint::from_pairs(&[("DEPTH", 64)])).unwrap();
        assert!(e.utilization.get(ResourceKind::Lut) > 100);
        assert!(e.utilization.get(ResourceKind::Register) > 1000);
        assert!(e.wns_ns < 0.0, "1 GHz target must fail");
        assert!((e.fmax_mhz - 1000.0 / (e.period_ns - e.wns_ns)).abs() < 1e-9);
        assert!(e.tool_time_s > 0.0);
        assert_eq!(ev.total_runs(), 1);
    }

    #[test]
    fn depth_monotonicity_visible_through_flow() {
        let ev = evaluator(EvalConfig::default());
        let small = ev.evaluate(&DesignPoint::from_pairs(&[("DEPTH", 8)])).unwrap();
        let big = ev.evaluate(&DesignPoint::from_pairs(&[("DEPTH", 512)])).unwrap();
        assert!(big.utilization.get(ResourceKind::Register) > small.utilization.get(ResourceKind::Register));
        assert!(big.fmax_mhz < small.fmax_mhz);
    }

    #[test]
    fn synthesis_step_is_faster_and_optimistic() {
        let full = evaluator(EvalConfig::default());
        let quick = evaluator(EvalConfig { step: FlowStep::Synthesis, ..Default::default() });
        let p = DesignPoint::from_pairs(&[("DEPTH", 128)]);
        let ef = full.evaluate(&p).unwrap();
        let eq = quick.evaluate(&p).unwrap();
        assert!(eq.tool_time_s < ef.tool_time_s);
        assert!(eq.fmax_mhz > ef.fmax_mhz, "post-synth timing is optimistic");
    }

    #[test]
    fn repeated_point_hits_cache() {
        let ev = evaluator(EvalConfig::default());
        let p = DesignPoint::from_pairs(&[("DEPTH", 100)]);
        let a = ev.evaluate(&p).unwrap();
        let b = ev.evaluate(&p).unwrap();
        assert_eq!(a.utilization, b.utilization);
        assert_eq!(a.wns_ns, b.wns_ns);
        assert!(b.tool_time_s < a.tool_time_s * 0.3, "cache hit should be cheap");
    }

    #[test]
    fn incremental_flow_discounts_new_points() {
        let with = evaluator(EvalConfig { incremental: true, ..Default::default() });
        let without = evaluator(EvalConfig { incremental: false, ..Default::default() });
        for ev in [&with, &without] {
            ev.evaluate(&DesignPoint::from_pairs(&[("DEPTH", 50)])).unwrap();
        }
        let t_with = with.evaluate(&DesignPoint::from_pairs(&[("DEPTH", 52)])).unwrap();
        let t_without = without.evaluate(&DesignPoint::from_pairs(&[("DEPTH", 52)])).unwrap();
        assert!(
            t_with.tool_time_s < t_without.tool_time_s,
            "incremental {} vs full {}",
            t_with.tool_time_s,
            t_without.tool_time_s
        );
        // QoR identical either way.
        assert_eq!(t_with.utilization, t_without.utilization);
    }

    #[test]
    fn power_scales_with_design_size() {
        let ev = evaluator(EvalConfig::default());
        let small = ev.evaluate(&DesignPoint::from_pairs(&[("DEPTH", 8)])).unwrap();
        let big = ev.evaluate(&DesignPoint::from_pairs(&[("DEPTH", 512)])).unwrap();
        assert!(small.power_mw > 0.0);
        assert!(big.power_mw > small.power_mw, "{} vs {}", big.power_mw, small.power_mw);
        // Plausible magnitude for a small FIFO: well under a watt of
        // dynamic+static on the K7.
        assert!(small.power_mw < 2000.0, "{}", small.power_mw);
    }

    #[test]
    fn unknown_module_rejected_at_construction() {
        let r = Evaluator::new(
            vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
            "missing",
            EvalConfig::default(),
        );
        assert!(matches!(r, Err(DovadoError::UnknownModule(_))));
    }

    #[test]
    fn bad_period_rejected() {
        let r = Evaluator::new(
            vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
            "fifo_v3",
            EvalConfig { target_period_ns: 0.0, ..Default::default() },
        );
        assert!(matches!(r, Err(DovadoError::Config(_))));
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let ev = evaluator(EvalConfig::default());
        let points: Vec<DesignPoint> =
            (1..=6).map(|i| DesignPoint::from_pairs(&[("DEPTH", i * 37)])).collect();
        let seq: Vec<_> = evaluator(EvalConfig::default())
            .evaluate_many(&points, false)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let par: Vec<_> =
            ev.evaluate_many(&points, true).into_iter().map(|r| r.unwrap()).collect();
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.utilization, p.utilization);
            assert_eq!(s.wns_ns, p.wns_ns);
        }
        assert_eq!(ev.total_runs(), 6);
    }

    #[test]
    fn directives_change_outcomes() {
        let area = evaluator(EvalConfig {
            synth_directive: "AreaOptimized_high".into(),
            incremental: false,
            ..Default::default()
        });
        let perf = evaluator(EvalConfig {
            synth_directive: "PerformanceOptimized".into(),
            incremental: false,
            ..Default::default()
        });
        let p = DesignPoint::from_pairs(&[("DEPTH", 256)]);
        let ea = area.evaluate(&p).unwrap();
        let ep = perf.evaluate(&p).unwrap();
        assert!(ea.utilization.get(ResourceKind::Lut) < ep.utilization.get(ResourceKind::Lut));
        assert!(ep.fmax_mhz > ea.fmax_mhz);
    }

    #[test]
    fn vhdl_module_evaluates() {
        let src = HdlSource::new(
            "neorv32.vhd",
            Language::Vhdl,
            "entity neorv32_top is
               generic (
                 MEM_INT_IMEM_SIZE : natural := 16384;
                 MEM_INT_DMEM_SIZE : natural := 8192
               );
               port ( clk_i : in std_logic );
             end entity neorv32_top;",
        );
        let ev = Evaluator::new(vec![src], "neorv32_top", EvalConfig::default()).unwrap();
        let e = ev
            .evaluate(&DesignPoint::from_pairs(&[
                ("MEM_INT_IMEM_SIZE", 32768),
                ("MEM_INT_DMEM_SIZE", 32768),
            ]))
            .unwrap();
        assert_eq!(e.utilization.get(ResourceKind::Bram), 16);
    }
}
