//! Single-design-point evaluation (the paper's design-automation flow,
//! §III-A): parse → box → generate scripts → run the tool → scrape reports.
//!
//! [`Evaluator`] is cheap to clone and thread-safe: each evaluation spawns
//! its own tool session (as Dovado spawns Vivado subprocesses) while the
//! checkpoint store and the simulated-time ledger are shared, so the
//! incremental flow and soft-deadline accounting work across parallel
//! evaluations.

use crate::backend::ToolBackend;
use crate::engine::{EvalEngine, Schedule};
use crate::error::DovadoResult;
use crate::metrics::Evaluation;
use crate::point::DesignPoint;
use crate::trace::{FlowEvent, TraceSummary};
use dovado_eda::{EvalKey, EvalStore, FaultInjector, FaultPlan};
use dovado_hdl::{Language, ModuleInterface};
use std::sync::Arc;

/// One HDL source handed to Dovado.
#[derive(Debug, Clone, PartialEq)]
pub struct HdlSource {
    /// File name (used in the tool's filesystem).
    pub name: String,
    /// Language.
    pub language: Language,
    /// Full source text.
    pub content: String,
    /// VHDL library (None = `work`).
    pub library: Option<String>,
}

impl HdlSource {
    /// Creates a `work`-library source.
    pub fn new(name: impl Into<String>, language: Language, content: impl Into<String>) -> Self {
        HdlSource {
            name: name.into(),
            language,
            content: content.into(),
            library: None,
        }
    }
}

/// Loads an RTL project tree for evaluation: catalogs every HDL file
/// under `dir`, returns the sources in dependency-respecting compile
/// order, and resolves the top module — `top` if given, the catalog's
/// graph inference otherwise.
///
/// This is the `--project <dir>` entry point: any user source tree flows
/// from here through boxing, the explorer portfolio, `--jobs/--workers`
/// and the daemon exactly like the embedded case studies.
pub fn load_project_tree(
    dir: &std::path::Path,
    top: Option<&str>,
) -> DovadoResult<(Vec<HdlSource>, String)> {
    use crate::error::DovadoError;
    use dovado_hdl::catalog::{CatalogError, SourceCatalog};
    let to_err = |e: CatalogError| match e {
        CatalogError::Parse(m) => DovadoError::Parse(m),
        other => DovadoError::Config(other.to_string()),
    };
    let catalog = SourceCatalog::walk(dir).map_err(to_err)?;
    if catalog.files().is_empty() {
        return Err(DovadoError::Config(format!(
            "no HDL sources (.vhd/.vhdl/.v/.sv) found under {}",
            dir.display()
        )));
    }
    let top = match top {
        Some(t) => t.to_string(),
        None => catalog.infer_top().map_err(to_err)?,
    };
    let sources = catalog
        .compile_order()
        .map(|f| HdlSource {
            name: f.path.clone(),
            language: f.language,
            content: f.text.clone(),
            library: f.library.clone(),
        })
        .collect();
    Ok((sources, top))
}

/// Which flow step produces the metrics (paper §III-A: "one of the typical
/// design steps, synthesis or implementation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowStep {
    /// Stop after synthesis (faster, estimated timing).
    Synthesis,
    /// Run through place & route (the paper's default for results).
    #[default]
    Implementation,
}

/// Retry-with-capped-backoff policy for transient tool failures.
///
/// Backoff is *simulated* time: waiting for a wedged license server or a
/// rebooting host costs wall-clock that the DSE budget must account for,
/// so every backoff second is charged to the evaluator's tool-time
/// ledger, exactly like tool runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per point (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the second attempt, in simulated seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied per further attempt.
    pub backoff_factor: f64,
    /// Ceiling on a single backoff, in simulated seconds.
    pub backoff_cap_s: f64,
    /// After this many timeouts on one point, degrade the flow from
    /// [`FlowStep::Implementation`] to [`FlowStep::Synthesis`] for its
    /// remaining attempts (post-synth metrics are optimistic but beat a
    /// penalty vector). `None` disables degradation.
    pub degrade_after_timeouts: Option<u32>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base_s: 30.0,
            backoff_factor: 2.0,
            backoff_cap_s: 300.0,
            degrade_after_timeouts: None,
        }
    }
}

impl RetryPolicy {
    /// No retries at all.
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff charged after a failed `attempt` (1-based), in simulated
    /// seconds.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        (self.backoff_base_s * self.backoff_factor.powi(attempt.saturating_sub(1) as i32))
            .min(self.backoff_cap_s)
    }
}

/// Evaluation configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Target part (catalog name or prefix).
    pub part: String,
    /// Target clock period in ns. The paper uses 1 ns ("we target for all
    /// of them a frequency of 1 GHz to better verify the maximum
    /// theoretical frequency").
    pub target_period_ns: f64,
    /// Flow depth.
    pub step: FlowStep,
    /// Synthesis directive name (Vivado spelling).
    pub synth_directive: String,
    /// Implementation directive name.
    pub impl_directive: String,
    /// Use the incremental flow when a prior checkpoint exists.
    pub incremental: bool,
    /// Tool noise seed.
    pub seed: u64,
    /// Retry policy for transient tool failures.
    pub retry: RetryPolicy,
    /// Fault injection plan for the simulated tool (default: no faults).
    pub faults: FaultPlan,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            part: "xc7k70tfbv676-1".into(),
            target_period_ns: 1.0,
            step: FlowStep::Implementation,
            synth_directive: "Default".into(),
            impl_directive: "Default".into(),
            incremental: true,
            seed: 0xD0_5AD0,
            retry: RetryPolicy::default(),
            faults: FaultPlan::none(),
        }
    }
}

/// The design-automation evaluator: the stable public face of the
/// [`EvalEngine`] pipeline (store lookup → retry/backoff → degradation →
/// trace accounting → tool attempt).
///
/// Cheap to clone and thread-safe — clones share the engine's trace,
/// ledgers, backend and store, so the incremental flow and soft-deadline
/// accounting work across parallel evaluations.
#[derive(Clone)]
pub struct Evaluator {
    engine: EvalEngine,
}

impl Evaluator {
    /// Parses the sources, locates `top_module`, and builds an evaluator
    /// on the default simulator backend.
    pub fn new(
        sources: Vec<HdlSource>,
        top_module: &str,
        config: EvalConfig,
    ) -> DovadoResult<Evaluator> {
        Ok(Evaluator {
            engine: EvalEngine::new(sources, top_module, config)?,
        })
    }

    /// Like [`Evaluator::new`], but evaluating through the given tool
    /// backend instead of the default simulator.
    pub fn with_backend(
        sources: Vec<HdlSource>,
        top_module: &str,
        config: EvalConfig,
        backend: Arc<dyn ToolBackend>,
    ) -> DovadoResult<Evaluator> {
        Ok(Evaluator {
            engine: EvalEngine::with_backend(sources, top_module, config, backend)?,
        })
    }

    /// The underlying evaluation engine.
    pub fn engine(&self) -> &EvalEngine {
        &self.engine
    }

    /// A low-fidelity sibling evaluator with the flow truncated to `step`
    /// — same backend instance, fresh trace spine, no store. See
    /// [`EvalEngine::probe_with_step`](crate::engine::EvalEngine::probe_with_step).
    pub fn probe_with_step(&self, step: FlowStep) -> Evaluator {
        Evaluator {
            engine: self.engine.probe_with_step(step),
        }
    }

    /// Attaches a persistent evaluation store. Subsequent evaluations
    /// first look up the point's content-addressed key — a hit returns
    /// the stored metrics bitwise, with zero tool runs, zero attempts
    /// and zero simulated time; a fresh success is written back. The key
    /// covers the sources, top module, full [`EvalConfig`] and backend,
    /// so any input change invalidates the store automatically.
    pub fn attach_store(&mut self, store: EvalStore) {
        self.engine.attach_store(store);
    }

    /// [`attach_store`](Self::attach_store) with the store identity
    /// additionally scoped by an arbitrary string — see
    /// [`EvalEngine::attach_store_scoped`](crate::engine::EvalEngine::attach_store_scoped)
    /// for when a shared store needs this.
    pub fn attach_store_scoped(&mut self, store: EvalStore, scope: &str) {
        self.engine.attach_store_scoped(store, scope);
    }

    /// The evaluator's 128-bit content identity: a stable hash of the
    /// sources, top module, full [`EvalConfig`] and backend name. Store
    /// keys and the journal fingerprint both build on it.
    pub fn content_key(&self) -> EvalKey {
        self.engine.content_key()
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&EvalStore> {
        self.engine.store()
    }

    /// The shared fault injector, if fault injection is active.
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.engine.injector()
    }

    /// Charges simulated seconds straight to the tool-time ledger (an
    /// [`crate::obs::ObsEvent::TimeCharged`] on the spine).
    pub fn charge_time(&self, seconds: f64) {
        self.engine.charge_time(seconds);
    }

    /// The evaluator's observability spine — the single event stream
    /// every counter and summary in Dovado is derived from.
    pub fn spine(&self) -> &crate::obs::EventBus {
        self.engine.spine()
    }

    /// A consistent snapshot of the spine (canonical events + exact
    /// totals), suitable for [`crate::obs::write_jsonl`].
    pub fn snapshot(&self) -> crate::obs::SpineSnapshot {
        self.engine.snapshot()
    }

    /// Splices journaled totals into the spine on `--resume`. Pass the
    /// *deficit* between the journal and this evaluator's live totals so
    /// nothing is double-counted.
    pub fn record_resume(&self, summary: TraceSummary, runs: u64, tool_time_s: f64) {
        self.engine.record_resume(summary, runs, tool_time_s);
    }

    /// The parsed interface of the module under evaluation.
    pub fn module(&self) -> &ModuleInterface {
        self.engine.module()
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        self.engine.config()
    }

    /// Cumulative simulated tool seconds, including failed attempts and
    /// retry backoff.
    pub fn total_tool_time(&self) -> f64 {
        self.engine.total_tool_time()
    }

    /// Number of successful tool invocations so far.
    pub fn total_runs(&self) -> u64 {
        self.engine.total_runs()
    }

    /// Snapshot of the per-attempt event log (oldest first).
    pub fn events(&self) -> Vec<FlowEvent> {
        self.engine.events()
    }

    /// Whole-run trace counters (attempts, retries, failures by class,
    /// cache hits, backoff charged).
    pub fn trace_summary(&self) -> TraceSummary {
        self.engine.trace_summary()
    }

    /// Evaluates one design point end-to-end through the engine pipeline,
    /// retrying transient tool failures per the configured
    /// [`RetryPolicy`].
    ///
    /// Permanent failures (infeasible design, parse error) return
    /// immediately. Transient failures (crash, timeout, corrupt report or
    /// checkpoint) back off — charged to the simulated-time ledger — and
    /// retry up to `max_attempts`; exhaustion surfaces as
    /// [`crate::DovadoError::RetriesExhausted`], never as fabricated
    /// metrics.
    pub fn evaluate(&self, point: &DesignPoint) -> DovadoResult<Evaluation> {
        self.engine.evaluate(point)
    }

    /// Evaluates many points, in parallel when `parallel` is set (each
    /// evaluation runs its own tool session; the backend's checkpoint
    /// store is shared, matching how Dovado parallelizes real Vivado
    /// runs).
    pub fn evaluate_many(
        &self,
        points: &[DesignPoint],
        parallel: bool,
    ) -> Vec<DovadoResult<Evaluation>> {
        self.engine
            .evaluate_many(points, Schedule::from_parallel_flag(parallel))
    }

    /// Evaluates many points under an explicit [`Schedule`] — serial,
    /// rayon-parallel, or distributed across a worker fleet. All three
    /// produce byte-identical traces; only wall-clock differs.
    pub fn evaluate_many_scheduled(
        &self,
        points: &[DesignPoint],
        schedule: Schedule,
    ) -> Vec<DovadoResult<Evaluation>> {
        self.engine.evaluate_many(points, schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DovadoError;
    use dovado_eda::EdaError;
    use dovado_fpga::ResourceKind;

    const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32,
    parameter FALL_THROUGH = 1'b0
)(
    input  logic clk_i,
    input  logic rst_ni,
    input  logic [DATA_WIDTH-1:0] data_i,
    output logic [DATA_WIDTH-1:0] data_o
);
endmodule"#;

    fn evaluator(config: EvalConfig) -> Evaluator {
        Evaluator::new(
            vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
            "fifo_v3",
            config,
        )
        .unwrap()
    }

    #[test]
    fn full_evaluation_produces_metrics() {
        let ev = evaluator(EvalConfig::default());
        let e = ev
            .evaluate(&DesignPoint::from_pairs(&[("DEPTH", 64)]))
            .unwrap();
        assert!(e.utilization.get(ResourceKind::Lut) > 100);
        assert!(e.utilization.get(ResourceKind::Register) > 1000);
        assert!(e.wns_ns < 0.0, "1 GHz target must fail");
        assert!((e.fmax_mhz - 1000.0 / (e.period_ns - e.wns_ns)).abs() < 1e-9);
        assert!(e.tool_time_s > 0.0);
        assert_eq!(ev.total_runs(), 1);
    }

    #[test]
    fn depth_monotonicity_visible_through_flow() {
        let ev = evaluator(EvalConfig::default());
        let small = ev
            .evaluate(&DesignPoint::from_pairs(&[("DEPTH", 8)]))
            .unwrap();
        let big = ev
            .evaluate(&DesignPoint::from_pairs(&[("DEPTH", 512)]))
            .unwrap();
        assert!(
            big.utilization.get(ResourceKind::Register)
                > small.utilization.get(ResourceKind::Register)
        );
        assert!(big.fmax_mhz < small.fmax_mhz);
    }

    #[test]
    fn synthesis_step_is_faster_and_optimistic() {
        let full = evaluator(EvalConfig::default());
        let quick = evaluator(EvalConfig {
            step: FlowStep::Synthesis,
            ..Default::default()
        });
        let p = DesignPoint::from_pairs(&[("DEPTH", 128)]);
        let ef = full.evaluate(&p).unwrap();
        let eq = quick.evaluate(&p).unwrap();
        assert!(eq.tool_time_s < ef.tool_time_s);
        assert!(eq.fmax_mhz > ef.fmax_mhz, "post-synth timing is optimistic");
    }

    #[test]
    fn repeated_point_hits_cache() {
        let ev = evaluator(EvalConfig::default());
        let p = DesignPoint::from_pairs(&[("DEPTH", 100)]);
        let a = ev.evaluate(&p).unwrap();
        let b = ev.evaluate(&p).unwrap();
        assert_eq!(a.utilization, b.utilization);
        assert_eq!(a.wns_ns, b.wns_ns);
        assert!(
            b.tool_time_s < a.tool_time_s * 0.3,
            "cache hit should be cheap"
        );
    }

    #[test]
    fn incremental_flow_discounts_new_points() {
        let with = evaluator(EvalConfig {
            incremental: true,
            ..Default::default()
        });
        let without = evaluator(EvalConfig {
            incremental: false,
            ..Default::default()
        });
        for ev in [&with, &without] {
            ev.evaluate(&DesignPoint::from_pairs(&[("DEPTH", 50)]))
                .unwrap();
        }
        let t_with = with
            .evaluate(&DesignPoint::from_pairs(&[("DEPTH", 52)]))
            .unwrap();
        let t_without = without
            .evaluate(&DesignPoint::from_pairs(&[("DEPTH", 52)]))
            .unwrap();
        assert!(
            t_with.tool_time_s < t_without.tool_time_s,
            "incremental {} vs full {}",
            t_with.tool_time_s,
            t_without.tool_time_s
        );
        // QoR identical either way.
        assert_eq!(t_with.utilization, t_without.utilization);
    }

    #[test]
    fn power_scales_with_design_size() {
        let ev = evaluator(EvalConfig::default());
        let small = ev
            .evaluate(&DesignPoint::from_pairs(&[("DEPTH", 8)]))
            .unwrap();
        let big = ev
            .evaluate(&DesignPoint::from_pairs(&[("DEPTH", 512)]))
            .unwrap();
        assert!(small.power_mw > 0.0);
        assert!(
            big.power_mw > small.power_mw,
            "{} vs {}",
            big.power_mw,
            small.power_mw
        );
        // Plausible magnitude for a small FIFO: well under a watt of
        // dynamic+static on the K7.
        assert!(small.power_mw < 2000.0, "{}", small.power_mw);
    }

    #[test]
    fn unknown_module_rejected_at_construction() {
        let r = Evaluator::new(
            vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
            "missing",
            EvalConfig::default(),
        );
        assert!(matches!(r, Err(DovadoError::UnknownModule(_))));
    }

    #[test]
    fn bad_period_rejected() {
        let r = Evaluator::new(
            vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
            "fifo_v3",
            EvalConfig {
                target_period_ns: 0.0,
                ..Default::default()
            },
        );
        assert!(matches!(r, Err(DovadoError::Config(_))));
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let ev = evaluator(EvalConfig::default());
        let points: Vec<DesignPoint> = (1..=6)
            .map(|i| DesignPoint::from_pairs(&[("DEPTH", i * 37)]))
            .collect();
        let seq: Vec<_> = evaluator(EvalConfig::default())
            .evaluate_many(&points, false)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let par: Vec<_> = ev
            .evaluate_many(&points, true)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.utilization, p.utilization);
            assert_eq!(s.wns_ns, p.wns_ns);
        }
        assert_eq!(ev.total_runs(), 6);
    }

    #[test]
    fn directives_change_outcomes() {
        let area = evaluator(EvalConfig {
            synth_directive: "AreaOptimized_high".into(),
            incremental: false,
            ..Default::default()
        });
        let perf = evaluator(EvalConfig {
            synth_directive: "PerformanceOptimized".into(),
            incremental: false,
            ..Default::default()
        });
        let p = DesignPoint::from_pairs(&[("DEPTH", 256)]);
        let ea = area.evaluate(&p).unwrap();
        let ep = perf.evaluate(&p).unwrap();
        assert!(ea.utilization.get(ResourceKind::Lut) < ep.utilization.get(ResourceKind::Lut));
        assert!(ep.fmax_mhz > ea.fmax_mhz);
    }

    #[test]
    fn vhdl_module_evaluates() {
        let src = HdlSource::new(
            "neorv32.vhd",
            Language::Vhdl,
            "entity neorv32_top is
               generic (
                 MEM_INT_IMEM_SIZE : natural := 16384;
                 MEM_INT_DMEM_SIZE : natural := 8192
               );
               port ( clk_i : in std_logic );
             end entity neorv32_top;",
        );
        let ev = Evaluator::new(vec![src], "neorv32_top", EvalConfig::default()).unwrap();
        let e = ev
            .evaluate(&DesignPoint::from_pairs(&[
                ("MEM_INT_IMEM_SIZE", 32768),
                ("MEM_INT_DMEM_SIZE", 32768),
            ]))
            .unwrap();
        assert_eq!(e.utilization.get(ResourceKind::Bram), 16);
    }

    // ---- persistent store ------------------------------------------------

    #[test]
    fn attached_store_round_trips_and_invalidates_on_config_change() {
        let dir = std::env::temp_dir().join(format!("dovado-store-flow-{}", std::process::id()));
        let p = DesignPoint::from_pairs(&[("DEPTH", 64)]);

        let mut warm = evaluator(EvalConfig::default());
        warm.attach_store(EvalStore::open(&dir).unwrap());
        let a = warm.evaluate(&p).unwrap();
        assert_eq!(warm.trace_summary().store_hits, 0, "cold run hits nothing");
        assert_eq!(warm.total_runs(), 1);

        // A fresh evaluator over the same inputs answers from disk:
        // bitwise equal, zero attempts, zero tool runs, zero time.
        let mut hit = evaluator(EvalConfig::default());
        hit.attach_store(EvalStore::open(&dir).unwrap());
        let b = hit.evaluate(&p).unwrap();
        assert_eq!(a.utilization, b.utilization);
        assert_eq!(a.wns_ns.to_bits(), b.wns_ns.to_bits());
        assert_eq!(a.fmax_mhz.to_bits(), b.fmax_mhz.to_bits());
        assert_eq!(a.power_mw.to_bits(), b.power_mw.to_bits());
        let s = hit.trace_summary();
        assert_eq!((s.store_hits, s.attempts), (1, 0));
        assert_eq!(hit.total_runs(), 0);
        assert_eq!(hit.total_tool_time(), 0.0);

        // A config change re-keys everything: no false hit.
        let mut other = evaluator(EvalConfig {
            target_period_ns: 2.0,
            ..Default::default()
        });
        other.attach_store(EvalStore::open(&dir).unwrap());
        other.evaluate(&p).unwrap();
        assert_eq!(other.trace_summary().store_hits, 0);
        assert_eq!(other.total_runs(), 1);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failures_are_never_stored() {
        let dir = std::env::temp_dir().join(format!("dovado-store-fail-{}", std::process::id()));
        let mut ev = evaluator(EvalConfig {
            faults: FaultPlan {
                synth_crash: 1.0,
                ..FaultPlan::default()
            },
            retry: RetryPolicy {
                max_attempts: 2,
                ..Default::default()
            },
            ..Default::default()
        });
        ev.attach_store(EvalStore::open(&dir).unwrap());
        let p = DesignPoint::from_pairs(&[("DEPTH", 16)]);
        assert!(ev.evaluate(&p).is_err());
        assert!(ev.store().unwrap().is_empty(), "failures must not persist");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // ---- retry / fault-tolerance ----------------------------------------

    #[test]
    fn crash_retry_recovers_identical_metrics() {
        let clean = evaluator(EvalConfig::default());
        let p = DesignPoint::from_pairs(&[("DEPTH", 96)]);
        let truth = clean.evaluate(&p).unwrap();

        // Sweep seeds until a run actually sees a transient failure — the
        // plan is probabilistic, the stream deterministic per seed.
        let mut saw_retry = false;
        for seed in 0..32u64 {
            let faulty = evaluator(EvalConfig {
                faults: FaultPlan {
                    synth_crash: 0.4,
                    seed,
                    ..FaultPlan::default()
                },
                retry: RetryPolicy {
                    max_attempts: 10,
                    ..Default::default()
                },
                ..Default::default()
            });
            let e = faulty.evaluate(&p).expect("retry must eventually succeed");
            assert_eq!(e.utilization, truth.utilization, "seed {seed}");
            assert_eq!(e.wns_ns, truth.wns_ns, "seed {seed}");
            assert_eq!(e.power_mw, truth.power_mw, "seed {seed}");
            saw_retry |= faulty.trace_summary().retries > 0;
        }
        assert!(saw_retry, "no seed in 0..32 injected a fault at p=0.4");
    }

    #[test]
    fn exhausted_retries_surface_transient_error_and_charge_backoff() {
        let ev = evaluator(EvalConfig {
            faults: FaultPlan {
                synth_crash: 1.0,
                ..FaultPlan::default()
            },
            retry: RetryPolicy {
                max_attempts: 3,
                ..Default::default()
            },
            ..Default::default()
        });
        let err = ev
            .evaluate(&DesignPoint::from_pairs(&[("DEPTH", 16)]))
            .unwrap_err();
        match &err {
            DovadoError::RetriesExhausted { attempts, last } => {
                assert_eq!(*attempts, 3);
                assert!(matches!(**last, DovadoError::Eda(EdaError::ToolCrash(_))));
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
        assert!(err.is_transient(), "exhaustion must stay retryable-class");
        let s = ev.trace_summary();
        assert_eq!(s.attempts, 3);
        assert_eq!(s.retries, 2);
        assert_eq!(s.transient_failures, 3);
        // Backoff after attempts 1 and 2: 30 + 60 simulated seconds.
        assert_eq!(s.backoff_s, 90.0);
        assert!(ev.total_tool_time() >= 90.0);
        assert_eq!(ev.total_runs(), 0, "no successful run may be counted");
    }

    #[test]
    fn checkpoint_corruption_falls_back_to_full_flow() {
        let ev = evaluator(EvalConfig {
            faults: FaultPlan {
                checkpoint_corrupt: 1.0,
                ..FaultPlan::default()
            },
            incremental: true,
            ..Default::default()
        });
        // First point: no checkpoint yet, nothing to corrupt.
        ev.evaluate(&DesignPoint::from_pairs(&[("DEPTH", 40)]))
            .unwrap();
        // Second point: the incremental read hits the corrupt checkpoint,
        // then the retry rebuilds from scratch.
        let e = ev
            .evaluate(&DesignPoint::from_pairs(&[("DEPTH", 42)]))
            .unwrap();
        assert!(e.fmax_mhz > 0.0);
        let events = ev.events();
        let failed = events
            .iter()
            .find(|ev| !ev.outcome.is_success())
            .expect("the corrupt read must be traced");
        assert!(
            failed.incremental,
            "the failing attempt asked for incremental"
        );
        let recovered = events.last().unwrap();
        assert!(recovered.outcome.is_success());
        assert!(
            !recovered.incremental,
            "the retry must abandon the incremental flow"
        );
    }

    #[test]
    fn repeated_timeouts_degrade_to_synthesis_when_enabled() {
        let ev = evaluator(EvalConfig {
            faults: FaultPlan {
                route_timeout: 1.0,
                ..FaultPlan::default()
            },
            retry: RetryPolicy {
                max_attempts: 4,
                degrade_after_timeouts: Some(2),
                ..Default::default()
            },
            step: FlowStep::Implementation,
            ..Default::default()
        });
        // route_design always times out, so only degradation can save it.
        let e = ev
            .evaluate(&DesignPoint::from_pairs(&[("DEPTH", 64)]))
            .unwrap();
        assert!(e.fmax_mhz > 0.0);
        let events = ev.events();
        assert_eq!(events.len(), 3); // timeout, timeout, degraded success
        assert_eq!(events[0].step, FlowStep::Implementation);
        assert_eq!(events[1].step, FlowStep::Implementation);
        assert_eq!(events[2].step, FlowStep::Synthesis);
        assert!(events[2].outcome.is_success());
    }

    #[test]
    fn degradation_disabled_by_default() {
        let ev = evaluator(EvalConfig {
            faults: FaultPlan {
                route_timeout: 1.0,
                ..FaultPlan::default()
            },
            retry: RetryPolicy {
                max_attempts: 3,
                ..Default::default()
            },
            ..Default::default()
        });
        let err = ev
            .evaluate(&DesignPoint::from_pairs(&[("DEPTH", 64)]))
            .unwrap_err();
        assert!(matches!(err, DovadoError::RetriesExhausted { .. }));
        assert!(ev
            .events()
            .iter()
            .all(|e| e.step == FlowStep::Implementation));
    }

    #[test]
    fn permanent_failures_do_not_retry() {
        // DEPTH far beyond the device capacity → resource overflow, a
        // permanent error: exactly one attempt, no backoff.
        let ev = evaluator(EvalConfig {
            retry: RetryPolicy {
                max_attempts: 5,
                ..Default::default()
            },
            ..Default::default()
        });
        let err = ev
            .evaluate(&DesignPoint::from_pairs(&[("DEPTH", 100_000_000)]))
            .unwrap_err();
        assert!(!err.is_transient(), "{err}");
        let s = ev.trace_summary();
        assert_eq!(s.attempts, 1);
        assert_eq!(s.permanent_failures, 1);
        assert_eq!(s.backoff_s, 0.0);
    }

    #[test]
    fn garbled_reports_are_retried() {
        let p = DesignPoint::from_pairs(&[("DEPTH", 24)]);
        let truth = evaluator(EvalConfig::default()).evaluate(&p).unwrap();
        let mut saw_report_fault = false;
        for seed in 0..32u64 {
            let ev = evaluator(EvalConfig {
                // Each attempt writes six reports and each report rolls
                // both fault kinds, so keep the per-roll probability low
                // enough that ten attempts reliably find a clean one.
                faults: FaultPlan {
                    report_truncated: 0.05,
                    report_garbled: 0.05,
                    seed,
                    ..FaultPlan::default()
                },
                retry: RetryPolicy {
                    max_attempts: 10,
                    ..Default::default()
                },
                ..Default::default()
            });
            let e = ev.evaluate(&p).expect("report faults are retryable");
            assert_eq!(e.utilization, truth.utilization, "seed {seed}");
            saw_report_fault |= ev.trace_summary().transient_failures > 0;
        }
        assert!(saw_report_fault, "no seed produced a report fault");
    }
}
