//! Bayesian-style acquisition explorer over the NW surrogate.
//!
//! A cheap model-guided search: every evaluated configuration trains a
//! Nadaraya-Watson estimator (the paper's Eq. 2 regressor, reused from
//! `dovado-surrogate`) on a scalarized objective, and each generation
//! scores a pool of random candidates by an acquisition value
//! `ŷ − κ·range(y)·d_min` — predicted quality discounted by normalized
//! distance to the nearest training sample, the classic
//! exploitation/exploration trade-off with the novelty bonus standing in
//! for posterior variance (NW is not a full GP, so there is no closed-form
//! σ to draw on). The best `batch` candidates by `(acquisition, genome)`
//! are paid for with real evaluations.
//!
//! The engine implements [`dovado_moo::Explorer`], so journaling, tracing,
//! cancellation and parallel schedules all apply. Its snapshot is
//! [`BayesSnapshot`]: the dataset is *derived* state, rebuilt from the
//! archive in insertion order on resume, which keeps the journal format
//! free of surrogate internals while still resuming bitwise.

use dovado_moo::explorer::{evaluate_genomes, finish_archive, front_of, BayesSnapshot};
use dovado_moo::ops::sampling::random_population;
use dovado_moo::{ExplorerSnapshot, GenStats, Individual, IntVar, Objective, OptResult, Problem};
use dovado_surrogate::{Bounds, Dataset, Kernel, NadarayaWatson};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Candidate-pool multiplier: each generation scores `batch × POOL_FACTOR`
/// random candidates before paying for `batch` real evaluations.
const POOL_FACTOR: usize = 8;

/// Exploration weight κ on the normalized-distance novelty bonus.
const EXPLORE_KAPPA: f64 = 1.0;

/// NW bandwidth used for acquisition (normalized-coordinate units).
const ACQUISITION_BANDWIDTH: f64 = 0.15;

fn scalar_objective(min_objs: &[f64]) -> f64 {
    if min_objs.is_empty() {
        return 0.0;
    }
    min_objs.iter().sum::<f64>() / min_objs.len() as f64
}

fn dataset_for(vars: &[IntVar]) -> Dataset {
    let bounds = Bounds::new(vars.iter().map(|v| (v.lo, v.hi)).collect());
    Dataset::new(bounds, 1)
}

/// The Bayesian acquisition explorer (see module docs).
#[derive(Debug, Clone)]
pub struct BayesExplorer {
    batch: usize,
    rng: StdRng,
    vars: Vec<IntVar>,
    objectives: Vec<Objective>,
    nw: NadarayaWatson,
    dataset: Dataset,
    archive: Vec<Individual>,
    history: Vec<GenStats>,
    generation: u32,
    evaluations: u64,
}

impl BayesExplorer {
    /// Starts a fresh run: evaluates one random batch to seed the model.
    pub fn start(problem: &mut dyn Problem, batch: usize, seed: u64) -> BayesExplorer {
        let batch = batch.max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let vars = problem.variables().to_vec();
        let objectives = problem.objectives().to_vec();
        let genomes = random_population(&vars, batch, &mut rng);
        let seedlings = evaluate_genomes(problem, &objectives, genomes);
        let evaluations = seedlings.len() as u64;
        let mut dataset = dataset_for(&vars);
        for ind in &seedlings {
            dataset.insert(ind.genome.clone(), vec![scalar_objective(&ind.min_objs)]);
        }
        let history = vec![GenStats {
            generation: 0,
            evaluations,
            front_size: front_of(&seedlings).len(),
            external_cost: problem.external_cost(),
        }];
        BayesExplorer {
            batch,
            rng,
            nw: NadarayaWatson {
                kernel: Kernel::Gaussian,
                bandwidth: ACQUISITION_BANDWIDTH,
            },
            dataset,
            archive: seedlings,
            history,
            generation: 0,
            evaluations,
            vars,
            objectives,
        }
    }

    /// Rebuilds the explorer from a journal snapshot; the NW training set
    /// is replayed from the archive in insertion order.
    pub fn resume(problem: &dyn Problem, batch: usize, snap: BayesSnapshot) -> BayesExplorer {
        let vars = problem.variables().to_vec();
        let mut dataset = dataset_for(&vars);
        for ind in &snap.archive {
            dataset.insert(ind.genome.clone(), vec![scalar_objective(&ind.min_objs)]);
        }
        BayesExplorer {
            batch: batch.max(1),
            rng: StdRng::from_state(snap.rng_state),
            objectives: problem.objectives().to_vec(),
            nw: NadarayaWatson {
                kernel: Kernel::Gaussian,
                bandwidth: ACQUISITION_BANDWIDTH,
            },
            dataset,
            archive: snap.archive,
            history: snap.history,
            generation: snap.generation,
            evaluations: snap.evaluations,
            vars,
        }
    }

    /// Acquisition value for a candidate: predicted scalar objective minus
    /// the scaled distance-to-nearest-sample bonus (lower is better).
    fn acquisition(&self, genome: &[i64], y_range: f64) -> f64 {
        let predicted = self
            .nw
            .predict(&self.dataset, genome)
            .map_or(0.0, |out| out[0]);
        let x = self.dataset.normalize(genome);
        let d_min = self.dataset.min_dist2(&x).map_or(1.0, |(_, d2)| d2.sqrt());
        predicted - EXPLORE_KAPPA * y_range * d_min
    }
}

impl dovado_moo::Explorer for BayesExplorer {
    fn name(&self) -> &'static str {
        "bayes"
    }
    fn generation(&self) -> u32 {
        self.generation
    }
    fn evaluations(&self) -> u64 {
        self.evaluations
    }
    fn step(&mut self, problem: &mut dyn Problem) {
        // Score a pool of random candidates against the model...
        let pool = random_population(&self.vars, self.batch * POOL_FACTOR, &mut self.rng);
        let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for ind in &self.archive {
            let y = scalar_objective(&ind.min_objs);
            y_lo = y_lo.min(y);
            y_hi = y_hi.max(y);
        }
        let y_range = if y_hi > y_lo { y_hi - y_lo } else { 1.0 };
        let mut scored: Vec<(f64, Vec<i64>)> = pool
            .into_iter()
            .map(|g| (self.acquisition(&g, y_range), g))
            .collect();
        // ...and pay for the most promising `batch`. Ties break on the
        // genome so selection is a pure function of the candidate set.
        scored.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        let chosen: Vec<Vec<i64>> = scored
            .into_iter()
            .take(self.batch)
            .map(|(_, g)| g)
            .collect();
        let inds = evaluate_genomes(problem, &self.objectives, chosen);
        self.evaluations += inds.len() as u64;
        for ind in &inds {
            self.dataset
                .insert(ind.genome.clone(), vec![scalar_objective(&ind.min_objs)]);
        }
        self.archive.extend(inds);
        self.generation += 1;
        self.history.push(GenStats {
            generation: self.generation,
            evaluations: self.evaluations,
            front_size: front_of(&self.archive).len(),
            external_cost: problem.external_cost(),
        });
    }
    fn snapshot(&self) -> ExplorerSnapshot {
        ExplorerSnapshot::Bayes(BayesSnapshot {
            generation: self.generation,
            evaluations: self.evaluations,
            rng_state: self.rng.state(),
            archive: self.archive.clone(),
            history: self.history.clone(),
        })
    }
    fn front(&self) -> Vec<Individual> {
        front_of(&self.archive)
    }
    fn into_result(self: Box<Self>) -> OptResult {
        finish_archive(
            self.archive,
            self.generation,
            self.evaluations,
            self.history,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dovado_moo::{Explorer, Schaffer, Termination};

    #[test]
    fn bayes_converges_near_the_front() {
        let mut p = Schaffer::new();
        let mut e = BayesExplorer::start(&mut p, 12, 4);
        let term = Termination::Generations(25);
        while !e.should_stop(&p, &term) {
            e.step(&mut p);
        }
        let r = Box::new(e).into_result();
        assert_eq!(r.evaluations, 12 + 25 * 12);
        // Mean-objective optimum is x ∈ [0, 2]; the model-guided walk must
        // get close from a 2001-point space.
        let best = r
            .population
            .iter()
            .map(|i| scalar_objective(&i.min_objs))
            .fold(f64::INFINITY, f64::min);
        assert!(best < 400.0, "best scalar {best}");
    }

    #[test]
    fn bayes_snapshot_resume_is_bitwise() {
        let term = Termination::Generations(8);
        let mut p1 = Schaffer::new();
        let mut direct = BayesExplorer::start(&mut p1, 6, 9);
        while !direct.should_stop(&p1, &term) {
            direct.step(&mut p1);
        }
        let direct = Box::new(direct).into_result();

        let mut p2 = Schaffer::new();
        let mut e = BayesExplorer::start(&mut p2, 6, 9);
        while !e.should_stop(&p2, &term) {
            let ExplorerSnapshot::Bayes(snap) = e.snapshot() else {
                unreachable!()
            };
            e = BayesExplorer::resume(&p2, 6, snap);
            e.step(&mut p2);
        }
        let resumed = Box::new(e).into_result();
        assert_eq!(direct.history, resumed.history);
        assert_eq!(direct.population, resumed.population);
        assert_eq!(direct.pareto, resumed.pareto);
    }
}
