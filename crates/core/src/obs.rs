//! The structured observability spine.
//!
//! Every run-time accounting signal in Dovado — tool attempts, retries,
//! persistent-store hits, charged simulated time, NSGA-II generation
//! boundaries, surrogate control decisions, injected faults, and resume
//! splices — is emitted as one typed [`ObsEvent`] on a shared
//! [`EventBus`]. Everything the repo used to track in independently
//! mutated counters (the flow trace, the engine ledger, CLI summaries,
//! bench figures) is a *view* over this stream: [`Totals::fold`] is the
//! single definition of every counter, and [`fold_totals`] recomputes
//! them from scratch for any event sequence.
//!
//! # Determinism
//!
//! Events are keyed by [`EventKey`] — a `(seq, sub)` pair where `seq` is
//! allocated serially in program order (batch dispatch reserves one
//! contiguous block in input order *before* fanning out across threads)
//! and `sub` numbers the attempts under one point. Sorting by key
//! therefore yields the same canonical order for serial and parallel
//! runs, which is what makes `--trace-out` files byte-identical across
//! `--jobs` settings. The retention cap evicts the canonically-*largest*
//! keys first, so the retained prefix is also schedule-independent.
//!
//! # Wire format
//!
//! [`write_jsonl`] serializes a [`SpineSnapshot`] as versioned JSONL: a
//! header line, one object per event in canonical order, and a trailing
//! summary object that equals the fold of the event lines above it.

use crate::flow::FlowStep;
use crate::trace::{AttemptOutcome, FlowEvent, TraceSummary};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::sync::Arc;

/// Version tag written in the JSONL header line. Bump on any change to
/// the event wire format (field names, event types, value encodings).
///
/// v2: added the `selector_decision` event (portfolio selection) and the
/// `lowfi_runs`/`lowfi_time_s` summary fields (low-fidelity race spend,
/// ledgered separately from full-flow tool time).
pub const EVENT_SCHEMA_VERSION: u32 = 2;

/// Cap on retained events per bus. Totals keep counting past it; the
/// canonically-largest keys are dropped first so serial and parallel
/// runs retain the same prefix.
pub const MAX_RETAINED_EVENTS: usize = 10_000;

/// Canonical position of an event in the run's stream.
///
/// Ordering is lexicographic on `(seq, sub)` — stable program order, not
/// arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Serially-allocated major position: one per dispatched point or
    /// control-flow emission, assigned in program order before any
    /// parallel fan-out.
    pub seq: u64,
    /// Minor position under one `seq`: the 1-based attempt number for
    /// tool attempts, 0 for everything else.
    pub sub: u32,
}

/// One typed event on the observability spine.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// One tool attempt (success or failure), as the retry layer saw it.
    Attempt(FlowEvent),
    /// An evaluation answered from the persistent store with no tool
    /// attempt at all.
    StoreHit {
        /// Compact design-point label (`DEPTH=64`).
        point: String,
    },
    /// Simulated seconds charged straight to the ledger, outside any
    /// attempt.
    TimeCharged {
        /// Seconds charged.
        seconds: f64,
    },
    /// Journaled totals spliced in by `--resume`: the *deficit* between
    /// the journal and the live bus, so a replay never double-counts
    /// spans already on the stream.
    Resume {
        /// Trace counters carried over from the journal.
        summary: TraceSummary,
        /// Successful tool runs carried over.
        runs: u64,
        /// Simulated tool seconds carried over.
        tool_time_s: f64,
    },
    /// An exploration generation boundary (any explorer).
    Generation {
        /// 1-based index of the generation just completed.
        generation: u64,
        /// Cumulative fitness evaluations after this generation.
        evaluations: u64,
    },
    /// The portfolio selector committed to an explorer (`--explorer
    /// auto`): problem features, the low-fidelity race spend, and every
    /// candidate's score. Exactly one per auto run; `--resume` re-emits
    /// the journaled decision instead of re-racing, so replayed traces
    /// stay bitwise-identical.
    SelectorDecision {
        /// The committed explorer (`nsga2`, `random`, …).
        explorer: String,
        /// Design-space volume feature (product of cardinalities).
        space_volume: u64,
        /// Objective-count feature.
        objectives: u32,
        /// Successful low-fidelity (synthesis-only) tool runs spent on
        /// the race, across all candidates.
        lowfi_runs: u64,
        /// Simulated tool seconds spent on the race, ledgered separately
        /// from full-flow `tool_time_s`.
        lowfi_time_s: f64,
        /// Per-candidate race outcomes, in race order.
        candidates: Vec<CandidateScore>,
    },
    /// A surrogate control decision for one batch slot.
    SurrogateDecision {
        /// Compact design-point label.
        point: String,
        /// `cached`, `estimated`, or `evaluated`.
        choice: &'static str,
    },
    /// The surrogate re-selected its kernel bandwidth (retrain).
    Reselected {
        /// Bandwidth chosen by leave-one-out cross-validation.
        bandwidth: f64,
    },
    /// The adaptive threshold controller moved Γ.
    GammaUpdated {
        /// The new Γ value.
        gamma: f64,
    },
    /// An injected fault fired outside the attempt path (e.g. a host
    /// crash at a generation boundary).
    Fault {
        /// Stable fault-kind label.
        kind: String,
    },
    /// A distributed-worker lifecycle transition (spawn, steal, death,
    /// requeue). Scheduling facts, not evaluation facts: they ride the
    /// bus on a side channel ([`EventBus::emit_worker`]) and never enter
    /// the canonical stream, which is what keeps `--trace-out` files
    /// byte-identical across serial, rayon, and distributed schedules.
    Worker {
        /// Fleet-unique worker id.
        worker: u64,
        /// Transition label: `spawned`, `stole`, `died`, or `requeued`.
        kind: &'static str,
        /// Transport-level detail for deaths, empty otherwise.
        detail: String,
    },
    /// A capacity-bounded [`EvalStore`](dovado_eda::EvalStore) evicted an
    /// entry. Cache-management facts, not evaluation facts: like
    /// [`ObsEvent::Worker`] they ride a side channel
    /// ([`EventBus::emit_store_evicted`]) and never enter the canonical
    /// stream — eviction timing depends on cross-run store state, which
    /// would break byte-identical `--trace-out` replays. An eviction can
    /// only ever produce a future store *miss*, never a wrong answer.
    StoreEvicted {
        /// 32-hex-digit `EvalKey` of the evicted entry.
        key: String,
    },
}

/// One candidate's outcome in a portfolio-selection race.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// Explorer name (`nsga2`, `random`, `sa`, `bayes`).
    pub name: String,
    /// Low-fidelity evaluations the candidate spent on its race budget.
    pub evaluations: u64,
    /// Hypervolume of the candidate's final race front against the
    /// common reference point.
    pub hypervolume: f64,
    /// Early hypervolume slope: mean per-generation hypervolume gain
    /// over the race (the learned-selection feature).
    pub slope: f64,
}

/// Exact whole-run totals, maintained incrementally by the bus and
/// recomputable from scratch with [`fold_totals`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Totals {
    /// Rolled-up trace counters.
    pub summary: TraceSummary,
    /// Successful tool invocations.
    pub runs: u64,
    /// Cumulative simulated tool seconds: attempts (failed ones too),
    /// retry backoff, charged time, and resume splices.
    pub tool_time_s: f64,
    /// Successful low-fidelity (synthesis-only) tool runs spent by the
    /// portfolio selector's race; ledgered separately from `runs`.
    pub lowfi_runs: u64,
    /// Simulated tool seconds spent by the race; ledgered separately from
    /// `tool_time_s` so a soft deadline budgets only full-flow spend.
    pub lowfi_time_s: f64,
    /// Portfolio-selection decisions seen by this spine. A resumed run
    /// re-emits its journaled decision only when this is still zero, so
    /// the decision lands exactly once per run, process restarts included.
    pub decisions: u64,
}

impl Totals {
    /// Folds one event into the totals. This is *the* definition of
    /// every counter in Dovado; [`TraceSummary`] snapshots and the
    /// engine's time/run ledger are views of this fold.
    pub fn fold(&mut self, event: &ObsEvent) {
        match event {
            ObsEvent::Attempt(e) => {
                self.summary.attempts += 1;
                if e.attempt > 1 {
                    self.summary.retries += 1;
                }
                match &e.outcome {
                    AttemptOutcome::Success => {
                        if e.cached {
                            self.summary.cache_hits += 1;
                        }
                        self.runs += 1;
                    }
                    AttemptOutcome::TransientFailure(_) => self.summary.transient_failures += 1,
                    AttemptOutcome::PermanentFailure(_) => self.summary.permanent_failures += 1,
                }
                self.summary.backoff_s += e.backoff_s;
                self.tool_time_s += e.tool_time_s + e.backoff_s;
            }
            ObsEvent::StoreHit { .. } => self.summary.store_hits += 1,
            ObsEvent::TimeCharged { seconds } => self.tool_time_s += seconds,
            ObsEvent::Resume {
                summary,
                runs,
                tool_time_s,
            } => {
                self.summary.attempts += summary.attempts;
                self.summary.retries += summary.retries;
                self.summary.transient_failures += summary.transient_failures;
                self.summary.permanent_failures += summary.permanent_failures;
                self.summary.cache_hits += summary.cache_hits;
                self.summary.store_hits += summary.store_hits;
                self.summary.backoff_s += summary.backoff_s;
                self.runs += runs;
                self.tool_time_s += tool_time_s;
            }
            ObsEvent::SelectorDecision {
                lowfi_runs,
                lowfi_time_s,
                ..
            } => {
                self.lowfi_runs += lowfi_runs;
                self.lowfi_time_s += lowfi_time_s;
                self.decisions += 1;
            }
            ObsEvent::Generation { .. }
            | ObsEvent::SurrogateDecision { .. }
            | ObsEvent::Reselected { .. }
            | ObsEvent::GammaUpdated { .. }
            | ObsEvent::Fault { .. }
            | ObsEvent::Worker { .. }
            | ObsEvent::StoreEvicted { .. } => {}
        }
    }
}

/// Folds an event sequence into totals from scratch.
pub fn fold_totals<'a, I>(events: I) -> Totals
where
    I: IntoIterator<Item = &'a ObsEvent>,
{
    let mut totals = Totals::default();
    for event in events {
        totals.fold(event);
    }
    totals
}

/// A consistent copy of the spine: retained events in canonical order
/// plus the exact whole-run totals (which cover dropped events too).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpineSnapshot {
    /// Retained events, sorted by key.
    pub events: Vec<(EventKey, ObsEvent)>,
    /// Exact whole-run trace counters.
    pub summary: TraceSummary,
    /// Exact whole-run successful tool invocations.
    pub runs: u64,
    /// Exact whole-run simulated tool seconds.
    pub tool_time_s: f64,
    /// Exact whole-run low-fidelity race runs (see [`Totals::lowfi_runs`]).
    pub lowfi_runs: u64,
    /// Exact whole-run low-fidelity race seconds (see
    /// [`Totals::lowfi_time_s`]).
    pub lowfi_time_s: f64,
    /// Events evicted by the retention cap (counted, not retained).
    pub dropped: u64,
}

/// Shared, thread-safe event spine with canonical ordering and exact
/// incrementally-folded totals. Clones share storage.
#[derive(Clone, Default)]
pub struct EventBus {
    inner: Arc<Mutex<BusInner>>,
}

#[derive(Default)]
struct BusInner {
    events: BTreeMap<EventKey, ObsEvent>,
    totals: Totals,
    next_seq: u64,
    dropped: u64,
    /// Worker lifecycle side channel, in arrival order. Kept out of
    /// `events` (and the snapshot/JSONL stream) because lease order is
    /// scheduling-dependent; capped like the canonical stream.
    worker_events: Vec<ObsEvent>,
    /// Store-eviction side channel, in arrival order. Kept out of the
    /// canonical stream because eviction timing depends on cross-run
    /// store state; capped like the canonical stream.
    store_events: Vec<ObsEvent>,
}

impl EventBus {
    /// Creates an empty bus.
    pub fn new() -> EventBus {
        EventBus::default()
    }

    /// Reserves `n` consecutive `seq` values and returns the first.
    /// Batch dispatch reserves its whole block serially, in input order,
    /// before fanning out across threads.
    pub fn alloc(&self, n: u64) -> u64 {
        let mut inner = self.inner.lock();
        let start = inner.next_seq;
        inner.next_seq += n;
        start
    }

    /// Emits an event at an explicit key (keys must be unique per run).
    pub fn emit(&self, key: EventKey, event: ObsEvent) {
        let mut inner = self.inner.lock();
        inner.totals.fold(&event);
        inner.events.insert(key, event);
        if inner.events.len() > MAX_RETAINED_EVENTS {
            inner.events.pop_last();
            inner.dropped += 1;
        }
    }

    /// Allocates the next `seq` and emits at `sub = 0`.
    pub fn emit_next(&self, event: ObsEvent) -> EventKey {
        let key = EventKey {
            seq: self.alloc(1),
            sub: 0,
        };
        self.emit(key, event);
        key
    }

    /// Records a worker lifecycle event on the side channel (arrival
    /// order; never part of the canonical stream).
    pub fn emit_worker(&self, event: ObsEvent) {
        debug_assert!(matches!(event, ObsEvent::Worker { .. }));
        let mut inner = self.inner.lock();
        if inner.worker_events.len() < MAX_RETAINED_EVENTS {
            inner.worker_events.push(event);
        }
    }

    /// The worker lifecycle side channel, in arrival order.
    pub fn worker_events(&self) -> Vec<ObsEvent> {
        self.inner.lock().worker_events.clone()
    }

    /// Records a store-eviction event on the side channel (arrival
    /// order; never part of the canonical stream).
    pub fn emit_store_evicted(&self, event: ObsEvent) {
        debug_assert!(matches!(event, ObsEvent::StoreEvicted { .. }));
        let mut inner = self.inner.lock();
        if inner.store_events.len() < MAX_RETAINED_EVENTS {
            inner.store_events.push(event);
        }
    }

    /// The store-eviction side channel, in arrival order.
    pub fn store_events(&self) -> Vec<ObsEvent> {
        self.inner.lock().store_events.clone()
    }

    /// Exact whole-run totals (cover evicted events too).
    pub fn totals(&self) -> Totals {
        self.inner.lock().totals
    }

    /// Number of events evicted by the retention cap.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Canonically-ordered copy of the retained events.
    pub fn events(&self) -> Vec<(EventKey, ObsEvent)> {
        self.inner
            .lock()
            .events
            .iter()
            .map(|(k, e)| (*k, e.clone()))
            .collect()
    }

    /// A consistent snapshot of events and totals, taken under one lock.
    pub fn snapshot(&self) -> SpineSnapshot {
        let inner = self.inner.lock();
        SpineSnapshot {
            events: inner.events.iter().map(|(k, e)| (*k, e.clone())).collect(),
            summary: inner.totals.summary,
            runs: inner.totals.runs,
            tool_time_s: inner.totals.tool_time_s,
            lowfi_runs: inner.totals.lowfi_runs,
            lowfi_time_s: inner.totals.lowfi_time_s,
            dropped: inner.dropped,
        }
    }
}

/// A consumer of canonically-ordered events.
pub trait EventSink {
    /// Receives one event; [`replay`] calls this in canonical order.
    fn event(&mut self, key: EventKey, event: &ObsEvent);
}

/// Replays a snapshot into a sink in canonical key order.
pub fn replay(snapshot: &SpineSnapshot, sink: &mut dyn EventSink) {
    for (key, event) in &snapshot.events {
        sink.event(*key, event);
    }
}

/// In-memory sink for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Events received, in replay order.
    pub received: Vec<(EventKey, ObsEvent)>,
}

impl EventSink for MemorySink {
    fn event(&mut self, key: EventKey, event: &ObsEvent) {
        self.received.push((key, event.clone()));
    }
}

/// Escapes a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number. Rust's shortest-roundtrip `Display`
/// is deterministic and decimal; non-finite values become `null`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn step_name(step: FlowStep) -> &'static str {
    match step {
        FlowStep::Synthesis => "synthesis",
        FlowStep::Implementation => "implementation",
    }
}

/// The JSONL trace header line (no trailing newline). Streamed protocols
/// reuse this so clients see exactly the `--trace-out` wire format.
pub fn trace_header() -> String {
    format!("{{\"schema\":\"dovado-trace\",\"version\":{EVENT_SCHEMA_VERSION}}}")
}

/// Renders one event as its canonical trace v2 JSON line (no trailing
/// newline). [`write_jsonl`] uses this for every event line; the serve
/// protocol reuses it to stream live events in the same wire format.
pub fn event_json(key: EventKey, event: &ObsEvent) -> String {
    let head = format!("{{\"seq\":{},\"sub\":{}", key.seq, key.sub);
    match event {
        ObsEvent::Attempt(e) => {
            let (outcome, error) = match &e.outcome {
                AttemptOutcome::Success => ("success", None),
                AttemptOutcome::TransientFailure(m) => ("transient", Some(m)),
                AttemptOutcome::PermanentFailure(m) => ("permanent", Some(m)),
            };
            let mut line = format!(
                "{head},\"type\":\"attempt\",\"point\":\"{}\",\"attempt\":{},\
                 \"step\":\"{}\",\"outcome\":\"{outcome}\"",
                json_escape(&e.point),
                e.attempt,
                step_name(e.step),
            );
            if let Some(m) = error {
                let _ = write!(line, ",\"error\":\"{}\"", json_escape(m));
            }
            let _ = write!(
                line,
                ",\"tool_time_s\":{},\"backoff_s\":{},\"incremental\":{},\"cached\":{}}}",
                json_f64(e.tool_time_s),
                json_f64(e.backoff_s),
                e.incremental,
                e.cached
            );
            line
        }
        ObsEvent::StoreHit { point } => {
            format!(
                "{head},\"type\":\"store_hit\",\"point\":\"{}\"}}",
                json_escape(point)
            )
        }
        ObsEvent::TimeCharged { seconds } => {
            format!(
                "{head},\"type\":\"time_charged\",\"seconds\":{}}}",
                json_f64(*seconds)
            )
        }
        ObsEvent::Resume {
            summary,
            runs,
            tool_time_s,
        } => {
            format!(
                "{head},\"type\":\"resume\",\"attempts\":{},\"retries\":{},\
                 \"transient_failures\":{},\"permanent_failures\":{},\
                 \"cache_hits\":{},\"store_hits\":{},\"backoff_s\":{},\
                 \"runs\":{},\"tool_time_s\":{}}}",
                summary.attempts,
                summary.retries,
                summary.transient_failures,
                summary.permanent_failures,
                summary.cache_hits,
                summary.store_hits,
                json_f64(summary.backoff_s),
                runs,
                json_f64(*tool_time_s)
            )
        }
        ObsEvent::Generation {
            generation,
            evaluations,
        } => {
            format!(
                "{head},\"type\":\"generation\",\"generation\":{generation},\
                 \"evaluations\":{evaluations}}}"
            )
        }
        ObsEvent::SelectorDecision {
            explorer,
            space_volume,
            objectives,
            lowfi_runs,
            lowfi_time_s,
            candidates,
        } => {
            let cands: Vec<String> = candidates
                .iter()
                .map(|c| {
                    format!(
                        "{{\"name\":\"{}\",\"evaluations\":{},\"hypervolume\":{},\"slope\":{}}}",
                        json_escape(&c.name),
                        c.evaluations,
                        json_f64(c.hypervolume),
                        json_f64(c.slope)
                    )
                })
                .collect();
            format!(
                "{head},\"type\":\"selector_decision\",\"explorer\":\"{}\",\
                 \"space_volume\":{space_volume},\"objectives\":{objectives},\
                 \"lowfi_runs\":{lowfi_runs},\"lowfi_time_s\":{},\
                 \"candidates\":[{}]}}",
                json_escape(explorer),
                json_f64(*lowfi_time_s),
                cands.join(",")
            )
        }
        ObsEvent::SurrogateDecision { point, choice } => {
            format!(
                "{head},\"type\":\"surrogate_decision\",\"point\":\"{}\",\"choice\":\"{choice}\"}}",
                json_escape(point)
            )
        }
        ObsEvent::Reselected { bandwidth } => {
            format!(
                "{head},\"type\":\"reselected\",\"bandwidth\":{}}}",
                json_f64(*bandwidth)
            )
        }
        ObsEvent::GammaUpdated { gamma } => {
            format!(
                "{head},\"type\":\"gamma_updated\",\"gamma\":{}}}",
                json_f64(*gamma)
            )
        }
        ObsEvent::Fault { kind } => {
            format!(
                "{head},\"type\":\"fault\",\"kind\":\"{}\"}}",
                json_escape(kind)
            )
        }
        ObsEvent::Worker {
            worker,
            kind,
            detail,
        } => {
            format!(
                "{head},\"type\":\"worker\",\"worker\":{worker},\"kind\":\"{kind}\",\
                 \"detail\":\"{}\"}}",
                json_escape(detail)
            )
        }
        ObsEvent::StoreEvicted { key } => {
            format!(
                "{head},\"type\":\"store_evicted\",\"key\":\"{}\"}}",
                json_escape(key)
            )
        }
    }
}

/// Writes the versioned JSONL trace: a header line, one object per event
/// in canonical key order, and a trailing summary object computed by
/// folding exactly the event lines above it (so the file is always
/// self-consistent; `dropped` reports how many events the retention cap
/// evicted before the snapshot).
pub fn write_jsonl(snapshot: &SpineSnapshot, out: &mut dyn io::Write) -> io::Result<()> {
    writeln!(out, "{}", trace_header())?;
    for (key, event) in &snapshot.events {
        writeln!(out, "{}", event_json(*key, event))?;
    }
    let t = fold_totals(snapshot.events.iter().map(|(_, e)| e));
    writeln!(out, "{}", summary_json(&t, snapshot.dropped))
}

/// Renders the trailing trace v2 summary object for `totals` (no
/// trailing newline). Streamed protocols reuse this so a live session
/// ends with exactly the line a `--trace-out` file would.
pub fn summary_json(totals: &Totals, dropped: u64) -> String {
    format!(
        "{{\"type\":\"summary\",\"attempts\":{},\"retries\":{},\
         \"transient_failures\":{},\"permanent_failures\":{},\
         \"cache_hits\":{},\"store_hits\":{},\"backoff_s\":{},\
         \"runs\":{},\"tool_time_s\":{},\"lowfi_runs\":{},\
         \"lowfi_time_s\":{},\"dropped\":{}}}",
        totals.summary.attempts,
        totals.summary.retries,
        totals.summary.transient_failures,
        totals.summary.permanent_failures,
        totals.summary.cache_hits,
        totals.summary.store_hits,
        json_f64(totals.summary.backoff_s),
        totals.runs,
        json_f64(totals.tool_time_s),
        totals.lowfi_runs,
        json_f64(totals.lowfi_time_s),
        dropped
    )
}

/// Renders a snapshot to a JSONL string (convenience over
/// [`write_jsonl`]).
pub fn jsonl_string(snapshot: &SpineSnapshot) -> String {
    let mut buf = Vec::new();
    write_jsonl(snapshot, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("JSONL output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attempt(point: &str, n: u32, outcome: AttemptOutcome) -> ObsEvent {
        ObsEvent::Attempt(FlowEvent {
            point: point.into(),
            attempt: n,
            step: FlowStep::Implementation,
            outcome,
            tool_time_s: 10.0,
            backoff_s: if n > 1 { 30.0 } else { 0.0 },
            incremental: true,
            cached: false,
        })
    }

    #[test]
    fn keys_order_by_seq_then_sub() {
        let a = EventKey { seq: 1, sub: 2 };
        let b = EventKey { seq: 2, sub: 1 };
        let c = EventKey { seq: 1, sub: 3 };
        assert!(a < b && a < c && c < b);
    }

    #[test]
    fn incremental_totals_match_the_fold() {
        let bus = EventBus::new();
        bus.emit_next(attempt(
            "DEPTH=8",
            1,
            AttemptOutcome::TransientFailure("x".into()),
        ));
        bus.emit_next(attempt("DEPTH=8", 2, AttemptOutcome::Success));
        bus.emit_next(ObsEvent::StoreHit {
            point: "DEPTH=16".into(),
        });
        bus.emit_next(ObsEvent::TimeCharged { seconds: 5.0 });
        let snap = bus.snapshot();
        let folded = fold_totals(snap.events.iter().map(|(_, e)| e));
        assert_eq!(bus.totals(), folded);
        assert_eq!(folded.summary.attempts, 2);
        assert_eq!(folded.summary.retries, 1);
        assert_eq!(folded.summary.store_hits, 1);
        assert_eq!(folded.runs, 1);
        assert_eq!(folded.tool_time_s, 10.0 + 10.0 + 30.0 + 5.0);
    }

    #[test]
    fn cap_keeps_the_canonical_prefix() {
        let bus = EventBus::new();
        // Emit in *reverse* key order: retention must still keep the
        // lowest keys, not the earliest arrivals.
        let n = MAX_RETAINED_EVENTS as u64 + 50;
        for seq in (0..n).rev() {
            bus.emit(
                EventKey { seq, sub: 1 },
                attempt("DEPTH=8", 1, AttemptOutcome::Success),
            );
        }
        let snap = bus.snapshot();
        assert_eq!(snap.events.len(), MAX_RETAINED_EVENTS);
        assert_eq!(snap.dropped, 50);
        assert_eq!(
            snap.events.last().unwrap().0.seq,
            MAX_RETAINED_EVENTS as u64 - 1
        );
        assert_eq!(snap.summary.attempts, n);
    }

    #[test]
    fn replay_feeds_sinks_in_key_order() {
        let bus = EventBus::new();
        bus.emit(
            EventKey { seq: 3, sub: 0 },
            ObsEvent::TimeCharged { seconds: 1.0 },
        );
        bus.emit(
            EventKey { seq: 1, sub: 0 },
            ObsEvent::TimeCharged { seconds: 2.0 },
        );
        let mut sink = MemorySink::default();
        replay(&bus.snapshot(), &mut sink);
        let seqs: Vec<u64> = sink.received.iter().map(|(k, _)| k.seq).collect();
        assert_eq!(seqs, vec![1, 3]);
    }

    #[test]
    fn jsonl_lines_are_valid_and_versioned() {
        let bus = EventBus::new();
        bus.emit_next(attempt(
            "DEPTH=8 \"q\"",
            2,
            AttemptOutcome::TransientFailure("tool\ncrashed".into()),
        ));
        let text = jsonl_string(&bus.snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert_eq!(lines[0], "{\"schema\":\"dovado-trace\",\"version\":2}");
        assert!(lines[1].contains("\\\"q\\\""), "{}", lines[1]);
        assert!(lines[1].contains("tool\\ncrashed"), "{}", lines[1]);
        assert!(
            lines[2].starts_with("{\"type\":\"summary\""),
            "{}",
            lines[2]
        );
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn selector_decision_feeds_the_lowfi_ledger() {
        let bus = EventBus::new();
        bus.emit_next(ObsEvent::SelectorDecision {
            explorer: "nsga2".into(),
            space_volume: 128,
            objectives: 3,
            lowfi_runs: 96,
            lowfi_time_s: 42.5,
            candidates: vec![CandidateScore {
                name: "nsga2".into(),
                evaluations: 32,
                hypervolume: 1.5,
                slope: 0.25,
            }],
        });
        let t = bus.totals();
        // Charged separately: the race never touches the full-flow ledger.
        assert_eq!(t.runs, 0);
        assert_eq!(t.tool_time_s, 0.0);
        assert_eq!(t.lowfi_runs, 96);
        assert_eq!(t.lowfi_time_s, 42.5);
        let snap = bus.snapshot();
        assert_eq!(snap.lowfi_runs, 96);
        let text = jsonl_string(&snap);
        let line = text.lines().nth(1).unwrap();
        assert!(line.contains("\"type\":\"selector_decision\""), "{line}");
        assert!(line.contains("\"explorer\":\"nsga2\""), "{line}");
        assert!(line.contains("\"space_volume\":128"), "{line}");
        assert!(
            line.contains("\"candidates\":[{\"name\":\"nsga2\""),
            "{line}"
        );
        let summary = text.lines().last().unwrap();
        assert!(summary.contains("\"lowfi_runs\":96"), "{summary}");
        assert!(summary.contains("\"lowfi_time_s\":42.5"), "{summary}");
    }

    #[test]
    fn json_floats_print_shortest_roundtrip() {
        assert_eq!(json_f64(90.0), "90");
        assert_eq!(json_f64(0.1), "0.1");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
