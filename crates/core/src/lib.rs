//! # dovado
//!
//! A Rust reproduction of **Dovado** (Paletti, Conficconi, Santambrogio —
//! IPDPSW 2021): an open-source CAD tool for design automation and design
//! space exploration of highly parametrizable RTL modules on FPGAs.
//!
//! Two flows, as in the paper's Fig. 1:
//!
//! * **Design automation** — evaluate one design point (or a given set):
//!   parse the VHDL/(System)Verilog interface, wrap the module in a
//!   sandboxing *box* (Listing 1), generate TCL script frames, run the
//!   (simulated) Vivado, and scrape utilization + `Fmax = 1000/(T − WNS)`
//!   from the reports.
//! * **Design space exploration** — NSGA-II over an integer parameter
//!   space (with optional power-of-two restrictions), optionally guarded
//!   by the Nadaraya-Watson fitness approximation with the adaptive-Γ
//!   control model, returning the non-dominated configuration set.
//!
//! ```
//! use dovado::casestudies::corundum;
//! use dovado::{DesignPoint};
//!
//! let cs = corundum::case_study();
//! let tool = cs.dovado().unwrap();
//! let eval = tool.evaluate_point(&DesignPoint::from_pairs(&[
//!     ("OP_TABLE_SIZE", 16),
//!     ("QUEUE_INDEX_WIDTH", 4),
//!     ("PIPELINE", 3),
//! ])).unwrap();
//! assert!(eval.fmax_mhz > 100.0);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod bayes;
pub mod boxing;
pub mod casestudies;
pub mod cli;
pub mod csv;
pub mod dse;
pub mod engine;
pub mod error;
pub mod fitness;
pub mod flow;
pub mod frames;
pub mod metrics;
pub mod obs;
pub mod persist;
pub mod point;
pub mod results;
pub mod serve;
pub mod space;
pub mod trace;
pub mod worker;

pub use backend::{
    MockBackend, RemoteBackend, SimBackend, ToolBackend, ToolSession, WorkerLifecycle,
};
pub use bayes::BayesExplorer;
pub use boxing::{generate_box, BoxedDesign, BOX_CLOCK, BOX_INSTANCE, BOX_TOP};
pub use dse::{Dovado, DseConfig, SelectionRecord, SurrogateConfig, EXHAUSTIVE_AUTO_LIMIT};
pub use engine::{validate_jobs, validate_workers, EvalEngine, Schedule};
pub use error::{DovadoError, DovadoResult, ErrorClass};
pub use fitness::{DseProblem, FitnessStats};
pub use flow::{EvalConfig, Evaluator, FlowStep, HdlSource, RetryPolicy};
pub use metrics::{fmax_mhz, Evaluation, Metric, MetricSet};
pub use obs::{
    fold_totals, write_jsonl, CandidateScore, EventBus, EventKey, EventSink, MemorySink, ObsEvent,
    SpineSnapshot, Totals, EVENT_SCHEMA_VERSION,
};
pub use persist::{PersistConfig, JOURNAL_FORMAT_VERSION};
pub use point::DesignPoint;
pub use results::{ascii_scatter, point_label, DseReport, ParetoEntry, PointResult};
pub use serve::{ServeConfig, Server};
pub use space::{Domain, FreeParameter, ParameterSpace};
pub use trace::{AttemptOutcome, FlowEvent, FlowTrace, TraceSummary};
