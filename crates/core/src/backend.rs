//! The tool-execution boundary.
//!
//! This module is the **only** place `dovado` (core) imports tool-execution
//! types from `dovado-eda`: the backend trait pair and the two shipped
//! implementations. Everything above it — the evaluation engine, the flow
//! facade, fitness, DSE, CLI — talks to tools exclusively through
//! [`ToolBackend`] / [`ToolSession`], so a new backend (remote Vivado, a
//! sharded farm, a replay log) plugs in here without touching any caller.
//! `tests/backend_conformance.rs` enforces the boundary at the source
//! level: no other core module may name concrete simulator types.

pub use dovado_eda::backend::{MockBackend, SimBackend, ToolBackend, ToolSession};
pub use dovado_eda::remote::{RemoteBackend, WorkerLifecycle};
