//! The `dovado` command-line tool. All logic lives in [`dovado::cli`];
//! this binary only bridges process arguments and stdout.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    let code = dovado::cli::run(&args, &mut out);
    print!("{out}");
    std::process::exit(code);
}
