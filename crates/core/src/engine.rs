//! The unified evaluation engine.
//!
//! One pipeline owns every per-point evaluation in Dovado, regardless of
//! which layer asked for it (`Evaluator::evaluate`, a fitness batch, an
//! exploration). The pipeline is a stack of middleware layers, outermost
//! first:
//!
//! 1. **Store** (`StoreLayer`) — persistent-store lookup before any tool
//!    attempt; a hit is a bitwise substitute for the run (zero attempts,
//!    zero simulated time), a fresh success is committed back.
//! 2. **Retry** (`RetryLayer`) — retry with capped backoff for transient
//!    failures, the timeout-degradation state machine
//!    (`DegradePolicy`), checkpoint-corruption fallback to the
//!    non-incremental flow, and per-attempt emission on the
//!    observability spine ([`crate::obs`]).
//! 3. **Attempt** (`AttemptLayer`) — one tool session per attempt:
//!    script generation from the TCL frames, execution through the
//!    [`ToolBackend`] seam, and report scraping.
//!
//! All accounting — time, runs, retries, store hits — is *derived* from
//! the spine's event stream; no layer mutates a counter directly.
//!
//! Scheduling (serial vs rayon-parallel, [`Schedule`]) and persistence
//! (none vs an attached [`EvalStore`]) are engine *configuration*, not
//! separate code paths — which is what keeps parallel == sequential and
//! resume bitwise-identical across backends.

use crate::backend::{SimBackend, ToolBackend, ToolSession};
use crate::boxing::{generate_box, BOX_CLOCK, BOX_TOP};
use crate::error::{DovadoError, DovadoResult};
use crate::flow::{EvalConfig, FlowStep, HdlSource, RetryPolicy};
use crate::frames::{fill, read_sources_script, SourceEntry, IMPL_FRAME, SYNTH_FRAME};
use crate::metrics::{fmax_mhz, Evaluation};
use crate::obs::{EventBus, EventKey, ObsEvent, SpineSnapshot};
use crate::point::DesignPoint;
use crate::trace::{AttemptOutcome, FlowEvent, TraceSummary};
use dovado_eda::{report, EdaError, EvalKey, EvalStore, FaultInjector};
use dovado_hdl::ModuleInterface;
use parking_lot::Mutex;
use std::sync::Arc;

/// How [`EvalEngine::evaluate_many`] schedules its points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// One point after another on the calling thread.
    #[default]
    Serial,
    /// Fan out across the ambient rayon pool (the CLI sizes it from
    /// `--jobs`). Results are returned in input order and are bitwise
    /// those of a serial run.
    Parallel,
    /// Work-stealing dispatch for a worker fleet: `workers` dispatcher
    /// threads claim pending points through a shared atomic cursor, so an
    /// idle dispatcher (and the remote worker it leases) always pulls the
    /// next pending point — one straggling place-and-route run never
    /// blocks the batch. Pairs with a
    /// [`crate::backend::RemoteBackend`]-backed engine, whose session
    /// pool holds the actual worker processes; results are returned in
    /// input order and are bitwise those of a serial run.
    Distributed {
        /// Number of concurrent dispatchers (sized to the worker fleet).
        workers: usize,
    },
}

impl Schedule {
    /// The historical boolean spelling used across the fitness layer.
    pub fn from_parallel_flag(parallel: bool) -> Schedule {
        if parallel {
            Schedule::Parallel
        } else {
            Schedule::Serial
        }
    }
}

/// Shared validator behind [`validate_jobs`] and [`validate_workers`]:
/// zero-size pools are configuration errors, not panics.
fn validate_pool_size(flag: &str, n: usize) -> DovadoResult<usize> {
    if n == 0 {
        return Err(DovadoError::Config(format!(
            "{flag}: must be at least 1 (a zero-worker pool cannot run anything)"
        )));
    }
    Ok(n)
}

/// Validates a worker-thread count before it reaches the thread-pool
/// builder. Zero workers cannot make progress (and asks the vendored
/// rayon shim for an empty pool), so it is a configuration error, not a
/// panic. Applied on every path that sizes a pool — CLI `--jobs` and
/// programmatic `DseConfig::jobs` alike.
pub fn validate_jobs(jobs: usize) -> DovadoResult<usize> {
    validate_pool_size("--jobs", jobs)
}

/// Validates a distributed fleet size ([`Schedule::Distributed`], CLI
/// `--workers`, programmatic `DseConfig::workers`) with the same rule as
/// [`validate_jobs`].
pub fn validate_workers(workers: usize) -> DovadoResult<usize> {
    validate_pool_size("--workers", workers)
}

/// Validates an evaluation-store capacity bound (CLI `--store-capacity`,
/// programmatic `PersistConfig::store_capacity`, serve config). `None`
/// is the explicit unbounded default; `Some(0)` could cache nothing and
/// is a configuration error under the same convention as
/// [`validate_jobs`] / [`validate_workers`].
pub fn validate_store_capacity(capacity: Option<usize>) -> DovadoResult<Option<usize>> {
    if capacity == Some(0) {
        return Err(DovadoError::Config(
            "--store-capacity: must be at least 1 (a zero-entry store cannot cache anything; \
             omit the flag for unbounded)"
                .into(),
        ));
    }
    Ok(capacity)
}

/// Everything an attempt needs to generate its scripts.
struct FlowContext {
    sources: Arc<Vec<HdlSource>>,
    /// Per-source "declares a package" flags, same order as `sources`.
    package_flags: Arc<Vec<bool>>,
    module: Arc<ModuleInterface>,
    config: EvalConfig,
}

/// Flow state shared across the engine's clones. Time and run counters
/// live on the observability spine now ([`EventBus`] totals); the only
/// remaining mutable cell is the incremental-flow checkpoint flag.
#[derive(Clone)]
struct Ledger {
    /// Whether any prior run left a synthesis checkpoint (enables the
    /// incremental read on subsequent scripts).
    has_checkpoint: Arc<Mutex<bool>>,
}

impl Ledger {
    fn new() -> Ledger {
        Ledger {
            has_checkpoint: Arc::new(Mutex::new(false)),
        }
    }
}

/// What one tool attempt produced, for the retry layer's bookkeeping.
struct AttemptReport {
    result: DovadoResult<Evaluation>,
    /// Simulated seconds this attempt burned (already charged).
    tool_time_s: f64,
    /// Whether the tool answered from an exact checkpoint.
    cached: bool,
}

/// Pipeline bottom: one tool session per attempt, scripts in, metrics out.
#[derive(Clone)]
struct AttemptLayer {
    ctx: Arc<FlowContext>,
    backend: Arc<dyn ToolBackend>,
    ledger: Ledger,
}

impl AttemptLayer {
    fn run(&self, point: &DesignPoint, step: FlowStep, incremental: bool) -> AttemptReport {
        let mut session = self.backend.open_session();
        let result = self.run_flow(session.as_mut(), point, step, incremental);
        let tool_time_s = session.elapsed_s();
        let cached = session.used_exact_checkpoint();
        if result.is_ok() {
            *self.ledger.has_checkpoint.lock() = true;
        }
        AttemptReport {
            result,
            tool_time_s,
            cached,
        }
    }

    /// Script generation, tool execution, and report scraping for one
    /// attempt.
    fn run_flow(
        &self,
        session: &mut (dyn ToolSession + Send),
        point: &DesignPoint,
        step: FlowStep,
        incremental: bool,
    ) -> DovadoResult<Evaluation> {
        let config = &self.ctx.config;
        let boxed = generate_box(&self.ctx.module, point)?;

        // Write user sources + the generated box into the tool filesystem.
        let mut entries = Vec::new();
        for (src, &has_packages) in self.ctx.sources.iter().zip(self.ctx.package_flags.iter()) {
            let path = format!("src/{}", src.name);
            session.write_file(&path, src.content.clone());
            entries.push(SourceEntry {
                path,
                language: src.language,
                library: src.library.clone(),
                has_packages,
            });
        }
        let box_path = format!("src/{}", boxed.file_name);
        session.write_file(&box_path, boxed.source.clone());
        entries.push(SourceEntry {
            path: box_path,
            language: boxed.language,
            library: None,
            has_packages: false,
        });

        // Incremental flow: reuse the previous synthesis checkpoint when
        // one exists (Vivado reads it with `read_checkpoint -incremental`).
        // `incremental` already folds in the checkpoint basis, which the
        // dispatch layer snapshots *once per batch* — live ledger reads
        // here would make the decision depend on which concurrently
        // running point finished first, and the trace would no longer be
        // byte-identical across serial, rayon, and distributed schedules.
        let incremental_line = if incremental {
            // The checkpoint file must exist in this session's filesystem.
            session.write_file("post_synth.dcp", "dcp:incremental-basis".into());
            "read_checkpoint -incremental post_synth.dcp".to_string()
        } else {
            String::new()
        };

        let synth_script = fill(
            SYNTH_FRAME,
            &[
                ("PROJECT", "dovado"),
                ("PART", &config.part),
                ("READ_SOURCES", read_sources_script(&entries).trim_end()),
                ("TOP", BOX_TOP),
                ("INCREMENTAL", &incremental_line),
                ("SYNTH_DIRECTIVE", &config.synth_directive),
                ("PERIOD", &format!("{:.3}", config.target_period_ns)),
                ("CLOCK", BOX_CLOCK),
                ("UTIL_RPT", "util_synth.rpt"),
                ("TIMING_RPT", "timing_synth.rpt"),
                ("POWER_RPT", "power_synth.rpt"),
                ("SYNTH_DCP", "post_synth.dcp"),
            ],
        )?;
        session.eval(&synth_script)?;

        let (util_path, timing_path, power_path) = match step {
            FlowStep::Synthesis => ("util_synth.rpt", "timing_synth.rpt", "power_synth.rpt"),
            FlowStep::Implementation => {
                let impl_script = fill(
                    IMPL_FRAME,
                    &[
                        ("IMPL_DIRECTIVE", &config.impl_directive),
                        ("UTIL_RPT", "util_impl.rpt"),
                        ("TIMING_RPT", "timing_impl.rpt"),
                        ("POWER_RPT", "power_impl.rpt"),
                        ("IMPL_DCP", "post_route.dcp"),
                    ],
                )?;
                session.eval(&impl_script)?;
                ("util_impl.rpt", "timing_impl.rpt", "power_impl.rpt")
            }
        };

        // Scrape the reports — the same text protocol the real tool uses.
        // A missing or unparseable report means the tool died mid-write
        // (with the simulated tool, only injected faults cause this), so
        // both classify as transient, not as properties of the design.
        let util_text = session
            .read_file(util_path)
            .ok_or_else(|| DovadoError::MissingReport(util_path.to_string()))?;
        let utilization = report::parse_utilization_report(util_text)
            .map_err(|e| DovadoError::ReportCorrupt(format!("{util_path}: {e}")))?;
        let timing_text = session
            .read_file(timing_path)
            .ok_or_else(|| DovadoError::MissingReport(timing_path.to_string()))?;
        let wns_ns = report::parse_wns(timing_text)
            .map_err(|e| DovadoError::ReportCorrupt(format!("{timing_path}: {e}")))?;
        let period_ns = report::parse_period(timing_text)
            .map_err(|e| DovadoError::ReportCorrupt(format!("{timing_path}: {e}")))?;
        let fmax = fmax_mhz(period_ns, wns_ns)
            .ok_or_else(|| DovadoError::NonPhysicalTiming(format!("T={period_ns} WNS={wns_ns}")))?;
        let power_text = session
            .read_file(power_path)
            .ok_or_else(|| DovadoError::MissingReport(power_path.to_string()))?;
        let power_mw = dovado_eda::power::parse_power_mw(power_text).ok_or_else(|| {
            DovadoError::ReportCorrupt(format!("{power_path}: no total power figure"))
        })?;

        Ok(Evaluation {
            utilization,
            wns_ns,
            period_ns,
            fmax_mhz: fmax,
            power_mw,
            tool_time_s: session.elapsed_s(),
        })
    }
}

/// The timeout-degradation state machine, per point: after the configured
/// number of timeouts, remaining attempts fall back from
/// [`FlowStep::Implementation`] to [`FlowStep::Synthesis`] (post-synth
/// metrics are optimistic but beat a penalty vector).
struct DegradePolicy {
    after: Option<u32>,
    timeouts: u32,
}

impl DegradePolicy {
    fn new(policy: &RetryPolicy) -> DegradePolicy {
        DegradePolicy {
            after: policy.degrade_after_timeouts,
            timeouts: 0,
        }
    }

    /// Observes a transient failure and degrades `step` when the timeout
    /// budget is spent.
    fn observe(&mut self, err: &DovadoError, step: &mut FlowStep) {
        if !err.is_timeout() {
            return;
        }
        self.timeouts += 1;
        if let Some(limit) = self.after {
            if self.timeouts >= limit && *step == FlowStep::Implementation {
                *step = FlowStep::Synthesis;
            }
        }
    }
}

/// Pipeline middle: retry with capped backoff, degradation, checkpoint
/// fallback, and per-attempt emission on the spine.
///
/// Attempts for the point dispatched at sequence `seq` are keyed
/// `(seq, attempt)` — canonical order is decided by dispatch order, not
/// by which worker thread finishes first.
#[derive(Clone)]
struct RetryLayer {
    bus: EventBus,
    ledger: Ledger,
    next: AttemptLayer,
}

impl RetryLayer {
    fn evaluate(
        &self,
        point: &DesignPoint,
        label: &str,
        seq: u64,
        basis: bool,
    ) -> DovadoResult<Evaluation> {
        let config = &self.next.ctx.config;
        let policy = &config.retry;
        let max_attempts = policy.max_attempts.max(1);
        let mut step = config.step;
        let mut incremental = config.incremental && basis;
        let mut degrade = DegradePolicy::new(policy);
        let mut last_err: Option<DovadoError> = None;

        for attempt in 1..=max_attempts {
            // The step/incremental the attempt actually ran with — the
            // loop may change them below for the *next* attempt.
            let (used_step, used_incremental) = (step, incremental);
            let report = self.next.run(point, step, incremental);
            let key = EventKey { seq, sub: attempt };
            match report.result {
                Ok(evaluation) => {
                    self.bus.emit(
                        key,
                        ObsEvent::Attempt(FlowEvent {
                            point: label.to_string(),
                            attempt,
                            step: used_step,
                            outcome: AttemptOutcome::Success,
                            tool_time_s: report.tool_time_s,
                            backoff_s: 0.0,
                            incremental: used_incremental,
                            cached: report.cached,
                        }),
                    );
                    return Ok(evaluation);
                }
                Err(e) if e.is_transient() && attempt < max_attempts => {
                    degrade.observe(&e, &mut step);
                    if matches!(&e, DovadoError::Eda(EdaError::Checkpoint(_))) {
                        // The incremental basis is suspect — rebuild from
                        // scratch on the remaining attempts.
                        incremental = false;
                        *self.ledger.has_checkpoint.lock() = false;
                    }
                    let backoff = policy.backoff_s(attempt);
                    self.bus.emit(
                        key,
                        ObsEvent::Attempt(FlowEvent {
                            point: label.to_string(),
                            attempt,
                            step: used_step,
                            outcome: AttemptOutcome::TransientFailure(e.to_string()),
                            tool_time_s: report.tool_time_s,
                            backoff_s: backoff,
                            incremental: used_incremental,
                            cached: false,
                        }),
                    );
                    last_err = Some(e);
                }
                Err(e) => {
                    let outcome = if e.is_transient() {
                        AttemptOutcome::TransientFailure(e.to_string())
                    } else {
                        AttemptOutcome::PermanentFailure(e.to_string())
                    };
                    self.bus.emit(
                        key,
                        ObsEvent::Attempt(FlowEvent {
                            point: label.to_string(),
                            attempt,
                            step: used_step,
                            outcome,
                            tool_time_s: report.tool_time_s,
                            backoff_s: 0.0,
                            incremental: used_incremental,
                            cached: false,
                        }),
                    );
                    return if e.is_transient() {
                        Err(DovadoError::RetriesExhausted {
                            attempts: attempt,
                            last: Box::new(e),
                        })
                    } else {
                        Err(e)
                    };
                }
            }
        }
        // Unreachable: the final attempt either returned Ok or Err above.
        Err(DovadoError::RetriesExhausted {
            attempts: max_attempts,
            last: Box::new(last_err.expect("loop ran at least once")),
        })
    }
}

/// Pipeline top: persistent-store lookup and commit.
#[derive(Clone)]
struct StoreLayer {
    /// Persistent evaluation store plus the engine's base key (sources +
    /// top + config + backend); `None` = always run the tool.
    store: Option<(EvalStore, EvalKey)>,
    bus: EventBus,
    next: RetryLayer,
}

impl StoreLayer {
    fn evaluate(&self, point: &DesignPoint, seq: u64, basis: bool) -> DovadoResult<Evaluation> {
        let label = point.as_assignments();

        // A hit is a bitwise substitute for the tool run (evaluations are
        // pure functions of point + config + backend), so it returns
        // before any attempt is made or time is charged. An undecodable
        // entry reads as a miss and is overwritten below.
        let store_key = self
            .store
            .as_ref()
            .map(|(store, base)| (store, base.extend(&[&label])));
        if let Some((store, key)) = &store_key {
            if let Some(eval) = store
                .get(key)
                .and_then(|payload| crate::persist::decode_evaluation(&payload))
            {
                self.bus.emit(
                    EventKey { seq, sub: 0 },
                    ObsEvent::StoreHit {
                        point: label.clone(),
                    },
                );
                return Ok(eval);
            }
        }
        let evaluation = self.next.evaluate(point, &label, seq, basis)?;
        if let Some((store, key)) = &store_key {
            // Best-effort: a failed write only costs a future re-run,
            // never a wrong answer. Failures are never stored.
            let _ = store.put(key, &crate::persist::encode_evaluation(&evaluation));
        }
        Ok(evaluation)
    }
}

/// The engine: the layered pipeline plus its shared context and ledgers.
///
/// Cheap to clone and thread-safe — clones share the trace, the time/run
/// ledgers, the backend (and with it the tool-level checkpoint store and
/// fault stream), and the attached persistent store.
#[derive(Clone)]
pub struct EvalEngine {
    pipeline: StoreLayer,
}

impl EvalEngine {
    /// Parses the sources, locates `top_module`, and builds an engine on
    /// the default simulator backend (seeded and fault-injected per the
    /// config).
    pub fn new(
        sources: Vec<HdlSource>,
        top_module: &str,
        config: EvalConfig,
    ) -> DovadoResult<EvalEngine> {
        let backend = Arc::new(SimBackend::with_faults(config.seed, config.faults.clone()));
        EvalEngine::with_backend(sources, top_module, config, backend)
    }

    /// Like [`EvalEngine::new`], but evaluating through the given backend.
    /// The config's fault plan is ignored in favor of the backend's own
    /// injector (the backend owns the fault stream).
    pub fn with_backend(
        sources: Vec<HdlSource>,
        top_module: &str,
        config: EvalConfig,
        backend: Arc<dyn ToolBackend>,
    ) -> DovadoResult<EvalEngine> {
        let mut found: Option<ModuleInterface> = None;
        let mut package_flags = Vec::with_capacity(sources.len());
        for src in &sources {
            let (file, diags) = dovado_hdl::parse_source(src.language, &src.content)
                .map_err(|e| DovadoError::Parse(format!("{}: {e}", src.name)))?;
            if diags.has_errors() {
                return Err(DovadoError::Parse(format!(
                    "{}: {}",
                    src.name,
                    diags
                        .iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                )));
            }
            package_flags.push(!file.packages.is_empty());
            if let Some(m) = file.module(top_module) {
                found = Some(m.clone());
            }
        }
        let module = found.ok_or_else(|| DovadoError::UnknownModule(top_module.to_string()))?;
        if config.target_period_ns <= 0.0 {
            return Err(DovadoError::Config(format!(
                "target period {} must be positive",
                config.target_period_ns
            )));
        }
        let ctx = Arc::new(FlowContext {
            sources: Arc::new(sources),
            package_flags: Arc::new(package_flags),
            module: Arc::new(module),
            config,
        });
        let ledger = Ledger::new();
        let bus = EventBus::new();
        Ok(EvalEngine {
            pipeline: StoreLayer {
                store: None,
                bus: bus.clone(),
                next: RetryLayer {
                    bus,
                    ledger: ledger.clone(),
                    next: AttemptLayer {
                        ctx,
                        backend,
                        ledger,
                    },
                },
            },
        })
    }

    /// Builds a low-fidelity sibling engine for portfolio racing: the same
    /// parsed sources, module and *backend instance*, but with the flow
    /// truncated to `step` (synthesis-only is the simulator's degraded
    /// mode — cheap, correlated signal before paying for full
    /// place-and-route). The probe gets a fresh event spine and a fresh
    /// incremental-flow ledger and never attaches a store, so probe
    /// evaluations are invisible to the parent's canonical trace and
    /// persistent store; the caller decides what (if anything) to charge
    /// back — the portfolio selector folds the probe totals into one
    /// `SelectorDecision` event.
    pub fn probe_with_step(&self, step: FlowStep) -> EvalEngine {
        let ctx = &self.pipeline.next.next.ctx;
        let probe_ctx = Arc::new(FlowContext {
            sources: ctx.sources.clone(),
            package_flags: ctx.package_flags.clone(),
            module: ctx.module.clone(),
            config: EvalConfig {
                step,
                ..ctx.config.clone()
            },
        });
        let ledger = Ledger::new();
        let bus = EventBus::new();
        EvalEngine {
            pipeline: StoreLayer {
                store: None,
                bus: bus.clone(),
                next: RetryLayer {
                    bus,
                    ledger: ledger.clone(),
                    next: AttemptLayer {
                        ctx: probe_ctx,
                        backend: self.pipeline.next.next.backend.clone(),
                        ledger,
                    },
                },
            },
        }
    }

    /// Attaches a persistent evaluation store as the pipeline's outermost
    /// layer. Subsequent evaluations first look up the point's
    /// content-addressed key — a hit returns the stored metrics bitwise,
    /// with zero tool runs, zero attempts and zero simulated time; a
    /// fresh success is written back. The key covers the sources, top
    /// module, full [`EvalConfig`] and the backend name, so any input
    /// change invalidates the store automatically.
    ///
    /// Evictions from a capacity-bounded store surface as
    /// [`ObsEvent::StoreEvicted`] on the spine's side channel (never the
    /// canonical stream — see [`EventBus::emit_store_evicted`]).
    pub fn attach_store(&mut self, store: EvalStore) {
        let base = self.content_key();
        self.attach_store_with_base(store, base);
    }

    /// [`attach_store`](Self::attach_store) with the store identity
    /// additionally scoped by an arbitrary string, folded into the
    /// content key. A store owned by one run never needs this, but a
    /// store *shared* across runs does when the backend name alone
    /// under-identifies the answers: [`ToolBackend::name`] deliberately
    /// omits the construction seed, so `mock:7` and `mock:8` collide on
    /// the plain content key while producing different metrics. The
    /// `dovado serve` daemon scopes every job's lookups by the full
    /// backend spec for exactly this reason.
    pub fn attach_store_scoped(&mut self, store: EvalStore, scope: &str) {
        let base = EvalKey::from_parts(&[&self.content_key().hex(), scope]);
        self.attach_store_with_base(store, base);
    }

    fn attach_store_with_base(&mut self, store: EvalStore, base: EvalKey) {
        let bus = self.pipeline.bus.clone();
        store.set_eviction_hook(std::sync::Arc::new(move |hex: &str| {
            bus.emit_store_evicted(ObsEvent::StoreEvicted {
                key: hex.to_string(),
            });
        }));
        self.pipeline.store = Some((store, base));
    }

    /// The engine's 128-bit content identity: a stable hash of the
    /// sources, top module, full [`EvalConfig`] and backend name. Store
    /// keys and the journal fingerprint both build on it.
    pub fn content_key(&self) -> EvalKey {
        let ctx = &self.pipeline.next.next.ctx;
        crate::persist::evaluator_key(
            &ctx.sources,
            &ctx.module.name,
            &ctx.config,
            self.backend_name(),
        )
    }

    /// The backend's stable identifier.
    pub fn backend_name(&self) -> &str {
        self.pipeline.next.next.backend.name()
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&EvalStore> {
        self.pipeline.store.as_ref().map(|(s, _)| s)
    }

    /// The backend's shared fault injector, if fault injection is active.
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.pipeline.next.next.backend.injector()
    }

    /// The engine's observability spine. Every accounting signal —
    /// attempts, store hits, charged time, resume splices, plus the
    /// exploration-level events the DSE layer emits — lands here.
    pub fn spine(&self) -> &EventBus {
        &self.pipeline.bus
    }

    /// A consistent snapshot of the spine (canonical events + exact
    /// totals), suitable for sinks such as [`crate::obs::write_jsonl`].
    pub fn snapshot(&self) -> SpineSnapshot {
        self.pipeline.bus.snapshot()
    }

    /// Charges simulated seconds straight to the tool-time ledger by
    /// emitting an [`ObsEvent::TimeCharged`] on the spine.
    pub fn charge_time(&self, seconds: f64) {
        self.pipeline
            .bus
            .emit_next(ObsEvent::TimeCharged { seconds });
    }

    /// Splices journaled totals into the spine on `--resume`: the caller
    /// passes the *deficit* between the journal and this engine's live
    /// totals, so same-process resumes (which already observed every
    /// attempt) splice zero and nothing is double-counted.
    pub fn record_resume(&self, summary: TraceSummary, runs: u64, tool_time_s: f64) {
        self.pipeline.bus.emit_next(ObsEvent::Resume {
            summary,
            runs,
            tool_time_s,
        });
    }

    /// The parsed interface of the module under evaluation.
    pub fn module(&self) -> &ModuleInterface {
        &self.pipeline.next.next.ctx.module
    }

    /// The evaluation configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.pipeline.next.next.ctx.config
    }

    /// Cumulative simulated tool seconds, including failed attempts and
    /// retry backoff — a view over the spine's folded totals.
    pub fn total_tool_time(&self) -> f64 {
        self.pipeline.bus.totals().tool_time_s
    }

    /// Number of successful tool invocations so far — a view over the
    /// spine's folded totals.
    pub fn total_runs(&self) -> u64 {
        self.pipeline.bus.totals().runs
    }

    /// Snapshot of the retained per-attempt events in canonical order —
    /// the attempt-typed slice of the spine.
    pub fn events(&self) -> Vec<FlowEvent> {
        self.pipeline
            .bus
            .events()
            .into_iter()
            .filter_map(|(_, event)| match event {
                ObsEvent::Attempt(e) => Some(e),
                _ => None,
            })
            .collect()
    }

    /// Whole-run trace counters (attempts, retries, failures by class,
    /// cache hits, backoff charged), folded from the event stream.
    pub fn trace_summary(&self) -> TraceSummary {
        self.pipeline.bus.totals().summary
    }

    /// Evaluates one design point through the full pipeline.
    pub fn evaluate(&self, point: &DesignPoint) -> DovadoResult<Evaluation> {
        let seq = self.pipeline.bus.alloc(1);
        let basis = self.checkpoint_basis();
        self.pipeline.evaluate(point, seq, basis)
    }

    /// Snapshot of the incremental-flow checkpoint basis, taken once per
    /// dispatch. Every point in a batch sees the same basis, so the
    /// decision is a function of batch order — not of which concurrently
    /// running evaluation happened to finish first — and the trace stays
    /// byte-identical across serial, rayon, and distributed schedules.
    fn checkpoint_basis(&self) -> bool {
        *self.pipeline.next.ledger.has_checkpoint.lock()
    }

    /// Evaluates many points per `schedule` (each evaluation runs its own
    /// tool session; the backend's checkpoint store is shared, matching
    /// how Dovado parallelizes real Vivado runs). Results come back in
    /// input order either way.
    ///
    /// A contiguous block of spine sequence numbers is reserved in input
    /// order *before* any fan-out, so the event stream's canonical order
    /// is identical for serial and parallel schedules.
    pub fn evaluate_many(
        &self,
        points: &[DesignPoint],
        schedule: Schedule,
    ) -> Vec<DovadoResult<Evaluation>> {
        let start = self.pipeline.bus.alloc(points.len() as u64);
        let basis = self.checkpoint_basis();
        let indexed: Vec<(u64, &DesignPoint)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (start + i as u64, p))
            .collect();
        match schedule {
            Schedule::Parallel => {
                use rayon::prelude::*;
                indexed
                    .par_iter()
                    .map(|&(seq, p)| self.pipeline.evaluate(p, seq, basis))
                    .collect()
            }
            Schedule::Serial => indexed
                .iter()
                .map(|&(seq, p)| self.pipeline.evaluate(p, seq, basis))
                .collect(),
            Schedule::Distributed { workers } => self.evaluate_stealing(&indexed, workers, basis),
        }
    }

    /// The work-stealing dispatch behind [`Schedule::Distributed`]: the
    /// atomic cursor over the pre-sequenced points *is* the queue — each
    /// of the `workers` dispatcher threads claims the next pending point
    /// the moment it goes idle, and results land in their input-order
    /// slots. Sequence numbers were allocated before fan-out, so the
    /// canonical event stream is bitwise the serial one.
    fn evaluate_stealing(
        &self,
        indexed: &[(u64, &DesignPoint)],
        workers: usize,
        basis: bool,
    ) -> Vec<DovadoResult<Evaluation>> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = indexed.len();
        let dispatchers = workers.max(1).min(n.max(1));
        if dispatchers <= 1 {
            return indexed
                .iter()
                .map(|&(seq, p)| self.pipeline.evaluate(p, seq, basis))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<DovadoResult<Evaluation>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..dispatchers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (seq, p) = indexed[i];
                    *slots[i].lock() = Some(self.pipeline.evaluate(p, seq, basis));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every index claimed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MockBackend;
    use dovado_hdl::Language;

    const FIFO_SV: &str = "module fifo_v3 #(parameter DEPTH = 8)\
                           (input logic clk_i); endmodule";

    fn sources() -> Vec<HdlSource> {
        vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)]
    }

    #[test]
    fn jobs_zero_is_a_config_error_not_a_panic() {
        assert!(matches!(validate_jobs(0), Err(DovadoError::Config(_))));
        assert_eq!(validate_jobs(1).unwrap(), 1);
        assert_eq!(validate_jobs(64).unwrap(), 64);
    }

    #[test]
    fn schedule_maps_the_parallel_flag() {
        assert_eq!(Schedule::from_parallel_flag(false), Schedule::Serial);
        assert_eq!(Schedule::from_parallel_flag(true), Schedule::Parallel);
    }

    #[test]
    fn engine_runs_on_a_mock_backend() {
        let engine = EvalEngine::with_backend(
            sources(),
            "fifo_v3",
            EvalConfig::default(),
            Arc::new(MockBackend::new(5)),
        )
        .unwrap();
        let p = DesignPoint::from_pairs(&[("DEPTH", 64)]);
        let a = engine.evaluate(&p).unwrap();
        let b = engine.evaluate(&p).unwrap();
        assert_eq!(a.wns_ns.to_bits(), b.wns_ns.to_bits());
        assert!(a.fmax_mhz > 0.0 && a.power_mw > 0.0);
        assert_eq!(engine.backend_name(), "mock");
        assert_eq!(engine.total_runs(), 2);
    }

    #[test]
    fn backend_name_separates_content_keys() {
        let sim = EvalEngine::new(sources(), "fifo_v3", EvalConfig::default()).unwrap();
        let mock = EvalEngine::with_backend(
            sources(),
            "fifo_v3",
            EvalConfig::default(),
            Arc::new(MockBackend::new(5)),
        )
        .unwrap();
        assert_ne!(sim.content_key(), mock.content_key());
    }
}
