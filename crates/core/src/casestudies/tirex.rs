//! TiReX case study (§IV-D): the VHDL domain-specific architecture for
//! regular-expression matching.
//!
//! Explored parameters: the merged datapath parallelism `NCLUSTER` ("two
//! datapath parameters … that we constrain to be a unique parallelism
//! parameter"), the control unit's `STACK_SIZE`, and the instruction/data
//! memory sizes — all powers of two. The paper runs the same exploration
//! on a 16 nm ZU3EG and a 28 nm XC7K70T to expose technology impact
//! (~550 vs ~190 MHz).

use super::CaseStudy;
use crate::metrics::MetricSet;
use crate::space::{Domain, ParameterSpace};
use dovado_hdl::catalog::CatalogSource;
use dovado_hdl::Language;

/// TiReX top source (interface-faithful subset).
pub const TIREX_TOP_VHD: &str = r#"-- tirex_top: tiled regular expression matching architecture.
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity tirex_top is
  generic (
    -- Unified datapath parallelism (core count x instruction width).
    NCLUSTER   : natural := 1;
    -- Context-switch stack depth of the control unit.
    STACK_SIZE : natural := 16;
    -- Instruction memory size (units of 512 x 64-bit entries).
    IMEM_SIZE  : natural := 8;
    -- Data memory size (units of 512 x 64-bit entries).
    DMEM_SIZE  : natural := 8
  );
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    -- Input character stream.
    char_i     : in  std_logic_vector(7 downto 0);
    char_vld_i : in  std_logic;
    -- Instruction load interface.
    instr_i    : in  std_logic_vector(63 downto 0);
    instr_we_i : in  std_logic;
    -- Match result.
    match_o    : out std_logic;
    match_id_o : out std_logic_vector(15 downto 0)
  );
end entity tirex_top;

architecture rtl of tirex_top is
  signal dispatch_valid : std_logic;
  signal active_set     : std_logic_vector(NCLUSTER-1 downto 0);
begin
  dispatch: process (clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        dispatch_valid <= '0';
      else
        dispatch_valid <= char_vld_i;
      end if;
    end if;
  end process dispatch;
end architecture rtl;
"#;

/// The packaged case study (default part: the paper's ZU3EG target).
pub fn case_study() -> CaseStudy {
    CaseStudy::from_tree(
        "tirex",
        vec![CatalogSource::new(
            "tirex_top.vhd",
            Language::Vhdl,
            TIREX_TOP_VHD,
        )],
        ParameterSpace::new()
            .with(
                "NCLUSTER",
                Domain::PowerOfTwo {
                    min_exp: 0,
                    max_exp: 3,
                },
            )
            .with(
                "STACK_SIZE",
                Domain::PowerOfTwo {
                    min_exp: 0,
                    max_exp: 8,
                },
            )
            .with(
                "IMEM_SIZE",
                Domain::PowerOfTwo {
                    min_exp: 3,
                    max_exp: 6,
                },
            )
            .with(
                "DMEM_SIZE",
                Domain::PowerOfTwo {
                    min_exp: 3,
                    max_exp: 6,
                },
            ),
        "xczu3eg-sbva484-1-e",
        MetricSet::area_frequency(),
    )
}

/// The Kintex-7 part used for the paper's second TiReX run (Fig. 7).
pub const XC7K_PART: &str = "xc7k70tfbv676-1";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::DesignPoint;

    #[test]
    fn source_parses_with_expected_interface() {
        let (f, d) = dovado_hdl::parse_source(Language::Vhdl, TIREX_TOP_VHD).unwrap();
        assert!(!d.has_errors(), "{:?}", d.iter().collect::<Vec<_>>());
        let m = f.module("tirex_top").unwrap();
        assert_eq!(m.parameters.len(), 4);
        assert_eq!(m.ports.len(), 8);
        assert_eq!(m.clock_port().unwrap().name, "clk");
    }

    #[test]
    fn table2_configurations_encodable() {
        let cs = case_study();
        // ZU3EG rows of Table II.
        for (n, s, i, d) in [(1, 16, 8, 16), (1, 4, 8, 8), (1, 256, 8, 8), (1, 2, 8, 8)] {
            let p = DesignPoint::from_pairs(&[
                ("NCLUSTER", n),
                ("STACK_SIZE", s),
                ("IMEM_SIZE", i),
                ("DMEM_SIZE", d),
            ]);
            assert!(cs.space.encode(&p).is_ok(), "({n},{s},{i},{d})");
        }
    }

    #[test]
    fn technology_gap_between_devices() {
        let cs = case_study();
        let p = DesignPoint::from_pairs(&[
            ("NCLUSTER", 1),
            ("STACK_SIZE", 16),
            ("IMEM_SIZE", 8),
            ("DMEM_SIZE", 8),
        ]);
        let zu = cs.dovado().unwrap().evaluate_point(&p).unwrap();
        let k7 = cs.dovado_on(XC7K_PART).unwrap().evaluate_point(&p).unwrap();
        // §IV-D: "the achievable frequencies are so different, e.g. 550
        // against 190 MHz, even though configurations are quite similar".
        assert!(
            zu.fmax_mhz > 400.0 && zu.fmax_mhz < 750.0,
            "ZU3EG fmax {}",
            zu.fmax_mhz
        );
        assert!(
            k7.fmax_mhz > 140.0 && k7.fmax_mhz < 280.0,
            "XC7K70T fmax {}",
            k7.fmax_mhz
        );
        let ratio = zu.fmax_mhz / k7.fmax_mhz;
        assert!(ratio > 2.0 && ratio < 4.0, "technology ratio {ratio}");
    }
}
