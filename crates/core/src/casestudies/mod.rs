//! The paper's four case studies (§IV), packaged as ready-to-run
//! definitions: embedded HDL interface sources in the right language,
//! the explored parameter space, the target device, and the metric set.
//!
//! | Case study | Language | Paper section |
//! |---|---|---|
//! | [`cv32e40p`] FIFO | SystemVerilog | IV-A (surrogate accuracy, Fig. 3) |
//! | [`corundum`] completion-queue manager | Verilog | IV-B (Fig. 4, Table I) |
//! | [`neorv32`] core | VHDL | IV-C (Fig. 5) |
//! | [`tirex`] regex architecture | VHDL | IV-D (Figs. 6–7, Table II) |

pub mod corundum;
pub mod cv32e40p;
pub mod neorv32;
pub mod tirex;

use crate::dse::Dovado;
use crate::error::DovadoResult;
use crate::flow::{EvalConfig, HdlSource};
use crate::metrics::MetricSet;
use crate::space::ParameterSpace;
use dovado_hdl::catalog::{CatalogSource, SourceCatalog};

/// A packaged case study.
///
/// Built from a cataloged source tree ([`CaseStudy::from_tree`]): the
/// compile order and the top module are *derived* from the unit-level
/// dependency graph, exactly like a user tree handed to `--project` —
/// the case studies are catalog instances, not hand-wired source lists.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Human-readable name.
    pub name: &'static str,
    /// HDL sources in catalog compile order.
    pub sources: Vec<HdlSource>,
    /// The module under exploration (graph-inferred from the tree).
    pub top: String,
    /// The explored space.
    pub space: ParameterSpace,
    /// Default target part.
    pub part: &'static str,
    /// Metrics the paper reports for it.
    pub metrics: MetricSet,
}

impl CaseStudy {
    /// Packages a source tree as a case study: catalogs the files,
    /// derives the compile order from the dependency graph, and infers
    /// the top module from it. Panics on a malformed tree — the embedded
    /// case-study sources are compile-time constants, so failure here is
    /// a programmer error, not user input.
    pub fn from_tree(
        name: &'static str,
        tree: Vec<CatalogSource>,
        space: ParameterSpace,
        part: &'static str,
        metrics: MetricSet,
    ) -> CaseStudy {
        let catalog =
            SourceCatalog::from_sources(tree).unwrap_or_else(|e| panic!("case study {name}: {e}"));
        let top = catalog
            .infer_top()
            .unwrap_or_else(|e| panic!("case study {name}: {e}"));
        let sources = catalog
            .compile_order()
            .map(|f| HdlSource {
                name: f.path.clone(),
                language: f.language,
                content: f.text.clone(),
                library: f.library.clone(),
            })
            .collect();
        CaseStudy {
            name,
            sources,
            top,
            space,
            part,
            metrics,
        }
    }

    /// Builds a [`Dovado`] instance targeting the default part.
    pub fn dovado(&self) -> DovadoResult<Dovado> {
        self.dovado_on(self.part)
    }

    /// Builds a [`Dovado`] instance targeting another part (TiReX runs on
    /// both the ZU3EG and the XC7K70T).
    pub fn dovado_on(&self, part: &str) -> DovadoResult<Dovado> {
        let config = EvalConfig {
            part: part.to_string(),
            ..EvalConfig::default()
        };
        self.dovado_with(config)
    }

    /// Builds a [`Dovado`] instance with a custom evaluation config.
    pub fn dovado_with(&self, config: EvalConfig) -> DovadoResult<Dovado> {
        Dovado::new(self.sources.clone(), &self.top, self.space.clone(), config)
    }
}

/// All case studies.
pub fn all() -> Vec<CaseStudy> {
    vec![
        cv32e40p::case_study(),
        corundum::case_study(),
        neorv32::case_study(),
        tirex::case_study(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_case_study_constructs() {
        for cs in all() {
            let d = cs.dovado().unwrap_or_else(|e| panic!("{}: {e}", cs.name));
            assert!(d.space().dim() >= 1, "{}", cs.name);
        }
    }

    #[test]
    fn languages_cover_the_paper_matrix() {
        use dovado_hdl::Language;
        let studies = all();
        let langs: Vec<Language> = studies.iter().map(|c| c.sources[0].language).collect();
        assert!(langs.contains(&Language::SystemVerilog));
        assert!(langs.contains(&Language::Verilog));
        assert!(langs.contains(&Language::Vhdl));
    }

    #[test]
    fn tops_are_graph_inferred_not_hand_wired() {
        let expected = [
            ("cv32e40p-fifo", "fifo_v3"),
            ("corundum-cpl-queue-manager", "cpl_queue_manager"),
            ("neorv32", "neorv32_top"),
            ("tirex", "tirex_top"),
        ];
        for (cs, (name, top)) in all().iter().zip(expected) {
            assert_eq!(cs.name, name);
            assert_eq!(cs.top, top, "{name}: catalog must infer the paper's top");
        }
    }

    #[test]
    fn default_parts_resolve() {
        let catalog = dovado_fpga::Catalog::builtin();
        for cs in all() {
            assert!(
                catalog.resolve(cs.part).is_some(),
                "{}: part {}",
                cs.name,
                cs.part
            );
        }
    }
}
