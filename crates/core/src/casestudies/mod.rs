//! The paper's four case studies (§IV), packaged as ready-to-run
//! definitions: embedded HDL interface sources in the right language,
//! the explored parameter space, the target device, and the metric set.
//!
//! | Case study | Language | Paper section |
//! |---|---|---|
//! | [`cv32e40p`] FIFO | SystemVerilog | IV-A (surrogate accuracy, Fig. 3) |
//! | [`corundum`] completion-queue manager | Verilog | IV-B (Fig. 4, Table I) |
//! | [`neorv32`] core | VHDL | IV-C (Fig. 5) |
//! | [`tirex`] regex architecture | VHDL | IV-D (Figs. 6–7, Table II) |

pub mod corundum;
pub mod cv32e40p;
pub mod neorv32;
pub mod tirex;

use crate::dse::Dovado;
use crate::error::DovadoResult;
use crate::flow::{EvalConfig, HdlSource};
use crate::metrics::MetricSet;
use crate::space::ParameterSpace;

/// A packaged case study.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Human-readable name.
    pub name: &'static str,
    /// HDL sources.
    pub sources: Vec<HdlSource>,
    /// The module under exploration.
    pub top: &'static str,
    /// The explored space.
    pub space: ParameterSpace,
    /// Default target part.
    pub part: &'static str,
    /// Metrics the paper reports for it.
    pub metrics: MetricSet,
}

impl CaseStudy {
    /// Builds a [`Dovado`] instance targeting the default part.
    pub fn dovado(&self) -> DovadoResult<Dovado> {
        self.dovado_on(self.part)
    }

    /// Builds a [`Dovado`] instance targeting another part (TiReX runs on
    /// both the ZU3EG and the XC7K70T).
    pub fn dovado_on(&self, part: &str) -> DovadoResult<Dovado> {
        let config = EvalConfig {
            part: part.to_string(),
            ..EvalConfig::default()
        };
        self.dovado_with(config)
    }

    /// Builds a [`Dovado`] instance with a custom evaluation config.
    pub fn dovado_with(&self, config: EvalConfig) -> DovadoResult<Dovado> {
        Dovado::new(self.sources.clone(), self.top, self.space.clone(), config)
    }
}

/// All case studies.
pub fn all() -> Vec<CaseStudy> {
    vec![
        cv32e40p::case_study(),
        corundum::case_study(),
        neorv32::case_study(),
        tirex::case_study(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_case_study_constructs() {
        for cs in all() {
            let d = cs.dovado().unwrap_or_else(|e| panic!("{}: {e}", cs.name));
            assert!(d.space().dim() >= 1, "{}", cs.name);
        }
    }

    #[test]
    fn languages_cover_the_paper_matrix() {
        use dovado_hdl::Language;
        let studies = all();
        let langs: Vec<Language> = studies.iter().map(|c| c.sources[0].language).collect();
        assert!(langs.contains(&Language::SystemVerilog));
        assert!(langs.contains(&Language::Verilog));
        assert!(langs.contains(&Language::Vhdl));
    }

    #[test]
    fn default_parts_resolve() {
        let catalog = dovado_fpga::Catalog::builtin();
        for cs in all() {
            assert!(
                catalog.resolve(cs.part).is_some(),
                "{}: part {}",
                cs.name,
                cs.part
            );
        }
    }
}
