//! Corundum case study (§IV-B): the Verilog completion-queue manager of
//! the open-source 100 Gbps NIC.
//!
//! The paper explores "the number of outstanding operations, the number of
//! queues, and the pipeline stages" on the same Kintex-7, with the
//! approximation model disabled, reporting LUTs, registers and BRAM
//! occupation together with the maximum achievable frequency (~200 MHz).

use super::CaseStudy;
use crate::metrics::MetricSet;
use crate::space::{Domain, ParameterSpace};
use dovado_hdl::catalog::CatalogSource;
use dovado_hdl::Language;

/// The completion-queue-manager source (interface-faithful to Corundum).
pub const CPL_QUEUE_MANAGER_V: &str = r#"/*
 * Completion queue manager (Corundum-style interface).
 */
module cpl_queue_manager #
(
    // Base address width
    parameter ADDR_WIDTH = 64,
    // Number of outstanding operations
    parameter OP_TABLE_SIZE = 16,
    // Operation tag field width
    parameter OP_TAG_WIDTH = 8,
    // Number of queues (log2)
    parameter QUEUE_INDEX_WIDTH = 8,
    // Queue element pointer width
    parameter QUEUE_PTR_WIDTH = 16,
    // Pipeline stages
    parameter PIPELINE = 2,
    // Width of AXI lite data bus in bits
    parameter AXIL_DATA_WIDTH = 32,
    // Width of AXI lite address bus in bits
    parameter AXIL_ADDR_WIDTH = 16
)
(
    input  wire                          clk,
    input  wire                          rst,

    /*
     * Enqueue request input
     */
    input  wire [QUEUE_INDEX_WIDTH-1:0]  s_axis_enqueue_req_queue,
    input  wire [OP_TAG_WIDTH-1:0]       s_axis_enqueue_req_tag,
    input  wire                          s_axis_enqueue_req_valid,
    output wire                          s_axis_enqueue_req_ready,

    /*
     * Enqueue response output
     */
    output wire [QUEUE_PTR_WIDTH-1:0]    m_axis_enqueue_resp_ptr,
    output wire [ADDR_WIDTH-1:0]         m_axis_enqueue_resp_addr,
    output wire [OP_TAG_WIDTH-1:0]       m_axis_enqueue_resp_tag,
    output wire                          m_axis_enqueue_resp_valid,
    input  wire                          m_axis_enqueue_resp_ready,

    /*
     * Enqueue commit input
     */
    input  wire [OP_TAG_WIDTH-1:0]       s_axis_enqueue_commit_tag,
    input  wire                          s_axis_enqueue_commit_valid,
    output wire                          s_axis_enqueue_commit_ready,

    /*
     * Event output
     */
    output wire [QUEUE_INDEX_WIDTH-1:0]  m_axis_event,
    output wire                          m_axis_event_valid,

    /*
     * AXI-Lite slave interface
     */
    input  wire [AXIL_ADDR_WIDTH-1:0]    s_axil_awaddr,
    input  wire                          s_axil_awvalid,
    output wire                          s_axil_awready,
    input  wire [AXIL_DATA_WIDTH-1:0]    s_axil_wdata,
    input  wire                          s_axil_wvalid,
    output wire                          s_axil_wready,

    /*
     * Configuration
     */
    input  wire                          enable
);

parameter CL_OP_TABLE_SIZE = $clog2(OP_TABLE_SIZE);
parameter QUEUE_COUNT = 2**QUEUE_INDEX_WIDTH;

reg [QUEUE_INDEX_WIDTH-1:0] op_table_queue [OP_TABLE_SIZE-1:0];
reg [OP_TABLE_SIZE-1:0] op_table_active;
reg [OP_TABLE_SIZE-1:0] op_table_commit;
reg [CL_OP_TABLE_SIZE-1:0] op_table_start_ptr_reg;

reg [QUEUE_INDEX_WIDTH-1:0] queue_ram_addr_pipeline_reg [PIPELINE-1:0];
reg [AXIL_DATA_WIDTH-1:0] write_data_pipeline_reg [PIPELINE-1:0];

integer i;

always @(posedge clk) begin
    if (rst) begin
        op_table_active <= 0;
        op_table_commit <= 0;
        op_table_start_ptr_reg <= 0;
    end else begin
        if (s_axis_enqueue_req_valid && s_axis_enqueue_req_ready) begin
            op_table_queue[op_table_start_ptr_reg] <= s_axis_enqueue_req_queue;
            op_table_active[op_table_start_ptr_reg] <= 1'b1;
            op_table_start_ptr_reg <= op_table_start_ptr_reg + 1;
        end
        for (i = 0; i < PIPELINE-1; i = i + 1) begin
            queue_ram_addr_pipeline_reg[i+1] <= queue_ram_addr_pipeline_reg[i];
            write_data_pipeline_reg[i+1] <= write_data_pipeline_reg[i];
        end
    end
end

endmodule
"#;

/// The packaged case study on the Kintex-7.
pub fn case_study() -> CaseStudy {
    CaseStudy::from_tree(
        "corundum-cpl-queue-manager",
        vec![CatalogSource::new(
            "cpl_queue_manager.v",
            Language::Verilog,
            CPL_QUEUE_MANAGER_V,
        )],
        // Ranges covering Table I's reported configurations:
        // ops outstanding 8..35, queues (log2) 4..7, pipeline 2..5.
        ParameterSpace::new()
            .with("OP_TABLE_SIZE", Domain::range(8, 64))
            .with("QUEUE_INDEX_WIDTH", Domain::range(4, 10))
            .with("PIPELINE", Domain::range(1, 6)),
        "xc7k70tfbv676-1",
        MetricSet::area_frequency(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::DesignPoint;
    use dovado_fpga::ResourceKind;

    #[test]
    fn source_parses_with_expected_interface() {
        let (f, d) = dovado_hdl::parse_source(Language::Verilog, CPL_QUEUE_MANAGER_V).unwrap();
        assert!(!d.has_errors(), "{:?}", d.iter().collect::<Vec<_>>());
        let m = f.module("cpl_queue_manager").unwrap();
        // 8 header parameters + 2 body parameters.
        assert_eq!(m.parameters.len(), 10);
        assert!(m.parameter("PIPELINE").is_some());
        assert_eq!(m.clock_port().unwrap().name, "clk");
        assert!(m.ports.len() >= 20);
        // Stays plain Verilog (no SV constructs).
        assert_eq!(m.language, Language::Verilog);
    }

    #[test]
    fn space_covers_table1_configurations() {
        let cs = case_study();
        // Every Table I configuration must be encodable.
        let table1 = [
            (8, 5, 2),
            (8, 4, 2),
            (10, 4, 2),
            (13, 4, 3),
            (27, 4, 3),
            (35, 4, 2),
            (10, 4, 3),
            (12, 4, 2),
            (10, 7, 3),
            (14, 4, 3),
            (19, 4, 5),
            (17, 4, 3),
            (15, 4, 4),
        ];
        for (o, q, p) in table1 {
            let point = DesignPoint::from_pairs(&[
                ("OP_TABLE_SIZE", o),
                ("QUEUE_INDEX_WIDTH", q),
                ("PIPELINE", p),
            ]);
            assert!(
                cs.space.encode(&point).is_ok(),
                "({o},{q},{p}) not in space"
            );
        }
    }

    #[test]
    fn bram_constant_frequency_near_200mhz() {
        let cs = case_study();
        let d = cs.dovado().unwrap();
        let a = d
            .evaluate_point(&DesignPoint::from_pairs(&[
                ("OP_TABLE_SIZE", 8),
                ("QUEUE_INDEX_WIDTH", 4),
                ("PIPELINE", 2),
            ]))
            .unwrap();
        let b = d
            .evaluate_point(&DesignPoint::from_pairs(&[
                ("OP_TABLE_SIZE", 35),
                ("QUEUE_INDEX_WIDTH", 7),
                ("PIPELINE", 5),
            ]))
            .unwrap();
        assert_eq!(
            a.utilization.get(ResourceKind::Bram),
            b.utilization.get(ResourceKind::Bram),
            "BRAM must be constant over the explored range"
        );
        for e in [&a, &b] {
            assert!(
                e.fmax_mhz > 120.0 && e.fmax_mhz < 320.0,
                "frequency {} outside the ~200 MHz region",
                e.fmax_mhz
            );
        }
    }
}
