//! Neorv32 case study (§IV-C): the VHDL in-order 4-stage RISC-V core.
//!
//! "We tested the top module and explore as module parameters the
//! instruction and data memory sizes. We decided to constrain the
//! exploration only to the power of twos to explore a larger parameter
//! space without considering meaningless parameter assignments", on the
//! same Kintex-7 without the approximation model.

use super::CaseStudy;
use crate::metrics::MetricSet;
use crate::space::{Domain, ParameterSpace};
use dovado_hdl::catalog::CatalogSource;
use dovado_hdl::Language;

/// The Neorv32 top source (interface-faithful subset).
pub const NEORV32_TOP_VHD: &str = r#"-- neorv32_top: processor top entity (interface-faithful subset).
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

library neorv32;
use neorv32.neorv32_package.all;

entity neorv32_top is
  generic (
    -- General --
    CLOCK_FREQUENCY            : natural := 100000000;
    HW_THREAD_ID               : natural := 0;
    -- RISC-V CPU Extensions --
    CPU_EXTENSION_RISCV_C      : boolean := true;
    CPU_EXTENSION_RISCV_M      : boolean := true;
    -- Internal Instruction memory --
    MEM_INT_IMEM_EN            : boolean := true;
    MEM_INT_IMEM_SIZE          : natural := 16384; -- size in bytes
    -- Internal Data memory --
    MEM_INT_DMEM_EN            : boolean := true;
    MEM_INT_DMEM_SIZE          : natural := 8192; -- size in bytes
    -- Processor peripherals --
    IO_GPIO_EN                 : boolean := true;
    IO_UART0_EN                : boolean := true
  );
  port (
    -- Global control --
    clk_i       : in  std_logic;
    rstn_i      : in  std_logic;
    -- GPIO --
    gpio_o      : out std_logic_vector(63 downto 0);
    gpio_i      : in  std_logic_vector(63 downto 0);
    -- UART0 --
    uart0_txd_o : out std_logic;
    uart0_rxd_i : in  std_logic
  );
end entity neorv32_top;

architecture neorv32_top_rtl of neorv32_top is
  signal cpu_sleep : std_logic;
  signal imem_addr : std_logic_vector(31 downto 0);
begin
  -- The real top wires up the CPU, memories and peripherals; the interface
  -- above is everything Dovado touches.
  sanity_check: process (clk_i)
  begin
    if rising_edge(clk_i) then
      cpu_sleep <= not cpu_sleep;
    end if;
  end process sanity_check;
end architecture neorv32_top_rtl;
"#;

/// The packaged case study: memory sizes restricted to powers of two.
pub fn case_study() -> CaseStudy {
    CaseStudy::from_tree(
        "neorv32",
        vec![CatalogSource::new(
            "neorv32_top.vhd",
            Language::Vhdl,
            NEORV32_TOP_VHD,
        )],
        ParameterSpace::new()
            .with(
                "MEM_INT_IMEM_SIZE",
                Domain::PowerOfTwo {
                    min_exp: 10,
                    max_exp: 16,
                },
            )
            .with(
                "MEM_INT_DMEM_SIZE",
                Domain::PowerOfTwo {
                    min_exp: 10,
                    max_exp: 16,
                },
            ),
        "xc7k70tfbv676-1",
        MetricSet::area_frequency(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::DesignPoint;
    use dovado_fpga::ResourceKind;

    #[test]
    fn source_parses_with_expected_interface() {
        let (f, d) = dovado_hdl::parse_source(Language::Vhdl, NEORV32_TOP_VHD).unwrap();
        assert!(!d.has_errors(), "{:?}", d.iter().collect::<Vec<_>>());
        let m = f.module("neorv32_top").unwrap();
        assert_eq!(m.parameters.len(), 10);
        assert_eq!(
            m.parameter("MEM_INT_IMEM_SIZE").unwrap().const_default(),
            Some(16384)
        );
        // Booleans read as integers (paper §III-B1).
        assert_eq!(
            m.parameter("CPU_EXTENSION_RISCV_M")
                .unwrap()
                .const_default(),
            Some(1)
        );
        assert_eq!(m.clock_port().unwrap().name, "clk_i");
        assert_eq!(
            f.libraries(),
            vec!["ieee".to_string(), "neorv32".to_string()]
        );
    }

    #[test]
    fn power_of_two_space() {
        let cs = case_study();
        assert_eq!(cs.space.volume(), 7 * 7);
        // 2^15 must be admissible (the paper's headline configuration)…
        assert!(cs
            .space
            .encode(&DesignPoint::from_pairs(&[
                ("MEM_INT_IMEM_SIZE", 32768),
                ("MEM_INT_DMEM_SIZE", 32768),
            ]))
            .is_ok());
        // …and non-powers must not be.
        assert!(cs
            .space
            .encode(&DesignPoint::from_pairs(&[
                ("MEM_INT_IMEM_SIZE", 33000),
                ("MEM_INT_DMEM_SIZE", 32768),
            ]))
            .is_err());
    }

    #[test]
    fn bram_steps_between_2p14_and_2p15() {
        let cs = case_study();
        let d = cs.dovado().unwrap();
        let small = d
            .evaluate_point(&DesignPoint::from_pairs(&[
                ("MEM_INT_IMEM_SIZE", 16384),
                ("MEM_INT_DMEM_SIZE", 8192),
            ]))
            .unwrap();
        let big = d
            .evaluate_point(&DesignPoint::from_pairs(&[
                ("MEM_INT_IMEM_SIZE", 32768),
                ("MEM_INT_DMEM_SIZE", 32768),
            ]))
            .unwrap();
        // Fig. 5: sensible BRAM change, other metrics almost unchanged.
        assert!(
            big.utilization.get(ResourceKind::Bram)
                >= 2 * small.utilization.get(ResourceKind::Bram)
        );
        let lut_rel = (big.utilization.get(ResourceKind::Lut) as f64
            - small.utilization.get(ResourceKind::Lut) as f64)
            .abs()
            / small.utilization.get(ResourceKind::Lut) as f64;
        assert!(lut_rel < 0.05, "LUTs moved {lut_rel}");
        let f_rel = (big.fmax_mhz - small.fmax_mhz).abs() / small.fmax_mhz;
        assert!(f_rel < 0.1, "frequency moved {f_rel}");
    }
}
