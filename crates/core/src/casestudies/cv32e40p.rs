//! cv32e40p case study (§IV-A): the SystemVerilog FIFO submodule used to
//! assess the approximation model's accuracy.
//!
//! "We test the DSE on a SystemVerilog FIFO submodule exploring the depth
//! parameter … The parameter range comprised 500 possible values, and the
//! estimation model was pre-trained on 100 samples", targeting the
//! XC7K70TFBV676-1 with FF, LUT, and frequency as the reported metrics.

use super::CaseStudy;
use crate::metrics::{Metric, MetricSet};
use crate::space::{Domain, ParameterSpace};
use dovado_fpga::ResourceKind;
use dovado_hdl::catalog::CatalogSource;
use dovado_hdl::Language;

/// The FIFO source, modelled on the cv32e40p `fifo_v3` interface.
pub const FIFO_SV: &str = r#"// fifo_v3: synchronous FIFO in the cv32e40p style (interface-faithful).
module fifo_v3 #(
    parameter bit          FALL_THROUGH = 1'b0,  // first word fall-through
    parameter int unsigned DATA_WIDTH   = 32,    // data width when dtype unused
    parameter int unsigned DEPTH        = 8,     // can be arbitrary, tool maps pointers
    // Derived: do not override.
    localparam int unsigned ADDR_DEPTH  = (DEPTH > 1) ? $clog2(DEPTH) : 1
) (
    input  logic                  clk_i,      // clock
    input  logic                  rst_ni,     // asynchronous reset, active low
    input  logic                  flush_i,    // flush the queue
    input  logic                  testmode_i, // test mode to bypass clock gating
    // status
    output logic                  full_o,
    output logic                  empty_o,
    output logic [ADDR_DEPTH-1:0] usage_o,
    // input port
    input  logic [DATA_WIDTH-1:0] data_i,
    input  logic                  push_i,
    // output port
    output logic [DATA_WIDTH-1:0] data_o,
    input  logic                  pop_i
);
  // Storage and pointers (register-based implementation).
  logic [DATA_WIDTH-1:0] mem_q [DEPTH];
  logic [ADDR_DEPTH-1:0] read_pointer_q, write_pointer_q;
  logic [ADDR_DEPTH:0]   status_cnt_q;

  assign full_o  = (status_cnt_q == DEPTH[ADDR_DEPTH:0]);
  assign empty_o = (status_cnt_q == '0) && !(FALL_THROUGH && push_i);
  assign usage_o = status_cnt_q[ADDR_DEPTH-1:0];

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      read_pointer_q  <= '0;
      write_pointer_q <= '0;
      status_cnt_q    <= '0;
    end else if (flush_i) begin
      read_pointer_q  <= '0;
      write_pointer_q <= '0;
      status_cnt_q    <= '0;
    end else begin
      if (push_i && !full_o) begin
        mem_q[write_pointer_q] <= data_i;
        write_pointer_q <= write_pointer_q + 1;
        status_cnt_q <= status_cnt_q + 1;
      end
      if (pop_i && !empty_o) begin
        read_pointer_q <= read_pointer_q + 1;
        status_cnt_q <= status_cnt_q - 1;
      end
    end
  end

  assign data_o = mem_q[read_pointer_q];
endmodule : fifo_v3
"#;

/// The packaged case study: depth over 500 possible values on the K7.
pub fn case_study() -> CaseStudy {
    CaseStudy::from_tree(
        "cv32e40p-fifo",
        vec![CatalogSource::new(
            "fifo_v3.sv",
            Language::SystemVerilog,
            FIFO_SV,
        )],
        // 500 possible values, as in the paper.
        ParameterSpace::new().with(
            "DEPTH",
            Domain::Range {
                lo: 2,
                hi: 1000,
                step: 2,
            },
        ),
        "xc7k70tfbv676-1",
        MetricSet::new(vec![
            Metric::Utilization(ResourceKind::Register),
            Metric::Utilization(ResourceKind::Lut),
            Metric::Fmax,
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::DesignPoint;

    #[test]
    fn source_parses_with_expected_interface() {
        let (f, d) = dovado_hdl::parse_source(Language::SystemVerilog, FIFO_SV).unwrap();
        assert!(!d.has_errors());
        let m = f.module("fifo_v3").unwrap();
        assert_eq!(m.free_parameters().count(), 3);
        assert!(m.parameter("ADDR_DEPTH").unwrap().local);
        assert_eq!(m.ports.len(), 11);
        assert_eq!(m.clock_port().unwrap().name, "clk_i");
    }

    #[test]
    fn space_has_500_points() {
        let cs = case_study();
        assert_eq!(cs.space.volume(), 500);
    }

    #[test]
    fn evaluation_runs_end_to_end() {
        let cs = case_study();
        let d = cs.dovado().unwrap();
        let e = d
            .evaluate_point(&DesignPoint::from_pairs(&[("DEPTH", 128)]))
            .unwrap();
        assert!(e.utilization.get(ResourceKind::Register) > 4000);
        assert!(e.fmax_mhz > 100.0 && e.fmax_mhz < 600.0);
    }
}
