//! Worker-side wire layer for distributed evaluation.
//!
//! The coordinator half (frame protocol, worker pool, session replay)
//! lives in `dovado_eda::remote` behind the [`crate::backend`] boundary;
//! this module is everything that needs to know about concrete backends
//! and processes:
//!
//! - [`serve`] — the worker loop: read frames, drive a freshly-built
//!   backend session, write replies. [`serve_stdio`] binds it to stdio
//!   for the `dovado worker` CLI subcommand.
//! - [`backend_from_spec`] — the spec strings workers build sessions
//!   from (`mock:7`, `vivado-sim:7`, `mock:7:spin=50`).
//! - [`process_fleet`] / [`thread_fleet`] — [`RemoteBackend`]
//!   constructors over child processes (production) or in-process serve
//!   threads (tests and benches, which must not re-exec the test binary).
//! - [`attach_lifecycle`] — forwards worker lifecycle transitions onto
//!   an [`EventBus`] as [`ObsEvent::Worker`] side-channel events.
//!
//! Workers are stateless and *clean*: each `OpenSession` builds a fresh
//! backend from the spec, with no fault injector, no shared checkpoint
//! store, and no persistent store (store lookups happen coordinator-side
//! before dispatch). A worker's answers are therefore a pure function of
//! the write/eval sequence it receives — which is what lets the
//! coordinator replay a dead worker's session bitwise onto a fresh one.

use crate::backend::{MockBackend, RemoteBackend, SimBackend, ToolBackend, ToolSession};
use crate::obs::{EventBus, ObsEvent};
use dovado_eda::remote::{
    read_frame, write_frame, Frame, WorkerLifecycle, WorkerLink, PROTOCOL_VERSION,
};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

// ---------------------------------------------------------------------------
// Backend specs
// ---------------------------------------------------------------------------

/// Builds the worker-side backend a spec string names.
///
/// Specs are `kind:seed[:spin=MS]`: `mock:7`, `vivado-sim:42`,
/// `mock:7:spin=50` (the mock's wall-clock spin knob, for benches).
/// Returns `None` for anything unrecognized.
pub fn backend_from_spec(spec: &str) -> Option<Box<dyn ToolBackend>> {
    let mut parts = spec.split(':');
    let kind = parts.next()?;
    let seed: u64 = parts.next()?.parse().ok()?;
    let mut spin_ms = 0u64;
    for extra in parts {
        let (key, value) = extra.split_once('=')?;
        match key {
            "spin" => spin_ms = value.parse().ok()?,
            _ => return None,
        }
    }
    match kind {
        "mock" => Some(Box::new(MockBackend::new(seed).with_spin_ms(spin_ms))),
        "vivado-sim" if spin_ms == 0 => Some(Box::new(SimBackend::new(seed))),
        _ => None,
    }
}

/// The backend name a spec resolves to (`mock`, `vivado-sim`), without
/// building the backend. Coordinators use it so a fleet reports the
/// *inner* backend's name and shares its store identity.
pub fn backend_name_of_spec(spec: &str) -> Option<&'static str> {
    match spec.split(':').next()? {
        "mock" => Some("mock"),
        "vivado-sim" => Some("vivado-sim"),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// The worker loop
// ---------------------------------------------------------------------------

/// Runs the worker protocol loop over the given streams until
/// [`Frame::Shutdown`] or EOF (a vanished coordinator is a clean exit,
/// not an error).
pub fn serve(input: &mut dyn Read, output: &mut dyn Write) -> io::Result<()> {
    let mut session: Option<Box<dyn ToolSession + Send>> = None;
    loop {
        let frame = match read_frame(input) {
            Ok(frame) => frame,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        let reply = match frame {
            Frame::Hello { .. } => Frame::Hello {
                version: PROTOCOL_VERSION,
            },
            Frame::OpenSession { spec } => match backend_from_spec(&spec) {
                Some(backend) => {
                    session = Some(backend.open_session());
                    Frame::SessionOpened
                }
                None => Frame::Refused {
                    message: format!("unknown worker spec `{spec}`"),
                },
            },
            Frame::WriteFile { path, content } => match session.as_mut() {
                Some(s) => {
                    s.write_file(&path, content);
                    Frame::Ack
                }
                None => Frame::Refused {
                    message: "write_file: no open session".into(),
                },
            },
            Frame::Eval { script } => match session.as_mut() {
                Some(s) => {
                    let outcome = s.eval(&script);
                    Frame::EvalDone {
                        outcome,
                        elapsed_s: s.elapsed_s(),
                        used_exact_checkpoint: s.used_exact_checkpoint(),
                        files: s.files(),
                    }
                }
                None => Frame::Refused {
                    message: "eval: no open session".into(),
                },
            },
            Frame::CloseSession => {
                session = None;
                Frame::Ack
            }
            Frame::Shutdown => return Ok(()),
            // Worker-to-coordinator frames arriving here are protocol
            // misuse by the peer.
            other => Frame::Refused {
                message: format!("unexpected frame {other:?}"),
            },
        };
        write_frame(output, &reply)?;
    }
}

/// [`serve`] bound to the process's stdio — the body of the `dovado
/// worker` CLI subcommand. stdout carries only protocol frames; anything
/// human-readable belongs on stderr.
pub fn serve_stdio() -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve(&mut stdin.lock(), &mut stdout.lock())
}

// ---------------------------------------------------------------------------
// In-memory transport (tests, benches)
// ---------------------------------------------------------------------------

#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

#[derive(Default)]
struct PipeChannel {
    state: Mutex<PipeState>,
    ready: Condvar,
}

impl PipeChannel {
    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// Read half of an in-memory pipe; blocking, EOF once the channel is
/// closed and drained.
struct PipeReader(Arc<PipeChannel>);

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut state = self.0.state.lock().unwrap();
        loop {
            if !state.buf.is_empty() {
                let n = out.len().min(state.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = state.buf.pop_front().expect("len checked");
                }
                return Ok(n);
            }
            if state.closed {
                return Ok(0);
            }
            state = self.0.ready.wait(state).unwrap();
        }
    }
}

/// Write half of an in-memory pipe; fails with `BrokenPipe` once closed.
struct PipeWriter(Arc<PipeChannel>);

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut state = self.0.state.lock().unwrap();
        if state.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "pipe closed (worker killed)",
            ));
        }
        state.buf.extend(data.iter().copied());
        self.0.ready.notify_all();
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn pipe() -> (PipeWriter, PipeReader, Arc<PipeChannel>) {
    let channel = Arc::new(PipeChannel::default());
    (
        PipeWriter(Arc::clone(&channel)),
        PipeReader(Arc::clone(&channel)),
        channel,
    )
}

/// A worker running [`serve`] on an in-process thread, linked by a pair
/// of in-memory pipes. `kill` closes both pipes, which the coordinator
/// observes exactly like a dead child process.
struct ThreadWorker {
    writer: PipeWriter,
    reader: PipeReader,
    to_worker: Arc<PipeChannel>,
    from_worker: Arc<PipeChannel>,
    handle: Option<JoinHandle<()>>,
}

impl ThreadWorker {
    fn spawn() -> ThreadWorker {
        let (coord_writer, mut worker_reader, to_worker) = pipe();
        let (mut worker_writer, coord_reader, from_worker) = pipe();
        let handle = std::thread::spawn(move || {
            let _ = serve(&mut worker_reader, &mut worker_writer);
        });
        ThreadWorker {
            writer: coord_writer,
            reader: coord_reader,
            to_worker,
            from_worker,
            handle: Some(handle),
        }
    }
}

impl WorkerLink for ThreadWorker {
    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        write_frame(&mut self.writer, frame)
    }

    fn recv(&mut self) -> io::Result<Frame> {
        read_frame(&mut self.reader)
    }

    fn kill(&mut self) {
        self.to_worker.close();
        self.from_worker.close();
    }
}

impl Drop for ThreadWorker {
    fn drop(&mut self) {
        self.to_worker.close();
        self.from_worker.close();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Fleet constructors
// ---------------------------------------------------------------------------

/// A [`RemoteBackend`] whose workers are in-process threads running
/// [`serve`] over in-memory pipes. Protocol, pool, replay, and lifecycle
/// behavior are identical to a process fleet; only the transport
/// differs. Tests and benches use this so they never re-exec their own
/// binary.
pub fn thread_fleet(spec: &str, workers: usize) -> io::Result<RemoteBackend> {
    let name = backend_name_of_spec(spec).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unknown worker spec `{spec}`"),
        )
    })?;
    RemoteBackend::new(
        name,
        spec,
        workers,
        Box::new(|| Ok(Box::new(ThreadWorker::spawn()) as Box<dyn WorkerLink + Send>)),
    )
}

/// A [`RemoteBackend`] whose workers are child processes started with
/// `command` (typically `[dovado-binary, "worker"]`), speaking the frame
/// protocol over their stdio.
pub fn process_fleet(
    command: Vec<String>,
    spec: &str,
    workers: usize,
) -> io::Result<RemoteBackend> {
    let name = backend_name_of_spec(spec).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unknown worker spec `{spec}`"),
        )
    })?;
    RemoteBackend::new(
        name,
        spec,
        workers,
        Box::new(move || {
            let worker = dovado_eda::remote::ProcessWorker::spawn(&command)?;
            Ok(Box::new(worker) as Box<dyn WorkerLink + Send>)
        }),
    )
}

/// Forwards the fleet's lifecycle transitions (spawn, steal, death,
/// requeue) onto `bus` as [`ObsEvent::Worker`] side-channel events.
pub fn attach_lifecycle(backend: &RemoteBackend, bus: &EventBus) {
    let bus = bus.clone();
    backend.set_lifecycle_hook(Arc::new(move |event| {
        let (worker, kind, detail) = match event {
            WorkerLifecycle::Spawned { worker } => (*worker, "spawned", String::new()),
            WorkerLifecycle::Stole { worker } => (*worker, "stole", String::new()),
            WorkerLifecycle::Died { worker, detail } => (*worker, "died", detail.clone()),
            WorkerLifecycle::Requeued { worker } => (*worker, "requeued", String::new()),
        };
        bus.emit_worker(ObsEvent::Worker {
            worker,
            kind,
            detail,
        });
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_reject() {
        assert_eq!(backend_from_spec("mock:7").unwrap().name(), "mock");
        assert_eq!(
            backend_from_spec("vivado-sim:42").unwrap().name(),
            "vivado-sim"
        );
        assert_eq!(backend_from_spec("mock:7:spin=5").unwrap().name(), "mock");
        assert!(backend_from_spec("vivado-sim:7:spin=5").is_none());
        assert!(backend_from_spec("mock").is_none());
        assert!(backend_from_spec("mock:x").is_none());
        assert!(backend_from_spec("quantum:7").is_none());
        assert_eq!(backend_name_of_spec("mock:7"), Some("mock"));
        assert_eq!(backend_name_of_spec("quantum:7"), None);
    }

    #[test]
    fn serve_runs_a_session_over_in_memory_pipes() {
        let mut worker = ThreadWorker::spawn();
        let rpc = |w: &mut ThreadWorker, frame: &Frame| {
            w.send(frame).unwrap();
            w.recv().unwrap()
        };
        assert_eq!(
            rpc(&mut worker, &Frame::Hello { version: 99 }),
            Frame::Hello {
                version: PROTOCOL_VERSION
            }
        );
        // Eval before open is refused, not fatal.
        assert!(matches!(
            rpc(
                &mut worker,
                &Frame::Eval {
                    script: "exit".into()
                }
            ),
            Frame::Refused { .. }
        ));
        assert_eq!(
            rpc(
                &mut worker,
                &Frame::OpenSession {
                    spec: "mock:7".into()
                }
            ),
            Frame::SessionOpened
        );
        assert_eq!(
            rpc(
                &mut worker,
                &Frame::WriteFile {
                    path: "src/fifo.sv".into(),
                    content: "module fifo #(parameter DEPTH = 8)(input logic clk_i); endmodule"
                        .into(),
                }
            ),
            Frame::Ack
        );
        let reply = rpc(
            &mut worker,
            &Frame::Eval {
                script: "create_project dovado -part xc7k70tfbv676-1\n\
                         read_verilog -sv src/fifo.sv\n\
                         synth_design -top fifo\n\
                         report_utilization -file util.rpt"
                    .into(),
            },
        );
        match reply {
            Frame::EvalDone {
                outcome,
                elapsed_s,
                files,
                ..
            } => {
                outcome.unwrap();
                assert!(elapsed_s > 0.0);
                assert!(files.iter().any(|(p, _)| p == "util.rpt"));
            }
            other => panic!("expected EvalDone, got {other:?}"),
        }
        assert_eq!(rpc(&mut worker, &Frame::CloseSession), Frame::Ack);
        worker.send(&Frame::Shutdown).unwrap();
    }

    #[test]
    fn killed_pipe_reads_eof_and_writes_broken_pipe() {
        let mut worker = ThreadWorker::spawn();
        worker.kill();
        assert!(worker.send(&Frame::Ack).is_err());
        let err = worker.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
