//! The `dovado` command-line interface.
//!
//! The original Dovado ships as a CLI ("available as a python package");
//! this module is the Rust equivalent, hand-rolled (no argument-parsing
//! dependency) and fully testable: [`run`] takes the argument vector and a
//! writer, so tests drive it without a process boundary.
//!
//! Subcommands:
//!
//! * `parse <file>…` — print the extracted module interfaces.
//! * `parts` — list the built-in device catalog.
//! * `evaluate` — single design-point evaluation (design automation).
//! * `explore` — design space exploration (NSGA-II, optional surrogate).
//! * `demo <case>` — run a packaged paper case study.

use crate::casestudies;
use crate::dse::{Dovado, DseConfig, SurrogateConfig};
use crate::flow::{EvalConfig, FlowStep, HdlSource};
use crate::metrics::{Metric, MetricSet};
use crate::persist::PersistConfig;
use crate::point::DesignPoint;
use crate::space::{Domain, ParameterSpace};
use dovado_eda::EvalStore;
use dovado_fpga::{Catalog, ResourceKind};
use dovado_hdl::Language;
use dovado_moo::{Nsga2Config, Termination};
use std::fmt::Write as _;
use std::path::PathBuf;

/// CLI entry point: executes `args` (without the program name), writing
/// human output to `out`. Returns the process exit code.
pub fn run(args: &[String], out: &mut String) -> i32 {
    match run_inner(args, out) {
        Ok(()) => 0,
        Err(msg) => {
            let _ = writeln!(out, "error: {msg}");
            let _ = writeln!(out, "run `dovado help` for usage");
            1
        }
    }
}

fn run_inner(args: &[String], out: &mut String) -> Result<(), String> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            let _ = write!(out, "{}", usage());
            Ok(())
        }
        Some("parts") => cmd_parts(out),
        Some("parse") => cmd_parse(&args[1..], out),
        Some("evaluate") => cmd_evaluate(&args[1..], out),
        Some("explore") => cmd_explore(&args[1..], out),
        Some("demo") => cmd_demo(&args[1..], out),
        Some("worker") => cmd_worker(),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..], out),
        Some("status") => cmd_status(&args[1..], out),
        Some("shutdown") => cmd_shutdown(&args[1..], out),
        Some(other) => Err(format!("unknown subcommand `{other}`")),
    }
}

/// The usage text.
pub fn usage() -> String {
    "\
dovado — design automation and design space exploration for RTL modules

USAGE:
  dovado parse <file>...
  dovado parts
  dovado evaluate (--source <file>... --top <module> | --project <dir> [--top <module>])
                  [--part <part>]
                  [--set NAME=VALUE]... [--period <ns>] [--step synth|impl]
                  [--synth-directive <d>] [--impl-directive <d>]
                  [--jobs <n>] [--workers <n>] [--store <dir>]
                  [--trace-out <file>]
  dovado explore  (--source <file>... --top <module> | --project <dir> [--top <module>])
                  [--part <part>]
                  --param NAME=<spec>... [--metric <m>,<m>,...]
                  [--generations <n>] [--pop <n>] [--seed <n>]
                  [--surrogate <M>] [--deadline <simulated-s>] [--plot]
                  [--explorer nsga2|random|wsga|exhaustive|sa|bayes|auto]
                  [--csv <file>] [--jobs <n>] [--workers <n>]
                  [--store <dir>] [--resume <dir>] [--trace-out <file>]
  dovado demo <cv32e40p|corundum|neorv32|tirex>
  dovado worker   (internal: serve the distributed-evaluation protocol
                  over stdio; spawned by --workers, not run by hand)
  dovado serve    [--listen <addr>] [--slots <n>] [--root <dir>]
                  [--store-capacity <n>]
  dovado submit   --addr <addr>
                  (--source <file>... --top <module> | --project <dir> [--top <module>])
                  --param NAME=<spec>... [--tenant <name>] [--priority <n>]
                  [--part <part>] [--period <ns>] [--metric <m>,...]
                  [--generations <n>] [--pop <n>] [--seed <n>]
                  [--surrogate <M>] [--backend <spec>] [--no-store]
                  [--explorer nsga2|random|wsga|exhaustive|sa|bayes|auto]
                  [--trace-out <file>]
  dovado status   --addr <addr>
  dovado shutdown --addr <addr>

  --project catalogs every HDL file under <dir> (recursively;
  .vhd/.vhdl/.v/.vh/.sv/.svh), identifies the primary and secondary
  design units in each, and compiles them in dependency order — package
  bodies after their packages, architectures after their entities,
  instantiated modules before instantiators. The top module is inferred
  from the dependency graph (the unique uninstantiated module); pass
  --top to pick one when several roots exist.

  --jobs caps the worker threads used for parallel tool runs and batch
  surrogate decisions; the default is all available cores. Results are
  identical for any value — parallelism never changes answers.

  --workers runs tool evaluations on a fleet of worker processes
  speaking a length-prefixed frame protocol over stdio, with per-point
  dispatch through a work-stealing queue. Store lookups stay on the
  coordinator, so a warm store never spawns a worker. Like --jobs, the
  fleet size never changes answers: traces are byte-identical to a
  serial run, and a journal written under one fleet size resumes under
  any other. --jobs and --workers are mutually exclusive.

  --store persists every successful tool run into a content-addressed
  on-disk store under <dir>; repeated evaluations of the same sources,
  configuration, and design point are answered from disk. For explore,
  --store also journals optimizer state each generation so an
  interrupted run can be continued with --resume <dir>, which replays
  the journal and produces the same result as an uninterrupted run.

  --trace-out writes the run's observability spine — every attempt,
  store hit, generation boundary, and surrogate decision in canonical
  order — as versioned JSON Lines (schema `dovado-trace` v2). The
  stream is byte-identical for any --jobs value.

  --explorer picks the exploration strategy (--algorithm is an alias):
  nsga2 (default), random sampling, wsga (weighted-sum GA; aliases
  weighted-sum, ws), exhaustive enumeration, sa (simulated annealing;
  alias annealing), bayes (acquisition over the NW surrogate), or auto —
  portfolio selection that races the candidates on a cheap
  synthesis-only budget, commits to the winner, and journals the
  decision so --resume replays it instead of re-racing.

  DOVADO_BACKEND=mock runs every tool call on the scripted mock
  backend instead of the simulated Vivado.

  serve runs a multi-tenant exploration daemon on a TCP socket speaking
  line-delimited JSON: submit jobs with `dovado submit` (or any client),
  watch their trace v2 event stream live, and share one sharded,
  capacity-bounded evaluation store across tenants (--root; eviction
  under --store-capacity only ever causes re-computation, never wrong
  answers). Slots are granted tenant-fairly by stride scheduling
  weighted by --priority.

PARAM SPECS:
  lo:hi          integer range            (e.g. DEPTH=2:1000)
  lo:hi:step     stepped range            (e.g. DEPTH=2:1000:2)
  pow2:a:b       powers of two 2^a..2^b   (e.g. SIZE=pow2:10:16)
  bool           {0, 1}
  v1,v2,...      explicit list            (e.g. WIDTH=8,16,32)

METRICS: lut, ff, bram, uram, dsp, carry, io, bufg, fmax, power
"
    .to_string()
}

fn cmd_parts(out: &mut String) -> Result<(), String> {
    let catalog = Catalog::builtin();
    let _ = writeln!(
        out,
        "{:<26} {:<22} {:>9} {:>9} {:>6} {:>6} {:>6}",
        "part", "family", "LUT", "FF", "BRAM", "URAM", "DSP"
    );
    for p in catalog.parts() {
        let _ = writeln!(
            out,
            "{:<26} {:<22} {:>9} {:>9} {:>6} {:>6} {:>6}",
            p.name,
            p.family.to_string(),
            p.capacity.get(ResourceKind::Lut),
            p.capacity.get(ResourceKind::Register),
            p.capacity.get(ResourceKind::Bram),
            p.capacity.get(ResourceKind::Uram),
            p.capacity.get(ResourceKind::Dsp),
        );
    }
    Ok(())
}

fn cmd_parse(files: &[String], out: &mut String) -> Result<(), String> {
    if files.is_empty() {
        return Err("parse: no files given".into());
    }
    for path in files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let lang = language_of(path)?;
        let (file, diags) =
            dovado_hdl::parse_source(lang, &text).map_err(|e| format!("{path}: {e}"))?;
        let _ = writeln!(out, "{path} ({lang}):");
        for d in diags.iter() {
            let _ = writeln!(out, "  {d}");
        }
        for m in &file.modules {
            let _ = writeln!(out, "  module {} [{}]", m.name, m.language);
            for p in &m.parameters {
                let kind = if p.local { "localparam" } else { "parameter" };
                let default = p
                    .default
                    .as_ref()
                    .map(|d| format!(" = {d}"))
                    .unwrap_or_default();
                let _ = writeln!(out, "    {kind} {}{default}", p.name);
            }
            for port in &m.ports {
                let _ = writeln!(
                    out,
                    "    port {} : {} {}",
                    port.name, port.direction, port.ty
                );
            }
            if let Some(clk) = m.clock_port() {
                let _ = writeln!(out, "    clock candidate: {}", clk.name);
            }
        }
        for pkg in &file.packages {
            let _ = writeln!(out, "  package {}", pkg.name);
        }
    }
    Ok(())
}

/// Shared flags of evaluate/explore.
struct CommonArgs {
    sources: Vec<HdlSource>,
    top: String,
    eval: EvalConfig,
}

fn parse_common(args: &[String]) -> Result<(CommonArgs, Vec<(String, String)>), String> {
    let mut sources = Vec::new();
    let mut top = None;
    let mut project: Option<String> = None;
    let mut eval = EvalConfig::default();
    let mut rest: Vec<(String, String)> = Vec::new();

    let mut i = 0usize;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{flag}: missing value"))
        };
        match flag {
            "--source" => {
                let path = value(i)?;
                let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
                let lang = language_of(&path)?;
                let name = path.rsplit('/').next().unwrap_or(&path).to_string();
                sources.push(HdlSource::new(name, lang, text));
                i += 2;
            }
            "--project" => {
                project = Some(value(i)?);
                i += 2;
            }
            "--top" => {
                top = Some(value(i)?);
                i += 2;
            }
            "--part" => {
                eval.part = value(i)?;
                i += 2;
            }
            "--period" => {
                eval.target_period_ns = value(i)?
                    .parse()
                    .map_err(|_| "--period: not a number".to_string())?;
                i += 2;
            }
            "--step" => {
                eval.step = match value(i)?.as_str() {
                    "synth" | "synthesis" => FlowStep::Synthesis,
                    "impl" | "implementation" => FlowStep::Implementation,
                    other => return Err(format!("--step: unknown step `{other}`")),
                };
                i += 2;
            }
            "--synth-directive" => {
                eval.synth_directive = value(i)?;
                i += 2;
            }
            "--impl-directive" => {
                eval.impl_directive = value(i)?;
                i += 2;
            }
            "--no-incremental" => {
                eval.incremental = false;
                i += 1;
            }
            _ => {
                // Deferred to the subcommand (may take a value).
                if flag.starts_with("--") {
                    let v = args.get(i + 1).cloned().unwrap_or_default();
                    let takes_value = !v.starts_with("--") && !v.is_empty();
                    rest.push((
                        flag.to_string(),
                        if takes_value { v } else { String::new() },
                    ));
                    i += if takes_value { 2 } else { 1 };
                } else {
                    return Err(format!("unexpected argument `{flag}`"));
                }
            }
        }
    }
    if let Some(dir) = &project {
        // A project tree is a complete source set: catalog it, take the
        // dependency-ordered sources, and let the graph infer the top
        // unless --top overrides it.
        if !sources.is_empty() {
            return Err("--project and --source are mutually exclusive".into());
        }
        let (tree_sources, tree_top) =
            crate::flow::load_project_tree(std::path::Path::new(dir), top.as_deref())
                .map_err(|e| format!("--project: {e}"))?;
        sources = tree_sources;
        top = Some(tree_top);
    }
    if sources.is_empty() {
        return Err("missing --source (or --project)".into());
    }
    let top = top.ok_or_else(|| "missing --top".to_string())?;
    Ok((CommonArgs { sources, top, eval }, rest))
}

/// Parses a `--jobs` value: worker-thread cap for parallel phases
/// (batch tool runs, batch surrogate decisions). Without the flag, all
/// available cores are used. Validation lives in the engine
/// ([`crate::engine::validate_jobs`]) so every entry point — CLI or
/// library — rejects a zero-worker pool the same way instead of letting
/// it reach the thread-pool builder.
fn parse_jobs(value: &str) -> Result<usize, String> {
    let n: usize = value
        .parse()
        .map_err(|_| "--jobs: not a number".to_string())?;
    crate::engine::validate_jobs(n).map_err(|e| e.to_string())
}

/// Parses a `--workers` value: the distributed fleet size. Shares the
/// engine's pool-size validator with `--jobs`
/// ([`crate::engine::validate_workers`]), so a zero-worker fleet is
/// rejected with the same wording at every entry point.
fn parse_workers(value: &str) -> Result<usize, String> {
    let n: usize = value
        .parse()
        .map_err(|_| "--workers: not a number".to_string())?;
    crate::engine::validate_workers(n).map_err(|e| e.to_string())
}

/// Parses a `--store-capacity` value: the entry-count bound on the
/// persistent store. Shares the engine's validator
/// ([`crate::engine::validate_store_capacity`]) with the programmatic
/// path, so a zero-entry bound is rejected with the same wording at
/// every entry point.
fn parse_store_capacity(value: &str) -> Result<usize, String> {
    let n: usize = value
        .parse()
        .map_err(|_| "--store-capacity: not a number".to_string())?;
    crate::engine::validate_store_capacity(Some(n)).map_err(|e| e.to_string())?;
    Ok(n)
}

/// Builds a distributed worker fleet for `--workers`: `workers` child
/// processes running `dovado worker` (or in-process serve threads with
/// the internal `--worker-transport thread`, used by tests, which must
/// not re-exec their own binary). The fault plan stays coordinator-side;
/// workers are always clean.
fn build_fleet(
    eval: &EvalConfig,
    workers: usize,
    transport: &str,
) -> Result<std::sync::Arc<crate::backend::RemoteBackend>, String> {
    let kind = match std::env::var("DOVADO_BACKEND").ok().as_deref() {
        Some("mock") => "mock",
        None | Some("") | Some("sim") => "vivado-sim",
        Some(other) => return Err(format!("DOVADO_BACKEND: unknown backend `{other}`")),
    };
    let spec = format!("{kind}:{}", eval.seed);
    let remote = match transport {
        "thread" => crate::worker::thread_fleet(&spec, workers),
        "process" => {
            let exe = std::env::current_exe().map_err(|e| format!("--workers: {e}"))?;
            crate::worker::process_fleet(
                vec![exe.to_string_lossy().into_owned(), "worker".into()],
                &spec,
                workers,
            )
        }
        other => {
            return Err(format!(
                "--worker-transport: unknown transport `{other}` (want thread|process)"
            ))
        }
    }
    .map_err(|e| format!("--workers: {e}"))?;
    Ok(std::sync::Arc::new(
        remote.with_fault_plan(eval.faults.clone()),
    ))
}

/// The `worker` subcommand: serve the distributed-evaluation frame
/// protocol over this process's stdio until the coordinator shuts us
/// down. Nothing human-readable is written to stdout — it carries only
/// protocol frames.
fn cmd_worker() -> Result<(), String> {
    crate::worker::serve_stdio().map_err(|e| format!("worker: {e}"))
}

/// One summary line for the worker fleet's lifecycle side channel.
fn worker_summary(bus: &crate::obs::EventBus, workers: usize) -> String {
    let events = bus.worker_events();
    let count = |k: &str| {
        events
            .iter()
            .filter(|e| matches!(e, crate::obs::ObsEvent::Worker { kind, .. } if *kind == k))
            .count()
    };
    format!(
        "{workers} worker(s): {} spawned, {} steal(s), {} death(s), {} requeue(d)",
        count("spawned"),
        count("stole"),
        count("died"),
        count("requeued"),
    )
}

/// Runs `op` under a scoped thread pool capped at `jobs` workers, or
/// directly (all cores) when no cap was requested.
fn run_with_jobs<R>(jobs: Option<usize>, op: impl FnOnce() -> R) -> Result<R, String> {
    match jobs {
        None => Ok(op()),
        Some(n) => {
            let n = crate::engine::validate_jobs(n).map_err(|e| e.to_string())?;
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .map_err(|e| format!("--jobs: {e}"))?;
            Ok(pool.install(op))
        }
    }
}

/// Selects the tool backend from `DOVADO_BACKEND`: `mock` runs every
/// tool call on the scripted mock; unset (or `sim`) keeps the default
/// simulated Vivado. Anything else is rejected rather than silently
/// simulated.
fn backend_from_env(
    eval: &EvalConfig,
) -> Result<Option<std::sync::Arc<dyn crate::backend::ToolBackend>>, String> {
    match std::env::var("DOVADO_BACKEND").ok().as_deref() {
        Some("mock") => Ok(Some(std::sync::Arc::new(
            crate::backend::MockBackend::with_faults(eval.seed, eval.faults.clone()),
        ))),
        None | Some("") | Some("sim") => Ok(None),
        Some(other) => Err(format!("DOVADO_BACKEND: unknown backend `{other}`")),
    }
}

/// Serializes a spine snapshot as JSON Lines to `path`.
fn write_trace_file(path: &str, snapshot: &crate::obs::SpineSnapshot) -> Result<(), String> {
    std::fs::write(path, crate::obs::jsonl_string(snapshot)).map_err(|e| format!("{path}: {e}"))
}

fn cmd_evaluate(args: &[String], out: &mut String) -> Result<(), String> {
    let (common, rest) = parse_common(args)?;
    let mut assignments: Vec<(String, i64)> = Vec::new();
    let mut jobs: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut transport = "process".to_string();
    let mut store_dir: Option<String> = None;
    let mut trace_out: Option<String> = None;
    for (flag, value) in &rest {
        match flag.as_str() {
            "--set" => {
                let (k, v) = value
                    .split_once('=')
                    .ok_or_else(|| format!("--set: want NAME=VALUE, got `{value}`"))?;
                let vi: i64 = v
                    .parse()
                    .map_err(|_| format!("--set: non-integer value `{v}`"))?;
                assignments.push((k.to_string(), vi));
            }
            "--jobs" => jobs = Some(parse_jobs(value)?),
            "--workers" => workers = Some(parse_workers(value)?),
            "--worker-transport" => transport = value.clone(),
            "--store" => store_dir = Some(value.clone()),
            "--trace-out" => trace_out = Some(value.clone()),
            other => return Err(format!("evaluate: unknown flag `{other}`")),
        }
    }
    if jobs.is_some() && workers.is_some() {
        return Err("--jobs and --workers are mutually exclusive".into());
    }

    let remote = match workers {
        Some(w) => Some(build_fleet(&common.eval, w, &transport)?),
        None => None,
    };
    let mut evaluator = match (&remote, backend_from_env(&common.eval)?) {
        (Some(fleet), _) => {
            let backend: std::sync::Arc<dyn crate::backend::ToolBackend> = fleet.clone();
            crate::flow::Evaluator::with_backend(common.sources, &common.top, common.eval, backend)
        }
        (None, Some(backend)) => {
            crate::flow::Evaluator::with_backend(common.sources, &common.top, common.eval, backend)
        }
        (None, None) => crate::flow::Evaluator::new(common.sources, &common.top, common.eval),
    }
    .map_err(|e| e.to_string())?;
    if let Some(fleet) = &remote {
        crate::worker::attach_lifecycle(fleet, evaluator.spine());
    }
    if let Some(dir) = &store_dir {
        let store =
            EvalStore::open(std::path::Path::new(dir)).map_err(|e| format!("--store: {e}"))?;
        evaluator.attach_store(store);
    }
    let pairs: Vec<(&str, i64)> = assignments.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let point = DesignPoint::from_pairs(&pairs);
    let eval = run_with_jobs(jobs, || evaluator.evaluate(&point))?.map_err(|e| e.to_string())?;

    let _ = writeln!(out, "design point : {point}");
    for kind in ResourceKind::ALL {
        let v = eval.utilization.get(kind);
        if v > 0 {
            let _ = writeln!(out, "{:<13}: {v}", kind.to_string());
        }
    }
    let _ = writeln!(
        out,
        "{:<13}: {:.3} ns (target {:.3} ns)",
        "WNS", eval.wns_ns, eval.period_ns
    );
    let _ = writeln!(out, "{:<13}: {:.2} MHz", "Fmax", eval.fmax_mhz);
    let _ = writeln!(
        out,
        "{:<13}: {:.0} simulated s",
        "tool time", eval.tool_time_s
    );
    if store_dir.is_some() {
        let served = if evaluator.trace_summary().store_hits > 0 {
            "persistent store (no tool run)"
        } else {
            "tool run (result stored for reuse)"
        };
        let _ = writeln!(out, "{:<13}: {served}", "answered by");
    }
    if let Some(w) = workers {
        let _ = writeln!(
            out,
            "{:<13}: {}",
            "fleet",
            worker_summary(evaluator.spine(), w)
        );
    }
    if let Some(path) = &trace_out {
        write_trace_file(path, &evaluator.snapshot())?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(())
}

fn cmd_explore(args: &[String], out: &mut String) -> Result<(), String> {
    let (common, rest) = parse_common(args)?;
    let mut space = ParameterSpace::new();
    let mut metrics: Option<MetricSet> = None;
    let mut generations = 15u32;
    let mut pop = 20usize;
    let mut seed = 0u64;
    let mut surrogate: Option<usize> = None;
    let mut deadline: Option<f64> = None;
    let mut plot = false;
    let mut explorer = crate::dse::Explorer::Nsga2;
    let mut csv_path: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut transport = "process".to_string();
    let mut store_dir: Option<String> = None;
    let mut store_capacity: Option<usize> = None;
    let mut resume_dir: Option<String> = None;
    let mut trace_out: Option<String> = None;

    for (flag, value) in &rest {
        match flag.as_str() {
            "--param" => {
                let (name, spec) = value
                    .split_once('=')
                    .ok_or_else(|| format!("--param: want NAME=SPEC, got `{value}`"))?;
                space = space.with(name, parse_domain(spec)?);
            }
            "--metric" => metrics = Some(parse_metrics(value)?),
            "--generations" => {
                generations = value
                    .parse()
                    .map_err(|_| "--generations: not a number".to_string())?
            }
            "--pop" => {
                pop = value
                    .parse()
                    .map_err(|_| "--pop: not a number".to_string())?
            }
            "--seed" => {
                seed = value
                    .parse()
                    .map_err(|_| "--seed: not a number".to_string())?
            }
            "--surrogate" => {
                surrogate = Some(
                    value
                        .parse()
                        .map_err(|_| "--surrogate: not a number".to_string())?,
                )
            }
            "--deadline" => {
                deadline = Some(
                    value
                        .parse()
                        .map_err(|_| "--deadline: not a number".to_string())?,
                )
            }
            "--plot" => plot = true,
            "--csv" => csv_path = Some(value.clone()),
            "--jobs" => jobs = Some(parse_jobs(value)?),
            "--workers" => workers = Some(parse_workers(value)?),
            "--worker-transport" => transport = value.clone(),
            "--store" => store_dir = Some(value.clone()),
            "--store-capacity" => store_capacity = Some(parse_store_capacity(value)?),
            "--resume" => resume_dir = Some(value.clone()),
            "--trace-out" => trace_out = Some(value.clone()),
            // `--algorithm` predates the portfolio and stays as an alias.
            "--explorer" | "--algorithm" => {
                explorer = crate::dse::Explorer::parse_token(value)
                    .ok_or_else(|| format!("{flag}: unknown explorer `{value}`"))?
            }
            other => return Err(format!("explore: unknown flag `{other}`")),
        }
    }
    if space.dim() == 0 {
        return Err("explore: at least one --param is required".into());
    }
    if jobs.is_some() && workers.is_some() {
        return Err("--jobs and --workers are mutually exclusive".into());
    }
    let metrics = metrics.unwrap_or_else(MetricSet::area_frequency);
    if store_capacity.is_some() && store_dir.is_none() && resume_dir.is_none() {
        return Err("--store-capacity requires --store (or --resume)".into());
    }
    let persist = match (&store_dir, &resume_dir) {
        (None, None) => None,
        (Some(s), Some(r)) if s != r => {
            return Err("--store and --resume point at different directories".into())
        }
        (s, r) => {
            let dir = r.clone().or_else(|| s.clone()).unwrap();
            Some(PersistConfig {
                dir: PathBuf::from(dir),
                resume: resume_dir.is_some(),
                journal_every: 1,
                store_capacity,
            })
        }
    };

    let remote = match workers {
        Some(w) => Some(build_fleet(&common.eval, w, &transport)?),
        None => None,
    };
    let tool = match (&remote, backend_from_env(&common.eval)?) {
        (Some(fleet), _) => {
            let backend: std::sync::Arc<dyn crate::backend::ToolBackend> = fleet.clone();
            Dovado::with_backend(common.sources, &common.top, space, common.eval, backend)
        }
        (None, Some(backend)) => {
            Dovado::with_backend(common.sources, &common.top, space, common.eval, backend)
        }
        (None, None) => Dovado::new(common.sources, &common.top, space, common.eval),
    }
    .map_err(|e| e.to_string())?;
    if let Some(fleet) = &remote {
        crate::worker::attach_lifecycle(fleet, tool.evaluator().spine());
    }
    let termination = match deadline {
        Some(d) => Termination::Any(vec![
            Termination::Generations(generations),
            Termination::SoftDeadline(d),
        ]),
        None => Termination::Generations(generations),
    };
    let report = run_with_jobs(jobs, || {
        let cfg = DseConfig {
            explorer,
            algorithm: Nsga2Config {
                pop_size: pop,
                seed,
                ..Default::default()
            },
            termination,
            metrics,
            surrogate: surrogate.map(|m| SurrogateConfig {
                pretrain_samples: m,
                ..Default::default()
            }),
            parallel: true,
            jobs: None,
            workers,
        };
        match &persist {
            Some(p) => tool.explore_persistent(&cfg, p),
            None => tool.explore(&cfg),
        }
    })?
    .map_err(|e| e.to_string())?;

    let _ = writeln!(out, "{}", report.summary());
    if let Some(sel) = &report.selection {
        let race = if sel.candidates.is_empty() {
            "no race needed".to_string()
        } else {
            format!(
                "{} low-fidelity run(s), {:.1}s",
                sel.lowfi_runs, sel.lowfi_time_s
            )
        };
        let _ = writeln!(out, "explorer     : {} (auto: {race})", sel.explorer);
    }
    if let Some(w) = workers {
        let _ = writeln!(
            out,
            "fleet        : {}",
            worker_summary(tool.evaluator().spine(), w)
        );
    }
    if persist.is_some() {
        let served = if report.trace.store_hits > 0 {
            format!(
                "persistent store ({} hit(s), {} tool attempt(s))",
                report.trace.store_hits, report.trace.attempts
            )
        } else {
            format!(
                "tool runs ({} attempt(s), results stored for reuse)",
                report.trace.attempts
            )
        };
        let _ = writeln!(out, "answered by  : {served}");
    }
    let flow_log = report.flow_log(20);
    if !flow_log.is_empty() {
        let _ = writeln!(out, "flow events (failed/retried attempts):");
        let _ = write!(out, "{flow_log}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", report.configuration_table());
    let _ = writeln!(out, "{}", report.metric_table());
    if plot && report.metrics.len() >= 2 {
        let _ = writeln!(
            out,
            "{}",
            report.scatter(0, report.metrics.len() - 1, 56, 14)
        );
    }
    if let Some(path) = csv_path {
        let mut w = crate::csv::CsvWriter::new();
        let mut header: Vec<String> = vec!["label".into()];
        if let Some(first) = report.pareto.first() {
            header.extend(first.point.names().iter().cloned());
        }
        header.extend(report.metrics.metrics().iter().map(|m| m.label()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        w.header(&header_refs);
        for (i, e) in report.pareto.iter().enumerate() {
            let mut row: Vec<String> = vec![crate::results::point_label(i)];
            row.extend(e.point.values().iter().map(|v| v.to_string()));
            row.extend(e.values.iter().map(|v| format!("{v:.3}")));
            w.row(&row);
        }
        std::fs::write(&path, w.finish()).map_err(|e| format!("{path}: {e}"))?;
        let _ = writeln!(out, "wrote {path}");
    }
    if let Some(path) = &trace_out {
        write_trace_file(path, &report.spine)?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(())
}

fn cmd_demo(args: &[String], out: &mut String) -> Result<(), String> {
    let name = args
        .first()
        .ok_or_else(|| "demo: missing case-study name".to_string())?;
    let cs = match name.as_str() {
        "cv32e40p" | "fifo" => casestudies::cv32e40p::case_study(),
        "corundum" => casestudies::corundum::case_study(),
        "neorv32" => casestudies::neorv32::case_study(),
        "tirex" => casestudies::tirex::case_study(),
        other => return Err(format!("demo: unknown case study `{other}`")),
    };
    let _ = writeln!(
        out,
        "case study: {} (top {}, part {})",
        cs.name, cs.top, cs.part
    );
    let _ = writeln!(out, "space     : {}", cs.space);
    let tool = cs.dovado().map_err(|e| e.to_string())?;
    let report = tool
        .explore(&DseConfig {
            algorithm: Nsga2Config {
                pop_size: 14,
                seed: 1,
                ..Default::default()
            },
            termination: Termination::Generations(8),
            metrics: cs.metrics.clone(),
            surrogate: None,
            parallel: true,
            ..Default::default()
        })
        .map_err(|e| e.to_string())?;
    let _ = writeln!(out, "{}", report.summary());
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", report.configuration_table());
    let _ = writeln!(out, "{}", report.metric_table());
    Ok(())
}

/// The `serve` subcommand: run the multi-tenant DSE daemon until a
/// `shutdown` request arrives. The listening line goes straight to
/// stdout (not the buffered writer) so wrappers can scrape the bound
/// address before the daemon blocks.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut cfg = crate::serve::ServeConfig::default();
    let mut i = 0usize;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag}: missing value"))?;
        match flag {
            "--listen" => cfg.addr = value.clone(),
            "--slots" => {
                cfg.slots = value
                    .parse()
                    .map_err(|_| "--slots: not a number".to_string())?;
            }
            "--root" => cfg.root = Some(PathBuf::from(value)),
            "--store-capacity" => cfg.store_capacity = Some(parse_store_capacity(value)?),
            other => return Err(format!("serve: unknown flag `{other}`")),
        }
        i += 2;
    }
    if cfg.store_capacity.is_some() && cfg.root.is_none() {
        return Err("serve: --store-capacity requires --root".into());
    }
    let mut server = crate::serve::Server::start(cfg).map_err(|e| e.to_string())?;
    println!(
        "dovado serve: listening on {} ({} slot(s))",
        server.addr(),
        server.slots()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait();
    Ok(())
}

/// Parses the `--addr` flag shared by the client-side subcommands,
/// returning `(addr, remaining args)`.
fn split_addr(cmd: &str, args: &[String]) -> Result<(String, Vec<String>), String> {
    let mut addr = None;
    let mut rest = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        if args[i] == "--addr" {
            addr = Some(
                args.get(i + 1)
                    .ok_or_else(|| "--addr: missing value".to_string())?
                    .clone(),
            );
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    let addr = addr.ok_or_else(|| format!("{cmd}: --addr is required"))?;
    Ok((addr, rest))
}

/// The `submit` subcommand: send one job to a serve daemon, stream its
/// events to completion, and report the outcome. With `--trace-out`,
/// the streamed event lines are sorted into canonical key order and
/// written as a trace v2 file byte-compatible with `explore
/// --trace-out`.
fn cmd_submit(args: &[String], out: &mut String) -> Result<(), String> {
    use crate::serve::{protocol, Client, JobSpec, Json};
    let (addr, rest) = split_addr("submit", args)?;
    let mut spec = JobSpec::default();
    let mut tenant = "anonymous".to_string();
    let mut priority = 1u32;
    let mut project: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut i = 0usize;
    while i < rest.len() {
        let flag = rest[i].as_str();
        if flag == "--no-store" {
            spec.use_store = false;
            i += 1;
            continue;
        }
        let value = rest
            .get(i + 1)
            .ok_or_else(|| format!("{flag}: missing value"))?;
        match flag {
            "--source" => {
                let text = std::fs::read_to_string(value).map_err(|e| format!("{value}: {e}"))?;
                spec.sources.push((value.clone(), text));
            }
            "--project" => project = Some(value.clone()),
            "--top" => spec.top = value.clone(),
            "--part" => spec.part = Some(value.clone()),
            "--period" => {
                spec.period_ns = Some(value.parse().map_err(|_| "--period: not a number")?);
            }
            "--param" => {
                let (name, domain) = value
                    .split_once('=')
                    .ok_or_else(|| format!("--param: want NAME=SPEC, got `{value}`"))?;
                parse_domain(domain)?;
                spec.params.push((name.to_string(), domain.to_string()));
            }
            "--metric" => {
                parse_metrics(value)?;
                spec.metrics = Some(value.clone());
            }
            "--generations" => {
                spec.generations = value.parse().map_err(|_| "--generations: not a number")?;
            }
            "--pop" => spec.pop = value.parse().map_err(|_| "--pop: not a number")?,
            "--seed" => spec.seed = value.parse().map_err(|_| "--seed: not a number")?,
            "--surrogate" => {
                spec.surrogate = Some(value.parse().map_err(|_| "--surrogate: not a number")?);
            }
            "--explorer" | "--algorithm" => {
                crate::dse::Explorer::parse_token(value)
                    .ok_or_else(|| format!("{flag}: unknown explorer `{value}`"))?;
                spec.explorer = value.clone();
            }
            "--backend" => spec.backend = value.clone(),
            "--tenant" => tenant = value.clone(),
            "--priority" => {
                priority = value.parse().map_err(|_| "--priority: not a number")?;
            }
            "--trace-out" => trace_out = Some(value.clone()),
            other => return Err(format!("submit: unknown flag `{other}`")),
        }
        i += 2;
    }
    if let Some(dir) = &project {
        // Ship the whole cataloged tree to the daemon in compile order;
        // the graph supplies the top unless --top overrode it.
        if !spec.sources.is_empty() {
            return Err("submit: --project and --source are mutually exclusive".into());
        }
        let cat = dovado_hdl::catalog::SourceCatalog::walk(std::path::Path::new(dir))
            .map_err(|e| format!("--project: {e}"))?;
        for f in cat.compile_order() {
            spec.sources.push((f.path.clone(), f.text.clone()));
        }
        if spec.top.is_empty() {
            spec.top = cat.infer_top().map_err(|e| format!("--project: {e}"))?;
        }
    }
    if spec.sources.is_empty() {
        return Err("submit: at least one --source (or --project) is required".into());
    }
    if spec.top.is_empty() {
        return Err("submit: --top is required".into());
    }
    if spec.params.is_empty() {
        return Err("submit: at least one --param is required".into());
    }
    let mut client = Client::connect(&addr).map_err(|e| format!("{addr}: {e}"))?;
    client.hello(&tenant)?;
    let job = client.submit(&tenant, priority, &spec)?;
    let _ = writeln!(out, "submitted {job} as {tenant}");
    let outcome = client.stream_until_done()?;
    if let Some(path) = trace_out {
        let mut events: Vec<(crate::obs::EventKey, String)> = outcome
            .lines
            .iter()
            .filter_map(|l| protocol::parse_event_line(l).map(|(k, _)| (k, l.clone())))
            .collect();
        events.sort_by_key(|(k, _)| *k);
        let mut text = format!("{}\n", crate::obs::trace_header());
        for (_, line) in events {
            text.push_str(&line);
            text.push('\n');
        }
        if let Some(summary) = outcome.lines.iter().rev().find(|l| {
            Json::parse(l).is_some_and(|v| v.get("type").and_then(Json::as_str) == Some("summary"))
        }) {
            text.push_str(summary);
            text.push('\n');
        }
        std::fs::write(&path, text).map_err(|e| format!("{path}: {e}"))?;
    }
    let totals = protocol::fold_stream(outcome.lines.iter().map(String::as_str));
    let _ = writeln!(
        out,
        "{job}: {} after {} generation(s), {} attempt(s), {} store hit(s), {:.1} simulated tool s",
        outcome.status(),
        outcome
            .done
            .get("generations")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        totals.summary.attempts,
        totals.summary.store_hits,
        totals.tool_time_s,
    );
    if let Some(error) = outcome.done.get("error").and_then(Json::as_str) {
        let _ = writeln!(out, "{job}: error: {error}");
    }
    if let Some(pareto) = outcome.done.get("pareto").and_then(Json::as_arr) {
        let _ = writeln!(out, "pareto front ({} point(s)):", pareto.len());
        for entry in pareto {
            let point = entry.get("point").and_then(Json::as_str).unwrap_or("?");
            let values: Vec<String> = entry
                .get("values")
                .and_then(Json::as_arr)
                .map(|vs| {
                    vs.iter()
                        .map(|v| match v.as_f64() {
                            Some(n) => format!("{n:.3}"),
                            None => "null".into(),
                        })
                        .collect()
                })
                .unwrap_or_default();
            let _ = writeln!(out, "  {point} -> [{}]", values.join(", "));
        }
    }
    if outcome.status() == "failed" {
        return Err(format!("{job} failed"));
    }
    Ok(())
}

/// The `status` subcommand: print the daemon's one-line JSON status.
fn cmd_status(args: &[String], out: &mut String) -> Result<(), String> {
    let (addr, rest) = split_addr("status", args)?;
    if let Some(extra) = rest.first() {
        return Err(format!("status: unknown flag `{extra}`"));
    }
    let mut client = crate::serve::Client::connect(&addr).map_err(|e| format!("{addr}: {e}"))?;
    client
        .send_line("{\"cmd\":\"status\"}")
        .map_err(|e| format!("send: {e}"))?;
    let line = client
        .read_line()
        .map_err(|e| format!("read: {e}"))?
        .ok_or("server closed the connection")?;
    let _ = writeln!(out, "{line}");
    Ok(())
}

/// The `shutdown` subcommand: stop a running daemon.
fn cmd_shutdown(args: &[String], out: &mut String) -> Result<(), String> {
    let (addr, rest) = split_addr("shutdown", args)?;
    if let Some(extra) = rest.first() {
        return Err(format!("shutdown: unknown flag `{extra}`"));
    }
    let mut client = crate::serve::Client::connect(&addr).map_err(|e| format!("{addr}: {e}"))?;
    client.shutdown()?;
    let _ = writeln!(out, "daemon at {addr} is shutting down");
    Ok(())
}

pub(crate) fn language_of(path: &str) -> Result<Language, String> {
    path.rsplit('.')
        .next()
        .and_then(Language::from_extension)
        .ok_or_else(|| format!("{path}: unknown HDL extension (want .vhd/.vhdl/.v/.sv)"))
}

/// Parses a `--param` domain spec (see [`usage`]).
pub fn parse_domain(spec: &str) -> Result<Domain, String> {
    if spec == "bool" {
        return Ok(Domain::Bool);
    }
    if let Some(rest) = spec.strip_prefix("pow2:") {
        let (a, b) = rest
            .split_once(':')
            .ok_or_else(|| format!("pow2 spec wants pow2:a:b, got `{spec}`"))?;
        let min_exp: u32 = a.parse().map_err(|_| format!("bad exponent `{a}`"))?;
        let max_exp: u32 = b.parse().map_err(|_| format!("bad exponent `{b}`"))?;
        let d = Domain::PowerOfTwo { min_exp, max_exp };
        d.validate().map_err(|e| e.to_string())?;
        return Ok(d);
    }
    if spec.contains(':') {
        let parts: Vec<&str> = spec.split(':').collect();
        let lo: i64 = parts[0]
            .parse()
            .map_err(|_| format!("bad bound `{}`", parts[0]))?;
        let hi: i64 = parts[1]
            .parse()
            .map_err(|_| format!("bad bound `{}`", parts[1]))?;
        let step: i64 = match parts.len() {
            2 => 1,
            3 => parts[2]
                .parse()
                .map_err(|_| format!("bad step `{}`", parts[2]))?,
            _ => return Err(format!("range spec wants lo:hi[:step], got `{spec}`")),
        };
        let d = Domain::Range {
            lo: lo.min(hi),
            hi: hi.max(lo),
            step,
        };
        d.validate().map_err(|e| e.to_string())?;
        return Ok(d);
    }
    if spec.contains(',') {
        let mut values = Vec::new();
        for v in spec.split(',') {
            values.push(
                v.trim()
                    .parse::<i64>()
                    .map_err(|_| format!("bad value `{v}`"))?,
            );
        }
        values.sort_unstable();
        values.dedup();
        let d = Domain::Explicit(values);
        d.validate().map_err(|e| e.to_string())?;
        return Ok(d);
    }
    // A single value: a degenerate range.
    let v: i64 = spec
        .parse()
        .map_err(|_| format!("unrecognized domain spec `{spec}`"))?;
    Ok(Domain::Range {
        lo: v,
        hi: v,
        step: 1,
    })
}

/// Parses a `--metric` list such as `lut,ff,fmax`.
pub fn parse_metrics(spec: &str) -> Result<MetricSet, String> {
    let mut metrics = Vec::new();
    for item in spec.split(',') {
        let m = match item.trim().to_ascii_lowercase().as_str() {
            "lut" | "luts" => Metric::Utilization(ResourceKind::Lut),
            "ff" | "register" | "registers" | "reg" => Metric::Utilization(ResourceKind::Register),
            "bram" | "brams" => Metric::Utilization(ResourceKind::Bram),
            "uram" | "urams" => Metric::Utilization(ResourceKind::Uram),
            "dsp" | "dsps" => Metric::Utilization(ResourceKind::Dsp),
            "carry" => Metric::Utilization(ResourceKind::Carry),
            "io" => Metric::Utilization(ResourceKind::Io),
            "bufg" => Metric::Utilization(ResourceKind::Bufg),
            "fmax" | "freq" | "frequency" => Metric::Fmax,
            "power" | "pwr" => Metric::Power,
            other => return Err(format!("unknown metric `{other}`")),
        };
        if metrics.contains(&m) {
            return Err(format!("duplicate metric `{item}`"));
        }
        metrics.push(m);
    }
    if metrics.is_empty() {
        return Err("empty metric list".into());
    }
    Ok(MetricSet::new(metrics))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("dovado-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const FIFO: &str = "module fifo_v3 #(parameter DEPTH = 8, parameter DATA_WIDTH = 32)\
                        (input logic clk_i); endmodule";

    #[test]
    fn help_prints_usage() {
        let mut out = String::new();
        assert_eq!(run(&args(&["help"]), &mut out), 0);
        assert!(out.contains("USAGE"));
        let mut out2 = String::new();
        assert_eq!(run(&[], &mut out2), 0);
        assert!(out2.contains("USAGE"));
    }

    #[test]
    fn unknown_subcommand_errors() {
        let mut out = String::new();
        assert_eq!(run(&args(&["frobnicate"]), &mut out), 1);
        assert!(out.contains("unknown subcommand"));
    }

    #[test]
    fn parts_lists_catalog() {
        let mut out = String::new();
        assert_eq!(run(&args(&["parts"]), &mut out), 0);
        assert!(out.contains("xc7k70tfbv676-1"));
        assert!(out.contains("xczu3eg"));
    }

    #[test]
    fn parse_prints_interface() {
        let path = write_temp("p.sv", FIFO);
        let mut out = String::new();
        assert_eq!(run(&args(&["parse", &path]), &mut out), 0);
        assert!(out.contains("module fifo_v3"));
        assert!(out.contains("parameter DEPTH"));
        assert!(out.contains("clock candidate: clk_i"));
    }

    #[test]
    fn parse_missing_file_errors() {
        let mut out = String::new();
        assert_eq!(run(&args(&["parse", "/nope/ghost.sv"]), &mut out), 1);
    }

    #[test]
    fn evaluate_end_to_end() {
        let path = write_temp("e.sv", FIFO);
        let mut out = String::new();
        let code = run(
            &args(&[
                "evaluate", "--source", &path, "--top", "fifo_v3", "--set", "DEPTH=64", "--part",
                "xc7k70t",
            ]),
            &mut out,
        );
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("Fmax"));
        assert!(out.contains("WNS"));
        assert!(out.contains("DEPTH=64"));
    }

    #[test]
    fn jobs_flag_does_not_change_results() {
        let path = write_temp("j.sv", FIFO);
        let explore = |jobs: &[&str]| {
            let mut a = args(&[
                "explore",
                "--source",
                &path,
                "--top",
                "fifo_v3",
                "--param",
                "DEPTH=2:512:2",
                "--generations",
                "3",
                "--pop",
                "8",
                "--seed",
                "7",
            ]);
            a.extend(jobs.iter().map(|s| s.to_string()));
            let mut out = String::new();
            assert_eq!(run(&a, &mut out), 0, "{out}");
            out
        };
        let capped = explore(&["--jobs", "1"]);
        let free = explore(&[]);
        assert!(capped.contains("non-dominated"), "{capped}");
        assert_eq!(capped, free, "thread cap must not change answers");
    }

    #[test]
    fn jobs_rejects_zero_and_garbage() {
        let path = write_temp("j0.sv", FIFO);
        for bad in ["0", "many"] {
            let mut out = String::new();
            let code = run(
                &args(&[
                    "evaluate", "--source", &path, "--top", "fifo_v3", "--jobs", bad,
                ]),
                &mut out,
            );
            assert_eq!(code, 1, "{out}");
            assert!(out.contains("--jobs"), "{out}");
        }
    }

    #[test]
    fn evaluate_requires_top() {
        let path = write_temp("t.sv", FIFO);
        let mut out = String::new();
        assert_eq!(run(&args(&["evaluate", "--source", &path]), &mut out), 1);
        assert!(out.contains("missing --top"));
    }

    #[test]
    fn explore_end_to_end_with_plot() {
        let path = write_temp("x.sv", FIFO);
        let mut out = String::new();
        let code = run(
            &args(&[
                "explore",
                "--source",
                &path,
                "--top",
                "fifo_v3",
                "--param",
                "DEPTH=2:128:2",
                "--metric",
                "lut,ff,fmax",
                "--generations",
                "4",
                "--pop",
                "8",
                "--plot",
            ]),
            &mut out,
        );
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("non-dominated"));
        assert!(out.contains("Design Point"));
        assert!(out.contains("Fmax[MHz] (y)"), "plot missing:\n{out}");
    }

    #[test]
    fn explore_requires_params() {
        let path = write_temp("y.sv", FIFO);
        let mut out = String::new();
        assert_eq!(
            run(
                &args(&["explore", "--source", &path, "--top", "fifo_v3"]),
                &mut out
            ),
            1
        );
        assert!(out.contains("--param"));
    }

    fn temp_store(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("dovado-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn evaluate_store_answers_second_run_from_disk() {
        let path = write_temp("es.sv", FIFO);
        let store = temp_store("eval-store");
        let eval = || {
            let mut out = String::new();
            let code = run(
                &args(&[
                    "evaluate", "--source", &path, "--top", "fifo_v3", "--set", "DEPTH=32",
                    "--store", &store,
                ]),
                &mut out,
            );
            assert_eq!(code, 0, "{out}");
            out
        };
        let cold = eval();
        assert!(cold.contains("stored for reuse"), "{cold}");
        let warm = eval();
        assert!(warm.contains("persistent store (no tool run)"), "{warm}");
        // Same metrics either way.
        assert!(warm.contains(cold.lines().find(|l| l.contains("Fmax")).unwrap()));
    }

    #[test]
    fn explore_store_then_resume_reproduces_tables() {
        let path = write_temp("xs.sv", FIFO);
        let store = temp_store("explore-store");
        let explore = |last: &[&str]| {
            let mut a = args(&[
                "explore",
                "--source",
                &path,
                "--top",
                "fifo_v3",
                "--param",
                "DEPTH=2:512:2",
                "--generations",
                "3",
                "--pop",
                "8",
                "--seed",
                "7",
            ]);
            a.extend(last.iter().map(|s| s.to_string()));
            let mut out = String::new();
            assert_eq!(run(&a, &mut out), 0, "{out}");
            out
        };
        let cold = explore(&["--store", &store]);
        assert!(cold.contains("answered by"), "{cold}");
        // A warm rerun is answered entirely from the store, and the
        // explore summary says so the same way evaluate does.
        let warm = explore(&["--store", &store]);
        assert!(warm.contains("store hits"), "{warm}");
        assert!(warm.contains("persistent store"), "{warm}");
        assert!(warm.contains("0 tool attempt(s)"), "{warm}");
        // Resuming the finished journal reproduces the same result.
        let resumed = explore(&["--resume", &store]);
        // Tables (everything from the configuration table down) match
        // across all three; the summary lines legitimately differ in
        // their store-hit accounting.
        let tables = |s: &str| s[s.find("Design Point").unwrap()..].to_string();
        assert_eq!(tables(&cold), tables(&warm));
        assert_eq!(tables(&cold), tables(&resumed));
    }

    #[test]
    fn trace_out_writes_versioned_jsonl_for_both_commands() {
        let path = write_temp("to.sv", FIFO);
        let dir = std::env::temp_dir().join(format!("dovado-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let eval_trace = dir.join("eval.jsonl");
        let mut out = String::new();
        let code = run(
            &args(&[
                "evaluate",
                "--source",
                &path,
                "--top",
                "fifo_v3",
                "--set",
                "DEPTH=64",
                "--trace-out",
                eval_trace.to_str().unwrap(),
            ]),
            &mut out,
        );
        assert_eq!(code, 0, "{out}");
        let text = std::fs::read_to_string(&eval_trace).unwrap();
        let first = text.lines().next().unwrap();
        assert!(first.contains("\"schema\":\"dovado-trace\""), "{first}");
        assert!(first.contains("\"version\":2"), "{first}");
        assert!(text.contains("\"type\":\"attempt\""), "{text}");

        let explore_trace = dir.join("explore.jsonl");
        let mut out2 = String::new();
        let code = run(
            &args(&[
                "explore",
                "--source",
                &path,
                "--top",
                "fifo_v3",
                "--param",
                "DEPTH=2:64:2",
                "--generations",
                "2",
                "--pop",
                "6",
                "--trace-out",
                explore_trace.to_str().unwrap(),
            ]),
            &mut out2,
        );
        assert_eq!(code, 0, "{out2}");
        let text = std::fs::read_to_string(&explore_trace).unwrap();
        assert!(text.contains("\"type\":\"generation\""), "{text}");
        assert!(text.lines().last().unwrap().contains("\"summary\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explore_rejects_conflicting_store_and_resume() {
        let path = write_temp("xc.sv", FIFO);
        let mut out = String::new();
        let code = run(
            &args(&[
                "explore",
                "--source",
                &path,
                "--top",
                "fifo_v3",
                "--param",
                "DEPTH=2:8",
                "--store",
                "/tmp/a",
                "--resume",
                "/tmp/b",
            ]),
            &mut out,
        );
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("different directories"), "{out}");
    }

    #[test]
    fn explore_resume_without_journal_errors() {
        let path = write_temp("xr.sv", FIFO);
        let store = temp_store("no-journal");
        let mut out = String::new();
        let code = run(
            &args(&[
                "explore",
                "--source",
                &path,
                "--top",
                "fifo_v3",
                "--param",
                "DEPTH=2:8",
                "--resume",
                &store,
            ]),
            &mut out,
        );
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("journal"), "{out}");
    }

    #[test]
    fn domain_specs() {
        assert_eq!(
            parse_domain("2:1000").unwrap(),
            Domain::Range {
                lo: 2,
                hi: 1000,
                step: 1
            }
        );
        assert_eq!(
            parse_domain("2:1000:2").unwrap(),
            Domain::Range {
                lo: 2,
                hi: 1000,
                step: 2
            }
        );
        assert_eq!(
            parse_domain("pow2:10:16").unwrap(),
            Domain::PowerOfTwo {
                min_exp: 10,
                max_exp: 16
            }
        );
        assert_eq!(parse_domain("bool").unwrap(), Domain::Bool);
        assert_eq!(
            parse_domain("8,32,16").unwrap(),
            Domain::Explicit(vec![8, 16, 32])
        );
        assert_eq!(
            parse_domain("7").unwrap(),
            Domain::Range {
                lo: 7,
                hi: 7,
                step: 1
            }
        );
        assert!(parse_domain("pow2:9").is_err());
        assert!(parse_domain("a:b").is_err());
        assert!(parse_domain("").is_err());
    }

    #[test]
    fn metric_specs() {
        let ms = parse_metrics("lut,ff,fmax").unwrap();
        assert_eq!(ms.len(), 3);
        assert!(parse_metrics("lut,lut").is_err());
        assert!(parse_metrics("warp-cores").is_err());
        assert!(parse_metrics("").is_err());
    }

    /// The committed multi-file fixture tree (VHDL package + body, an
    /// entity with two architectures, a Verilog top) at the repo root.
    fn fixture_tree() -> String {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/fixtures/project_tree"
        )
        .to_string()
    }

    #[test]
    fn evaluate_project_tree_end_to_end() {
        let tree = fixture_tree();
        let mut out = String::new();
        let code = run(
            &args(&["evaluate", "--project", &tree, "--set", "DEPTH=64"]),
            &mut out,
        );
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("Fmax"), "{out}");
        assert!(out.contains("DEPTH=64"), "{out}");
    }

    #[test]
    fn explore_project_tree_with_explicit_top() {
        let tree = fixture_tree();
        let mut out = String::new();
        let code = run(
            &args(&[
                "explore",
                "--project",
                &tree,
                "--top",
                "prj_top",
                "--param",
                "DEPTH=2:64:2",
                "--generations",
                "2",
                "--pop",
                "6",
            ]),
            &mut out,
        );
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("non-dominated"), "{out}");
    }

    #[test]
    fn project_and_source_are_mutually_exclusive() {
        let path = write_temp("ps.sv", FIFO);
        let tree = fixture_tree();
        let mut out = String::new();
        let code = run(
            &args(&["evaluate", "--project", &tree, "--source", &path]),
            &mut out,
        );
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("mutually exclusive"), "{out}");
    }

    #[test]
    fn project_ambiguous_top_names_candidates() {
        // Two unrelated modules in one tree: inference must fail with a
        // sorted candidate list and a --top hint.
        let dir = std::env::temp_dir().join(format!("dovado-cli-ambig-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("z.v"), "module zeta(input wire c); endmodule").unwrap();
        std::fs::write(dir.join("a.v"), "module alpha(input wire c); endmodule").unwrap();
        let mut out = String::new();
        let code = run(
            &args(&["evaluate", "--project", dir.to_str().unwrap()]),
            &mut out,
        );
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("ambiguous top module"), "{out}");
        assert!(out.contains("alpha, zeta"), "{out}");
        assert!(out.contains("--top"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn project_store_hits_on_rerun_and_misses_after_dependency_edit() {
        // Copy the fixture tree so we can mutate the package body.
        let src = fixture_tree();
        let dir = std::env::temp_dir().join(format!("dovado-cli-prj-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for sub in ["pkg", "rtl"] {
            std::fs::create_dir_all(dir.join(sub)).unwrap();
        }
        for rel in [
            "pkg/prj_pkg.vhd",
            "pkg/prj_pkg_body.vhd",
            "rtl/prj_core.vhd",
            "rtl/prj_core_rtl.vhd",
            "rtl/prj_core_fast.vhd",
            "rtl/prj_top.v",
        ] {
            std::fs::copy(format!("{src}/{rel}"), dir.join(rel)).unwrap();
        }
        let store = temp_store("prj-evalstore");
        let eval = || {
            let mut out = String::new();
            let code = run(
                &args(&[
                    "evaluate",
                    "--project",
                    dir.to_str().unwrap(),
                    "--set",
                    "DEPTH=32",
                    "--store",
                    &store,
                ]),
                &mut out,
            );
            assert_eq!(code, 0, "{out}");
            out
        };
        let cold = eval();
        assert!(cold.contains("stored for reuse"), "{cold}");
        let warm = eval();
        assert!(warm.contains("persistent store (no tool run)"), "{warm}");
        // Edit a file the top only reaches through the dependency graph
        // (the package body): the store must *miss* and rerun the tool.
        let body = dir.join("pkg/prj_pkg_body.vhd");
        let text = std::fs::read_to_string(&body).unwrap();
        std::fs::write(&body, text.replace("deferred constant", "changed constant")).unwrap();
        let edited = eval();
        assert!(
            edited.contains("stored for reuse"),
            "dependency edit must miss the store: {edited}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn demo_runs_a_case_study() {
        let mut out = String::new();
        let code = run(&args(&["demo", "neorv32"]), &mut out);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("neorv32"));
        assert!(out.contains("non-dominated"));
    }

    #[test]
    fn demo_unknown_case() {
        let mut out = String::new();
        assert_eq!(run(&args(&["demo", "warpdrive"]), &mut out), 1);
    }
}
