//! TCL script frames.
//!
//! "We also built general frames for TCL scripts that Dovado customizes at
//! run-time for module specifications and user-selected directives"
//! (§III-A3). Frames are templates with `__PLACEHOLDER__` slots filled by
//! [`fill`]; [`read_sources_script`] generates the per-file `read_*` lines
//! with the paper's ordering/naming rules (SV packages first, one library
//! per VHDL `-library` flag).

use crate::error::{DovadoError, DovadoResult};
use dovado_hdl::Language;

/// Frame for project setup + source loading + synthesis + reports.
pub const SYNTH_FRAME: &str = "\
create_project __PROJECT__ -part __PART__
__READ_SOURCES__
set_property top __TOP__ [current_fileset]
__INCREMENTAL__
synth_design -top __TOP__ -part __PART__ -directive __SYNTH_DIRECTIVE__
create_clock -period __PERIOD__ -name dovado_clk [get_ports __CLOCK__]
report_utilization -file __UTIL_RPT__
report_timing_summary -file __TIMING_RPT__
report_power -file __POWER_RPT__
write_checkpoint -force __SYNTH_DCP__
";

/// Frame continuing a synthesized design through implementation.
pub const IMPL_FRAME: &str = "\
opt_design
place_design
route_design -directive __IMPL_DIRECTIVE__
report_utilization -file __UTIL_RPT__
report_timing_summary -file __TIMING_RPT__
report_power -file __POWER_RPT__
write_checkpoint -force __IMPL_DCP__
";

/// Fills `__KEY__` placeholders. Errors if any placeholder remains
/// unfilled (catches typos in frames and drivers alike).
pub fn fill(frame: &str, substitutions: &[(&str, &str)]) -> DovadoResult<String> {
    let mut out = frame.to_string();
    for (key, value) in substitutions {
        out = out.replace(&format!("__{key}__"), value);
    }
    if let Some(pos) = out.find("__") {
        let tail: String = out[pos..].chars().take(30).collect();
        // Allow double underscores inside identifiers only if they don't
        // look like a placeholder (uppercase run ending in __).
        if tail
            .chars()
            .skip(2)
            .take_while(|c| *c != '_')
            .any(|c| c.is_ascii_uppercase())
        {
            return Err(DovadoError::Config(format!(
                "unfilled placeholder near `{tail}`"
            )));
        }
    }
    Ok(out)
}

/// One source file to load.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceEntry {
    /// Path in the tool's filesystem.
    pub path: String,
    /// Language.
    pub language: Language,
    /// VHDL library (None = `work`).
    pub library: Option<String>,
    /// Whether the file declares SV packages (affects ordering).
    pub has_packages: bool,
}

/// Generates the `read_vhdl`/`read_verilog` lines.
///
/// Ordering rule from the paper: "SV packages are read at the very
/// beginning of the step". Package-bearing files are emitted first,
/// preserving relative order otherwise.
pub fn read_sources_script(entries: &[SourceEntry]) -> String {
    let mut ordered: Vec<&SourceEntry> = Vec::with_capacity(entries.len());
    ordered.extend(
        entries
            .iter()
            .filter(|e| e.has_packages && e.language != Language::Vhdl),
    );
    ordered.extend(
        entries
            .iter()
            .filter(|e| !(e.has_packages && e.language != Language::Vhdl)),
    );
    let mut out = String::new();
    for e in ordered {
        let line = match e.language {
            Language::Vhdl => match &e.library {
                Some(lib) => format!("read_vhdl -library {lib} {}", e.path),
                None => format!("read_vhdl {}", e.path),
            },
            Language::Verilog => format!("read_verilog {}", e.path),
            Language::SystemVerilog => format!("read_verilog -sv {}", e.path),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_replaces_all() {
        let s = fill(
            "synth_design -top __TOP__ -part __PART__",
            &[("TOP", "box"), ("PART", "xc7k70t")],
        )
        .unwrap();
        assert_eq!(s, "synth_design -top box -part xc7k70t");
    }

    #[test]
    fn fill_detects_leftovers() {
        let r = fill("synth_design -top __TOP__", &[("PART", "x")]);
        assert!(matches!(r, Err(DovadoError::Config(_))));
    }

    #[test]
    fn synth_frame_fills_cleanly() {
        let s = fill(
            SYNTH_FRAME,
            &[
                ("PROJECT", "dovado"),
                ("PART", "xc7k70tfbv676-1"),
                ("READ_SOURCES", "read_verilog -sv src/fifo.sv"),
                ("TOP", "box"),
                ("INCREMENTAL", ""),
                ("SYNTH_DIRECTIVE", "Default"),
                ("PERIOD", "1.000"),
                ("CLOCK", "clk"),
                ("UTIL_RPT", "util.rpt"),
                ("TIMING_RPT", "timing.rpt"),
                ("POWER_RPT", "power.rpt"),
                ("SYNTH_DCP", "post_synth.dcp"),
            ],
        )
        .unwrap();
        assert!(s.contains("create_clock -period 1.000"));
        assert!(!s.contains("__"));
    }

    #[test]
    fn impl_frame_fills_cleanly() {
        let s = fill(
            IMPL_FRAME,
            &[
                ("IMPL_DIRECTIVE", "Explore"),
                ("UTIL_RPT", "u.rpt"),
                ("TIMING_RPT", "t.rpt"),
                ("POWER_RPT", "p.rpt"),
                ("IMPL_DCP", "post_route.dcp"),
            ],
        )
        .unwrap();
        assert!(s.contains("route_design -directive Explore"));
    }

    #[test]
    fn packages_read_first() {
        let entries = vec![
            SourceEntry {
                path: "src/core.sv".into(),
                language: Language::SystemVerilog,
                library: None,
                has_packages: false,
            },
            SourceEntry {
                path: "src/pkg.sv".into(),
                language: Language::SystemVerilog,
                library: None,
                has_packages: true,
            },
        ];
        let s = read_sources_script(&entries);
        let pkg_pos = s.find("pkg.sv").unwrap();
        let core_pos = s.find("core.sv").unwrap();
        assert!(pkg_pos < core_pos, "packages must be read first:\n{s}");
    }

    #[test]
    fn vhdl_library_flag() {
        let entries = vec![SourceEntry {
            path: "src/neorv32_package.vhd".into(),
            language: Language::Vhdl,
            library: Some("neorv32".into()),
            has_packages: true,
        }];
        let s = read_sources_script(&entries);
        assert_eq!(
            s.trim(),
            "read_vhdl -library neorv32 src/neorv32_package.vhd"
        );
    }

    #[test]
    fn sv_flag_only_for_systemverilog() {
        let entries = vec![
            SourceEntry {
                path: "a.v".into(),
                language: Language::Verilog,
                library: None,
                has_packages: false,
            },
            SourceEntry {
                path: "b.sv".into(),
                language: Language::SystemVerilog,
                library: None,
                has_packages: false,
            },
        ];
        let s = read_sources_script(&entries);
        assert!(s.contains("read_verilog a.v\n"));
        assert!(s.contains("read_verilog -sv b.sv\n"));
    }
}
