//! Result types and table rendering.
//!
//! Renders the non-dominated sets the way the paper reports them: a
//! configuration table (Table I / Table II — design points labelled A, B,
//! C, …) and a metric table (the data behind Figs. 4–7).

use crate::error::DovadoError;
use crate::metrics::{Evaluation, MetricSet};
use crate::point::DesignPoint;
use crate::trace::{FlowEvent, TraceSummary};
use dovado_moo::GenStats;
use std::fmt;
use std::fmt::Write as _;

/// A design point paired with its evaluation outcome.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The evaluated point.
    pub point: DesignPoint,
    /// The outcome.
    pub result: Result<Evaluation, DovadoError>,
}

/// One non-dominated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoEntry {
    /// Parameter assignment.
    pub point: DesignPoint,
    /// Raw metric values, ordered as the report's [`MetricSet`].
    pub values: Vec<f64>,
}

/// The result of one exploration run.
#[derive(Debug, Clone)]
pub struct DseReport {
    /// Non-dominated configurations, sorted by the first metric.
    pub pareto: Vec<ParetoEntry>,
    /// Metrics the values refer to.
    pub metrics: MetricSet,
    /// Generations completed.
    pub generations: u32,
    /// Total fitness evaluations.
    pub evaluations: u64,
    /// Fresh tool runs.
    pub tool_runs: u64,
    /// Tool calls answered from cache (exact dataset hits).
    pub cached_runs: u64,
    /// Surrogate estimates served.
    pub estimates: u64,
    /// Penalized failures (`transient_failures + permanent_failures`).
    pub failures: u64,
    /// Failed evaluations whose final error was environmental (retry
    /// budget exhausted); never recorded into the surrogate dataset.
    pub transient_failures: u64,
    /// Failed evaluations caused by the design itself (infeasible point).
    pub permanent_failures: u64,
    /// Extra tool attempts spent retrying transient faults.
    pub retries: u64,
    /// Whole-run attempt/retry/backoff counters from the flow trace.
    pub trace: TraceSummary,
    /// Retained per-attempt flow events (oldest first, bounded).
    pub events: Vec<FlowEvent>,
    /// Full observability-spine snapshot: every retained structured
    /// event in canonical order plus the exact fold of the stream.
    /// Serialize with [`crate::obs::write_jsonl`].
    pub spine: crate::obs::SpineSnapshot,
    /// Simulated tool seconds consumed.
    pub tool_time_s: f64,
    /// Per-generation statistics.
    pub history: Vec<GenStats>,
    /// The portfolio decision, when `--explorer auto` ran (journaled and
    /// replayed on resume).
    pub selection: Option<crate::dse::SelectionRecord>,
}

/// Labels design points like the paper's tables: A, B, …, Z, AA, AB, …
pub fn point_label(index: usize) -> String {
    let mut n = index;
    let mut out = String::new();
    loop {
        out.insert(0, (b'A' + (n % 26) as u8) as char);
        if n < 26 {
            break;
        }
        n = n / 26 - 1;
    }
    out
}

impl DseReport {
    /// Renders the configuration table (paper Table I / II shape):
    /// one column per design point, one row per parameter.
    pub fn configuration_table(&self) -> String {
        let mut s = String::new();
        if self.pareto.is_empty() {
            return "(empty non-dominated set)\n".into();
        }
        let names = self.pareto[0].point.names().to_vec();
        let _ = write!(s, "{:<24}", "Design Point");
        for i in 0..self.pareto.len() {
            let _ = write!(s, "{:>10}", point_label(i));
        }
        let _ = writeln!(s);
        for name in &names {
            let _ = write!(s, "{name:<24}");
            for e in &self.pareto {
                let _ = write!(s, "{:>10}", e.point.get(name).unwrap_or(0));
            }
            let _ = writeln!(s);
        }
        s
    }

    /// Renders the metric table (the data series behind the paper's
    /// solution-trade-off figures).
    pub fn metric_table(&self) -> String {
        let mut s = String::new();
        if self.pareto.is_empty() {
            return "(empty non-dominated set)\n".into();
        }
        let _ = write!(s, "{:<24}", "Metric");
        for i in 0..self.pareto.len() {
            let _ = write!(s, "{:>12}", point_label(i));
        }
        let _ = writeln!(s);
        for (mi, m) in self.metrics.metrics().iter().enumerate() {
            let _ = write!(s, "{:<24}", m.label());
            for e in &self.pareto {
                let v = e.values[mi];
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(s, "{:>12}", v as i64);
                } else {
                    let _ = write!(s, "{v:>12.2}");
                }
            }
            let _ = writeln!(s);
        }
        s
    }

    /// Renders an ASCII scatter plot of two metrics across the front (the
    /// at-a-glance view of the paper's Figs. 4–7). `x` and `y` are indices
    /// into the metric set. Points are labelled A, B, C, …
    pub fn scatter(&self, x: usize, y: usize, width: usize, height: usize) -> String {
        assert!(
            x < self.metrics.len() && y < self.metrics.len(),
            "metric index out of range"
        );
        let pts: Vec<(f64, f64)> = self
            .pareto
            .iter()
            .map(|e| (e.values[x], e.values[y]))
            .collect();
        if pts.is_empty() {
            return "(empty non-dominated set)\n".into();
        }
        let labels: Vec<String> = (0..pts.len()).map(point_label).collect();
        let title = format!(
            "{} (x) vs {} (y)",
            self.metrics.metrics()[x].label(),
            self.metrics.metrics()[y].label()
        );
        ascii_scatter(&pts, &labels, &title, width.max(20), height.max(8))
    }

    /// One-line run summary. When the run saw failures or retries, a
    /// second segment breaks them down by class.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} non-dominated point(s) | {} generation(s), {} evaluation(s) | \
             {} tool run(s), {} cached, {} estimated, {} failed | {:.0} simulated tool-seconds",
            self.pareto.len(),
            self.generations,
            self.evaluations,
            self.tool_runs,
            self.cached_runs,
            self.estimates,
            self.failures,
            self.tool_time_s,
        );
        if self.failures > 0 || self.trace.retries > 0 || self.trace.store_hits > 0 {
            let _ = write!(s, " | flow: {}", self.trace);
        }
        s
    }

    /// Renders the noteworthy flow events — failed or retried attempts —
    /// oldest first, capped at `max` lines (earlier ones are elided with a
    /// count). Empty string when the run was fault-free.
    pub fn flow_log(&self, max: usize) -> String {
        let interesting: Vec<&FlowEvent> = self
            .events
            .iter()
            .filter(|e| !e.outcome.is_success() || e.attempt > 1)
            .collect();
        if interesting.is_empty() {
            return String::new();
        }
        let mut s = String::new();
        let skip = interesting.len().saturating_sub(max);
        if skip > 0 {
            let _ = writeln!(s, "… {skip} earlier event(s) elided");
        }
        for e in &interesting[skip..] {
            let _ = writeln!(s, "{e}");
        }
        s
    }
}

/// Renders labelled points into an ASCII grid with min/max axis
/// annotations. Labels longer than one character print their first char;
/// colliding points print `*`.
pub fn ascii_scatter(
    points: &[(f64, f64)],
    labels: &[String],
    title: &str,
    width: usize,
    height: usize,
) -> String {
    assert_eq!(points.len(), labels.len());
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(px, py) in points {
        x_lo = x_lo.min(px);
        x_hi = x_hi.max(px);
        y_lo = y_lo.min(py);
        y_hi = y_hi.max(py);
    }
    // Degenerate spans still render (single column/row).
    let x_span = (x_hi - x_lo).max(1e-12);
    let y_span = (y_hi - y_lo).max(1e-12);

    let mut grid = vec![vec![' '; width]; height];
    for (&(px, py), label) in points.iter().zip(labels) {
        let cx = (((px - x_lo) / x_span) * (width - 1) as f64).round() as usize;
        let cy = (((py - y_lo) / y_span) * (height - 1) as f64).round() as usize;
        let row = height - 1 - cy; // y grows upward
        let ch = label.chars().next().unwrap_or('*');
        let cell = &mut grid[row][cx.min(width - 1)];
        *cell = if *cell == ' ' { ch } else { '*' };
    }

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{y_hi:>12.2} ┤{}", String::from_iter(grid[0].iter()));
    for row in grid.iter().take(height - 1).skip(1) {
        let _ = writeln!(out, "{:>12} │{}", "", String::from_iter(row.iter()));
    }
    let _ = writeln!(
        out,
        "{y_lo:>12.2} ┤{}",
        String::from_iter(grid[height - 1].iter())
    );
    let _ = writeln!(out, "{:>13}└{}", "", "─".repeat(width));
    let _ = writeln!(
        out,
        "{:>14}{:<.2}{}{:>.2}",
        "",
        x_lo,
        " ".repeat(width.saturating_sub(12)),
        x_hi
    );
    out
}

impl fmt::Display for DseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        writeln!(f)?;
        writeln!(f, "{}", self.configuration_table())?;
        write!(f, "{}", self.metric_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Metric, MetricSet};
    use dovado_fpga::ResourceKind;

    fn report() -> DseReport {
        DseReport {
            pareto: vec![
                ParetoEntry {
                    point: DesignPoint::from_pairs(&[("DEPTH", 8), ("PIPE", 2)]),
                    values: vec![100.0, 200.0, 195.5],
                },
                ParetoEntry {
                    point: DesignPoint::from_pairs(&[("DEPTH", 16), ("PIPE", 3)]),
                    values: vec![150.0, 240.0, 201.25],
                },
            ],
            metrics: MetricSet::new(vec![
                Metric::Utilization(ResourceKind::Lut),
                Metric::Utilization(ResourceKind::Register),
                Metric::Fmax,
            ]),
            generations: 10,
            evaluations: 120,
            tool_runs: 80,
            cached_runs: 5,
            estimates: 35,
            failures: 0,
            transient_failures: 0,
            permanent_failures: 0,
            retries: 0,
            trace: TraceSummary::default(),
            events: Vec::new(),
            spine: Default::default(),
            tool_time_s: 3600.0,
            history: Vec::new(),
            selection: None,
        }
    }

    #[test]
    fn labels_follow_paper_style() {
        assert_eq!(point_label(0), "A");
        assert_eq!(point_label(12), "M");
        assert_eq!(point_label(25), "Z");
        assert_eq!(point_label(26), "AA");
        assert_eq!(point_label(27), "AB");
        assert_eq!(point_label(52), "BA");
    }

    #[test]
    fn configuration_table_lists_params_per_point() {
        let t = report().configuration_table();
        assert!(t.contains("Design Point"));
        assert!(t.contains("DEPTH"));
        assert!(t.contains("PIPE"));
        let depth_line = t.lines().find(|l| l.starts_with("DEPTH")).unwrap();
        assert!(depth_line.contains('8') && depth_line.contains("16"));
    }

    #[test]
    fn metric_table_lists_values() {
        let t = report().metric_table();
        assert!(t.contains("LUT"));
        assert!(t.contains("Fmax[MHz]"));
        assert!(t.contains("195.50"));
        assert!(t.contains("100"));
    }

    #[test]
    fn summary_counts() {
        let s = report().summary();
        assert!(s.contains("2 non-dominated"));
        assert!(s.contains("80 tool run(s)"));
        assert!(s.contains("35 estimated"));
        // Fault-free run: no flow segment.
        assert!(!s.contains("flow:"), "{s}");
    }

    #[test]
    fn summary_breaks_down_failures() {
        let mut r = report();
        r.failures = 3;
        r.transient_failures = 2;
        r.permanent_failures = 1;
        r.trace.attempts = 90;
        r.trace.retries = 7;
        r.trace.transient_failures = 9;
        r.trace.backoff_s = 210.0;
        let s = r.summary();
        assert!(s.contains("flow:"), "{s}");
        assert!(s.contains("7 retries"), "{s}");
        assert!(s.contains("210s backoff"), "{s}");
    }

    #[test]
    fn summary_reports_store_hits() {
        let mut r = report();
        r.trace.store_hits = 12;
        let s = r.summary();
        assert!(s.contains("flow:"), "{s}");
        assert!(s.contains("12 store hits"), "{s}");
    }

    #[test]
    fn flow_log_shows_failures_and_elides() {
        use crate::flow::FlowStep;
        use crate::trace::AttemptOutcome;
        let mut r = report();
        assert!(r.flow_log(5).is_empty());
        for i in 0..8 {
            r.events.push(FlowEvent {
                point: format!("DEPTH={}", 2 << i),
                attempt: 1,
                step: FlowStep::Implementation,
                outcome: AttemptOutcome::TransientFailure("tool crashed".into()),
                tool_time_s: 30.0,
                backoff_s: 30.0,
                incremental: true,
                cached: false,
            });
        }
        // A successful first attempt is not noteworthy.
        r.events.push(FlowEvent {
            point: "DEPTH=4".into(),
            attempt: 1,
            step: FlowStep::Implementation,
            outcome: AttemptOutcome::Success,
            tool_time_s: 900.0,
            backoff_s: 0.0,
            incremental: false,
            cached: false,
        });
        let log = r.flow_log(5);
        assert_eq!(log.lines().count(), 6, "{log}"); // 1 elision + 5 events
        assert!(log.contains("3 earlier event(s) elided"), "{log}");
        assert!(log.contains("transient: tool crashed"), "{log}");
        assert!(!log.contains("900.0"), "{log}");
    }

    #[test]
    fn empty_report_renders() {
        let mut r = report();
        r.pareto.clear();
        assert!(r.configuration_table().contains("empty"));
        assert!(r.metric_table().contains("empty"));
        assert!(r.scatter(0, 2, 40, 10).contains("empty"));
    }

    #[test]
    fn scatter_places_extremes_in_corners() {
        let r = report();
        let plot = r.scatter(0, 2, 40, 10);
        // Title names both metrics.
        assert!(plot.contains("LUT (x)"));
        assert!(plot.contains("Fmax[MHz] (y)"));
        // Both labels appear.
        assert!(plot.contains('A'));
        assert!(plot.contains('B'));
        // Axis annotations carry the ranges.
        assert!(plot.contains("201.25"));
        assert!(plot.contains("195.50"));
    }

    #[test]
    fn scatter_handles_colliding_points() {
        let pts = vec![(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)];
        let labels = vec!["A".to_string(), "B".to_string(), "C".to_string()];
        let plot = ascii_scatter(&pts, &labels, "t", 20, 8);
        assert!(plot.contains('*'), "collision marker expected:\n{plot}");
        assert!(plot.contains('C'));
    }

    #[test]
    fn scatter_degenerate_span_does_not_panic() {
        let pts = vec![(5.0, 3.0), (5.0, 3.0)];
        let labels = vec!["A".to_string(), "B".to_string()];
        let plot = ascii_scatter(&pts, &labels, "flat", 20, 8);
        assert!(plot.contains('*') || plot.contains('A'));
    }

    #[test]
    #[should_panic(expected = "metric index out of range")]
    fn scatter_checks_indices() {
        let _ = report().scatter(0, 9, 20, 8);
    }
}
