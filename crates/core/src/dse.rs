//! The Dovado front door: design automation (evaluate given points) and
//! design space exploration (a portfolio of stepwise explorers over a
//! parameter space).
//!
//! Every strategy — NSGA-II, random, weighted-sum GA, exhaustive,
//! simulated annealing, the Bayesian acquisition loop — implements the
//! same [`dovado_moo::Explorer`] trait, so one driver loop gives each of
//! them journaling, generation events, cancellation, `--jobs`/`--workers`
//! schedules, and `dovado serve`. `--explorer auto` adds learned
//! selection: problem features decide trivial cases, and otherwise the
//! candidates race on a cheap synthesis-only budget before the winner is
//! committed (and journaled, so `--resume` replays the decision bitwise
//! instead of re-racing).

use crate::backend::ToolBackend;
use crate::engine::Schedule;
use crate::error::{DovadoError, DovadoResult};
use crate::fitness::{DseProblem, FitnessStats};
use crate::flow::{EvalConfig, Evaluator, FlowStep, HdlSource};
use crate::metrics::{Evaluation, MetricSet};
use crate::obs::CandidateScore;
use crate::persist::{self, Journal, PersistConfig, SurrogateJournal};
use crate::point::DesignPoint;
use crate::results::{DseReport, ParetoEntry, PointResult};
use crate::space::ParameterSpace;
use dovado_eda::{EvalStore, FaultKind};
use dovado_moo::{
    AnnealingExplorer, ExhaustiveExplorer, Explorer as EngineExplorer, ExplorerSnapshot,
    Individual, Nsga2Config, Nsga2Explorer, OptResult, RandomExplorer, Termination, WsgaExplorer,
};
use dovado_surrogate::{Dataset, Kernel, SurrogateController, ThresholdPolicy};
use std::fs;
use std::sync::Arc;

/// Spaces at most this big are enumerated exactly by `--explorer auto`
/// instead of racing sampling-based candidates.
pub const EXHAUSTIVE_AUTO_LIMIT: u64 = 64;

/// Generations each portfolio candidate gets on the low-fidelity budget.
const RACE_GENERATIONS: u32 = 3;

/// Population/batch size of each portfolio candidate during the race.
const RACE_POP: usize = 8;

/// Candidate set raced by `--explorer auto`, in canonical order.
const RACE_CANDIDATES: [&str; 4] = ["nsga2", "random", "sa", "bayes"];

/// Which exploration strategy drives the search.
///
/// The paper uses NSGA-II and surveys alternatives via Panerati et al.
/// \[12\], planning "an investigation on a run-time choice among various
/// algorithms" (§V) — this knob is that choice point, and
/// [`Explorer::Auto`] is the run-time choice itself.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Explorer {
    /// NSGA-II (the paper's solver; uses [`DseConfig::algorithm`]).
    #[default]
    Nsga2,
    /// Uniform random sampling, keeping the non-dominated archive.
    RandomSearch,
    /// Single-objective GA on a weighted sum of the (minimization-space)
    /// objectives; `None` = equal weights.
    WeightedSum(Option<Vec<f64>>),
    /// Exact exploration of the whole space (refused when the volume
    /// exceeds the given limit).
    Exhaustive {
        /// Maximum space volume to accept.
        limit: u64,
    },
    /// Simulated annealing on the mean of the minimization-space
    /// objectives, with a geometric cooling schedule.
    SimulatedAnnealing,
    /// Bayesian-style acquisition loop over the Nadaraya-Watson
    /// surrogate ([`crate::bayes::BayesExplorer`]).
    Bayes,
    /// Portfolio selection: commit to one of the concrete explorers
    /// using problem features and a low-fidelity race (see
    /// [`SelectionRecord`]).
    Auto,
}

impl Explorer {
    /// The canonical name used by the CLI, the journal, and
    /// [`SelectionRecord::explorer`].
    pub fn canonical_name(&self) -> &'static str {
        match self {
            Explorer::Nsga2 => "nsga2",
            Explorer::RandomSearch => "random",
            Explorer::WeightedSum(_) => "wsga",
            Explorer::Exhaustive { .. } => "exhaustive",
            Explorer::SimulatedAnnealing => "sa",
            Explorer::Bayes => "bayes",
            Explorer::Auto => "auto",
        }
    }

    /// Parses a CLI `--explorer` token (aliases included); `None` for an
    /// unknown token.
    pub fn parse_token(token: &str) -> Option<Explorer> {
        Some(match token {
            "nsga2" => Explorer::Nsga2,
            "random" => Explorer::RandomSearch,
            "weighted-sum" | "ws" | "wsga" => Explorer::WeightedSum(None),
            "exhaustive" => Explorer::Exhaustive { limit: 100_000 },
            "sa" | "annealing" => Explorer::SimulatedAnnealing,
            "bayes" => Explorer::Bayes,
            "auto" => Explorer::Auto,
            _ => return None,
        })
    }

    /// The concrete explorer a journaled selection name maps back to.
    /// Names are the [`Explorer::canonical_name`]s of non-`Auto`
    /// variants; `None` for anything else.
    fn of_selection_name(name: &str) -> Option<Explorer> {
        Some(match name {
            "nsga2" => Explorer::Nsga2,
            "random" => Explorer::RandomSearch,
            "wsga" => Explorer::WeightedSum(None),
            "exhaustive" => Explorer::Exhaustive {
                limit: EXHAUSTIVE_AUTO_LIMIT,
            },
            "sa" => Explorer::SimulatedAnnealing,
            "bayes" => Explorer::Bayes,
            _ => return None,
        })
    }
}

/// The journaled outcome of one portfolio selection (`--explorer auto`):
/// which explorer was committed, the problem features that decided it,
/// the low-fidelity spend, and the per-candidate race scores. Written
/// into every journal snapshot of an `auto` run so `--resume` replays
/// the decision instead of re-racing, and emitted onto the spine as
/// exactly one [`crate::obs::ObsEvent::SelectorDecision`] per run.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionRecord {
    /// Canonical name of the committed explorer.
    pub explorer: String,
    /// Parameter-space volume at selection time.
    pub space_volume: u64,
    /// Number of optimization objectives.
    pub objectives: u32,
    /// Successful low-fidelity (synthesis-only) runs the race spent.
    pub lowfi_runs: u64,
    /// Simulated tool seconds the race spent; ledgered separately from
    /// full-flow spend, so soft deadlines budget only the real flow.
    pub lowfi_time_s: f64,
    /// Per-candidate race scores, in canonical race order (empty when a
    /// problem-feature shortcut decided without racing).
    pub candidates: Vec<CandidateScore>,
}

/// Configuration of the fitness-approximation model.
#[derive(Debug, Clone)]
pub struct SurrogateConfig {
    /// Threshold policy (paper default: adaptive Γ).
    pub policy: ThresholdPolicy,
    /// Synthetic-dataset size M: distinct random tool calls made before
    /// exploration (paper default 100, user-definable).
    pub pretrain_samples: usize,
    /// Kernel (paper: Gaussian).
    pub kernel: Kernel,
    /// Sampling seed for the synthetic dataset.
    pub seed: u64,
    /// Re-run LOO-CV bandwidth selection every this many dataset
    /// insertions (1 = the paper's retrain-after-every-addition). Batch
    /// decisions are unaffected by values > 1: the staged pipeline
    /// refreshes any stale bandwidth before each generation's decide
    /// phase, so amortization only changes *when* selection runs, not the
    /// data it sees.
    pub reselect_every: usize,
    /// Neighborhood size for truncated Nadaraya-Watson prediction and
    /// large-dataset LOO-CV (0 = exact all-points estimation, the legacy
    /// quadratic path). The default keeps estimates within the truncation
    /// error bound while holding per-query cost at O(k·log M).
    pub neighbor_k: usize,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig {
            policy: ThresholdPolicy::paper_default(),
            pretrain_samples: 100,
            kernel: Kernel::Gaussian,
            seed: 0x5EED,
            reselect_every: 25,
            neighbor_k: dovado_surrogate::DEFAULT_NEIGHBOR_K,
        }
    }
}

/// Configuration of one exploration run.
#[derive(Debug, Clone)]
pub struct DseConfig {
    /// Exploration strategy.
    pub explorer: Explorer,
    /// Genetic-algorithm settings (used by [`Explorer::Nsga2`]; population
    /// size doubles as the batch size for random search and the weighted-
    /// sum GA).
    pub algorithm: Nsga2Config,
    /// Stop condition.
    pub termination: Termination,
    /// Metrics to optimize.
    pub metrics: MetricSet,
    /// Fitness approximation (None = always call the tool, as the paper's
    /// Corundum/Neorv32/TiReX runs do).
    pub surrogate: Option<SurrogateConfig>,
    /// Evaluate tool-only generations in parallel.
    pub parallel: bool,
    /// Cap on rayon worker threads for parallel phases (`--jobs`).
    /// `Some(n)` implies parallel batches under a pool of `n` threads;
    /// validated by [`crate::engine::validate_jobs`], so `Some(0)` fails
    /// with [`DovadoError::Config`] instead of hanging. Excluded from the
    /// resume fingerprint: any jobs count is bitwise the same run.
    pub jobs: Option<usize>,
    /// Distributed evaluation: dispatch tool batches to this many worker
    /// processes (`--workers`) instead of in-process rayon threads.
    /// Validated by [`crate::engine::validate_workers`]; excluded from
    /// the resume fingerprint like `parallel` and `jobs`, so a journal
    /// written by a 4-worker fleet resumes under any fleet size.
    pub workers: Option<usize>,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            explorer: Explorer::Nsga2,
            algorithm: Nsga2Config::default(),
            termination: Termination::Generations(20),
            metrics: MetricSet::area_frequency(),
            surrogate: None,
            parallel: false,
            jobs: None,
            workers: None,
        }
    }
}

/// Observer of a running exploration with a veto: the serve scheduler's
/// cancellation and live-streaming hook.
///
/// [`Dovado::explore_monitored`] calls [`on_generation`] after every
/// completed exploration generation (after the `Generation` event lands on
/// the spine and after any journal write). Returning `false` stops the
/// run with [`DovadoError::Cancelled`]. Implementations must not emit
/// onto the spine — monitoring is observation, and a monitored run's
/// trace stays byte-identical to an unmonitored one.
///
/// [`on_generation`]: ExploreMonitor::on_generation
pub trait ExploreMonitor: Send + Sync {
    /// One generation boundary: 1-based `generation`, cumulative fitness
    /// `evaluations`. Return `true` to continue, `false` to cancel.
    fn on_generation(&self, generation: u64, evaluations: u64) -> bool;
}

/// A configured Dovado instance for one module.
pub struct Dovado {
    evaluator: Evaluator,
    space: ParameterSpace,
}

impl Dovado {
    /// Parses sources and prepares the evaluator (on the default
    /// simulated-Vivado backend).
    pub fn new(
        sources: Vec<HdlSource>,
        top_module: &str,
        space: ParameterSpace,
        eval_config: EvalConfig,
    ) -> DovadoResult<Dovado> {
        Self::from_evaluator(Evaluator::new(sources, top_module, eval_config)?, space)
    }

    /// Like [`Dovado::new`], but runs every tool call on an explicit
    /// [`ToolBackend`] — the scripted mock for tests, or any other
    /// implementation of the tool boundary. Everything above the backend
    /// (exploration, persistence, resume) is backend-independent.
    pub fn with_backend(
        sources: Vec<HdlSource>,
        top_module: &str,
        space: ParameterSpace,
        eval_config: EvalConfig,
        backend: Arc<dyn ToolBackend>,
    ) -> DovadoResult<Dovado> {
        Self::from_evaluator(
            Evaluator::with_backend(sources, top_module, eval_config, backend)?,
            space,
        )
    }

    fn from_evaluator(evaluator: Evaluator, space: ParameterSpace) -> DovadoResult<Dovado> {
        // Sanity: every space parameter must exist on the module.
        for p in space.params() {
            if evaluator.module().parameter(&p.name).is_none() {
                return Err(crate::error::DovadoError::Space(format!(
                    "module `{}` has no parameter `{}`",
                    evaluator.module().name,
                    p.name
                )));
            }
        }
        Ok(Dovado { evaluator, space })
    }

    /// The parameter space.
    pub fn space(&self) -> &ParameterSpace {
        &self.space
    }

    /// The underlying evaluator (single-point design automation).
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// Mutable access to the underlying evaluator — e.g. to attach a
    /// shared evaluation store before exploring (the serve scheduler
    /// points every tenant's job at one sharded store this way). When a
    /// store is already attached, persistent exploration reuses it
    /// instead of opening a per-run store.
    pub fn evaluator_mut(&mut self) -> &mut Evaluator {
        &mut self.evaluator
    }

    /// Design automation: evaluates one explicit design point.
    pub fn evaluate_point(&self, point: &DesignPoint) -> DovadoResult<Evaluation> {
        self.evaluator.evaluate(point)
    }

    /// Design automation: evaluates a set of points (optionally in
    /// parallel), pairing each with its result.
    pub fn evaluate_points(&self, points: &[DesignPoint], parallel: bool) -> Vec<PointResult> {
        self.evaluator
            .evaluate_many(points, parallel)
            .into_iter()
            .zip(points)
            .map(|(result, point)| PointResult {
                point: point.clone(),
                result,
            })
            .collect()
    }

    /// Design automation under an explicit [`Schedule`]: like
    /// [`Dovado::evaluate_points`], but the caller picks serial, rayon,
    /// or a distributed worker fleet.
    pub fn evaluate_points_scheduled(
        &self,
        points: &[DesignPoint],
        schedule: Schedule,
    ) -> Vec<PointResult> {
        self.evaluator
            .evaluate_many_scheduled(points, schedule)
            .into_iter()
            .zip(points)
            .map(|(result, point)| PointResult {
                point: point.clone(),
                result,
            })
            .collect()
    }

    /// Exact exploration: evaluates *every* point in the space (refuses
    /// when the volume exceeds `limit`).
    pub fn evaluate_exhaustive(&self, limit: u64, parallel: bool) -> Option<Vec<PointResult>> {
        let points = self.space.enumerate(limit)?;
        Some(self.evaluate_points(&points, parallel))
    }

    /// Design space exploration: runs the configured explorer (with or
    /// without the approximation model) and returns the non-dominated set.
    pub fn explore(&self, cfg: &DseConfig) -> DovadoResult<DseReport> {
        self.explore_inner(cfg, None, None)
    }

    /// Design space exploration with crash-safe persistence.
    ///
    /// Evaluations go through the content-addressed store under
    /// `persist.dir/store/` (a warm store answers repeats with zero tool
    /// runs), and the full exploration state — whichever explorer runs,
    /// portfolio selection included — is journaled to
    /// `persist.dir/journal.dovado` at every `persist.journal_every`-th
    /// generation boundary with atomic rename and a checksum. With
    /// `persist.resume` set, the run restarts from the journal and
    /// continues bitwise-identically to an uninterrupted run (same
    /// Pareto front, dataset and fitness counters; only wall-clock
    /// accounting of already-stored evaluations differs).
    pub fn explore_persistent(
        &self,
        cfg: &DseConfig,
        persist_cfg: &PersistConfig,
    ) -> DovadoResult<DseReport> {
        self.explore_inner(cfg, Some(persist_cfg), None)
    }

    /// Design space exploration under an [`ExploreMonitor`]: the monitor
    /// sees every generation boundary and can cancel the run by
    /// returning `false`, which surfaces as
    /// [`DovadoError::Cancelled`]. With persistence on, the journal
    /// written at the last boundary before the cancellation survives, so
    /// a cancelled run is resumable like a crashed one. The monitor
    /// never emits onto the spine, so a monitored run's trace is
    /// byte-identical to an unmonitored one.
    pub fn explore_monitored(
        &self,
        cfg: &DseConfig,
        persist_cfg: Option<&PersistConfig>,
        monitor: &dyn ExploreMonitor,
    ) -> DovadoResult<DseReport> {
        self.explore_inner(cfg, persist_cfg, Some(monitor))
    }

    fn explore_inner(
        &self,
        cfg: &DseConfig,
        persist_cfg: Option<&PersistConfig>,
        monitor: Option<&dyn ExploreMonitor>,
    ) -> DovadoResult<DseReport> {
        // Validate both pool knobs up front so a programmatic `jobs: 0`
        // or `workers: 0` fails fast, exactly like the CLI flags.
        let schedule = Self::schedule_of(cfg)?;
        if let Some(n) = cfg.jobs {
            // Cap rayon for everything below (decide phases and parallel
            // tool batches) by re-entering under a sized pool. `jobs` is
            // not part of the fingerprint, so the inner run is untouched.
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .map_err(|e| DovadoError::Config(format!("jobs: {e}")))?;
            let inner = DseConfig {
                jobs: None,
                parallel: true,
                ..cfg.clone()
            };
            return pool.install(|| self.explore_inner(&inner, persist_cfg, monitor));
        }
        let mut evaluator = self.evaluator.clone();
        if let Some(p) = persist_cfg {
            fs::create_dir_all(&p.dir).map_err(|e| {
                DovadoError::Config(format!("cannot create {}: {e}", p.dir.display()))
            })?;
            let capacity = crate::engine::validate_store_capacity(p.store_capacity)?;
            // A pre-attached store (e.g. the serve scheduler's shared
            // sharded store) takes precedence over the per-run one.
            if evaluator.store().is_none() {
                let store = EvalStore::open_bounded(&p.store_dir(), capacity).map_err(|e| {
                    DovadoError::Config(format!(
                        "cannot open store {}: {e}",
                        p.store_dir().display()
                    ))
                })?;
                evaluator.attach_store(store);
            }
        }
        if let Some(p) = persist_cfg.filter(|p| p.resume) {
            return self.resume_explore(cfg, p, evaluator, monitor);
        }

        // Resolve `auto` before anything evaluates: the decision is made
        // on the low-fidelity budget and lands on the spine (and in
        // every journal write) so resume never re-races.
        let (kind, selection) = match &cfg.explorer {
            Explorer::Auto => {
                let (kind, record) =
                    self.select_explorer(cfg, &evaluator, persist_cfg.is_some())?;
                (kind, Some(record))
            }
            other => (other.clone(), None),
        };
        if let Some(record) = &selection {
            Self::emit_selection(&evaluator, record);
        }

        let mut problem = DseProblem::new(
            evaluator,
            self.space.clone(),
            cfg.metrics.clone(),
            cfg.surrogate.as_ref(),
        )?;
        problem.schedule = schedule;
        let engine = self.build_explorer(&kind, cfg, &mut problem)?;
        let result = self.run_explorer(
            &mut problem,
            cfg,
            &Self::effective_termination(&kind, &cfg.termination),
            persist_cfg,
            monitor,
            selection.as_ref(),
            engine,
        )?;
        self.assemble_report(cfg, &problem, result, selection)
    }

    /// Starts a fresh engine for one concrete explorer kind. The batch
    /// size (and population size, where the algorithm has one) is
    /// [`Nsga2Config::pop_size`]; the seed is [`Nsga2Config::seed`].
    fn build_explorer(
        &self,
        kind: &Explorer,
        cfg: &DseConfig,
        problem: &mut DseProblem,
    ) -> DovadoResult<Box<dyn EngineExplorer>> {
        let batch = cfg.algorithm.pop_size;
        let seed = cfg.algorithm.seed;
        Ok(match kind {
            Explorer::Nsga2 => Box::new(Nsga2Explorer::start(problem, &cfg.algorithm)),
            Explorer::RandomSearch => Box::new(RandomExplorer::start(&*problem, batch, seed)),
            Explorer::WeightedSum(weights) => {
                let w = Self::resolve_weights(weights.as_deref(), cfg.metrics.len())?;
                Box::new(WsgaExplorer::start(problem, w, batch, seed))
            }
            Explorer::Exhaustive { limit } => Box::new(
                ExhaustiveExplorer::start(&*problem, *limit, batch).ok_or_else(|| {
                    DovadoError::Config(format!(
                        "space volume {} exceeds the exhaustive limit {limit}",
                        self.space.volume()
                    ))
                })?,
            ),
            Explorer::SimulatedAnnealing => {
                Box::new(AnnealingExplorer::start(problem, batch, seed))
            }
            Explorer::Bayes => Box::new(crate::bayes::BayesExplorer::start(problem, batch, seed)),
            Explorer::Auto => {
                return Err(DovadoError::Config(
                    "auto must resolve to a concrete explorer before the engine starts".into(),
                ))
            }
        })
    }

    /// Rebuilds an engine from its journaled snapshot. The fingerprint
    /// already pins the configuration, so a kind mismatch here means a
    /// hand-edited or cross-wired journal — refuse it.
    fn resume_explorer(
        kind: &Explorer,
        cfg: &DseConfig,
        problem: &DseProblem,
        snap: ExplorerSnapshot,
    ) -> DovadoResult<Box<dyn EngineExplorer>> {
        let batch = cfg.algorithm.pop_size;
        Ok(match (kind, snap) {
            (Explorer::Nsga2, ExplorerSnapshot::Nsga2(s)) => {
                Box::new(Nsga2Explorer::resume(problem, &cfg.algorithm, s))
            }
            (Explorer::RandomSearch, ExplorerSnapshot::Random(s)) => {
                Box::new(RandomExplorer::resume(problem, batch, s))
            }
            (Explorer::WeightedSum(weights), ExplorerSnapshot::WeightedSum(s)) => {
                let w = Self::resolve_weights(weights.as_deref(), cfg.metrics.len())?;
                Box::new(WsgaExplorer::resume(problem, w, batch, s))
            }
            (Explorer::Exhaustive { .. }, ExplorerSnapshot::Exhaustive(s)) => {
                Box::new(ExhaustiveExplorer::resume(problem, batch, s))
            }
            (Explorer::SimulatedAnnealing, ExplorerSnapshot::Annealing(s)) => {
                Box::new(AnnealingExplorer::resume(problem, batch, s))
            }
            (Explorer::Bayes, ExplorerSnapshot::Bayes(s)) => {
                Box::new(crate::bayes::BayesExplorer::resume(problem, batch, s))
            }
            (kind, snap) => {
                return Err(DovadoError::Config(format!(
                    "journal holds `{}` explorer state but the configuration asks for \
                     `{}`; refusing to resume",
                    snap.kind(),
                    kind.canonical_name()
                )))
            }
        })
    }

    /// Weighted-sum weights with arity validation (`None` = equal).
    fn resolve_weights(weights: Option<&[f64]>, n: usize) -> DovadoResult<Vec<f64>> {
        match weights {
            Some(w) if w.len() != n => Err(DovadoError::Config(format!(
                "weighted-sum wants {n} weights, got {}",
                w.len()
            ))),
            Some(w) => Ok(w.to_vec()),
            None => Ok(vec![1.0 / n as f64; n]),
        }
    }

    /// Exhaustive runs ignore the configured stop condition: the space
    /// is enumerated exactly once and exhaustion is the only terminator,
    /// matching the pre-portfolio `exhaustive_search` semantics.
    fn effective_termination(kind: &Explorer, termination: &Termination) -> Termination {
        match kind {
            Explorer::Exhaustive { .. } => Termination::Generations(u32::MAX),
            _ => termination.clone(),
        }
    }

    /// Emits the portfolio decision onto the main spine.
    fn emit_selection(evaluator: &Evaluator, record: &SelectionRecord) {
        evaluator
            .spine()
            .emit_next(crate::obs::ObsEvent::SelectorDecision {
                explorer: record.explorer.clone(),
                space_volume: record.space_volume,
                objectives: record.objectives,
                lowfi_runs: record.lowfi_runs,
                lowfi_time_s: record.lowfi_time_s,
                candidates: record.candidates.clone(),
            });
    }

    /// Portfolio selection for `--explorer auto`.
    ///
    /// Problem features decide the trivial cases: a space no bigger than
    /// [`EXHAUSTIVE_AUTO_LIMIT`] is enumerated exactly, and a single
    /// objective goes to the scalarizing GA. Otherwise the candidates in
    /// [`RACE_CANDIDATES`] race serially for [`RACE_GENERATIONS`]
    /// generations each on a *low-fidelity* evaluator — the synthesis-only
    /// degraded flow with a fresh ledger and no store — and the winner by
    /// common-reference hypervolume (early-slope tie-break) is committed.
    ///
    /// The race-window host crash is drawn *before* any probe leg runs:
    /// a crashed selection leaves the backend exactly as cold as a fresh
    /// process, so the re-run re-races bitwise. (Drawn only for
    /// persistent runs, like the generation-boundary crash.)
    fn select_explorer(
        &self,
        cfg: &DseConfig,
        evaluator: &Evaluator,
        persistent: bool,
    ) -> DovadoResult<(Explorer, SelectionRecord)> {
        let space_volume = self.space.volume();
        let objectives = cfg.metrics.len() as u32;
        let shortcut = |name: &str| SelectionRecord {
            explorer: name.to_string(),
            space_volume,
            objectives,
            lowfi_runs: 0,
            lowfi_time_s: 0.0,
            candidates: Vec::new(),
        };
        if space_volume <= EXHAUSTIVE_AUTO_LIMIT {
            return Ok((
                Explorer::Exhaustive {
                    limit: EXHAUSTIVE_AUTO_LIMIT,
                },
                shortcut("exhaustive"),
            ));
        }
        if objectives == 1 {
            return Ok((Explorer::WeightedSum(None), shortcut("wsga")));
        }
        if persistent {
            if let Some(injector) = evaluator.injector() {
                if injector.fires(FaultKind::HostCrash) {
                    evaluator.spine().emit_next(crate::obs::ObsEvent::Fault {
                        kind: "host_crash".to_string(),
                    });
                    return Err(DovadoError::Interrupted { generation: 0 });
                }
            }
        }

        let probe = evaluator.probe_with_step(FlowStep::Synthesis);
        let race_cfg = Nsga2Config {
            pop_size: RACE_POP,
            ..cfg.algorithm.clone()
        };
        let term = Termination::Generations(RACE_GENERATIONS);
        let mut legs: Vec<(&'static str, u64, Vec<Vec<Individual>>)> = Vec::new();
        for name in RACE_CANDIDATES {
            // Each leg gets a fresh problem over the shared probe
            // evaluator (serial schedule: the race is always bitwise,
            // whatever `--jobs`/`--workers` the main run uses).
            let mut p =
                DseProblem::new(probe.clone(), self.space.clone(), cfg.metrics.clone(), None)?;
            let mut engine: Box<dyn EngineExplorer> = match name {
                "nsga2" => Box::new(Nsga2Explorer::start(&mut p, &race_cfg)),
                "random" => Box::new(RandomExplorer::start(&p, RACE_POP, race_cfg.seed)),
                "sa" => Box::new(AnnealingExplorer::start(&mut p, RACE_POP, race_cfg.seed)),
                _ => Box::new(crate::bayes::BayesExplorer::start(
                    &mut p,
                    RACE_POP,
                    race_cfg.seed,
                )),
            };
            let mut fronts = vec![engine.front()];
            while !engine.should_stop(&p, &term) {
                engine.step(&mut p);
                fronts.push(engine.front());
            }
            legs.push((name, engine.evaluations(), fronts));
        }

        // One reference point dominated by every probed objective vector
        // makes the hypervolumes comparable across candidates.
        let mut reference = vec![f64::NEG_INFINITY; cfg.metrics.len()];
        for (_, _, fronts) in &legs {
            for ind in fronts.iter().flatten() {
                for (r, v) in reference.iter_mut().zip(&ind.min_objs) {
                    *r = r.max(*v);
                }
            }
        }
        for r in &mut reference {
            *r = if r.is_finite() { *r + 1.0 } else { 1.0 };
        }
        let candidates: Vec<CandidateScore> = legs
            .iter()
            .map(|(name, evaluations, fronts)| {
                let hv: Vec<f64> = fronts
                    .iter()
                    .map(|f| dovado_moo::metrics::hypervolume_of(f, &reference))
                    .collect();
                let first = hv.first().copied().unwrap_or(0.0);
                let last = hv.last().copied().unwrap_or(0.0);
                let slope = if hv.len() > 1 {
                    (last - first) / (hv.len() - 1) as f64
                } else {
                    0.0
                };
                CandidateScore {
                    name: name.to_string(),
                    evaluations: *evaluations,
                    hypervolume: last,
                    slope,
                }
            })
            .collect();
        let mut best = 0;
        for (i, c) in candidates.iter().enumerate().skip(1) {
            let b = &candidates[best];
            if c.hypervolume > b.hypervolume
                || (c.hypervolume == b.hypervolume && c.slope > b.slope)
            {
                best = i;
            }
        }
        let chosen = candidates[best].name.clone();
        let kind = Explorer::of_selection_name(&chosen).expect("race candidates are canonical");
        let record = SelectionRecord {
            explorer: chosen,
            space_volume,
            objectives,
            lowfi_runs: probe.total_runs(),
            lowfi_time_s: probe.total_tool_time(),
            candidates,
        };
        Ok((kind, record))
    }

    /// The single stepwise driver behind every explorer and both
    /// [`Dovado::explore`] and [`Dovado::explore_persistent`]: one
    /// start/step loop, with the write-ahead journal as optional
    /// configuration rather than a separate code path. When persistence
    /// is on, the full exploration state is snapshotted at generation
    /// boundaries; the simulated host crash is drawn only *after* a
    /// snapshot lands durably, so an interrupted run always resumes with
    /// at least one generation of progress — a crash/resume loop
    /// terminates even when every boundary re-crashes. Without
    /// persistence no journal is written and no crash is drawn, so the
    /// fault stream is consumed identically to earlier unjournaled runs.
    #[allow(clippy::too_many_arguments)]
    fn run_explorer(
        &self,
        problem: &mut DseProblem,
        cfg: &DseConfig,
        termination: &Termination,
        persist_cfg: Option<&PersistConfig>,
        monitor: Option<&dyn ExploreMonitor>,
        selection: Option<&SelectionRecord>,
        mut engine: Box<dyn EngineExplorer>,
    ) -> DovadoResult<OptResult> {
        let fingerprint = persist_cfg.map(|_| self.persist_fingerprint(cfg));
        loop {
            if engine.should_stop(&*problem, termination) {
                if let (Some(p), Some(f)) = (persist_cfg, &fingerprint) {
                    let journal = Self::journal_of(problem, engine.as_ref(), selection, f, true);
                    persist::write_journal(&p.journal_path(), &journal)?;
                }
                break;
            }
            engine.step(problem);
            problem
                .evaluator()
                .spine()
                .emit_next(crate::obs::ObsEvent::Generation {
                    generation: engine.generation() as u64,
                    evaluations: engine.evaluations(),
                });
            if let (Some(p), Some(f)) = (persist_cfg, &fingerprint) {
                if engine.generation().is_multiple_of(p.journal_every.max(1)) {
                    let journal = Self::journal_of(problem, engine.as_ref(), selection, f, false);
                    persist::write_journal(&p.journal_path(), &journal)?;
                    if let Some(injector) = problem.evaluator().injector() {
                        if injector.fires(FaultKind::HostCrash) {
                            problem
                                .evaluator()
                                .spine()
                                .emit_next(crate::obs::ObsEvent::Fault {
                                    kind: "host_crash".to_string(),
                                });
                            return Err(DovadoError::Interrupted {
                                generation: engine.generation(),
                            });
                        }
                    }
                }
            }
            // The cancellation point sits *after* the journal write, so a
            // cancelled persistent run keeps its latest durable snapshot
            // and resumes exactly like a crashed one.
            if let Some(m) = monitor {
                if !m.on_generation(engine.generation() as u64, engine.evaluations()) {
                    return Err(DovadoError::Cancelled {
                        generation: engine.generation(),
                    });
                }
            }
        }
        Ok(engine.into_result())
    }

    /// Restarts any explorer's run from its journal. An `auto` run's
    /// journaled [`SelectionRecord`] replays the portfolio decision —
    /// the resumed process commits to the same explorer without
    /// re-racing, and re-emits the decision event (with its low-fidelity
    /// spend) exactly when this spine hasn't already seen one.
    fn resume_explore(
        &self,
        cfg: &DseConfig,
        persist_cfg: &PersistConfig,
        evaluator: Evaluator,
        monitor: Option<&dyn ExploreMonitor>,
    ) -> DovadoResult<DseReport> {
        let journal = persist::read_journal(&persist_cfg.journal_path())?;
        let fingerprint = self.persist_fingerprint(cfg);
        if journal.fingerprint != fingerprint {
            return Err(DovadoError::Config(format!(
                "journal fingerprint {} does not match this run's configuration \
                 ({fingerprint}); refusing to resume a different run",
                journal.fingerprint
            )));
        }
        let controller = match (&cfg.surrogate, &journal.surrogate) {
            (Some(scfg), Some(sj)) => {
                let dataset = Dataset::from_csv(&sj.dataset_csv).map_err(|e| {
                    DovadoError::Config(format!("journaled surrogate dataset unreadable: {e}"))
                })?;
                let mut restored = SurrogateController::restore(
                    dataset,
                    scfg.kernel,
                    sj.bandwidth,
                    scfg.policy,
                    sj.gamma,
                    sj.retrain_every,
                    sj.inserts_since_retrain,
                    sj.stats,
                );
                restored.neighbor_k = scfg.neighbor_k;
                Some(restored)
            }
            (None, None) => None,
            _ => {
                return Err(DovadoError::Config(
                    "journal and configuration disagree about the approximation model".into(),
                ))
            }
        };
        let (kind, selection) = match &cfg.explorer {
            Explorer::Auto => {
                let record = journal.selection.clone().ok_or_else(|| {
                    DovadoError::Config(
                        "auto journal carries no selection record; cannot resume".into(),
                    )
                })?;
                let kind = Explorer::of_selection_name(&record.explorer).ok_or_else(|| {
                    DovadoError::Config(format!(
                        "journaled selection names unknown explorer `{}`",
                        record.explorer
                    ))
                })?;
                (kind, Some(record))
            }
            other => (other.clone(), journal.selection.clone()),
        };
        if let Some(record) = &selection {
            if evaluator.spine().totals().decisions == 0 {
                Self::emit_selection(&evaluator, record);
            }
        }
        // Splice the journaled spend into this process's spine as one
        // `Resume` event carrying only the *deficit* per counter, so a
        // soft deadline keeps meaning "whole run", not "since restart",
        // and counters stay continuous without double-counting (the
        // deficit is ~zero when resuming within the process that
        // crashed, since its spine already holds the journaled work).
        let live = evaluator.trace_summary();
        let deficit = crate::trace::TraceSummary {
            attempts: journal.trace.attempts.saturating_sub(live.attempts),
            retries: journal.trace.retries.saturating_sub(live.retries),
            transient_failures: journal
                .trace
                .transient_failures
                .saturating_sub(live.transient_failures),
            permanent_failures: journal
                .trace
                .permanent_failures
                .saturating_sub(live.permanent_failures),
            cache_hits: journal.trace.cache_hits.saturating_sub(live.cache_hits),
            store_hits: journal.trace.store_hits.saturating_sub(live.store_hits),
            backoff_s: (journal.trace.backoff_s - live.backoff_s).max(0.0),
        };
        evaluator.record_resume(
            deficit,
            journal.runs.saturating_sub(evaluator.total_runs()),
            (journal.tool_time_s - evaluator.total_tool_time()).max(0.0),
        );

        let mut problem = DseProblem::resume_from(
            evaluator,
            self.space.clone(),
            cfg.metrics.clone(),
            controller,
            journal.stats,
        );
        problem.schedule = Self::schedule_of(cfg)?;
        let engine = Self::resume_explorer(&kind, cfg, &problem, journal.snapshot)?;
        let result = if journal.complete {
            // The run had already terminated when the journal was
            // written; re-deriving the result is pure.
            engine.into_result()
        } else {
            self.run_explorer(
                &mut problem,
                cfg,
                &Self::effective_termination(&kind, &cfg.termination),
                Some(persist_cfg),
                monitor,
                selection.as_ref(),
                engine,
            )?
        };
        self.assemble_report(cfg, &problem, result, selection)
    }

    /// The batch [`Schedule`] a configuration asks for, with both pool
    /// knobs validated: `workers` wins over `jobs`/`parallel` (a
    /// distributed run is already parallel), `jobs` implies a parallel
    /// schedule under a sized pool, and otherwise the plain `parallel`
    /// flag decides. Zero is rejected for either knob.
    fn schedule_of(cfg: &DseConfig) -> DovadoResult<Schedule> {
        if let Some(w) = cfg.workers {
            crate::engine::validate_workers(w)?;
            return Ok(Schedule::Distributed { workers: w });
        }
        if let Some(j) = cfg.jobs {
            crate::engine::validate_jobs(j)?;
            return Ok(Schedule::Parallel);
        }
        Ok(Schedule::from_parallel_flag(cfg.parallel))
    }

    /// Everything that identifies one exploration run for resume
    /// purposes. Deliberately excludes `parallel`, `jobs` and `workers`
    /// (a parallel or distributed run is bitwise a sequential one) and
    /// the journal cadence.
    fn persist_fingerprint(&self, cfg: &DseConfig) -> String {
        self.evaluator
            .content_key()
            .extend(&[
                format!("{:?}", cfg.explorer),
                format!("{:?}", cfg.algorithm),
                format!("{:?}", cfg.termination),
                format!("{:?}", cfg.metrics),
                format!("{:?}", cfg.surrogate),
                format!("{:?}", self.space),
            ])
            .hex()
    }

    /// Captures the whole exploration state at a generation boundary.
    fn journal_of(
        problem: &DseProblem,
        engine: &dyn EngineExplorer,
        selection: Option<&SelectionRecord>,
        fingerprint: &str,
        complete: bool,
    ) -> Journal {
        let surrogate = problem.surrogate().map(|c| SurrogateJournal {
            bandwidth: c.model().bandwidth,
            gamma: c.gamma(),
            inserts_since_retrain: c.inserts_since_retrain(),
            retrain_every: c.retrain_every,
            stats: c.stats,
            dataset_csv: c.dataset().to_csv(),
        });
        Journal {
            fingerprint: fingerprint.to_string(),
            complete,
            tool_time_s: problem.evaluator().total_tool_time(),
            trace: problem.evaluator().trace_summary(),
            runs: problem.evaluator().total_runs(),
            stats: problem.stats,
            snapshot: engine.snapshot(),
            selection: selection.cloned(),
            surrogate,
        }
    }

    fn assemble_report(
        &self,
        cfg: &DseConfig,
        problem: &DseProblem,
        result: OptResult,
        selection: Option<SelectionRecord>,
    ) -> DovadoResult<DseReport> {
        let mut pareto = Vec::with_capacity(result.pareto.len());
        for ind in result.sorted_pareto() {
            let point = problem.decode(&ind.genome)?;
            pareto.push(ParetoEntry {
                point,
                values: ind.raw.clone(),
            });
        }
        let stats: FitnessStats = problem.stats;
        // The problem's evaluator is a clone of ours; clones share the
        // flow trace, so the summary covers pretraining and exploration.
        let trace = problem.evaluator().trace_summary();
        let events = problem.evaluator().events();
        let spine = problem.evaluator().snapshot();
        Ok(DseReport {
            pareto,
            metrics: cfg.metrics.clone(),
            generations: result.generations,
            evaluations: result.evaluations,
            tool_runs: stats.tool_runs,
            cached_runs: stats.cached_runs,
            estimates: stats.estimates,
            failures: stats.failures,
            transient_failures: stats.transient_failures,
            permanent_failures: stats.permanent_failures,
            retries: stats.retries,
            trace,
            events,
            spine,
            tool_time_s: self.evaluator.total_tool_time(),
            history: result.history,
            selection,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metric;
    use crate::space::Domain;
    use dovado_fpga::ResourceKind;
    use dovado_hdl::Language;

    const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32
)(input logic clk_i, input logic [DATA_WIDTH-1:0] data_i);
endmodule"#;

    fn dovado() -> Dovado {
        Dovado::new(
            vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
            "fifo_v3",
            ParameterSpace::new().with(
                "DEPTH",
                Domain::Range {
                    lo: 2,
                    hi: 256,
                    step: 2,
                },
            ),
            EvalConfig::default(),
        )
        .unwrap()
    }

    fn metrics() -> MetricSet {
        MetricSet::new(vec![
            Metric::Utilization(ResourceKind::Lut),
            Metric::Utilization(ResourceKind::Register),
            Metric::Fmax,
        ])
    }

    #[test]
    fn space_parameter_validation() {
        let r = Dovado::new(
            vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
            "fifo_v3",
            ParameterSpace::new().with("GHOST", Domain::Bool),
            EvalConfig::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn point_set_evaluation() {
        let d = dovado();
        let points = vec![
            DesignPoint::from_pairs(&[("DEPTH", 8)]),
            DesignPoint::from_pairs(&[("DEPTH", 64)]),
        ];
        let results = d.evaluate_points(&points, false);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.result.is_ok()));
    }

    #[test]
    fn exhaustive_refuses_big_spaces() {
        let d = dovado();
        assert!(d.evaluate_exhaustive(10, false).is_none());
    }

    #[test]
    fn dse_finds_tradeoff_front() {
        let d = dovado();
        let cfg = DseConfig {
            algorithm: Nsga2Config {
                pop_size: 12,
                seed: 3,
                ..Default::default()
            },
            termination: Termination::Generations(6),
            metrics: metrics(),
            surrogate: None,
            parallel: false,
            explorer: Default::default(),
            jobs: None,
            workers: None,
        };
        let report = d.explore(&cfg).unwrap();
        assert!(!report.pareto.is_empty());
        assert_eq!(report.generations, 6);
        assert!(report.tool_runs > 0);
        assert_eq!(report.estimates, 0);
        // Front entries must each carry all metric values.
        assert!(report.pareto.iter().all(|e| e.values.len() == 3));
        // Smallest depth should appear: it minimizes both area metrics and
        // maximizes frequency → single-point front is acceptable too.
        assert!(report.tool_time_s > 0.0);
    }

    #[test]
    fn dse_with_surrogate_saves_tool_runs() {
        let d = dovado();
        let base_cfg = DseConfig {
            algorithm: Nsga2Config {
                pop_size: 10,
                seed: 5,
                ..Default::default()
            },
            termination: Termination::Generations(8),
            metrics: metrics(),
            surrogate: None,
            parallel: false,
            explorer: Default::default(),
            jobs: None,
            workers: None,
        };
        let plain = d.explore(&base_cfg).unwrap();

        let d2 = dovado();
        let sur_cfg = DseConfig {
            surrogate: Some(SurrogateConfig {
                pretrain_samples: 30,
                ..Default::default()
            }),
            ..base_cfg
        };
        let with = d2.explore(&sur_cfg).unwrap();
        assert!(with.estimates > 0, "surrogate never used: {with:?}");
        // Tool runs during exploration (excluding pretraining) shrink.
        let explore_runs_with = with.tool_runs.saturating_sub(30);
        assert!(
            explore_runs_with < plain.tool_runs,
            "with={explore_runs_with} plain={}",
            plain.tool_runs
        );
    }

    #[test]
    fn power_metric_explorable() {
        use crate::metrics::Metric;
        let d = dovado();
        let report = d
            .explore(&DseConfig {
                algorithm: Nsga2Config {
                    pop_size: 8,
                    seed: 4,
                    ..Default::default()
                },
                termination: Termination::Generations(4),
                metrics: MetricSet::new(vec![Metric::Power, Metric::Fmax]),
                surrogate: None,
                parallel: true,
                ..Default::default()
            })
            .unwrap();
        assert!(!report.pareto.is_empty());
        // Power values are real (positive mW) on every front point.
        assert!(report.pareto.iter().all(|e| e.values[0] > 0.0));
        assert!(report.metric_table().contains("Power[mW]"));
    }

    #[test]
    fn alternative_explorers_run() {
        let d = dovado();
        let base = DseConfig {
            algorithm: Nsga2Config {
                pop_size: 10,
                seed: 2,
                ..Default::default()
            },
            termination: Termination::Evaluations(30),
            metrics: metrics(),
            surrogate: None,
            parallel: true,
            ..Default::default()
        };
        // Random search.
        let r = d
            .explore(&DseConfig {
                explorer: Explorer::RandomSearch,
                ..base.clone()
            })
            .unwrap();
        assert!(!r.pareto.is_empty());
        assert!(r.evaluations >= 30);
        // Weighted sum (equal weights).
        let w = d
            .explore(&DseConfig {
                explorer: Explorer::WeightedSum(None),
                ..base.clone()
            })
            .unwrap();
        assert!(!w.pareto.is_empty());
        // Weighted sum with wrong arity is rejected.
        assert!(d
            .explore(&DseConfig {
                explorer: Explorer::WeightedSum(Some(vec![1.0])),
                ..base.clone()
            })
            .is_err());
        // Exhaustive over the 128-point space.
        let e = d
            .explore(&DseConfig {
                explorer: Explorer::Exhaustive { limit: 200 },
                ..base.clone()
            })
            .unwrap();
        assert_eq!(e.evaluations, 128);
        // Exhaustive refuses when the limit is too small.
        assert!(d
            .explore(&DseConfig {
                explorer: Explorer::Exhaustive { limit: 10 },
                ..base.clone()
            })
            .is_err());
        // Simulated annealing.
        let sa = d
            .explore(&DseConfig {
                explorer: Explorer::SimulatedAnnealing,
                ..base.clone()
            })
            .unwrap();
        assert!(!sa.pareto.is_empty());
        assert!(sa.evaluations >= 30);
        // Bayesian acquisition.
        let bayes = d
            .explore(&DseConfig {
                explorer: Explorer::Bayes,
                ..base
            })
            .unwrap();
        assert!(!bayes.pareto.is_empty());
        assert!(bayes.evaluations >= 30);
    }

    #[test]
    fn every_concrete_explorer_journals_and_resumes_bitwise() {
        for explorer in [
            Explorer::Nsga2,
            Explorer::RandomSearch,
            Explorer::WeightedSum(None),
            Explorer::Exhaustive { limit: 200 },
            Explorer::SimulatedAnnealing,
            Explorer::Bayes,
        ] {
            let tag = format!("kind-{}", explorer.canonical_name());
            let dir = persist_dir(&tag);
            let cfg = DseConfig {
                explorer,
                ..small_cfg()
            };
            let persist_cfg = PersistConfig::new(&dir);
            let cold = dovado().explore_persistent(&cfg, &persist_cfg).unwrap();
            let resume_cfg = PersistConfig {
                resume: true,
                ..PersistConfig::new(&dir)
            };
            let resumed = dovado().explore_persistent(&cfg, &resume_cfg).unwrap();
            assert_eq!(resumed.generations, cold.generations, "{cfg:?}");
            assert_eq!(resumed.evaluations, cold.evaluations, "{cfg:?}");
            assert_eq!(resumed.pareto.len(), cold.pareto.len(), "{cfg:?}");
            for (a, b) in cold.pareto.iter().zip(&resumed.pareto) {
                assert_eq!(a.point, b.point);
                for (x, y) in a.values.iter().zip(&b.values) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn auto_races_commits_and_replays_without_re_racing() {
        // The 128-point space with 3 objectives is past both shortcuts,
        // so `auto` runs the low-fidelity race.
        let dir = persist_dir("auto");
        let cfg = DseConfig {
            explorer: Explorer::Auto,
            ..small_cfg()
        };
        let persist_cfg = PersistConfig::new(&dir);
        let cold = dovado().explore_persistent(&cfg, &persist_cfg).unwrap();
        let sel = cold.selection.clone().expect("auto must record a decision");
        assert_eq!(sel.space_volume, 128);
        assert_eq!(sel.objectives, 3);
        assert_eq!(sel.candidates.len(), 4, "all candidates raced");
        assert!(sel.lowfi_runs > 0, "race must spend low-fidelity runs");
        assert!(sel.lowfi_time_s > 0.0);
        assert!(
            sel.candidates.iter().any(|c| c.name == sel.explorer),
            "winner comes from the raced set"
        );
        // The decision landed on the spine exactly once, with the race
        // charged to the low-fidelity ledger, not the full-flow one.
        assert_eq!(cold.spine.lowfi_runs, sel.lowfi_runs);
        assert_eq!(
            cold.spine.lowfi_time_s.to_bits(),
            sel.lowfi_time_s.to_bits()
        );

        // Resume replays the journaled decision: identical record, and
        // not a single extra low-fidelity run.
        let resume_cfg = PersistConfig {
            resume: true,
            ..PersistConfig::new(&dir)
        };
        let resumed = dovado().explore_persistent(&cfg, &resume_cfg).unwrap();
        assert_eq!(resumed.selection.as_ref(), Some(&sel));
        assert_eq!(resumed.spine.lowfi_runs, sel.lowfi_runs, "no re-race");
        assert_eq!(resumed.generations, cold.generations);
        assert_eq!(resumed.pareto.len(), cold.pareto.len());
        for (a, b) in cold.pareto.iter().zip(&resumed.pareto) {
            assert_eq!(a.point, b.point);
            for (x, y) in a.values.iter().zip(&b.values) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_shortcuts_small_spaces_and_single_objectives() {
        // 32 points ≤ EXHAUSTIVE_AUTO_LIMIT → exact enumeration, no race.
        let small = Dovado::new(
            vec![HdlSource::new(
                "fifo.sv",
                dovado_hdl::Language::SystemVerilog,
                FIFO_SV,
            )],
            "fifo_v3",
            ParameterSpace::new().with(
                "DEPTH",
                Domain::Range {
                    lo: 2,
                    hi: 64,
                    step: 2,
                },
            ),
            EvalConfig::default(),
        )
        .unwrap();
        let r = small
            .explore(&DseConfig {
                explorer: Explorer::Auto,
                ..small_cfg()
            })
            .unwrap();
        let sel = r.selection.unwrap();
        assert_eq!(sel.explorer, "exhaustive");
        assert_eq!(sel.lowfi_runs, 0, "shortcuts never race");
        assert!(sel.candidates.is_empty());
        assert_eq!(r.evaluations, 32, "the whole space is enumerated");

        // One objective → the scalarizing GA, no race.
        let r1 = dovado()
            .explore(&DseConfig {
                explorer: Explorer::Auto,
                metrics: MetricSet::new(vec![Metric::Fmax]),
                ..small_cfg()
            })
            .unwrap();
        let sel1 = r1.selection.unwrap();
        assert_eq!(sel1.explorer, "wsga");
        assert_eq!(sel1.lowfi_runs, 0);
    }

    fn persist_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dovado-dse-{tag}-{}", std::process::id()))
    }

    fn small_cfg() -> DseConfig {
        DseConfig {
            algorithm: Nsga2Config {
                pop_size: 8,
                seed: 7,
                ..Default::default()
            },
            termination: Termination::Generations(4),
            metrics: metrics(),
            surrogate: None,
            parallel: false,
            jobs: None,
            workers: None,
            explorer: Default::default(),
        }
    }

    #[test]
    fn persistent_explore_journals_then_warm_rerun_needs_no_tool() {
        let dir = persist_dir("warm");
        let cfg = small_cfg();
        let persist_cfg = PersistConfig::new(&dir);

        let cold = dovado().explore_persistent(&cfg, &persist_cfg).unwrap();
        assert!(persist_cfg.journal_path().exists());
        assert!(cold.tool_runs > 0);
        assert!(
            cold.trace.attempts + cold.trace.store_hits >= cold.tool_runs,
            "a cold run may hit entries it wrote itself, never more"
        );

        // Same run against the warm store: identical front, and not a
        // single tool attempt anywhere.
        let warm = dovado().explore_persistent(&cfg, &persist_cfg).unwrap();
        assert_eq!(warm.trace.attempts, 0, "warm run must not touch the tool");
        assert!(warm.trace.store_hits > 0);
        assert_eq!(warm.pareto.len(), cold.pareto.len());
        for (a, b) in cold.pareto.iter().zip(&warm.pareto) {
            assert_eq!(a.point, b.point);
            for (x, y) in a.values.iter().zip(&b.values) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resuming_a_completed_journal_reproduces_the_report() {
        let dir = persist_dir("complete");
        let cfg = small_cfg();
        let persist_cfg = PersistConfig::new(&dir);
        let cold = dovado().explore_persistent(&cfg, &persist_cfg).unwrap();

        let resume_cfg = PersistConfig {
            resume: true,
            ..PersistConfig::new(&dir)
        };
        let resumed = dovado().explore_persistent(&cfg, &resume_cfg).unwrap();
        // The journaled counters splice into the fresh process's spine,
        // so the resumed trace is continuous with the cold run's.
        assert_eq!(resumed.trace, cold.trace, "spliced counters continue");
        assert_eq!(
            resumed.tool_runs, cold.tool_runs,
            "stats come from the journal"
        );
        assert_eq!(resumed.generations, cold.generations);
        assert_eq!(resumed.pareto.len(), cold.pareto.len());
        for (a, b) in cold.pareto.iter().zip(&resumed.pareto) {
            assert_eq!(a.point, b.point);
            for (x, y) in a.values.iter().zip(&b.values) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_refuses_mismatched_config_and_wrong_explorer() {
        let dir = persist_dir("mismatch");
        let cfg = small_cfg();
        let persist_cfg = PersistConfig::new(&dir);
        dovado().explore_persistent(&cfg, &persist_cfg).unwrap();

        let resume_cfg = PersistConfig {
            resume: true,
            ..PersistConfig::new(&dir)
        };
        // Different seed → different fingerprint → refuse.
        let other = DseConfig {
            algorithm: Nsga2Config {
                pop_size: 8,
                seed: 8,
                ..Default::default()
            },
            ..small_cfg()
        };
        let err = dovado()
            .explore_persistent(&other, &resume_cfg)
            .unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");

        // A different explorer → different fingerprint → refuse.
        let rs = DseConfig {
            explorer: Explorer::RandomSearch,
            ..small_cfg()
        };
        assert!(dovado().explore_persistent(&rs, &resume_cfg).is_err());

        // And a missing journal refuses too.
        let empty = persist_dir("missing");
        let missing = PersistConfig {
            resume: true,
            ..PersistConfig::new(&empty)
        };
        assert!(dovado().explore_persistent(&cfg, &missing).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&empty);
    }

    #[test]
    fn soft_deadline_stops_early() {
        let d = dovado();
        let cfg = DseConfig {
            algorithm: Nsga2Config {
                pop_size: 8,
                seed: 1,
                ..Default::default()
            },
            // A budget two evaluation-batches big (in simulated seconds).
            termination: Termination::SoftDeadline(3000.0),
            metrics: metrics(),
            surrogate: None,
            parallel: false,
            explorer: Default::default(),
            jobs: None,
            workers: None,
        };
        let report = d.explore(&cfg).unwrap();
        assert!(report.generations < 50, "deadline ignored: {report:?}");
        assert!(
            report.tool_time_s >= 3000.0,
            "stopped before the budget was used"
        );
    }
}
