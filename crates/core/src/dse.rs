//! The Dovado front door: design automation (evaluate given points) and
//! design space exploration (NSGA-II over a parameter space).

use crate::error::DovadoResult;
use crate::fitness::{DseProblem, FitnessStats};
use crate::flow::{EvalConfig, Evaluator, HdlSource};
use crate::metrics::{Evaluation, MetricSet};
use crate::point::DesignPoint;
use crate::results::{DseReport, ParetoEntry, PointResult};
use crate::space::ParameterSpace;
use dovado_moo::{
    exhaustive_search, nsga2, random_search, weighted_sum_ga, Nsga2Config, OptResult, Termination,
};
use dovado_surrogate::{Kernel, ThresholdPolicy};

/// Which exploration strategy drives the search.
///
/// The paper uses NSGA-II and surveys alternatives via Panerati et al.
/// [12], planning "an investigation on a run-time choice among various
/// algorithms" (§V) — this knob is that choice point.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Explorer {
    /// NSGA-II (the paper's solver; uses [`DseConfig::algorithm`]).
    #[default]
    Nsga2,
    /// Uniform random sampling, keeping the non-dominated archive.
    RandomSearch,
    /// Single-objective GA on a weighted sum of the (minimization-space)
    /// objectives; `None` = equal weights.
    WeightedSum(Option<Vec<f64>>),
    /// Exact exploration of the whole space (refused when the volume
    /// exceeds the given limit).
    Exhaustive {
        /// Maximum space volume to accept.
        limit: u64,
    },
}

/// Configuration of the fitness-approximation model.
#[derive(Debug, Clone)]
pub struct SurrogateConfig {
    /// Threshold policy (paper default: adaptive Γ).
    pub policy: ThresholdPolicy,
    /// Synthetic-dataset size M: distinct random tool calls made before
    /// exploration (paper default 100, user-definable).
    pub pretrain_samples: usize,
    /// Kernel (paper: Gaussian).
    pub kernel: Kernel,
    /// Sampling seed for the synthetic dataset.
    pub seed: u64,
    /// Re-run LOO-CV bandwidth selection every this many dataset
    /// insertions (1 = the paper's retrain-after-every-addition). Batch
    /// decisions are unaffected by values > 1: the staged pipeline
    /// refreshes any stale bandwidth before each generation's decide
    /// phase, so amortization only changes *when* selection runs, not the
    /// data it sees.
    pub reselect_every: usize,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig {
            policy: ThresholdPolicy::paper_default(),
            pretrain_samples: 100,
            kernel: Kernel::Gaussian,
            seed: 0x5EED,
            reselect_every: 25,
        }
    }
}

/// Configuration of one exploration run.
#[derive(Debug, Clone)]
pub struct DseConfig {
    /// Exploration strategy.
    pub explorer: Explorer,
    /// Genetic-algorithm settings (used by [`Explorer::Nsga2`]; population
    /// size doubles as the batch size for random search and the weighted-
    /// sum GA).
    pub algorithm: Nsga2Config,
    /// Stop condition.
    pub termination: Termination,
    /// Metrics to optimize.
    pub metrics: MetricSet,
    /// Fitness approximation (None = always call the tool, as the paper's
    /// Corundum/Neorv32/TiReX runs do).
    pub surrogate: Option<SurrogateConfig>,
    /// Evaluate tool-only generations in parallel.
    pub parallel: bool,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            explorer: Explorer::Nsga2,
            algorithm: Nsga2Config::default(),
            termination: Termination::Generations(20),
            metrics: MetricSet::area_frequency(),
            surrogate: None,
            parallel: false,
        }
    }
}

/// A configured Dovado instance for one module.
pub struct Dovado {
    evaluator: Evaluator,
    space: ParameterSpace,
}

impl Dovado {
    /// Parses sources and prepares the evaluator.
    pub fn new(
        sources: Vec<HdlSource>,
        top_module: &str,
        space: ParameterSpace,
        eval_config: EvalConfig,
    ) -> DovadoResult<Dovado> {
        let evaluator = Evaluator::new(sources, top_module, eval_config)?;
        // Sanity: every space parameter must exist on the module.
        for p in space.params() {
            if evaluator.module().parameter(&p.name).is_none() {
                return Err(crate::error::DovadoError::Space(format!(
                    "module `{}` has no parameter `{}`",
                    evaluator.module().name,
                    p.name
                )));
            }
        }
        Ok(Dovado { evaluator, space })
    }

    /// The parameter space.
    pub fn space(&self) -> &ParameterSpace {
        &self.space
    }

    /// The underlying evaluator (single-point design automation).
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// Design automation: evaluates one explicit design point.
    pub fn evaluate_point(&self, point: &DesignPoint) -> DovadoResult<Evaluation> {
        self.evaluator.evaluate(point)
    }

    /// Design automation: evaluates a set of points (optionally in
    /// parallel), pairing each with its result.
    pub fn evaluate_points(&self, points: &[DesignPoint], parallel: bool) -> Vec<PointResult> {
        self.evaluator
            .evaluate_many(points, parallel)
            .into_iter()
            .zip(points)
            .map(|(result, point)| PointResult {
                point: point.clone(),
                result,
            })
            .collect()
    }

    /// Exact exploration: evaluates *every* point in the space (refuses
    /// when the volume exceeds `limit`).
    pub fn evaluate_exhaustive(&self, limit: u64, parallel: bool) -> Option<Vec<PointResult>> {
        let points = self.space.enumerate(limit)?;
        Some(self.evaluate_points(&points, parallel))
    }

    /// Design space exploration: runs the configured explorer (with or
    /// without the approximation model) and returns the non-dominated set.
    pub fn explore(&self, cfg: &DseConfig) -> DovadoResult<DseReport> {
        let mut problem = DseProblem::new(
            self.evaluator.clone(),
            self.space.clone(),
            cfg.metrics.clone(),
            cfg.surrogate.as_ref(),
        )?;
        problem.parallel = cfg.parallel;

        let result: OptResult = match &cfg.explorer {
            Explorer::Nsga2 => nsga2(&mut problem, &cfg.algorithm, &cfg.termination),
            Explorer::RandomSearch => random_search(
                &mut problem,
                &cfg.termination,
                cfg.algorithm.pop_size,
                cfg.algorithm.seed,
            ),
            Explorer::WeightedSum(weights) => {
                let n = cfg.metrics.len();
                let w = match weights {
                    Some(w) => {
                        if w.len() != n {
                            return Err(crate::error::DovadoError::Config(format!(
                                "weighted-sum wants {n} weights, got {}",
                                w.len()
                            )));
                        }
                        w.clone()
                    }
                    None => vec![1.0 / n as f64; n],
                };
                weighted_sum_ga(
                    &mut problem,
                    &w,
                    &cfg.termination,
                    cfg.algorithm.pop_size,
                    cfg.algorithm.seed,
                )
            }
            Explorer::Exhaustive { limit } => {
                exhaustive_search(&mut problem, *limit).ok_or_else(|| {
                    crate::error::DovadoError::Config(format!(
                        "space volume {} exceeds the exhaustive limit {limit}",
                        self.space.volume()
                    ))
                })?
            }
        };

        let mut pareto = Vec::with_capacity(result.pareto.len());
        for ind in result.sorted_pareto() {
            let point = problem.decode(&ind.genome)?;
            pareto.push(ParetoEntry {
                point,
                values: ind.raw.clone(),
            });
        }
        let stats: FitnessStats = problem.stats;
        // The problem's evaluator is a clone of ours; clones share the
        // flow trace, so the summary covers pretraining and exploration.
        let trace = problem.evaluator().trace_summary();
        let events = problem.evaluator().events();
        Ok(DseReport {
            pareto,
            metrics: cfg.metrics.clone(),
            generations: result.generations,
            evaluations: result.evaluations,
            tool_runs: stats.tool_runs,
            cached_runs: stats.cached_runs,
            estimates: stats.estimates,
            failures: stats.failures,
            transient_failures: stats.transient_failures,
            permanent_failures: stats.permanent_failures,
            retries: stats.retries,
            trace,
            events,
            tool_time_s: self.evaluator.total_tool_time(),
            history: result.history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metric;
    use crate::space::Domain;
    use dovado_fpga::ResourceKind;
    use dovado_hdl::Language;

    const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32
)(input logic clk_i, input logic [DATA_WIDTH-1:0] data_i);
endmodule"#;

    fn dovado() -> Dovado {
        Dovado::new(
            vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
            "fifo_v3",
            ParameterSpace::new().with(
                "DEPTH",
                Domain::Range {
                    lo: 2,
                    hi: 256,
                    step: 2,
                },
            ),
            EvalConfig::default(),
        )
        .unwrap()
    }

    fn metrics() -> MetricSet {
        MetricSet::new(vec![
            Metric::Utilization(ResourceKind::Lut),
            Metric::Utilization(ResourceKind::Register),
            Metric::Fmax,
        ])
    }

    #[test]
    fn space_parameter_validation() {
        let r = Dovado::new(
            vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
            "fifo_v3",
            ParameterSpace::new().with("GHOST", Domain::Bool),
            EvalConfig::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn point_set_evaluation() {
        let d = dovado();
        let points = vec![
            DesignPoint::from_pairs(&[("DEPTH", 8)]),
            DesignPoint::from_pairs(&[("DEPTH", 64)]),
        ];
        let results = d.evaluate_points(&points, false);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.result.is_ok()));
    }

    #[test]
    fn exhaustive_refuses_big_spaces() {
        let d = dovado();
        assert!(d.evaluate_exhaustive(10, false).is_none());
    }

    #[test]
    fn dse_finds_tradeoff_front() {
        let d = dovado();
        let cfg = DseConfig {
            algorithm: Nsga2Config {
                pop_size: 12,
                seed: 3,
                ..Default::default()
            },
            termination: Termination::Generations(6),
            metrics: metrics(),
            surrogate: None,
            parallel: false,
            explorer: Default::default(),
        };
        let report = d.explore(&cfg).unwrap();
        assert!(!report.pareto.is_empty());
        assert_eq!(report.generations, 6);
        assert!(report.tool_runs > 0);
        assert_eq!(report.estimates, 0);
        // Front entries must each carry all metric values.
        assert!(report.pareto.iter().all(|e| e.values.len() == 3));
        // Smallest depth should appear: it minimizes both area metrics and
        // maximizes frequency → single-point front is acceptable too.
        assert!(report.tool_time_s > 0.0);
    }

    #[test]
    fn dse_with_surrogate_saves_tool_runs() {
        let d = dovado();
        let base_cfg = DseConfig {
            algorithm: Nsga2Config {
                pop_size: 10,
                seed: 5,
                ..Default::default()
            },
            termination: Termination::Generations(8),
            metrics: metrics(),
            surrogate: None,
            parallel: false,
            explorer: Default::default(),
        };
        let plain = d.explore(&base_cfg).unwrap();

        let d2 = dovado();
        let sur_cfg = DseConfig {
            surrogate: Some(SurrogateConfig {
                pretrain_samples: 30,
                ..Default::default()
            }),
            ..base_cfg
        };
        let with = d2.explore(&sur_cfg).unwrap();
        assert!(with.estimates > 0, "surrogate never used: {with:?}");
        // Tool runs during exploration (excluding pretraining) shrink.
        let explore_runs_with = with.tool_runs.saturating_sub(30);
        assert!(
            explore_runs_with < plain.tool_runs,
            "with={explore_runs_with} plain={}",
            plain.tool_runs
        );
    }

    #[test]
    fn power_metric_explorable() {
        use crate::metrics::Metric;
        let d = dovado();
        let report = d
            .explore(&DseConfig {
                algorithm: Nsga2Config {
                    pop_size: 8,
                    seed: 4,
                    ..Default::default()
                },
                termination: Termination::Generations(4),
                metrics: MetricSet::new(vec![Metric::Power, Metric::Fmax]),
                surrogate: None,
                parallel: true,
                ..Default::default()
            })
            .unwrap();
        assert!(!report.pareto.is_empty());
        // Power values are real (positive mW) on every front point.
        assert!(report.pareto.iter().all(|e| e.values[0] > 0.0));
        assert!(report.metric_table().contains("Power[mW]"));
    }

    #[test]
    fn alternative_explorers_run() {
        let d = dovado();
        let base = DseConfig {
            algorithm: Nsga2Config {
                pop_size: 10,
                seed: 2,
                ..Default::default()
            },
            termination: Termination::Evaluations(30),
            metrics: metrics(),
            surrogate: None,
            parallel: true,
            ..Default::default()
        };
        // Random search.
        let r = d
            .explore(&DseConfig {
                explorer: Explorer::RandomSearch,
                ..base.clone()
            })
            .unwrap();
        assert!(!r.pareto.is_empty());
        assert!(r.evaluations >= 30);
        // Weighted sum (equal weights).
        let w = d
            .explore(&DseConfig {
                explorer: Explorer::WeightedSum(None),
                ..base.clone()
            })
            .unwrap();
        assert!(!w.pareto.is_empty());
        // Weighted sum with wrong arity is rejected.
        assert!(d
            .explore(&DseConfig {
                explorer: Explorer::WeightedSum(Some(vec![1.0])),
                ..base.clone()
            })
            .is_err());
        // Exhaustive over the 128-point space.
        let e = d
            .explore(&DseConfig {
                explorer: Explorer::Exhaustive { limit: 200 },
                ..base.clone()
            })
            .unwrap();
        assert_eq!(e.evaluations, 128);
        // Exhaustive refuses when the limit is too small.
        assert!(d
            .explore(&DseConfig {
                explorer: Explorer::Exhaustive { limit: 10 },
                ..base
            })
            .is_err());
    }

    #[test]
    fn soft_deadline_stops_early() {
        let d = dovado();
        let cfg = DseConfig {
            algorithm: Nsga2Config {
                pop_size: 8,
                seed: 1,
                ..Default::default()
            },
            // A budget two evaluation-batches big (in simulated seconds).
            termination: Termination::SoftDeadline(3000.0),
            metrics: metrics(),
            surrogate: None,
            parallel: false,
            explorer: Default::default(),
        };
        let report = d.explore(&cfg).unwrap();
        assert!(report.generations < 50, "deadline ignored: {report:?}");
        assert!(
            report.tool_time_s >= 3000.0,
            "stopped before the budget was used"
        );
    }
}
