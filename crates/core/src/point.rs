//! Design points: one concrete assignment of values to free parameters.

use std::collections::BTreeMap;
use std::fmt;

/// A concrete parameter assignment, ordered as declared in the space.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DesignPoint {
    names: Vec<String>,
    values: Vec<i64>,
}

impl DesignPoint {
    /// Creates a point; `names` and `values` must align.
    pub fn new(names: Vec<String>, values: Vec<i64>) -> DesignPoint {
        assert_eq!(names.len(), values.len(), "names/values length mismatch");
        DesignPoint { names, values }
    }

    /// Builds a point from pairs.
    pub fn from_pairs(pairs: &[(&str, i64)]) -> DesignPoint {
        DesignPoint {
            names: pairs.iter().map(|(n, _)| n.to_string()).collect(),
            values: pairs.iter().map(|(_, v)| *v).collect(),
        }
    }

    /// Parameter names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Values in order.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Case-insensitive lookup.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(name))
            .map(|i| self.values[i])
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the point is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// As a map usable for generic overrides.
    pub fn as_map(&self) -> BTreeMap<String, i64> {
        self.names
            .iter()
            .cloned()
            .zip(self.values.iter().copied())
            .collect()
    }

    /// The `NAME=VALUE NAME=VALUE` form used in tool scripts.
    pub fn as_assignments(&self) -> String {
        self.names
            .iter()
            .zip(&self.values)
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.as_assignments())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let p = DesignPoint::from_pairs(&[("DEPTH", 64), ("WIDTH", 32)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get("depth"), Some(64));
        assert_eq!(p.get("NOPE"), None);
        assert!(!p.is_empty());
    }

    #[test]
    fn map_and_assignments() {
        let p = DesignPoint::from_pairs(&[("B", 2), ("A", 1)]);
        let m = p.as_map();
        assert_eq!(m["A"], 1);
        assert_eq!(p.as_assignments(), "B=2 A=1");
        assert_eq!(p.to_string(), "{B=2 A=1}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = DesignPoint::new(vec!["a".into()], vec![1, 2]);
    }

    #[test]
    fn equality_and_hash() {
        use std::collections::HashSet;
        let a = DesignPoint::from_pairs(&[("X", 1)]);
        let b = DesignPoint::from_pairs(&[("X", 1)]);
        let c = DesignPoint::from_pairs(&[("X", 2)]);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }
}
