//! Structured per-attempt flow trace.
//!
//! Every tool invocation the [`crate::Evaluator`] makes — including failed
//! and retried attempts — appends one [`FlowEvent`]. The trace is what
//! turns "the DSE run took 4 hours of tool time" into "point DEPTH=512
//! timed out twice, backed off 90 s, and succeeded on attempt 3": it is
//! surfaced through [`crate::FitnessStats`] / `DseReport` and printed by
//! the CLI's explore command.

use crate::flow::FlowStep;
use crate::obs::{EventBus, EventKey, ObsEvent};
use std::fmt;

/// How one evaluation attempt ended.
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptOutcome {
    /// Metrics scraped successfully.
    Success,
    /// Failed with a retryable (environmental) error.
    TransientFailure(String),
    /// Failed with a non-retryable error.
    PermanentFailure(String),
}

impl AttemptOutcome {
    /// Whether this attempt produced metrics.
    pub fn is_success(&self) -> bool {
        matches!(self, AttemptOutcome::Success)
    }
}

/// One tool invocation, as the evaluator saw it.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEvent {
    /// Compact design-point label (`DEPTH=64`).
    pub point: String,
    /// 1-based attempt number for this point evaluation.
    pub attempt: u32,
    /// Flow depth attempted (may be degraded below the configured step).
    pub step: FlowStep,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
    /// Simulated tool seconds this attempt burned.
    pub tool_time_s: f64,
    /// Backoff seconds charged *after* this attempt (0 when none).
    pub backoff_s: f64,
    /// Whether the attempt asked for the incremental flow.
    pub incremental: bool,
    /// Whether the tool satisfied the attempt from an exact checkpoint.
    pub cached: bool,
}

impl fmt::Display for FlowEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = match &self.outcome {
            AttemptOutcome::Success if self.cached => "ok (cached)".to_string(),
            AttemptOutcome::Success => "ok".to_string(),
            AttemptOutcome::TransientFailure(e) => format!("transient: {e}"),
            AttemptOutcome::PermanentFailure(e) => format!("permanent: {e}"),
        };
        write!(
            f,
            "{} attempt {} [{:?}] {:.1}s{} — {}",
            self.point,
            self.attempt,
            self.step,
            self.tool_time_s,
            if self.backoff_s > 0.0 {
                format!(" +{:.0}s backoff", self.backoff_s)
            } else {
                String::new()
            },
            state
        )
    }
}

/// Rolled-up trace counters (cheap to copy into reports).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TraceSummary {
    /// Total attempts (successes + failures).
    pub attempts: u64,
    /// Attempts beyond the first for their point (i.e. retries).
    pub retries: u64,
    /// Attempts that failed with a transient error.
    pub transient_failures: u64,
    /// Attempts that failed with a permanent error.
    pub permanent_failures: u64,
    /// Successful attempts served from an exact checkpoint.
    pub cache_hits: u64,
    /// Evaluations answered from the persistent on-disk store without
    /// any tool attempt at all (not counted in `attempts`).
    pub store_hits: u64,
    /// Total simulated backoff seconds charged.
    pub backoff_s: f64,
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} attempts ({} retries), {} transient / {} permanent failures, \
             {} cache hits, {} store hits, {:.0}s backoff",
            self.attempts,
            self.retries,
            self.transient_failures,
            self.permanent_failures,
            self.cache_hits,
            self.store_hits,
            self.backoff_s
        )
    }
}

/// Thin adapter over the observability spine that keeps the historical
/// per-attempt trace API.
///
/// `FlowTrace` no longer owns any counters: every `push` emits an
/// [`ObsEvent::Attempt`] on its [`EventBus`], and the summary is the
/// bus's folded totals. Clones share storage (the evaluator is `Clone`
/// and evaluations run in parallel); counters are exact over the whole
/// run even after old events are dropped by the retention cap.
#[derive(Clone, Default)]
pub struct FlowTrace {
    bus: EventBus,
}

impl FlowTrace {
    /// Creates an empty trace over a fresh bus.
    pub fn new() -> FlowTrace {
        FlowTrace::default()
    }

    /// Creates a view over an existing bus.
    pub fn with_bus(bus: EventBus) -> FlowTrace {
        FlowTrace { bus }
    }

    /// The underlying event bus.
    pub fn bus(&self) -> &EventBus {
        &self.bus
    }

    /// Emits the attempt on the spine (its key is the next serial
    /// sequence number, sub-ordered by attempt number).
    pub fn push(&self, event: FlowEvent) {
        let key = EventKey {
            seq: self.bus.alloc(1),
            sub: event.attempt,
        };
        self.bus.emit(key, ObsEvent::Attempt(event));
    }

    /// Counts one evaluation served from the persistent store (no tool
    /// attempt happens, so this is tracked outside [`FlowTrace::push`]).
    pub fn record_store_hit(&self) {
        self.bus.emit_next(ObsEvent::StoreHit {
            point: String::new(),
        });
    }

    /// Snapshot of the retained attempt events (canonical order).
    pub fn events(&self) -> Vec<FlowEvent> {
        self.bus
            .events()
            .into_iter()
            .filter_map(|(_, event)| match event {
                ObsEvent::Attempt(e) => Some(e),
                _ => None,
            })
            .collect()
    }

    /// Exact whole-run counters, folded from the event stream.
    pub fn summary(&self) -> TraceSummary {
        self.bus.totals().summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(attempt: u32, outcome: AttemptOutcome) -> FlowEvent {
        FlowEvent {
            point: "DEPTH=8".into(),
            attempt,
            step: FlowStep::Implementation,
            outcome,
            tool_time_s: 10.0,
            backoff_s: if attempt > 1 { 30.0 } else { 0.0 },
            incremental: true,
            cached: false,
        }
    }

    #[test]
    fn summary_counts_outcomes() {
        let trace = FlowTrace::new();
        trace.push(event(1, AttemptOutcome::TransientFailure("crash".into())));
        trace.push(event(2, AttemptOutcome::Success));
        trace.push(event(
            1,
            AttemptOutcome::PermanentFailure("overflow".into()),
        ));
        let s = trace.summary();
        assert_eq!(s.attempts, 3);
        assert_eq!(s.retries, 1);
        assert_eq!(s.transient_failures, 1);
        assert_eq!(s.permanent_failures, 1);
        assert_eq!(s.backoff_s, 30.0);
        assert_eq!(trace.events().len(), 3);
    }

    #[test]
    fn cache_hits_counted_on_success_only() {
        let trace = FlowTrace::new();
        let mut e = event(1, AttemptOutcome::Success);
        e.cached = true;
        trace.push(e);
        let mut e = event(1, AttemptOutcome::TransientFailure("x".into()));
        e.cached = true; // nonsensical, must not count
        trace.push(e);
        assert_eq!(trace.summary().cache_hits, 1);
    }

    #[test]
    fn clones_share_storage_and_cap_holds() {
        use crate::obs::MAX_RETAINED_EVENTS;
        let trace = FlowTrace::new();
        let clone = trace.clone();
        for _ in 0..(MAX_RETAINED_EVENTS + 100) {
            clone.push(event(1, AttemptOutcome::Success));
        }
        assert_eq!(trace.events().len(), MAX_RETAINED_EVENTS);
        assert_eq!(trace.summary().attempts, (MAX_RETAINED_EVENTS + 100) as u64);
    }

    #[test]
    fn display_is_readable() {
        let line = event(2, AttemptOutcome::TransientFailure("tool crashed".into())).to_string();
        assert!(line.contains("attempt 2"), "{line}");
        assert!(line.contains("backoff"), "{line}");
        assert!(line.contains("transient"), "{line}");
    }
}
