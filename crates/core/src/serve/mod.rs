//! `dovado serve`: a multi-tenant design-space-exploration service.
//!
//! The daemon ([`Server`]) listens on a TCP socket and speaks a
//! line-delimited JSON protocol ([`protocol`]): clients submit
//! exploration jobs, the fair-share scheduler ([`scheduler`]) decides
//! which tenant's job gets each of the daemon's slots, and every job's
//! observability spine streams back live in the **trace v2 wire
//! format** — the same lines `explore --trace-out` writes, so the same
//! fold and the same `jq` recipes apply to a live stream and a file.
//!
//! Jobs that opt in (`store: true`) share one sharded, capacity-bounded
//! [`dovado_eda::EvalStore`] under the daemon root: a result any tenant
//! computed is a store hit for every other tenant, and eviction under
//! the capacity bound can only ever turn a would-be hit into a miss,
//! never into a wrong answer.
//!
//! | Module | What lives there |
//! |---|---|
//! | [`json`] | minimal JSON reader + string escaping |
//! | [`protocol`] | request/response shapes, trace v2 event line parser |
//! | [`scheduler`] | stride fair-share queue, slot permits, cancel tokens |
//! | [`session`] | the daemon: listener, job runner, streaming |
//! | [`client`] | synchronous client used by the CLI and tests |

pub mod client;
pub mod json;
pub mod protocol;
pub mod scheduler;
pub mod session;

pub use client::{Client, JobOutcome};
pub use json::Json;
pub use protocol::{
    fold_stream, parse_event_line, parse_request, JobSpec, Request, SERVE_PROTOCOL_VERSION,
};
pub use scheduler::{CancelToken, FairShare, Scheduler, SlotPermit};
pub use session::{JobPhase, ServeConfig, Server};
