//! Fair-share slot scheduling for concurrent exploration jobs.
//!
//! The daemon runs at most `slots` jobs at once (each job evaluates
//! serially, so `slots` bounds the daemon's share of the machine the
//! same way `--jobs` bounds one run). Which queued job gets the next
//! free slot is decided by **stride scheduling** over tenants: every
//! grant advances the tenant's virtual time by `STRIDE / weight`, and
//! the queued job belonging to the tenant with the lowest virtual time
//! wins (ties broken by arrival order, so the decision is
//! deterministic). Over time each tenant's share of grants converges to
//! `weight / Σweights`, regardless of how many jobs each tenant floods
//! into the queue.
//!
//! Slots are RAII permits ([`SlotPermit`]): a job that finishes, fails,
//! or is cancelled releases its slot on drop — there is no path that
//! leaks a permit. Cancellation is cooperative via [`CancelToken`]:
//! a queued job observes it inside [`Scheduler::acquire`] and leaves
//! the queue immediately; a running job observes it at the next
//! generation boundary through its `ExploreMonitor`.
//!
//! This module deliberately uses `std::sync` primitives (the vendored
//! `parking_lot` shim has no `Condvar`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Virtual-time increment for a weight-1 grant. Large enough that
/// integer division by any sane weight keeps plenty of resolution.
const STRIDE: u64 = 1 << 20;

/// Cooperative cancellation flag, shared between a job's client-facing
/// handle and whatever is executing it. Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Deterministic stride-scheduling queue: decides *which* queued job is
/// served next, independent of slot bookkeeping. Pure data structure —
/// no locking, no blocking — so the fairness policy is unit-testable
/// under a synthetic workload.
#[derive(Debug, Default)]
pub struct FairShare {
    /// Per-tenant virtual time (monotonic within a queue's lifetime).
    vtime: HashMap<String, u64>,
    /// Waiting tickets: `(ticket, tenant, weight)` in arrival order.
    queue: Vec<(u64, String, u32)>,
    next_ticket: u64,
}

impl FairShare {
    /// An empty queue.
    pub fn new() -> FairShare {
        FairShare::default()
    }

    /// Enqueues one job for `tenant` with the given weight (clamped to
    /// at least 1) and returns its ticket. A tenant's virtual time is
    /// pulled up to the queue's current minimum on arrival, so an idle
    /// tenant cannot bank credit and then monopolize the slots.
    pub fn enqueue(&mut self, tenant: &str, weight: u32) -> u64 {
        // The queue's current virtual time: the minimum over waiting
        // tenants, or — with nobody waiting — the maximum ever reached,
        // so time never appears to run backwards for a latecomer.
        let floor = self
            .queue
            .iter()
            .filter_map(|(_, t, _)| self.vtime.get(t).copied())
            .min()
            .unwrap_or_else(|| self.vtime.values().copied().max().unwrap_or(0));
        let v = self.vtime.entry(tenant.to_string()).or_insert(floor);
        *v = (*v).max(floor);
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.queue.push((ticket, tenant.to_string(), weight.max(1)));
        ticket
    }

    /// The ticket that should be granted the next free slot: the
    /// earliest-arrived job of the tenant with the lowest virtual time.
    pub fn pick(&self) -> Option<u64> {
        self.queue
            .iter()
            .min_by_key(|(ticket, tenant, _)| {
                (self.vtime.get(tenant).copied().unwrap_or(0), *ticket)
            })
            .map(|(ticket, _, _)| *ticket)
    }

    /// Grants `ticket`: removes it from the queue and advances its
    /// tenant's virtual time by `STRIDE / weight`. Returns the tenant,
    /// or `None` for an unknown ticket.
    pub fn grant(&mut self, ticket: u64) -> Option<String> {
        let at = self.queue.iter().position(|(t, _, _)| *t == ticket)?;
        let (_, tenant, weight) = self.queue.remove(at);
        *self.vtime.entry(tenant.clone()).or_insert(0) += STRIDE / u64::from(weight);
        Some(tenant)
    }

    /// Removes a waiting ticket without granting it (cancellation).
    /// Returns whether the ticket was queued.
    pub fn remove(&mut self, ticket: u64) -> bool {
        let before = self.queue.len();
        self.queue.retain(|(t, _, _)| *t != ticket);
        self.queue.len() != before
    }

    /// Number of waiting tickets.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no tickets wait.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

struct SchedState {
    fair: FairShare,
    free: usize,
}

struct SchedInner {
    state: Mutex<SchedState>,
    cv: Condvar,
    slots: usize,
}

/// Blocking slot allocator: [`FairShare`] policy + a bounded permit
/// pool behind one mutex/condvar. Clones share the pool.
#[derive(Clone)]
pub struct Scheduler {
    inner: Arc<SchedInner>,
}

impl Scheduler {
    /// A scheduler with `slots` concurrent permits (clamped to ≥ 1).
    pub fn new(slots: usize) -> Scheduler {
        let slots = slots.max(1);
        Scheduler {
            inner: Arc::new(SchedInner {
                state: Mutex::new(SchedState {
                    fair: FairShare::new(),
                    free: slots,
                }),
                cv: Condvar::new(),
                slots,
            }),
        }
    }

    /// Total permits.
    pub fn slots(&self) -> usize {
        self.inner.slots
    }

    /// Currently free permits.
    pub fn available(&self) -> usize {
        self.inner.state.lock().expect("scheduler poisoned").free
    }

    /// Blocks until this request is at the head of the fair-share order
    /// *and* a permit is free, then takes the permit. Returns `None` —
    /// with the request removed from the queue and no permit consumed —
    /// as soon as `cancel` fires while waiting.
    pub fn acquire(&self, tenant: &str, weight: u32, cancel: &CancelToken) -> Option<SlotPermit> {
        let mut state = self.inner.state.lock().expect("scheduler poisoned");
        let ticket = state.fair.enqueue(tenant, weight);
        loop {
            if cancel.is_cancelled() {
                state.fair.remove(ticket);
                self.inner.cv.notify_all();
                return None;
            }
            if state.free > 0 && state.fair.pick() == Some(ticket) {
                state.fair.grant(ticket);
                state.free -= 1;
                // Another waiter may now be the head pick.
                self.inner.cv.notify_all();
                return Some(SlotPermit {
                    inner: Arc::clone(&self.inner),
                });
            }
            // Bounded wait: cancellation has no channel to this condvar,
            // so poll it on a short period rather than sleeping forever.
            let (guard, _) = self
                .inner
                .cv
                .wait_timeout(state, Duration::from_millis(20))
                .expect("scheduler poisoned");
            state = guard;
        }
    }
}

/// An RAII slot permit: releasing is dropping. Every exit path of a job
/// — completion, failure, cancellation, panic unwind — returns the slot
/// this way, so permits cannot leak.
pub struct SlotPermit {
    inner: Arc<SchedInner>,
}

impl Drop for SlotPermit {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("scheduler poisoned");
        state.free += 1;
        self.inner.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Instant;

    /// xorshift* step — a tiny seeded generator for the synthetic
    /// workload (no external RNG needed).
    fn next_rand(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    #[test]
    fn unequal_priorities_split_slots_by_weight_within_tolerance() {
        // Seeded synthetic workload: both tenants keep the queue
        // saturated with randomized small batches; each step grants one
        // slot. Stride scheduling should give heavy ~3/4 of grants.
        let mut fair = FairShare::new();
        let mut rng = 0x5EED_CAFE_u64;
        let mut granted: HashMap<String, u64> = HashMap::new();
        let mut backlog: Vec<u64> = Vec::new();
        let mut grants = 0u64;
        while grants < 4000 {
            // Randomized arrivals, both tenants always pending.
            for _ in 0..(next_rand(&mut rng) % 3 + 1) {
                backlog.push(fair.enqueue("heavy", 3));
            }
            for _ in 0..(next_rand(&mut rng) % 3 + 1) {
                backlog.push(fair.enqueue("light", 1));
            }
            // Drain a randomized number of grants (slots freeing up).
            for _ in 0..(next_rand(&mut rng) % 4 + 1) {
                let Some(ticket) = fair.pick() else { break };
                let tenant = fair.grant(ticket).unwrap();
                backlog.retain(|t| *t != ticket);
                *granted.entry(tenant).or_insert(0) += 1;
                grants += 1;
            }
        }
        let heavy = granted["heavy"] as f64;
        let light = granted["light"] as f64;
        let share = heavy / (heavy + light);
        assert!(
            (share - 0.75).abs() < 0.03,
            "heavy tenant got {share:.3} of grants, want 0.75 ± 0.03 \
             (heavy {heavy}, light {light})"
        );
    }

    #[test]
    fn fair_share_is_deterministic_and_ties_break_by_arrival() {
        let mut a = FairShare::new();
        let mut b = FairShare::new();
        for fair in [&mut a, &mut b] {
            fair.enqueue("x", 1);
            fair.enqueue("y", 1);
            fair.enqueue("x", 1);
        }
        // Same enqueue sequence → same grant sequence.
        let seq_a: Vec<String> = std::iter::from_fn(|| a.pick().and_then(|t| a.grant(t)))
            .take(3)
            .collect();
        let seq_b: Vec<String> = std::iter::from_fn(|| b.pick().and_then(|t| b.grant(t)))
            .take(3)
            .collect();
        assert_eq!(seq_a, seq_b);
        // Equal vtimes: the first arrival wins.
        assert_eq!(seq_a[0], "x");
        assert_eq!(seq_a[1], "y", "after x is charged, y leads");
    }

    #[test]
    fn idle_tenant_cannot_bank_credit() {
        let mut fair = FairShare::new();
        // "busy" works alone for a while, racking up virtual time.
        for _ in 0..50 {
            let t = fair.enqueue("busy", 1);
            fair.grant(t);
        }
        // A latecomer arrives; it starts at the queue floor, not zero,
        // so it alternates with the incumbent instead of monopolizing.
        fair.enqueue("late", 1);
        fair.enqueue("busy", 1);
        let first = fair.grant(fair.pick().unwrap()).unwrap();
        fair.enqueue(&first, 1);
        let second = fair.grant(fair.pick().unwrap()).unwrap();
        assert_ne!(first, second, "grants alternate between tenants");
    }

    #[test]
    fn cancelled_waiter_releases_immediately_and_leaks_no_permit() {
        let sched = Scheduler::new(1);
        let held = sched
            .acquire("a", 1, &CancelToken::new())
            .expect("free slot");
        assert_eq!(sched.available(), 0);

        // A waiter blocks on the held slot; cancel it mid-wait.
        let cancel = CancelToken::new();
        let waiter = {
            let sched = sched.clone();
            let cancel = cancel.clone();
            thread::spawn(move || sched.acquire("b", 1, &cancel))
        };
        thread::sleep(Duration::from_millis(60));
        cancel.cancel();
        let t0 = Instant::now();
        assert!(
            waiter.join().unwrap().is_none(),
            "cancelled acquire yields None"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "cancellation takes effect promptly"
        );

        // The cancelled waiter consumed nothing: dropping the held
        // permit restores full capacity and a third job acquires it.
        drop(held);
        assert_eq!(sched.available(), 1);
        let third = sched.acquire("c", 1, &CancelToken::new());
        assert!(third.is_some(), "no permit was leaked");
        drop(third);
        assert_eq!(sched.available(), 1);
    }

    #[test]
    fn permits_bound_concurrency_and_release_on_drop() {
        let sched = Scheduler::new(2);
        let p1 = sched.acquire("t", 1, &CancelToken::new()).unwrap();
        let p2 = sched.acquire("t", 1, &CancelToken::new()).unwrap();
        assert_eq!(sched.available(), 0);

        // Third acquire blocks until a permit drops.
        let blocked = {
            let sched = sched.clone();
            thread::spawn(move || {
                let p = sched.acquire("t", 1, &CancelToken::new());
                p.is_some()
            })
        };
        thread::sleep(Duration::from_millis(40));
        drop(p1);
        assert!(blocked.join().unwrap());
        drop(p2);
        // Both outstanding permits released (the thread's on its exit).
        let deadline = Instant::now() + Duration::from_secs(5);
        while sched.available() != 2 {
            assert!(Instant::now() < deadline, "permits failed to release");
            thread::sleep(Duration::from_millis(5));
        }
    }
}
