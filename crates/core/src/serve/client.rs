//! A small synchronous client for the serve protocol, used by the CLI
//! `submit`/`shutdown` commands and the service-level test harness.

use super::json::{escape, Json};
use super::protocol::{JobSpec, SERVE_PROTOCOL_VERSION};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One connection to a serve daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Everything one streamed job produced on this connection: the raw
/// lines (header, events, summary) and the parsed final `done` object.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Every line the server sent before `done`, verbatim.
    pub lines: Vec<String>,
    /// The parsed `done` object.
    pub done: Json,
}

impl JobOutcome {
    /// The job's terminal status (`done` / `failed` / `cancelled`).
    pub fn status(&self) -> &str {
        self.done
            .get("status")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
    }
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `127.0.0.1:4000`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one raw request line.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    /// Reads one response line; `None` on a closed connection.
    pub fn read_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// Reads one line and parses it, expecting an `{"ok":true,...}`
    /// acknowledgement; returns the parsed object.
    fn expect_ack(&mut self) -> Result<Json, String> {
        let line = self
            .read_line()
            .map_err(|e| format!("read: {e}"))?
            .ok_or("server closed the connection")?;
        let v = Json::parse(&line).ok_or_else(|| format!("unparseable response: {line}"))?;
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(v),
            _ => Err(v
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or(&line)
                .to_string()),
        }
    }

    /// Handshakes as `tenant`, checking protocol versions.
    pub fn hello(&mut self, tenant: &str) -> Result<(), String> {
        self.send_line(&format!(
            "{{\"cmd\":\"hello\",\"tenant\":\"{}\",\"protocol\":{SERVE_PROTOCOL_VERSION}}}",
            escape(tenant)
        ))
        .map_err(|e| format!("send: {e}"))?;
        self.expect_ack().map(|_| ())
    }

    /// Submits a job for `tenant`; returns the job id. Event lines
    /// stream on this connection next — consume them with
    /// [`Client::stream_until_done`].
    pub fn submit(
        &mut self,
        tenant: &str,
        priority: u32,
        spec: &JobSpec,
    ) -> Result<String, String> {
        self.send_line(&format!(
            "{{\"cmd\":\"submit\",\"tenant\":\"{}\",\"priority\":{},\"job\":{}}}",
            escape(tenant),
            priority,
            spec.to_json()
        ))
        .map_err(|e| format!("send: {e}"))?;
        let ack = self.expect_ack()?;
        ack.get("job")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or("submit ack has no job id".into())
    }

    /// (Re-)attaches to `job`, replaying events with `seq >= from_seq`.
    pub fn attach(&mut self, job: &str, from_seq: u64) -> Result<(), String> {
        self.send_line(&format!(
            "{{\"cmd\":\"attach\",\"job\":\"{}\",\"from_seq\":{from_seq}}}",
            escape(job)
        ))
        .map_err(|e| format!("send: {e}"))?;
        self.expect_ack().map(|_| ())
    }

    /// Requests cancellation of `job`.
    pub fn cancel(&mut self, job: &str) -> Result<(), String> {
        self.send_line(&format!(
            "{{\"cmd\":\"cancel\",\"job\":\"{}\"}}",
            escape(job)
        ))
        .map_err(|e| format!("send: {e}"))?;
        self.expect_ack().map(|_| ())
    }

    /// Fetches the one-line daemon status (parsed).
    pub fn status(&mut self) -> Result<Json, String> {
        self.send_line("{\"cmd\":\"status\"}")
            .map_err(|e| format!("send: {e}"))?;
        self.expect_ack()
    }

    /// Asks the daemon to stop.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.send_line("{\"cmd\":\"shutdown\"}")
            .map_err(|e| format!("send: {e}"))?;
        self.expect_ack().map(|_| ())
    }

    /// Consumes a job's stream until the `done` line: collects every
    /// intermediate line verbatim and returns them with the parsed
    /// terminal object.
    pub fn stream_until_done(&mut self) -> Result<JobOutcome, String> {
        let mut lines = Vec::new();
        loop {
            let line = self
                .read_line()
                .map_err(|e| format!("read: {e}"))?
                .ok_or("connection closed before the done line")?;
            if let Some(v) = Json::parse(&line) {
                if v.get("type").and_then(Json::as_str) == Some("done") {
                    return Ok(JobOutcome { lines, done: v });
                }
            }
            lines.push(line);
        }
    }
}
