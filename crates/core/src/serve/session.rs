//! The serve daemon itself: TCP listener, per-connection request
//! dispatch, thread-per-job execution gated by the fair-share
//! scheduler, and live trace v2 event streaming.
//!
//! # Lifecycle of a job
//!
//! `submit` registers a job handle (phase `queued`) and spawns one
//! runner thread. The runner blocks in [`Scheduler::acquire`] until the
//! fair-share order and a free slot admit it, builds a [`Dovado`]
//! instance from the submitted [`JobSpec`], optionally points its
//! evaluator at the daemon's **shared** sharded [`EvalStore`], publishes
//! the run's [`EventBus`] on the handle (phase `running`), and drives
//! [`Dovado::explore_monitored`]. The monitor observes every generation
//! boundary: it wakes streaming connections and vetoes the run when the
//! job's [`CancelToken`] has fired, so cancellation lands at the next
//! generation boundary with [`DovadoError::Cancelled`]. Whatever the
//! exit path — done, failed, cancelled, cancelled-while-queued — the
//! slot permit releases on drop and the tenant's ledger is charged from
//! the run's exact [`Totals`].
//!
//! # Streaming
//!
//! A connection that submitted (or `attach`ed to) a job receives the
//! trace v2 header, then every retained spine event with `seq >=
//! from_seq` as it appears (dedup'd per connection by `(seq, sub)`
//! key), then a `summary` line folding exactly the event lines this
//! stream carried, then one `done` object with the job's outcome and
//! — for completed jobs — the Pareto front with each value both as a
//! JSON number and as exact `f64` bits, so clients can compare results
//! across runs without decimal round-tripping.
//!
//! Locks are ordered: a job's state lock is never held while taking
//! the server state lock *and* vice versa — every function takes one,
//! releases it, then takes the other.

use super::json::escape;
use super::protocol::{parse_request, JobSpec, Request, SERVE_PROTOCOL_VERSION};
use super::scheduler::{CancelToken, Scheduler};
use crate::backend::ToolBackend;
use crate::cli;
use crate::dse::{Dovado, DseConfig, ExploreMonitor, Explorer, SurrogateConfig};
use crate::error::{DovadoError, DovadoResult};
use crate::flow::{EvalConfig, HdlSource};
use crate::metrics::MetricSet;
use crate::obs::{event_json, json_f64, summary_json, trace_header, EventBus, EventKey, Totals};
use crate::results::DseReport;
use crate::space::ParameterSpace;
use crate::worker::backend_from_spec;
use dovado_eda::EvalStore;
use dovado_moo::{Nsga2Config, Termination};
use std::collections::{BTreeSet, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// How a daemon is set up.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 picks a free port (read it back with
    /// [`Server::addr`]).
    pub addr: String,
    /// Concurrent job slots (clamped to at least 1). Jobs evaluate
    /// serially inside their slot, so this bounds the daemon's
    /// parallelism exactly.
    pub slots: usize,
    /// Daemon root directory. When set, `root/store` holds the shared
    /// sharded evaluation store every `store: true` job answers from
    /// and feeds. Without a root the daemon is stateless and jobs that
    /// request the store fail with a config error.
    pub root: Option<PathBuf>,
    /// Shared-store entry cap (`None` = unbounded; `Some(0)` is a
    /// config error, matching `--store-capacity`).
    pub store_capacity: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            slots: 2,
            root: None,
            store_capacity: None,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum JobPhase {
    /// Waiting for the fair-share scheduler to admit it.
    #[default]
    Queued,
    /// Holding a slot and exploring.
    Running,
    /// Completed; the `done` stream line carries the Pareto front.
    Done,
    /// Stopped on an error (the message).
    Failed(String),
    /// Cancelled while queued or at a generation boundary.
    Cancelled,
}

impl JobPhase {
    /// Wire name of the phase.
    pub fn name(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed(_) => "failed",
            JobPhase::Cancelled => "cancelled",
        }
    }

    /// Whether the job can make no further progress.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobPhase::Done | JobPhase::Failed(_) | JobPhase::Cancelled
        )
    }
}

/// Completed-run payload for the `done` line.
#[derive(Debug, Clone)]
struct DoneInfo {
    evaluations: u64,
    tool_runs: u64,
    /// Pre-rendered JSON array of Pareto entries.
    pareto_json: String,
}

#[derive(Default)]
struct JobState {
    phase: JobPhase,
    /// The run's spine, published when the job starts executing.
    bus: Option<EventBus>,
    /// Last completed generation (monitor-updated).
    generations: u64,
    done: Option<DoneInfo>,
}

/// One submitted job: identity, cancellation, and observable state.
/// Streaming connections wait on `cv`, which the runner and monitor
/// notify on every state change and generation boundary.
struct JobHandle {
    id: String,
    tenant: String,
    priority: u32,
    spec: JobSpec,
    cancel: CancelToken,
    state: Mutex<JobState>,
    cv: Condvar,
}

/// Per-tenant accounting, folded from each finished job's exact spine
/// totals — the serve-level time ledger.
#[derive(Debug, Clone, Copy, Default)]
struct TenantLedger {
    tool_time_s: f64,
    runs: u64,
    /// Low-fidelity (synthesis-only) race spend, ledgered separately
    /// from full-flow time so `--explorer auto` jobs stay auditable.
    lowfi_time_s: f64,
    lowfi_runs: u64,
    jobs: u64,
}

#[derive(Default)]
struct ServerState {
    jobs: HashMap<String, Arc<JobHandle>>,
    /// Submission order, for stable status output.
    order: Vec<String>,
    next_job: u64,
    ledger: HashMap<String, TenantLedger>,
}

struct ServerInner {
    addr: SocketAddr,
    scheduler: Scheduler,
    store: Option<EvalStore>,
    state: Mutex<ServerState>,
    shutdown: AtomicBool,
}

/// A running serve daemon. Dropping (or [`Server::shutdown`]) cancels
/// every job, closes the listener, and joins the accept thread.
pub struct Server {
    inner: Arc<ServerInner>,
    accept: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, opens the shared store (when configured),
    /// and starts accepting connections.
    pub fn start(cfg: ServeConfig) -> DovadoResult<Server> {
        let capacity = crate::engine::validate_store_capacity(cfg.store_capacity)?;
        let store = match &cfg.root {
            Some(root) => Some(
                EvalStore::open_bounded(&root.join("store"), capacity)
                    .map_err(|e| DovadoError::Config(format!("serve store: {e}")))?,
            ),
            None => None,
        };
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| {
            DovadoError::Config(format!("serve: cannot listen on {}: {e}", cfg.addr))
        })?;
        let addr = listener
            .local_addr()
            .map_err(|e| DovadoError::Config(format!("serve: local_addr: {e}")))?;
        let scheduler = Scheduler::new(cfg.slots);
        let inner = Arc::new(ServerInner {
            addr,
            scheduler,
            store,
            state: Mutex::new(ServerState::default()),
            shutdown: AtomicBool::new(false),
        });
        let accept = {
            let inner = Arc::clone(&inner);
            thread::spawn(move || accept_loop(inner, listener))
        };
        Ok(Server {
            inner,
            accept: Some(accept),
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The shared evaluation store, when the daemon has a root.
    pub fn store(&self) -> Option<&EvalStore> {
        self.inner.store.as_ref()
    }

    /// The daemon's concurrent job slots.
    pub fn slots(&self) -> usize {
        self.inner.scheduler.slots()
    }

    /// Blocks until the daemon stops — a `shutdown` request over the
    /// wire, or [`Server::shutdown`] from another thread.
    pub fn wait(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Stops the daemon: cancels all jobs, stops accepting, joins the
    /// accept thread. Idempotent.
    pub fn shutdown(&mut self) {
        initiate_shutdown(&self.inner);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Flags shutdown, cancels every job, and pokes the listener awake so
/// the accept loop observes the flag. Shared by the `shutdown` request
/// path and [`Server::shutdown`].
fn initiate_shutdown(inner: &Arc<ServerInner>) {
    inner.shutdown.store(true, Ordering::SeqCst);
    let jobs: Vec<Arc<JobHandle>> = {
        let state = inner.state.lock().expect("server state poisoned");
        state.jobs.values().cloned().collect()
    };
    for job in jobs {
        job.cancel.cancel();
        job.cv.notify_all();
    }
    // Wake the blocking accept with a throwaway connection.
    let _ = TcpStream::connect(inner.addr);
}

fn accept_loop(inner: Arc<ServerInner>, listener: TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let inner = Arc::clone(&inner);
                thread::spawn(move || {
                    // A vanished client is that client's problem only.
                    let _ = handle_connection(inner, stream);
                });
            }
            Err(_) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
}

fn handle_connection(inner: Arc<ServerInner>, stream: TcpStream) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request = match parse_request(&line) {
            Ok(request) => request,
            Err(e) => {
                writeln!(out, "{{\"ok\":false,\"error\":\"{}\"}}", escape(&e))?;
                continue;
            }
        };
        match request {
            Request::Hello { protocol, .. } => {
                if protocol == SERVE_PROTOCOL_VERSION {
                    writeln!(
                        out,
                        "{{\"ok\":true,\"type\":\"hello\",\"protocol\":{SERVE_PROTOCOL_VERSION}}}"
                    )?;
                } else {
                    writeln!(
                        out,
                        "{{\"ok\":false,\"error\":\"protocol {protocol} unsupported \
                         (server speaks {SERVE_PROTOCOL_VERSION})\"}}"
                    )?;
                }
            }
            Request::Submit {
                tenant,
                priority,
                spec,
            } => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    writeln!(
                        out,
                        "{{\"ok\":false,\"error\":\"daemon is shutting down\"}}"
                    )?;
                    continue;
                }
                let job = submit_job(&inner, tenant, priority, *spec);
                writeln!(
                    out,
                    "{{\"ok\":true,\"type\":\"submitted\",\"job\":\"{}\",\"tenant\":\"{}\"}}",
                    escape(&job.id),
                    escape(&job.tenant)
                )?;
                stream_job(&job, 0, &mut out)?;
            }
            Request::Attach { job, from_seq } => match lookup(&inner, &job) {
                Some(handle) => {
                    writeln!(
                        out,
                        "{{\"ok\":true,\"type\":\"attached\",\"job\":\"{}\"}}",
                        escape(&job)
                    )?;
                    stream_job(&handle, from_seq, &mut out)?;
                }
                None => {
                    writeln!(
                        out,
                        "{{\"ok\":false,\"error\":\"unknown job `{}`\"}}",
                        escape(&job)
                    )?;
                }
            },
            Request::Cancel { job } => match lookup(&inner, &job) {
                Some(handle) => {
                    handle.cancel.cancel();
                    handle.cv.notify_all();
                    writeln!(
                        out,
                        "{{\"ok\":true,\"type\":\"cancelling\",\"job\":\"{}\"}}",
                        escape(&job)
                    )?;
                }
                None => {
                    writeln!(
                        out,
                        "{{\"ok\":false,\"error\":\"unknown job `{}`\"}}",
                        escape(&job)
                    )?;
                }
            },
            Request::Status => {
                let line = status_line(&inner);
                writeln!(out, "{line}")?;
            }
            Request::Shutdown => {
                writeln!(out, "{{\"ok\":true,\"type\":\"shutdown\"}}")?;
                out.flush()?;
                initiate_shutdown(&inner);
                break;
            }
        }
    }
    Ok(())
}

fn lookup(inner: &Arc<ServerInner>, id: &str) -> Option<Arc<JobHandle>> {
    inner
        .state
        .lock()
        .expect("server state poisoned")
        .jobs
        .get(id)
        .cloned()
}

fn submit_job(
    inner: &Arc<ServerInner>,
    tenant: String,
    priority: u32,
    spec: JobSpec,
) -> Arc<JobHandle> {
    let job = {
        let mut state = inner.state.lock().expect("server state poisoned");
        state.next_job += 1;
        let id = format!("job-{}", state.next_job);
        let job = Arc::new(JobHandle {
            id: id.clone(),
            tenant,
            priority,
            spec,
            cancel: CancelToken::new(),
            state: Mutex::new(JobState::default()),
            cv: Condvar::new(),
        });
        state.jobs.insert(id.clone(), job.clone());
        state.order.push(id);
        job
    };
    {
        let inner = Arc::clone(inner);
        let job = Arc::clone(&job);
        thread::spawn(move || run_job(inner, job));
    }
    job
}

fn run_job(inner: Arc<ServerInner>, job: Arc<JobHandle>) {
    let Some(permit) = inner
        .scheduler
        .acquire(&job.tenant, job.priority, &job.cancel)
    else {
        // Cancelled while queued: never held a slot, never ran.
        finish_job(&inner, &job, JobPhase::Cancelled, None);
        return;
    };
    let result = execute_job(&inner, &job);
    drop(permit);
    match result {
        Ok(report) => finish_job(&inner, &job, JobPhase::Done, Some(report)),
        Err(DovadoError::Cancelled { .. }) => finish_job(&inner, &job, JobPhase::Cancelled, None),
        Err(e) => finish_job(&inner, &job, JobPhase::Failed(e.to_string()), None),
    }
}

/// Builds the Dovado instance for `job` and explores to completion,
/// with the job's cancel token checked at every generation boundary.
fn execute_job(inner: &Arc<ServerInner>, job: &Arc<JobHandle>) -> DovadoResult<DseReport> {
    let spec = &job.spec;
    let mut sources = Vec::with_capacity(spec.sources.len());
    for (name, content) in &spec.sources {
        let language = cli::language_of(name).map_err(DovadoError::Config)?;
        sources.push(HdlSource::new(name.clone(), language, content.clone()));
    }
    let mut space = ParameterSpace::new();
    for (name, domain) in &spec.params {
        space = space.with(
            name,
            cli::parse_domain(domain).map_err(DovadoError::Config)?,
        );
    }
    let mut eval = EvalConfig::default();
    if let Some(part) = &spec.part {
        eval.part = part.clone();
    }
    if let Some(period) = spec.period_ns {
        eval.target_period_ns = period;
    }
    let backend = backend_from_spec(&spec.backend)
        .ok_or_else(|| DovadoError::Config(format!("unknown backend spec `{}`", spec.backend)))?;
    let backend: Arc<dyn ToolBackend> = Arc::from(backend);
    let mut tool = Dovado::with_backend(sources, &spec.top, space, eval, backend)?;
    if spec.use_store {
        let store = inner.store.clone().ok_or_else(|| {
            DovadoError::Config(
                "job requested the shared store but the daemon was started without a root".into(),
            )
        })?;
        // Scope lookups by the full backend spec: `ToolBackend::name`
        // omits the construction seed, and a shared multi-tenant store
        // must never answer a `mock:8` job with `mock:7` metrics.
        tool.evaluator_mut()
            .attach_store_scoped(store, &spec.backend);
    }
    {
        let mut state = job.state.lock().expect("job state poisoned");
        state.bus = Some(tool.evaluator().spine().clone());
        state.phase = JobPhase::Running;
        job.cv.notify_all();
    }
    let metrics = match &spec.metrics {
        Some(m) => cli::parse_metrics(m).map_err(DovadoError::Config)?,
        None => MetricSet::area_frequency(),
    };
    let explorer = Explorer::parse_token(&spec.explorer)
        .ok_or_else(|| DovadoError::Config(format!("unknown explorer `{}`", spec.explorer)))?;
    let cfg = DseConfig {
        explorer,
        algorithm: Nsga2Config {
            pop_size: spec.pop,
            seed: spec.seed,
            ..Nsga2Config::default()
        },
        termination: Termination::Generations(spec.generations),
        metrics,
        surrogate: spec.surrogate.map(|m| SurrogateConfig {
            pretrain_samples: m,
            ..SurrogateConfig::default()
        }),
        // Jobs evaluate serially: `slots` is the daemon's parallelism.
        parallel: false,
        jobs: None,
        workers: None,
    };
    let monitor = JobMonitor {
        job: Arc::clone(job),
    };
    tool.explore_monitored(&cfg, None, &monitor)
}

/// Records the terminal state, then charges the tenant's ledger from
/// the run's exact totals. The job lock is released before the server
/// lock is taken (lock-order discipline).
fn finish_job(
    inner: &Arc<ServerInner>,
    job: &Arc<JobHandle>,
    phase: JobPhase,
    report: Option<DseReport>,
) {
    let done = report.map(|r| DoneInfo {
        evaluations: r.evaluations,
        tool_runs: r.tool_runs,
        pareto_json: render_pareto(&r),
    });
    let totals = {
        let mut state = job.state.lock().expect("job state poisoned");
        state.phase = phase;
        state.done = done;
        let totals = state.bus.as_ref().map(EventBus::totals);
        job.cv.notify_all();
        totals
    };
    let mut state = inner.state.lock().expect("server state poisoned");
    let entry = state.ledger.entry(job.tenant.clone()).or_default();
    if let Some(t) = totals {
        entry.tool_time_s += t.tool_time_s;
        entry.runs += t.runs;
        entry.lowfi_time_s += t.lowfi_time_s;
        entry.lowfi_runs += t.lowfi_runs;
    }
    entry.jobs += 1;
}

/// Renders the Pareto front with each objective value twice: as a JSON
/// number for humans/jq and as exact `f64` bits (16 hex digits) so
/// clients can assert bitwise equality across runs.
fn render_pareto(report: &DseReport) -> String {
    let entries: Vec<String> = report
        .pareto
        .iter()
        .map(|e| {
            let values: Vec<String> = e.values.iter().map(|v| json_f64(*v)).collect();
            let bits: Vec<String> = e
                .values
                .iter()
                .map(|v| format!("\"{:016x}\"", v.to_bits()))
                .collect();
            format!(
                "{{\"point\":\"{}\",\"values\":[{}],\"bits\":[{}]}}",
                escape(&e.point.to_string()),
                values.join(","),
                bits.join(",")
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

/// Streams a job to one connection: header, live event lines (`seq >=
/// from_seq`, dedup'd by key), a summary folding exactly the lines
/// sent, and the final `done` object.
fn stream_job(job: &Arc<JobHandle>, from_seq: u64, out: &mut TcpStream) -> std::io::Result<()> {
    writeln!(out, "{}", trace_header())?;
    let mut sent: BTreeSet<EventKey> = BTreeSet::new();
    let mut streamed = Totals::default();
    let mut dropped = 0u64;
    loop {
        let (bus, terminal) = {
            let state = job.state.lock().expect("job state poisoned");
            (state.bus.clone(), state.phase.is_terminal())
        };
        if let Some(bus) = &bus {
            for (key, event) in bus.events() {
                if key.seq >= from_seq && sent.insert(key) {
                    streamed.fold(&event);
                    writeln!(out, "{}", event_json(key, &event))?;
                }
            }
            dropped = bus.dropped();
        }
        if terminal {
            break;
        }
        // Wait for the monitor or runner to signal progress; the
        // timeout bounds the latency of a cancel that skips notify.
        let guard = job.state.lock().expect("job state poisoned");
        let _ = job
            .cv
            .wait_timeout(guard, Duration::from_millis(25))
            .expect("job state poisoned");
    }
    writeln!(out, "{}", summary_json(&streamed, dropped))?;
    writeln!(out, "{}", done_line(job))?;
    out.flush()
}

fn done_line(job: &Arc<JobHandle>) -> String {
    let state = job.state.lock().expect("job state poisoned");
    let mut line = format!(
        "{{\"type\":\"done\",\"job\":\"{}\",\"status\":\"{}\",\"generations\":{}",
        escape(&job.id),
        state.phase.name(),
        state.generations
    );
    if let JobPhase::Failed(error) = &state.phase {
        line.push_str(&format!(",\"error\":\"{}\"", escape(error)));
    }
    if let Some(done) = &state.done {
        line.push_str(&format!(
            ",\"evaluations\":{},\"tool_runs\":{},\"pareto\":{}",
            done.evaluations, done.tool_runs, done.pareto_json
        ));
    }
    line.push('}');
    line
}

fn status_line(inner: &Arc<ServerInner>) -> String {
    let state = inner.state.lock().expect("server state poisoned");
    let jobs: Vec<String> = state
        .order
        .iter()
        .filter_map(|id| state.jobs.get(id))
        .map(|job| {
            let st = job.state.lock().expect("job state poisoned");
            format!(
                "{{\"job\":\"{}\",\"tenant\":\"{}\",\"state\":\"{}\",\"generations\":{}}}",
                escape(&job.id),
                escape(&job.tenant),
                st.phase.name(),
                st.generations
            )
        })
        .collect();
    let mut tenants: Vec<_> = state.ledger.iter().collect();
    tenants.sort_by(|a, b| a.0.cmp(b.0));
    let tenants: Vec<String> = tenants
        .into_iter()
        .map(|(name, ledger)| {
            format!(
                "{{\"tenant\":\"{}\",\"tool_time_s\":{},\"runs\":{},\
                 \"lowfi_time_s\":{},\"lowfi_runs\":{},\"jobs\":{}}}",
                escape(name),
                json_f64(ledger.tool_time_s),
                ledger.runs,
                json_f64(ledger.lowfi_time_s),
                ledger.lowfi_runs,
                ledger.jobs
            )
        })
        .collect();
    format!(
        "{{\"ok\":true,\"type\":\"status\",\"slots\":{},\"free\":{},\"jobs\":[{}],\"tenants\":[{}]}}",
        inner.scheduler.slots(),
        inner.scheduler.available(),
        jobs.join(","),
        tenants.join(",")
    )
}

/// Bridges a running exploration to its [`JobHandle`]: records the
/// generation for status output, wakes streaming connections, and
/// vetoes the run once the cancel token fires.
struct JobMonitor {
    job: Arc<JobHandle>,
}

impl ExploreMonitor for JobMonitor {
    fn on_generation(&self, generation: u64, _evaluations: u64) -> bool {
        let mut state = self.job.state.lock().expect("job state poisoned");
        state.generations = generation;
        self.job.cv.notify_all();
        !self.job.cancel.is_cancelled()
    }
}
