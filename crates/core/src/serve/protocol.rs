//! The serve wire protocol: line-delimited JSON over a socket.
//!
//! A connection carries one JSON object per line in each direction.
//! Client → server lines are **requests** ([`Request`]); server →
//! client lines are acknowledgements, streamed **trace v2 event lines**
//! (the exact [`crate::obs::event_json`] wire format `--trace-out`
//! writes, bracketed by the same header and summary lines), and a final
//! `done` object per job.
//!
//! Because the event lines reuse the trace v2 format verbatim, a client
//! that folds them with [`Totals::fold`] reconstructs the same counters
//! a standalone run would report, and the same `jq` recipes work on a
//! live stream and on a `--trace-out` file.
//!
//! # Delivery and ordering
//!
//! The server guarantees *delivery* of every retained event, not global
//! key order: events inside one batch land on the spine out of order,
//! and the stream forwards them as they complete. Each line carries its
//! canonical `(seq, sub)` key, [`Totals::fold`] is commutative, and a
//! client that wants the canonical file byte-for-byte sorts lines by
//! key first (the CLI `submit --trace-out` path does exactly that).
//! On reconnect, `attach` with `from_seq` replays every event with
//! `seq >= from_seq`; duplicates are possible and keys are unique, so
//! clients dedup by key.

use super::json::{escape, Json};
use crate::flow::FlowStep;
use crate::obs::{CandidateScore, EventKey, ObsEvent, Totals};
use crate::trace::{AttemptOutcome, FlowEvent, TraceSummary};

/// Version of the serve request/response framing. Bump on any change to
/// request shapes or response fields (the *event* lines are versioned
/// separately by [`crate::obs::EVENT_SCHEMA_VERSION`] via the stream
/// header).
pub const SERVE_PROTOCOL_VERSION: u32 = 1;

/// One exploration job as submitted over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// HDL sources as `(file name, content)`; the file extension picks
    /// the language exactly like the CLI `--source` flag.
    pub sources: Vec<(String, String)>,
    /// Top module name.
    pub top: String,
    /// FPGA part override (`None` = evaluator default).
    pub part: Option<String>,
    /// Target clock period override in ns.
    pub period_ns: Option<f64>,
    /// Parameter domains as `(name, spec)` with the CLI `--param` spec
    /// grammar (`lo:hi[:step]`, `pow2:a:b`, `bool`).
    pub params: Vec<(String, String)>,
    /// Metric list in the CLI `--metric` grammar (`None` = area +
    /// frequency).
    pub metrics: Option<String>,
    /// NSGA-II generations to run.
    pub generations: u32,
    /// Population size.
    pub pop: usize,
    /// Optimizer seed.
    pub seed: u64,
    /// Surrogate pretrain-sample count (`None` = no approximation).
    pub surrogate: Option<usize>,
    /// Explorer token in the CLI `--explorer` grammar (`nsga2`,
    /// `random`, `wsga`, `exhaustive`, `sa`, `bayes`, `auto`).
    pub explorer: String,
    /// Backend spec in the worker grammar (`mock:SEED[:spin=MS]`,
    /// `vivado-sim:SEED`).
    pub backend: String,
    /// Whether to answer from (and feed) the daemon's shared evaluation
    /// store.
    pub use_store: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            sources: Vec::new(),
            top: String::new(),
            part: None,
            period_ns: None,
            params: Vec::new(),
            metrics: None,
            generations: 5,
            pop: 8,
            seed: 0,
            surrogate: None,
            explorer: "nsga2".into(),
            backend: "mock:1".into(),
            use_store: true,
        }
    }
}

impl JobSpec {
    /// Reads a spec from the `job` object of a submit request.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let mut spec = JobSpec::default();
        let sources = v
            .get("sources")
            .and_then(Json::as_arr)
            .ok_or("job.sources: missing source list")?;
        for s in sources {
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or("job.sources[].name: missing")?;
            let content = s
                .get("content")
                .and_then(Json::as_str)
                .ok_or("job.sources[].content: missing")?;
            spec.sources.push((name.to_string(), content.to_string()));
        }
        spec.top = v
            .get("top")
            .and_then(Json::as_str)
            .ok_or("job.top: missing")?
            .to_string();
        spec.part = v.get("part").and_then(Json::as_str).map(str::to_string);
        spec.period_ns = v.get("period_ns").and_then(Json::as_f64);
        if let Some(params) = v.get("params").and_then(Json::as_arr) {
            for p in params {
                let name = p
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("job.params[].name: missing")?;
                let dom = p
                    .get("spec")
                    .and_then(Json::as_str)
                    .ok_or("job.params[].spec: missing")?;
                spec.params.push((name.to_string(), dom.to_string()));
            }
        }
        spec.metrics = v.get("metrics").and_then(Json::as_str).map(str::to_string);
        if let Some(g) = v.get("generations").and_then(Json::as_u64) {
            spec.generations = g as u32;
        }
        if let Some(p) = v.get("pop").and_then(Json::as_u64) {
            spec.pop = p as usize;
        }
        if let Some(s) = v.get("seed").and_then(Json::as_u64) {
            spec.seed = s;
        }
        spec.surrogate = v
            .get("surrogate")
            .and_then(Json::as_u64)
            .map(|n| n as usize);
        if let Some(e) = v.get("explorer").and_then(Json::as_str) {
            spec.explorer = e.to_string();
        }
        if let Some(b) = v.get("backend").and_then(Json::as_str) {
            spec.backend = b.to_string();
        }
        if let Some(s) = v.get("store").and_then(Json::as_bool) {
            spec.use_store = s;
        }
        if spec.sources.is_empty() {
            return Err("job.sources: empty".into());
        }
        if spec.params.is_empty() {
            return Err("job.params: at least one parameter is required".into());
        }
        Ok(spec)
    }

    /// Renders the spec as the `job` object of a submit request (the
    /// inverse of [`JobSpec::from_json`]).
    pub fn to_json(&self) -> String {
        let sources: Vec<String> = self
            .sources
            .iter()
            .map(|(n, c)| {
                format!(
                    "{{\"name\":\"{}\",\"content\":\"{}\"}}",
                    escape(n),
                    escape(c)
                )
            })
            .collect();
        let params: Vec<String> = self
            .params
            .iter()
            .map(|(n, s)| format!("{{\"name\":\"{}\",\"spec\":\"{}\"}}", escape(n), escape(s)))
            .collect();
        let mut out = format!(
            "{{\"sources\":[{}],\"top\":\"{}\",\"params\":[{}]",
            sources.join(","),
            escape(&self.top),
            params.join(",")
        );
        if let Some(part) = &self.part {
            out.push_str(&format!(",\"part\":\"{}\"", escape(part)));
        }
        if let Some(period) = self.period_ns {
            out.push_str(&format!(",\"period_ns\":{period}"));
        }
        if let Some(metrics) = &self.metrics {
            out.push_str(&format!(",\"metrics\":\"{}\"", escape(metrics)));
        }
        out.push_str(&format!(
            ",\"generations\":{},\"pop\":{},\"seed\":{}",
            self.generations, self.pop, self.seed
        ));
        if let Some(s) = self.surrogate {
            out.push_str(&format!(",\"surrogate\":{s}"));
        }
        out.push_str(&format!(
            ",\"explorer\":\"{}\",\"backend\":\"{}\",\"store\":{}}}",
            escape(&self.explorer),
            escape(&self.backend),
            self.use_store
        ));
        out
    }
}

/// One client → server request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake: tenant identity + protocol version check.
    Hello {
        /// Tenant name for fair-share accounting.
        tenant: String,
        /// Client's [`SERVE_PROTOCOL_VERSION`].
        protocol: u32,
    },
    /// Submit a job; the server replies with the job id, then streams
    /// its events on this connection until done.
    Submit {
        /// Tenant the job bills to.
        tenant: String,
        /// Fair-share weight (higher = larger slot share; min 1).
        priority: u32,
        /// The job (boxed: `JobSpec` dwarfs every other request variant).
        spec: Box<JobSpec>,
    },
    /// (Re-)attach to a job's event stream.
    Attach {
        /// Job id from a submit acknowledgement.
        job: String,
        /// Replay events with `seq >= from_seq` (0 = everything).
        from_seq: u64,
    },
    /// Cancel a job: queued jobs leave the queue immediately, running
    /// jobs stop at the next generation boundary.
    Cancel {
        /// Job id.
        job: String,
    },
    /// One-line status of every job and per-tenant ledger totals.
    Status,
    /// Stop the daemon: cancels running jobs and closes the listener.
    Shutdown,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).ok_or("request is not valid JSON")?;
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or("request has no cmd field")?;
    match cmd {
        "hello" => Ok(Request::Hello {
            tenant: v
                .get("tenant")
                .and_then(Json::as_str)
                .unwrap_or("anonymous")
                .to_string(),
            protocol: v
                .get("protocol")
                .and_then(Json::as_u64)
                .ok_or("hello.protocol: missing")? as u32,
        }),
        "submit" => Ok(Request::Submit {
            tenant: v
                .get("tenant")
                .and_then(Json::as_str)
                .unwrap_or("anonymous")
                .to_string(),
            priority: v.get("priority").and_then(Json::as_u64).unwrap_or(1).max(1) as u32,
            spec: Box::new(JobSpec::from_json(
                v.get("job").ok_or("submit.job: missing")?,
            )?),
        }),
        "attach" => Ok(Request::Attach {
            job: v
                .get("job")
                .and_then(Json::as_str)
                .ok_or("attach.job: missing")?
                .to_string(),
            from_seq: v.get("from_seq").and_then(Json::as_u64).unwrap_or(0),
        }),
        "cancel" => Ok(Request::Cancel {
            job: v
                .get("job")
                .and_then(Json::as_str)
                .ok_or("cancel.job: missing")?
                .to_string(),
        }),
        "status" => Ok(Request::Status),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown cmd `{other}`")),
    }
}

fn surrogate_choice(s: &str) -> Option<&'static str> {
    match s {
        "cached" => Some("cached"),
        "estimated" => Some("estimated"),
        "evaluated" => Some("evaluated"),
        _ => None,
    }
}

fn worker_kind(s: &str) -> Option<&'static str> {
    match s {
        "spawned" => Some("spawned"),
        "stole" => Some("stole"),
        "died" => Some("died"),
        "requeued" => Some("requeued"),
        _ => None,
    }
}

fn step_of(s: &str) -> Option<FlowStep> {
    match s {
        "synthesis" => Some(FlowStep::Synthesis),
        "implementation" => Some(FlowStep::Implementation),
        _ => None,
    }
}

/// Parses one trace v2 event line back into its key and event — the
/// inverse of [`crate::obs::event_json`]. `None` for non-event lines
/// (the header, the summary, protocol acks) and malformed input.
/// Folding the parsed events with [`Totals::fold`] reconstructs the
/// exact counters of the run that emitted them.
pub fn parse_event_line(line: &str) -> Option<(EventKey, ObsEvent)> {
    let v = Json::parse(line)?;
    parse_event(&v)
}

/// [`parse_event_line`] over an already-parsed value.
pub fn parse_event(v: &Json) -> Option<(EventKey, ObsEvent)> {
    let key = EventKey {
        seq: v.get("seq")?.as_u64()?,
        sub: v.get("sub")?.as_u64()? as u32,
    };
    let ty = v.get("type")?.as_str()?;
    let event = match ty {
        "attempt" => {
            let outcome = match v.get("outcome")?.as_str()? {
                "success" => AttemptOutcome::Success,
                "transient" => AttemptOutcome::TransientFailure(
                    v.get("error").and_then(Json::as_str).unwrap_or("").into(),
                ),
                "permanent" => AttemptOutcome::PermanentFailure(
                    v.get("error").and_then(Json::as_str).unwrap_or("").into(),
                ),
                _ => return None,
            };
            ObsEvent::Attempt(FlowEvent {
                point: v.get("point")?.as_str()?.to_string(),
                attempt: v.get("attempt")?.as_u64()? as u32,
                step: step_of(v.get("step")?.as_str()?)?,
                outcome,
                tool_time_s: v.get("tool_time_s")?.as_f64()?,
                backoff_s: v.get("backoff_s")?.as_f64()?,
                incremental: v.get("incremental")?.as_bool()?,
                cached: v.get("cached")?.as_bool()?,
            })
        }
        "store_hit" => ObsEvent::StoreHit {
            point: v.get("point")?.as_str()?.to_string(),
        },
        "time_charged" => ObsEvent::TimeCharged {
            seconds: v.get("seconds")?.as_f64()?,
        },
        "resume" => ObsEvent::Resume {
            summary: TraceSummary {
                attempts: v.get("attempts")?.as_u64()?,
                retries: v.get("retries")?.as_u64()?,
                transient_failures: v.get("transient_failures")?.as_u64()?,
                permanent_failures: v.get("permanent_failures")?.as_u64()?,
                cache_hits: v.get("cache_hits")?.as_u64()?,
                store_hits: v.get("store_hits")?.as_u64()?,
                backoff_s: v.get("backoff_s")?.as_f64()?,
            },
            runs: v.get("runs")?.as_u64()?,
            tool_time_s: v.get("tool_time_s")?.as_f64()?,
        },
        "generation" => ObsEvent::Generation {
            generation: v.get("generation")?.as_u64()?,
            evaluations: v.get("evaluations")?.as_u64()?,
        },
        "selector_decision" => {
            let mut candidates = Vec::new();
            for c in v.get("candidates")?.as_arr()? {
                candidates.push(CandidateScore {
                    name: c.get("name")?.as_str()?.to_string(),
                    evaluations: c.get("evaluations")?.as_u64()?,
                    hypervolume: c.get("hypervolume")?.as_f64()?,
                    slope: c.get("slope")?.as_f64()?,
                });
            }
            ObsEvent::SelectorDecision {
                explorer: v.get("explorer")?.as_str()?.to_string(),
                space_volume: v.get("space_volume")?.as_u64()?,
                objectives: v.get("objectives")?.as_u64()? as u32,
                lowfi_runs: v.get("lowfi_runs")?.as_u64()?,
                lowfi_time_s: v.get("lowfi_time_s")?.as_f64()?,
                candidates,
            }
        }
        "surrogate_decision" => ObsEvent::SurrogateDecision {
            point: v.get("point")?.as_str()?.to_string(),
            choice: surrogate_choice(v.get("choice")?.as_str()?)?,
        },
        "reselected" => ObsEvent::Reselected {
            bandwidth: v.get("bandwidth")?.as_f64()?,
        },
        "gamma_updated" => ObsEvent::GammaUpdated {
            gamma: v.get("gamma")?.as_f64()?,
        },
        "fault" => ObsEvent::Fault {
            kind: v.get("kind")?.as_str()?.to_string(),
        },
        "worker" => ObsEvent::Worker {
            worker: v.get("worker")?.as_u64()?,
            kind: worker_kind(v.get("kind")?.as_str()?)?,
            detail: v.get("detail")?.as_str()?.to_string(),
        },
        "store_evicted" => ObsEvent::StoreEvicted {
            key: v.get("key")?.as_str()?.to_string(),
        },
        _ => return None,
    };
    Some((key, event))
}

/// Folds a whole streamed session (any mix of event and non-event
/// lines, any order) into exact run totals, deduplicating replayed
/// events by key.
pub fn fold_stream<'a, I>(lines: I) -> Totals
where
    I: IntoIterator<Item = &'a str>,
{
    let mut seen = std::collections::BTreeMap::new();
    for line in lines {
        if let Some((key, event)) = parse_event_line(line) {
            seen.insert(key, event);
        }
    }
    let mut totals = Totals::default();
    for event in seen.values() {
        totals.fold(event);
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::event_json;

    fn roundtrip(event: ObsEvent) {
        let key = EventKey { seq: 41, sub: 2 };
        let line = event_json(key, &event);
        let (k, e) =
            parse_event_line(&line).unwrap_or_else(|| panic!("unparseable event line: {line}"));
        assert_eq!(k, key, "{line}");
        assert_eq!(e, event, "{line}");
    }

    #[test]
    fn every_event_variant_roundtrips_through_the_wire() {
        roundtrip(ObsEvent::Attempt(FlowEvent {
            point: "DEPTH=8 \"x\"".into(),
            attempt: 3,
            step: FlowStep::Synthesis,
            outcome: AttemptOutcome::TransientFailure("tool\ncrashed".into()),
            tool_time_s: 12.5,
            backoff_s: 30.0,
            incremental: true,
            cached: false,
        }));
        roundtrip(ObsEvent::Attempt(FlowEvent {
            point: "DEPTH=8".into(),
            attempt: 1,
            step: FlowStep::Implementation,
            outcome: AttemptOutcome::Success,
            tool_time_s: 100.0,
            backoff_s: 0.0,
            incremental: false,
            cached: true,
        }));
        roundtrip(ObsEvent::StoreHit {
            point: "DEPTH=16".into(),
        });
        roundtrip(ObsEvent::TimeCharged { seconds: 4.25 });
        roundtrip(ObsEvent::Resume {
            summary: TraceSummary {
                attempts: 10,
                retries: 2,
                transient_failures: 1,
                permanent_failures: 0,
                cache_hits: 3,
                store_hits: 4,
                backoff_s: 60.0,
            },
            runs: 9,
            tool_time_s: 1234.5,
        });
        roundtrip(ObsEvent::Generation {
            generation: 7,
            evaluations: 140,
        });
        roundtrip(ObsEvent::SelectorDecision {
            explorer: "sa".into(),
            space_volume: 4096,
            objectives: 3,
            lowfi_runs: 96,
            lowfi_time_s: 512.25,
            candidates: vec![
                CandidateScore {
                    name: "nsga2".into(),
                    evaluations: 32,
                    hypervolume: 10.5,
                    slope: -0.25,
                },
                CandidateScore {
                    name: "sa".into(),
                    evaluations: 32,
                    hypervolume: 12.0,
                    slope: 1.5,
                },
            ],
        });
        roundtrip(ObsEvent::SelectorDecision {
            explorer: "exhaustive".into(),
            space_volume: 16,
            objectives: 2,
            lowfi_runs: 0,
            lowfi_time_s: 0.0,
            candidates: Vec::new(),
        });
        roundtrip(ObsEvent::SurrogateDecision {
            point: "DEPTH=4".into(),
            choice: "estimated",
        });
        roundtrip(ObsEvent::Reselected { bandwidth: 0.75 });
        roundtrip(ObsEvent::GammaUpdated { gamma: 1.5 });
        roundtrip(ObsEvent::Fault {
            kind: "host_crash".into(),
        });
        roundtrip(ObsEvent::Worker {
            worker: 2,
            kind: "died",
            detail: "pipe closed".into(),
        });
        roundtrip(ObsEvent::StoreEvicted {
            key: "00ff".repeat(8),
        });
    }

    #[test]
    fn non_event_lines_parse_to_none() {
        assert!(parse_event_line("{\"schema\":\"dovado-trace\",\"version\":2}").is_none());
        assert!(parse_event_line("{\"type\":\"summary\",\"attempts\":0}").is_none());
        assert!(parse_event_line("{\"ok\":true}").is_none());
        assert!(parse_event_line("not json").is_none());
    }

    #[test]
    fn fold_stream_dedups_replayed_events_and_ignores_order() {
        let key = EventKey { seq: 5, sub: 0 };
        let hit = event_json(
            key,
            &ObsEvent::StoreHit {
                point: "DEPTH=8".into(),
            },
        );
        let charged = event_json(
            EventKey { seq: 2, sub: 0 },
            &ObsEvent::TimeCharged { seconds: 3.0 },
        );
        // Replayed duplicate + out-of-order arrival.
        let totals = fold_stream([hit.as_str(), charged.as_str(), hit.as_str()]);
        assert_eq!(totals.summary.store_hits, 1);
        assert_eq!(totals.tool_time_s, 3.0);
    }

    #[test]
    fn job_spec_roundtrips_through_json() {
        let spec = JobSpec {
            sources: vec![("fifo.sv".into(), "module fifo; endmodule\n".into())],
            top: "fifo".into(),
            part: Some("xc7a100t".into()),
            period_ns: Some(4.0),
            params: vec![("DEPTH".into(), "pow2:3:7".into())],
            metrics: Some("lut,fmax".into()),
            generations: 6,
            pop: 12,
            seed: 99,
            surrogate: Some(40),
            explorer: "auto".into(),
            backend: "mock:7".into(),
            use_store: false,
        };
        let v = Json::parse(&spec.to_json()).expect("spec JSON parses");
        assert_eq!(JobSpec::from_json(&v).unwrap(), spec);
        // Defaults fill in for omitted optional fields.
        let minimal = Json::parse(
            r#"{"sources":[{"name":"a.v","content":"x"}],"top":"a",
                "params":[{"name":"W","spec":"1:4"}]}"#,
        )
        .unwrap();
        let parsed = JobSpec::from_json(&minimal).unwrap();
        assert_eq!(parsed.generations, JobSpec::default().generations);
        assert!(parsed.use_store);
    }

    #[test]
    fn submit_request_parses_with_defaults() {
        let spec = JobSpec {
            sources: vec![("a.v".into(), "x".into())],
            top: "a".into(),
            params: vec![("W".into(), "1:4".into())],
            ..JobSpec::default()
        };
        let line = format!(
            "{{\"cmd\":\"submit\",\"tenant\":\"alice\",\"job\":{}}}",
            spec.to_json()
        );
        match parse_request(&line).unwrap() {
            Request::Submit {
                tenant,
                priority,
                spec: parsed,
            } => {
                assert_eq!(tenant, "alice");
                assert_eq!(priority, 1, "default priority");
                assert_eq!(*parsed, spec);
            }
            other => panic!("wrong request: {other:?}"),
        }
        assert_eq!(
            parse_request("{\"cmd\":\"status\"}").unwrap(),
            Request::Status
        );
        assert!(parse_request("{\"cmd\":\"nope\"}").is_err());
        assert!(parse_request("garbage").is_err());
    }
}
