//! A minimal JSON reader for the serve wire protocol.
//!
//! Dovado vendors no serialization framework, and the serve protocol
//! only needs to *read* small, line-delimited JSON objects (requests
//! from clients, trace v2 event lines on the client side). This module
//! is a strict-enough recursive-descent parser over one line of JSON
//! producing a [`Json`] tree, plus the string-escape helper the writer
//! side shares with `obs`'s hand-rolled emitters.
//!
//! Numbers are held as `f64` (the trace format itself never emits a
//! value outside `f64`'s exact-integer range; sequence numbers are far
//! below 2^53).

use std::fmt::Write as _;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON value; `None` on any syntax error or
    /// trailing garbage.
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return None;
        }
        Some(value)
    }

    /// Object field lookup (last duplicate wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal (same
/// escaping rules as the trace writer in `obs`).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(bytes: &[u8], pos: &mut usize, b: u8) -> Option<()> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b't' => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        b'f' => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        b'n' => parse_literal(bytes, pos, b"null", Json::Null),
        _ => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Json) -> Option<Json> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Some(value)
    } else {
        None
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == start {
        return None;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(Json::Num)
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    eat(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        // Surrogate pairs are not produced by our own
                        // writers; map unpaired surrogates to the
                        // replacement character rather than failing.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).ok()?;
                let c = rest.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    eat(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    eat(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        eat(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Json::Obj(fields));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null"), Some(Json::Null));
        assert_eq!(Json::parse("true"), Some(Json::Bool(true)));
        assert_eq!(Json::parse(" false "), Some(Json::Bool(false)));
        assert_eq!(Json::parse("42"), Some(Json::Num(42.0)));
        assert_eq!(Json::parse("-1.5e2"), Some(Json::Num(-150.0)));
        assert_eq!(Json::parse("\"hi\""), Some(Json::Str("hi".into())));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,{"b":"c"},null],"d":true}"#).unwrap();
        assert_eq!(v.get("d").and_then(Json::as_bool), Some(true));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("c"));
        assert_eq!(arr[2], Json::Null);
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te\r\u{0001}π";
        let line = format!("{{\"s\":\"{}\"}}", escape(nasty));
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn rejects_garbage_and_trailing_input() {
        assert_eq!(Json::parse(""), None);
        assert_eq!(Json::parse("{"), None);
        assert_eq!(Json::parse("[1,]"), None);
        assert_eq!(Json::parse("{\"a\":1} trailing"), None);
        assert_eq!(Json::parse("nul"), None);
        assert_eq!(Json::parse("\"unterminated"), None);
    }

    #[test]
    fn exact_integers_read_back_as_u64() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let v = Json::parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_f64), Some(2.0));
    }
}
