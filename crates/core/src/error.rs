//! Error type for the Dovado framework.
//!
//! Errors carry a **class** ([`ErrorClass`]): *transient* failures are
//! environmental (tool crash, timeout, corrupted artifact) and worth
//! retrying; *permanent* failures are properties of the inputs (parse
//! error, infeasible design) and will fail identically every attempt.
//! The evaluator's retry loop and the fitness layer's penalty handling
//! both key off this split — see `DESIGN.md`, "Failure model & retry
//! policy".

use dovado_eda::EdaError;
use std::fmt;

/// Whether a failure is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Environmental: the same run may succeed on the next attempt.
    Transient,
    /// A property of the inputs: retrying cannot help.
    Permanent,
}

/// Framework-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum DovadoError {
    /// The underlying EDA tool failed.
    Eda(EdaError),
    /// HDL parsing failed.
    Parse(String),
    /// The requested module was not found in the sources.
    UnknownModule(String),
    /// A parameter-space definition problem.
    Space(String),
    /// The module has no usable clock port for the box.
    NoClock(String),
    /// Configuration error.
    Config(String),
    /// The tool finished but a report it was asked to write is absent.
    MissingReport(String),
    /// A report exists but could not be parsed (truncated or garbled).
    ReportCorrupt(String),
    /// A timing report parsed but its numbers are impossible (e.g. a
    /// non-positive achievable period).
    NonPhysicalTiming(String),
    /// The retry budget ran out; `last` is the final attempt's failure.
    RetriesExhausted {
        /// How many attempts were made.
        attempts: u32,
        /// The error that killed the final attempt.
        last: Box<DovadoError>,
    },
    /// The exploration host process was killed mid-run (simulated host
    /// crash). The journal holds everything up to and including
    /// `generation`; `explore --resume` picks up from there.
    Interrupted {
        /// Last generation whose journal snapshot is durable.
        generation: u32,
    },
    /// The exploration was cancelled on purpose (serve-job cancel, or an
    /// `ExploreMonitor` returning `false`). Unlike [`Interrupted`], this
    /// is deliberate and permanent: retrying would re-run work the caller
    /// just asked to stop.
    ///
    /// [`Interrupted`]: DovadoError::Interrupted
    Cancelled {
        /// Last generation that completed before the cancellation took
        /// effect (0 = none).
        generation: u32,
    },
}

impl DovadoError {
    /// Classifies the failure for retry/penalty decisions.
    ///
    /// Missing and corrupt reports classify as transient: with the
    /// simulated tool they only arise from injected write faults, and
    /// with a real tool a half-written report usually means the process
    /// died, not that the design is infeasible. `RetriesExhausted` stays
    /// transient so callers can tell "gave up on a flaky run" apart from
    /// "the design is bad" — it must *not* be converted into a penalty
    /// vector.
    pub fn class(&self) -> ErrorClass {
        match self {
            DovadoError::Eda(e) if e.is_transient() => ErrorClass::Transient,
            DovadoError::MissingReport(_)
            | DovadoError::ReportCorrupt(_)
            | DovadoError::NonPhysicalTiming(_)
            | DovadoError::RetriesExhausted { .. }
            | DovadoError::Interrupted { .. } => ErrorClass::Transient,
            _ => ErrorClass::Permanent,
        }
    }

    /// Convenience: `class() == Transient`.
    pub fn is_transient(&self) -> bool {
        self.class() == ErrorClass::Transient
    }

    /// Whether the failure was a tool timeout (drives graceful
    /// degradation from implementation to synthesis-only evaluation).
    pub fn is_timeout(&self) -> bool {
        matches!(self, DovadoError::Eda(EdaError::Timeout(_)))
    }
}

impl fmt::Display for DovadoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DovadoError::Eda(e) => write!(f, "EDA tool error: {e}"),
            DovadoError::Parse(m) => write!(f, "parse error: {m}"),
            DovadoError::UnknownModule(m) => write!(f, "unknown module `{m}`"),
            DovadoError::Space(m) => write!(f, "parameter space error: {m}"),
            DovadoError::NoClock(m) => write!(f, "no clock port found on `{m}`"),
            DovadoError::Config(m) => write!(f, "configuration error: {m}"),
            DovadoError::MissingReport(m) => write!(f, "report missing: {m}"),
            DovadoError::ReportCorrupt(m) => write!(f, "report unreadable: {m}"),
            DovadoError::NonPhysicalTiming(m) => write!(f, "non-physical timing: {m}"),
            DovadoError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
            DovadoError::Interrupted { generation } => {
                write!(
                    f,
                    "exploration interrupted after generation {generation}; \
                     journal is resumable"
                )
            }
            DovadoError::Cancelled { generation } => {
                write!(f, "exploration cancelled after generation {generation}")
            }
        }
    }
}

impl std::error::Error for DovadoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DovadoError::Eda(e) => Some(e),
            DovadoError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<EdaError> for DovadoError {
    fn from(e: EdaError) -> Self {
        DovadoError::Eda(e)
    }
}

/// Convenience alias.
pub type DovadoResult<T> = Result<T, DovadoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_wraps() {
        let e: DovadoError = EdaError::UnknownPart("x".into()).into();
        assert!(e.to_string().contains("unknown part"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&DovadoError::Space("s".into())).is_none());
    }

    #[test]
    fn classification_splits_transient_from_permanent() {
        let transient = [
            DovadoError::Eda(EdaError::ToolCrash("synth".into())),
            DovadoError::Eda(EdaError::Timeout("route".into())),
            DovadoError::Eda(EdaError::Checkpoint("corrupt".into())),
            DovadoError::MissingReport("util.rpt".into()),
            DovadoError::ReportCorrupt("no utilization rows".into()),
            DovadoError::NonPhysicalTiming("period -1".into()),
        ];
        for e in transient {
            assert_eq!(e.class(), ErrorClass::Transient, "{e}");
        }
        let permanent = [
            DovadoError::Eda(EdaError::ResourceOverflow("too big".into())),
            DovadoError::Eda(EdaError::Parse("bad HDL".into())),
            DovadoError::Parse("bad HDL".into()),
            DovadoError::Config("bad part".into()),
            DovadoError::Space("empty".into()),
            DovadoError::Cancelled { generation: 3 },
        ];
        for e in permanent {
            assert_eq!(e.class(), ErrorClass::Permanent, "{e}");
        }
    }

    #[test]
    fn retries_exhausted_wraps_and_chains() {
        let last = DovadoError::Eda(EdaError::ToolCrash("synth".into()));
        let e = DovadoError::RetriesExhausted {
            attempts: 4,
            last: Box::new(last),
        };
        assert!(e.is_transient());
        assert!(e.to_string().contains("4 attempts"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn timeout_detection() {
        assert!(DovadoError::Eda(EdaError::Timeout("t".into())).is_timeout());
        assert!(!DovadoError::Eda(EdaError::ToolCrash("c".into())).is_timeout());
    }
}
