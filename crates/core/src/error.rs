//! Error type for the Dovado framework.

use dovado_eda::EdaError;
use std::fmt;

/// Framework-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum DovadoError {
    /// The underlying EDA tool failed.
    Eda(EdaError),
    /// HDL parsing failed.
    Parse(String),
    /// The requested module was not found in the sources.
    UnknownModule(String),
    /// A parameter-space definition problem.
    Space(String),
    /// The module has no usable clock port for the box.
    NoClock(String),
    /// Configuration error.
    Config(String),
}

impl fmt::Display for DovadoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DovadoError::Eda(e) => write!(f, "EDA tool error: {e}"),
            DovadoError::Parse(m) => write!(f, "parse error: {m}"),
            DovadoError::UnknownModule(m) => write!(f, "unknown module `{m}`"),
            DovadoError::Space(m) => write!(f, "parameter space error: {m}"),
            DovadoError::NoClock(m) => write!(f, "no clock port found on `{m}`"),
            DovadoError::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for DovadoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DovadoError::Eda(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EdaError> for DovadoError {
    fn from(e: EdaError) -> Self {
        DovadoError::Eda(e)
    }
}

/// Convenience alias.
pub type DovadoResult<T> = Result<T, DovadoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_wraps() {
        let e: DovadoError = EdaError::UnknownPart("x".into()).into();
        assert!(e.to_string().contains("unknown part"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&DovadoError::Space("s".into())).is_none());
    }
}
