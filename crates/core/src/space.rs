//! Parameter spaces: which RTL parameters are free, over which values.
//!
//! The user "can specify a set of design points, i.e., a set of free
//! parameters" with ranges (§I), and may restrict domains, e.g. "limit the
//! range of a given parameter to only power of two values … reducing the
//! volume space at exploration time, or even enforcing meaningful solutions
//! only" (§III-B1). Domains are exposed to the optimizer and the surrogate
//! through a dense **index space**: each parameter maps to an integer index
//! `0..cardinality`, which keeps similarity distances meaningful for
//! power-of-two domains (adjacent indices = adjacent admissible values).

use crate::error::{DovadoError, DovadoResult};
use crate::point::DesignPoint;
use dovado_moo::IntVar;
use dovado_surrogate::Bounds;
use std::fmt;

/// The admissible values of one parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Domain {
    /// Every integer in `[lo, hi]` (inclusive), with a step.
    Range {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
        /// Step between admissible values (≥ 1).
        step: i64,
    },
    /// Powers of two `2^min_exp ..= 2^max_exp` — the paper's restriction.
    PowerOfTwo {
        /// Smallest exponent.
        min_exp: u32,
        /// Largest exponent (≤ 62).
        max_exp: u32,
    },
    /// An explicit value list (deduplicated, sorted).
    Explicit(Vec<i64>),
    /// Boolean as 0/1 (the paper's integer treatment of booleans).
    Bool,
}

impl Domain {
    /// A contiguous integer range with step 1.
    pub fn range(lo: i64, hi: i64) -> Domain {
        Domain::Range {
            lo: lo.min(hi),
            hi: hi.max(lo),
            step: 1,
        }
    }

    /// Number of admissible values.
    pub fn cardinality(&self) -> u64 {
        match self {
            Domain::Range { lo, hi, step } => ((hi - lo) / step) as u64 + 1,
            Domain::PowerOfTwo { min_exp, max_exp } => (max_exp - min_exp) as u64 + 1,
            Domain::Explicit(v) => v.len() as u64,
            Domain::Bool => 2,
        }
    }

    /// The value at `index` (0-based).
    pub fn value(&self, index: u64) -> Option<i64> {
        if index >= self.cardinality() {
            return None;
        }
        Some(match self {
            Domain::Range { lo, step, .. } => lo + step * index as i64,
            Domain::PowerOfTwo { min_exp, .. } => 1i64 << (min_exp + index as u32),
            Domain::Explicit(v) => v[index as usize],
            Domain::Bool => index as i64,
        })
    }

    /// The index of `value`, if admissible.
    pub fn index_of(&self, value: i64) -> Option<u64> {
        match self {
            Domain::Range { lo, hi, step } => {
                if value < *lo || value > *hi || (value - lo) % step != 0 {
                    None
                } else {
                    Some(((value - lo) / step) as u64)
                }
            }
            Domain::PowerOfTwo { min_exp, max_exp } => {
                if value <= 0 || value.count_ones() != 1 {
                    return None;
                }
                let exp = value.trailing_zeros();
                if exp < *min_exp || exp > *max_exp {
                    None
                } else {
                    Some((exp - min_exp) as u64)
                }
            }
            Domain::Explicit(v) => v.iter().position(|&x| x == value).map(|i| i as u64),
            Domain::Bool => match value {
                0 => Some(0),
                1 => Some(1),
                _ => None,
            },
        }
    }

    /// Validates the domain definition.
    pub fn validate(&self) -> DovadoResult<()> {
        match self {
            Domain::Range { lo, hi, step } => {
                if step < &1 {
                    return Err(DovadoError::Space(format!("step {step} must be ≥ 1")));
                }
                if lo > hi {
                    return Err(DovadoError::Space(format!("empty range [{lo}, {hi}]")));
                }
                Ok(())
            }
            Domain::PowerOfTwo { min_exp, max_exp } => {
                if min_exp > max_exp {
                    return Err(DovadoError::Space(format!(
                        "empty power-of-two domain 2^{min_exp}..2^{max_exp}"
                    )));
                }
                if *max_exp > 62 {
                    return Err(DovadoError::Space(format!(
                        "exponent {max_exp} overflows i64"
                    )));
                }
                Ok(())
            }
            Domain::Explicit(v) => {
                if v.is_empty() {
                    return Err(DovadoError::Space("empty explicit domain".into()));
                }
                let mut sorted = v.clone();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.len() != v.len() || sorted != *v {
                    return Err(DovadoError::Space(
                        "explicit domain must be sorted and deduplicated".into(),
                    ));
                }
                Ok(())
            }
            Domain::Bool => Ok(()),
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Range { lo, hi, step } if *step == 1 => write!(f, "[{lo}..{hi}]"),
            Domain::Range { lo, hi, step } => write!(f, "[{lo}..{hi} step {step}]"),
            Domain::PowerOfTwo { min_exp, max_exp } => {
                write!(f, "{{2^{min_exp}..2^{max_exp}}}")
            }
            Domain::Explicit(v) => write!(f, "{v:?}"),
            Domain::Bool => write!(f, "{{0, 1}}"),
        }
    }
}

/// One free parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct FreeParameter {
    /// Parameter (generic) name as declared in the RTL.
    pub name: String,
    /// Admissible values.
    pub domain: Domain,
}

/// The full search space.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParameterSpace {
    params: Vec<FreeParameter>,
}

impl ParameterSpace {
    /// Creates an empty space.
    pub fn new() -> ParameterSpace {
        ParameterSpace::default()
    }

    /// Adds a parameter (builder style). Panics on duplicate names or
    /// invalid domains — space definitions are program constants.
    pub fn with(mut self, name: impl Into<String>, domain: Domain) -> ParameterSpace {
        let name = name.into();
        domain
            .validate()
            .unwrap_or_else(|e| panic!("invalid domain for `{name}`: {e}"));
        assert!(
            !self
                .params
                .iter()
                .any(|p| p.name.eq_ignore_ascii_case(&name)),
            "duplicate parameter `{name}`"
        );
        self.params.push(FreeParameter { name, domain });
        self
    }

    /// The parameters, in declaration order.
    pub fn params(&self) -> &[FreeParameter] {
        &self.params
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// Total number of design points ("the volume of the parameters
    /// space"), saturating.
    pub fn volume(&self) -> u64 {
        self.params
            .iter()
            .fold(1u64, |a, p| a.saturating_mul(p.domain.cardinality()))
    }

    /// Index-space decision variables for the optimizer.
    pub fn index_vars(&self) -> Vec<IntVar> {
        self.params
            .iter()
            .map(|p| IntVar::new(&p.name, 0, p.domain.cardinality() as i64 - 1))
            .collect()
    }

    /// Index-space bounds for the surrogate dataset.
    pub fn index_bounds(&self) -> Bounds {
        Bounds::new(
            self.params
                .iter()
                .map(|p| (0i64, p.domain.cardinality() as i64 - 1))
                .collect(),
        )
    }

    /// Decodes an index genome into a design point.
    pub fn decode(&self, indices: &[i64]) -> DovadoResult<DesignPoint> {
        if indices.len() != self.params.len() {
            return Err(DovadoError::Space(format!(
                "genome has {} genes, space has {} parameters",
                indices.len(),
                self.params.len()
            )));
        }
        let mut values = Vec::with_capacity(indices.len());
        for (idx, p) in indices.iter().zip(&self.params) {
            let v = u64::try_from(*idx)
                .ok()
                .and_then(|i| p.domain.value(i))
                .ok_or_else(|| {
                    DovadoError::Space(format!("index {idx} out of domain for `{}`", p.name))
                })?;
            values.push(v);
        }
        Ok(DesignPoint::new(
            self.params.iter().map(|p| p.name.clone()).collect(),
            values,
        ))
    }

    /// Encodes parameter values back into an index genome.
    pub fn encode(&self, point: &DesignPoint) -> DovadoResult<Vec<i64>> {
        let mut out = Vec::with_capacity(self.params.len());
        for p in &self.params {
            let v = point.get(&p.name).ok_or_else(|| {
                DovadoError::Space(format!("point is missing parameter `{}`", p.name))
            })?;
            let idx = p.domain.index_of(v).ok_or_else(|| {
                DovadoError::Space(format!("value {v} not admissible for `{}`", p.name))
            })?;
            out.push(idx as i64);
        }
        Ok(out)
    }

    /// Enumerates every design point (for exact exploration / exhaustive
    /// baselines). Returns `None` if the volume exceeds `limit`.
    pub fn enumerate(&self, limit: u64) -> Option<Vec<DesignPoint>> {
        let vol = self.volume();
        if vol > limit {
            return None;
        }
        let mut out = Vec::with_capacity(vol as usize);
        let mut idx: Vec<u64> = vec![0; self.params.len()];
        loop {
            let genome: Vec<i64> = idx.iter().map(|&i| i as i64).collect();
            out.push(self.decode(&genome).expect("indices in range"));
            let mut k = 0usize;
            loop {
                if k == self.params.len() {
                    return Some(out);
                }
                idx[k] += 1;
                if idx[k] < self.params[k].domain.cardinality() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }
}

impl fmt::Display for ParameterSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} ∈ {}", p.name, p.domain)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_domain_roundtrip() {
        let d = Domain::Range {
            lo: 2,
            hi: 1000,
            step: 2,
        };
        assert_eq!(d.cardinality(), 500);
        assert_eq!(d.value(0), Some(2));
        assert_eq!(d.value(499), Some(1000));
        assert_eq!(d.value(500), None);
        assert_eq!(d.index_of(500), Some(249));
        assert_eq!(d.index_of(3), None);
        assert_eq!(d.index_of(1002), None);
    }

    #[test]
    fn power_of_two_domain() {
        let d = Domain::PowerOfTwo {
            min_exp: 10,
            max_exp: 16,
        };
        assert_eq!(d.cardinality(), 7);
        assert_eq!(d.value(0), Some(1024));
        assert_eq!(d.value(6), Some(65536));
        assert_eq!(d.index_of(16384), Some(4));
        assert_eq!(d.index_of(12345), None);
        assert_eq!(d.index_of(512), None);
    }

    #[test]
    fn explicit_and_bool_domains() {
        let d = Domain::Explicit(vec![1, 3, 7]);
        assert_eq!(d.cardinality(), 3);
        assert_eq!(d.value(1), Some(3));
        assert_eq!(d.index_of(7), Some(2));
        let b = Domain::Bool;
        assert_eq!(b.cardinality(), 2);
        assert_eq!(b.value(1), Some(1));
        assert_eq!(b.index_of(2), None);
    }

    #[test]
    fn domain_validation() {
        assert!(Domain::Range {
            lo: 0,
            hi: 10,
            step: 0
        }
        .validate()
        .is_err());
        assert!(Domain::Range {
            lo: 10,
            hi: 0,
            step: 1
        }
        .validate()
        .is_err());
        assert!(Domain::PowerOfTwo {
            min_exp: 5,
            max_exp: 2
        }
        .validate()
        .is_err());
        assert!(Domain::PowerOfTwo {
            min_exp: 0,
            max_exp: 63
        }
        .validate()
        .is_err());
        assert!(Domain::Explicit(vec![]).validate().is_err());
        assert!(Domain::Explicit(vec![3, 1]).validate().is_err());
        assert!(Domain::Explicit(vec![1, 1, 3]).validate().is_err());
        assert!(Domain::Explicit(vec![1, 3]).validate().is_ok());
    }

    fn space() -> ParameterSpace {
        ParameterSpace::new()
            .with("DEPTH", Domain::range(2, 65))
            .with(
                "SIZE",
                Domain::PowerOfTwo {
                    min_exp: 3,
                    max_exp: 6,
                },
            )
            .with("EN", Domain::Bool)
    }

    #[test]
    fn volume_and_vars() {
        let s = space();
        assert_eq!(s.volume(), 64 * 4 * 2);
        let vars = s.index_vars();
        assert_eq!(vars[0].hi, 63);
        assert_eq!(vars[1].hi, 3);
        assert_eq!(vars[2].hi, 1);
    }

    #[test]
    fn decode_encode_roundtrip() {
        let s = space();
        let p = s.decode(&[10, 2, 1]).unwrap();
        assert_eq!(p.get("DEPTH"), Some(12));
        assert_eq!(p.get("SIZE"), Some(32));
        assert_eq!(p.get("EN"), Some(1));
        assert_eq!(s.encode(&p).unwrap(), vec![10, 2, 1]);
    }

    #[test]
    fn decode_rejects_out_of_range() {
        let s = space();
        assert!(s.decode(&[100, 0, 0]).is_err());
        assert!(s.decode(&[0, 0]).is_err());
        assert!(s.decode(&[-1, 0, 0]).is_err());
    }

    #[test]
    fn encode_rejects_inadmissible() {
        let s = space();
        let p = DesignPoint::new(
            vec!["DEPTH".into(), "SIZE".into(), "EN".into()],
            vec![12, 33, 1], // 33 is not a power of two
        );
        assert!(s.encode(&p).is_err());
    }

    #[test]
    fn enumerate_small_space() {
        let s = ParameterSpace::new()
            .with("A", Domain::range(0, 2))
            .with("B", Domain::Bool);
        let all = s.enumerate(100).unwrap();
        assert_eq!(all.len(), 6);
        assert!(s.enumerate(5).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_names_panic() {
        let _ = ParameterSpace::new()
            .with("A", Domain::Bool)
            .with("a", Domain::Bool);
    }

    #[test]
    fn display_is_readable() {
        let s = space();
        let t = s.to_string();
        assert!(t.contains("DEPTH"));
        assert!(t.contains("2^3"));
    }
}
