//! The boxing (sandboxing) step — the paper's Listing 1.
//!
//! Boxing wraps the module under evaluation in a minimal top-level entity so
//! that (a) the tool cannot simplify away the module's I/O, enforced with a
//! `DONT_TOUCH` attribute on the instance, (b) the FPGA implementation
//! phase never hits pin overflow (the box exposes a single clock pin), and
//! (c) parameterization has a single application point: the box's generic/
//! parameter map carries the design point (§III-A2).

use crate::error::{DovadoError, DovadoResult};
use crate::point::DesignPoint;
use dovado_hdl::{Language, ModuleInterface};
use std::fmt::Write as _;

/// A generated box wrapper.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxedDesign {
    /// Generated source text.
    pub source: String,
    /// Language of the generated source (matches the target module's).
    pub language: Language,
    /// Name of the generated top module (`box`).
    pub top: String,
    /// The box's external clock port (`clk`).
    pub clock_port: String,
    /// Suggested file name.
    pub file_name: String,
}

/// The fixed instance label carrying the `DONT_TOUCH` attribute.
pub const BOX_INSTANCE: &str = "BOXED";
/// The generated top-level name.
pub const BOX_TOP: &str = "box";
/// The box's clock pin.
pub const BOX_CLOCK: &str = "clk";

/// Generates the box for `module` with the design point applied as the
/// generic/parameter map.
///
/// Every point parameter must name a free (non-local) parameter of the
/// module; the module must have a detectable clock port.
pub fn generate_box(module: &ModuleInterface, point: &DesignPoint) -> DovadoResult<BoxedDesign> {
    for name in point.names() {
        match module.parameter(name) {
            None => {
                return Err(DovadoError::Config(format!(
                    "module `{}` has no parameter `{name}`",
                    module.name
                )))
            }
            Some(p) if p.local => {
                return Err(DovadoError::Config(format!(
                    "parameter `{name}` of `{}` is a localparam and cannot be explored",
                    module.name
                )))
            }
            Some(_) => {}
        }
    }
    let clock = module
        .clock_port()
        .ok_or_else(|| DovadoError::NoClock(module.name.clone()))?
        .name
        .clone();

    match module.language {
        Language::Vhdl => Ok(vhdl_box(module, point, &clock)),
        Language::Verilog | Language::SystemVerilog => Ok(verilog_box(module, point, &clock)),
    }
}

fn vhdl_box(module: &ModuleInterface, point: &DesignPoint, clock: &str) -> BoxedDesign {
    let mut s = String::new();
    let _ = writeln!(s, "-- Dovado box for `{}` (auto-generated)", module.name);
    let _ = writeln!(s, "library ieee;");
    let _ = writeln!(s, "use ieee.std_logic_1164.all;");
    let _ = writeln!(s);
    let _ = writeln!(s, "entity {BOX_TOP} is");
    let _ = writeln!(s, "  port (");
    let _ = writeln!(s, "    {BOX_CLOCK} : in std_logic");
    let _ = writeln!(s, "  );");
    let _ = writeln!(s, "end entity {BOX_TOP};");
    let _ = writeln!(s);
    let _ = writeln!(s, "architecture box_arch of {BOX_TOP} is");
    let _ = writeln!(s, "  attribute DONT_TOUCH : string;");
    let _ = writeln!(
        s,
        "  attribute DONT_TOUCH of {BOX_INSTANCE} : label is \"TRUE\";"
    );
    let _ = writeln!(s, "begin");
    let _ = writeln!(s, "  {BOX_INSTANCE}: entity work.{}", module.name);
    if !point.is_empty() {
        let _ = writeln!(s, "    generic map (");
        for (i, (n, v)) in point.names().iter().zip(point.values()).enumerate() {
            let comma = if i + 1 < point.len() { "," } else { "" };
            let _ = writeln!(s, "      {n} => {v}{comma}");
        }
        let _ = writeln!(s, "    )");
    }
    let _ = writeln!(s, "    port map (");
    let _ = writeln!(s, "      {clock} => {BOX_CLOCK}");
    let _ = writeln!(s, "    );");
    let _ = writeln!(s, "end architecture box_arch;");
    BoxedDesign {
        source: s,
        language: Language::Vhdl,
        top: BOX_TOP.to_string(),
        clock_port: BOX_CLOCK.to_string(),
        file_name: format!("{BOX_TOP}.vhd"),
    }
}

fn verilog_box(module: &ModuleInterface, point: &DesignPoint, clock: &str) -> BoxedDesign {
    let sv = module.language == Language::SystemVerilog;
    let mut s = String::new();
    let _ = writeln!(s, "// Dovado box for `{}` (auto-generated)", module.name);
    let _ = writeln!(s, "module {BOX_TOP} (");
    let _ = writeln!(s, "    input wire {BOX_CLOCK}");
    let _ = writeln!(s, ");");
    let _ = writeln!(s, "  (* DONT_TOUCH = \"TRUE\" *)");
    if point.is_empty() {
        let _ = writeln!(s, "  {} {BOX_INSTANCE} (", module.name);
    } else {
        let _ = writeln!(s, "  {} #(", module.name);
        for (i, (n, v)) in point.names().iter().zip(point.values()).enumerate() {
            let comma = if i + 1 < point.len() { "," } else { "" };
            let _ = writeln!(s, "      .{n}({v}){comma}");
        }
        let _ = writeln!(s, "  ) {BOX_INSTANCE} (");
    }
    let _ = writeln!(s, "      .{clock}({BOX_CLOCK})");
    let _ = writeln!(s, "  );");
    let _ = writeln!(s, "endmodule");
    BoxedDesign {
        source: s,
        language: if sv {
            Language::SystemVerilog
        } else {
            Language::Verilog
        },
        top: BOX_TOP.to_string(),
        clock_port: BOX_CLOCK.to_string(),
        file_name: format!("{BOX_TOP}.{}", if sv { "sv" } else { "v" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dovado_hdl::parse_source;

    fn sv_module() -> ModuleInterface {
        let (f, _) = parse_source(
            Language::Verilog,
            "module fifo_v3 #(parameter DEPTH = 8, parameter DATA_WIDTH = 32, localparam A = 1)\
             (input logic clk_i, input logic [DATA_WIDTH-1:0] data_i); endmodule",
        )
        .unwrap();
        f.modules[0].clone()
    }

    fn vhdl_module() -> ModuleInterface {
        let (f, _) = parse_source(
            Language::Vhdl,
            "entity neorv32_top is
               generic ( MEM_INT_IMEM_SIZE : natural := 16384 );
               port ( clk_i : in std_logic; gpio_o : out std_logic_vector(7 downto 0) );
             end entity neorv32_top;",
        )
        .unwrap();
        f.modules[0].clone()
    }

    #[test]
    fn sv_box_parses_back_with_generics() {
        let m = sv_module();
        let p = DesignPoint::from_pairs(&[("DEPTH", 64), ("DATA_WIDTH", 16)]);
        let b = generate_box(&m, &p).unwrap();
        assert_eq!(b.language, Language::SystemVerilog);
        let (f, d) = parse_source(Language::Verilog, &b.source).unwrap();
        assert!(!d.has_errors());
        assert_eq!(f.modules[0].name, "box");
        assert_eq!(f.instantiations.len(), 1);
        let i = &f.instantiations[0];
        assert_eq!(i.label, BOX_INSTANCE);
        assert_eq!(i.target, "fifo_v3");
        assert_eq!(i.generics.len(), 2);
        assert_eq!(i.generics[0].0, "DEPTH");
    }

    #[test]
    fn vhdl_box_parses_back_with_generics() {
        let m = vhdl_module();
        let p = DesignPoint::from_pairs(&[("MEM_INT_IMEM_SIZE", 32768)]);
        let b = generate_box(&m, &p).unwrap();
        assert_eq!(b.language, Language::Vhdl);
        assert!(b.source.contains("DONT_TOUCH"));
        let (f, d) = parse_source(Language::Vhdl, &b.source).unwrap();
        assert!(!d.has_errors());
        assert_eq!(f.modules[0].name, "box");
        assert_eq!(f.instantiations[0].target, "work.neorv32_top");
        assert_eq!(f.instantiations[0].generics.len(), 1);
    }

    #[test]
    fn box_exposes_single_clock_pin() {
        let m = sv_module();
        let b = generate_box(&m, &DesignPoint::from_pairs(&[])).unwrap();
        let (f, _) = parse_source(Language::Verilog, &b.source).unwrap();
        let ports = &f.modules[0].ports;
        assert_eq!(ports.len(), 1);
        assert_eq!(ports[0].name, "clk");
    }

    #[test]
    fn unknown_parameter_rejected() {
        let m = sv_module();
        let p = DesignPoint::from_pairs(&[("NOPE", 1)]);
        assert!(matches!(generate_box(&m, &p), Err(DovadoError::Config(_))));
    }

    #[test]
    fn localparam_rejected() {
        let m = sv_module();
        let p = DesignPoint::from_pairs(&[("A", 2)]);
        assert!(matches!(generate_box(&m, &p), Err(DovadoError::Config(_))));
    }

    #[test]
    fn clockless_module_rejected() {
        let (f, _) = parse_source(
            Language::Verilog,
            "module comb(input wire [7:0] a, output wire [7:0] y); endmodule",
        )
        .unwrap();
        // `a` is a multi-bit input; no single-bit input exists.
        let r = generate_box(&f.modules[0], &DesignPoint::from_pairs(&[]));
        assert!(matches!(r, Err(DovadoError::NoClock(_))));
    }

    #[test]
    fn empty_point_omits_generic_map() {
        let m = vhdl_module();
        let b = generate_box(&m, &DesignPoint::from_pairs(&[])).unwrap();
        assert!(!b.source.contains("generic map"));
    }
}
