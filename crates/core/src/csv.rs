//! A minimal CSV writer (no external dependency) for persisting
//! exploration results and experiment series.

use std::fmt::Write as _;

/// Builds CSV text row by row with RFC-4180 quoting.
#[derive(Debug, Default, Clone)]
pub struct CsvWriter {
    buf: String,
    columns: usize,
}

impl CsvWriter {
    /// Creates an empty writer.
    pub fn new() -> CsvWriter {
        CsvWriter::default()
    }

    /// Writes the header row; fixes the column count.
    pub fn header(&mut self, columns: &[&str]) -> &mut Self {
        self.columns = columns.len();
        self.raw_row(columns.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Writes one row of stringifiable fields. Panics when the column
    /// count does not match the header (a bug in the caller).
    pub fn row<T: ToString>(&mut self, fields: &[T]) -> &mut Self {
        let fields: Vec<String> = fields.iter().map(T::to_string).collect();
        if self.columns != 0 {
            assert_eq!(fields.len(), self.columns, "row width mismatch");
        }
        self.raw_row(fields);
        self
    }

    fn raw_row(&mut self, fields: Vec<String>) {
        for (i, f) in fields.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{}", escape(f));
        }
        self.buf.push('\n');
    }

    /// The accumulated CSV text.
    pub fn finish(self) -> String {
        self.buf
    }

    /// Borrowed view of the text so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }
}

/// Quotes a field when needed (commas, quotes, newlines).
pub fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Parses simple CSV text back into rows (used by tests and by benches
/// that post-process their own output; supports quoted fields).
pub fn parse(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => in_quotes = false,
                other => field.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => row.push(std::mem::take(&mut field)),
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                '\r' => {}
                other => field.push(other),
            }
        }
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_rows() {
        let mut w = CsvWriter::new();
        w.header(&["a", "b"]).row(&[1, 2]).row(&[3, 4]);
        assert_eq!(w.finish(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn quoting() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn roundtrip_with_quotes() {
        let mut w = CsvWriter::new();
        w.header(&["name", "value"]);
        w.row(&["x,y".to_string(), "he said \"no\"".to_string()]);
        let parsed = parse(w.as_str());
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1][0], "x,y");
        assert_eq!(parsed[1][1], "he said \"no\"");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut w = CsvWriter::new();
        w.header(&["a", "b"]).row(&[1]);
    }

    #[test]
    fn mixed_types_via_tostring() {
        let mut w = CsvWriter::new();
        w.header(&["m"]).row(&[1.5]);
        assert!(w.as_str().contains("1.5"));
    }

    #[test]
    fn parse_handles_trailing_row_without_newline() {
        let rows = parse("a,b\n1,2");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
    }
}
