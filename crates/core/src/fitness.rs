//! The DSE fitness function, with the approximation control model.
//!
//! A naive fitness "implies calling Vivado for each exploration iteration"
//! (§III-C); instead, each design point goes through the three-way control
//! model: exact dataset hit → tool (answers from cache), similar enough →
//! Nadaraya-Watson estimate, otherwise → tool run + dataset update +
//! retrain/revalidate.
//!
//! Whole generations go through a staged batch pipeline instead of a
//! genome-at-a-time loop: a read-only parallel *decide* phase against a
//! snapshot of the dataset, a deduplicated parallel *evaluate* phase for
//! the slots the tool must answer, and a serial *record* phase that folds
//! measurements back into the dataset in first-occurrence order. The
//! stages make parallelism invisible: per seed, a parallel run returns
//! bitwise the same objective vectors, dataset and stats as a serial one.

use crate::dse::SurrogateConfig;
use crate::engine::Schedule;
use crate::error::{DovadoResult, ErrorClass};
use crate::flow::Evaluator;
use crate::metrics::{Evaluation, MetricSet};
use crate::obs::ObsEvent;
use crate::point::DesignPoint;
use crate::space::ParameterSpace;
use dovado_moo::ops::unique_in_batch;
use dovado_moo::{IntVar, Objective, Problem};
use dovado_surrogate::{ControlEvent, Decision, SurrogateController};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counters describing how the fitness function answered queries.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FitnessStats {
    /// Full tool evaluations (fresh synthesis/implementation).
    pub tool_runs: u64,
    /// Tool calls answered from the tool's own cache (exact dataset hits).
    pub cached_runs: u64,
    /// Estimates served by the surrogate.
    pub estimates: u64,
    /// Evaluations that failed (e.g. the design did not fit) and were
    /// penalized. Always `transient_failures + permanent_failures`.
    pub failures: u64,
    /// Failed evaluations whose final error was transient (retry budget
    /// exhausted on crashes/timeouts). These are *not* truths about the
    /// design and are never recorded into the surrogate dataset.
    pub transient_failures: u64,
    /// Failed evaluations whose error was a property of the design
    /// (infeasible point, overflow). Penalizing these is meaningful.
    pub permanent_failures: u64,
    /// Extra tool attempts spent retrying transient faults (mirror of the
    /// evaluator's [`crate::TraceSummary::retries`]).
    pub retries: u64,
}

impl FitnessStats {
    fn count_failure(&mut self, class: ErrorClass) {
        self.failures += 1;
        match class {
            ErrorClass::Transient => self.transient_failures += 1,
            ErrorClass::Permanent => self.permanent_failures += 1,
        }
    }
}

/// Penalty vector for failed evaluations: a point that fails synthesis
/// is worse than anything real — zero frequency, full-device
/// utilization.
fn penalty_vector(metrics: &MetricSet) -> Vec<f64> {
    metrics
        .metrics()
        .iter()
        .map(|m| match m {
            crate::metrics::Metric::Fmax => 0.0,
            crate::metrics::Metric::Utilization(_) | crate::metrics::Metric::Power => 1e9,
        })
        .collect()
}

/// The multi-objective problem Dovado hands to NSGA-II.
pub struct DseProblem {
    evaluator: Evaluator,
    space: ParameterSpace,
    metrics: MetricSet,
    vars: Vec<IntVar>,
    objectives: Vec<Objective>,
    surrogate: Option<SurrogateController>,
    /// Worst-case objective values used to penalize failed evaluations.
    penalty: Vec<f64>,
    /// How tool-only batches are dispatched: serial, rayon-parallel, or
    /// distributed across a worker fleet. All three yield bitwise the
    /// same results per seed.
    pub schedule: Schedule,
    /// Decision counters.
    pub stats: FitnessStats,
}

impl DseProblem {
    /// Builds the problem; optionally pre-trains the surrogate with
    /// `cfg.pretrain_samples` random tool evaluations (the paper's synthetic
    /// dataset of M = 100 "distinct calls to Vivado").
    pub fn new(
        evaluator: Evaluator,
        space: ParameterSpace,
        metrics: MetricSet,
        surrogate_cfg: Option<&SurrogateConfig>,
    ) -> DovadoResult<DseProblem> {
        let vars = space.index_vars();
        let objectives = metrics.objectives();
        let mut problem = DseProblem {
            evaluator,
            space,
            vars,
            objectives,
            surrogate: None,
            penalty: penalty_vector(&metrics),
            metrics,
            schedule: Schedule::Serial,
            stats: FitnessStats::default(),
        };

        if let Some(cfg) = surrogate_cfg {
            let mut controller = SurrogateController::new(
                problem.space.index_bounds(),
                problem.metrics.len(),
                cfg.policy,
            )
            .with_kernel(cfg.kernel);
            controller.retrain_every = cfg.reselect_every.max(1);
            controller.neighbor_k = cfg.neighbor_k;

            if cfg.pretrain_samples > 0 {
                let mut rng = StdRng::seed_from_u64(cfg.seed);
                let genomes = dovado_moo::ops::sampling::random_population(
                    &problem.vars,
                    cfg.pretrain_samples,
                    &mut rng,
                );
                // Dispatch every sample once, through the same batch path
                // the optimizer uses (the paper's synthetic dataset counts
                // M distinct *calls to Vivado*, so repeated random samples
                // are not deduplicated here).
                let all: Vec<usize> = (0..genomes.len()).collect();
                let results = problem.dispatch_unique(&genomes, &all);
                let mut pairs = Vec::with_capacity(genomes.len());
                for (g, values) in genomes.into_iter().zip(results) {
                    // Only genuine evaluations enter the pretrain dataset;
                    // a failed sample must not teach the model its penalty
                    // vector as if it were a measurement.
                    if let Some(values) = values {
                        pairs.push((g, values));
                    }
                }
                controller.pretrain(pairs);
            }
            problem.forward_control_events(&mut controller);
            problem.surrogate = Some(controller);
        }
        problem.sync_retries();
        Ok(problem)
    }

    /// Rebuilds a problem mid-run from journaled state: no pretraining —
    /// the restored controller (if any) and fitness counters are
    /// installed exactly as captured. The caller has already spliced the
    /// journaled trace totals onto the evaluator's spine (a `Resume`
    /// event), so `stats.retries` can mirror the trace directly and
    /// stays continuous across the restart.
    pub(crate) fn resume_from(
        evaluator: Evaluator,
        space: ParameterSpace,
        metrics: MetricSet,
        surrogate: Option<SurrogateController>,
        stats: FitnessStats,
    ) -> DseProblem {
        let vars = space.index_vars();
        let objectives = metrics.objectives();
        DseProblem {
            evaluator,
            space,
            vars,
            objectives,
            surrogate,
            penalty: penalty_vector(&metrics),
            metrics,
            schedule: Schedule::Serial,
            stats,
        }
    }

    /// The surrogate controller, if enabled.
    pub fn surrogate(&self) -> Option<&SurrogateController> {
        self.surrogate.as_ref()
    }

    /// Decodes an index genome (helper for reporting).
    pub fn decode(&self, genome: &[i64]) -> DovadoResult<DesignPoint> {
        self.space.decode(genome)
    }

    /// The metric set.
    pub fn metrics(&self) -> &MetricSet {
        &self.metrics
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// Canonical conversion from a measured [`Evaluation`] to the
    /// objective vector NSGA-II sees. Every path that answers with a
    /// genuine measurement — single genomes, tool-only batches, the
    /// surrogate pipeline, pretraining — converts through this one
    /// helper, so a measurement maps to the same vector no matter which
    /// path ran the tool.
    fn objectives_of(&self, eval: &Evaluation) -> Vec<f64> {
        self.metrics.extract(eval)
    }

    /// Canonical penalty fill: a failed slot (`None`) becomes the penalty
    /// vector, a measurement passes through unchanged. All paths penalize
    /// through here so undecodable genomes, infeasible designs and
    /// exhausted retries are indistinguishable to the optimizer.
    fn penalized(&self, values: Option<Vec<f64>>) -> Vec<f64> {
        values.unwrap_or_else(|| self.penalty.clone())
    }

    /// Mirrors the evaluator's retry counter into the stats. Called at the
    /// end of every `evaluate`/`evaluate_batch` so serial and parallel
    /// paths report identically regardless of which code path ran the
    /// tool. The trace summary is a fold over the spine — which resume
    /// splices journaled totals into — so this single mirror is
    /// continuous across restarts too.
    fn sync_retries(&mut self) {
        self.stats.retries = self.evaluator.trace_summary().retries;
    }

    /// Drains the surrogate controller's model-management log and
    /// forwards it onto the spine (serially, so the stream is identical
    /// for serial and parallel batches).
    fn forward_control_events(&self, controller: &mut SurrogateController) {
        for event in controller.take_events() {
            let obs = match event {
                ControlEvent::Reselected { bandwidth } => ObsEvent::Reselected { bandwidth },
                ControlEvent::GammaUpdated { gamma } => ObsEvent::GammaUpdated { gamma },
            };
            self.evaluator.spine().emit_next(obs);
        }
    }

    /// Dispatches the tool for the distinct genomes `unique` indexes into
    /// `genomes` (as produced by [`unique_in_batch`]) and returns one entry
    /// per unique genome in first-occurrence order: `Some(metrics)` for a
    /// genuine measurement, `None` for a failed evaluation (the caller
    /// penalizes; penalty vectors must never look like measurements).
    ///
    /// Undecodable genomes are permanent failures and are not dispatched.
    /// Tool runs go through [`Evaluator::evaluate_many_scheduled`]
    /// (under `self.schedule`); all stats are tallied serially afterwards, in
    /// first-occurrence order, so thread scheduling cannot reorder them.
    fn dispatch_unique(&mut self, genomes: &[Vec<i64>], unique: &[usize]) -> Vec<Option<Vec<f64>>> {
        let decoded: Vec<DovadoResult<DesignPoint>> = unique
            .iter()
            .map(|&i| self.space.decode(&genomes[i]))
            .collect();
        let points: Vec<DesignPoint> = decoded
            .iter()
            .filter_map(|r| r.as_ref().ok().cloned())
            .collect();
        let mut results = self
            .evaluator
            .evaluate_many_scheduled(&points, self.schedule)
            .into_iter();
        decoded
            .into_iter()
            .map(|dec| match dec {
                Err(_) => {
                    self.stats.count_failure(ErrorClass::Permanent);
                    None
                }
                Ok(_) => match results.next().expect("one result per decoded point") {
                    Ok(eval) => {
                        self.stats.tool_runs += 1;
                        Some(self.objectives_of(&eval))
                    }
                    Err(e) => {
                        self.stats.count_failure(e.class());
                        None
                    }
                },
            })
            .collect()
    }

    /// Tool-only batch: dedup identical genomes, dispatch each distinct
    /// genome exactly once, fan results back out. Duplicate dispatches of
    /// the same point would race on the simulator's per-point checkpoint
    /// cache and double-count `tool_runs`; after dedup a genome costs one
    /// run no matter how often the optimizer repeats it in a generation.
    fn tool_batch(&mut self, genomes: &[Vec<i64>]) -> Vec<Vec<f64>> {
        let (unique, back) = unique_in_batch(genomes);
        let unique_results = self.dispatch_unique(genomes, &unique);
        back.iter()
            .map(|&k| self.penalized(unique_results[k].clone()))
            .collect()
    }

    /// Surrogate-mode batch: the staged three-phase pipeline.
    ///
    /// 1. **Decide** — every genome is classified against an immutable
    ///    snapshot of the dataset as it stood when the generation started
    ///    (read-only, parallel unless `self.schedule` is serial). Because the snapshot
    ///    is fixed and classification is pure, parallel and serial runs
    ///    produce bitwise-identical decisions.
    /// 2. **Evaluate** — the tool answers the non-estimated slots (exact
    ///    hits from its cache, novel points as fresh runs), deduplicated so
    ///    each distinct genome is dispatched once, in parallel via
    ///    [`Evaluator::evaluate_many`].
    /// 3. **Record** — a serial fold in first-occurrence order feeds
    ///    genuine measurements of novel points back into the dataset and
    ///    tallies stats, so dataset contents and counters are independent
    ///    of thread scheduling.
    fn surrogate_batch(&mut self, genomes: &[Vec<i64>]) -> Vec<Vec<f64>> {
        let decisions = self
            .surrogate
            .as_mut()
            .expect("surrogate enabled")
            .decide_batch(genomes, self.schedule != Schedule::Serial);

        // The threshold decisions go on the spine, serially in slot order
        // (the decide phase is deterministic, so this stream is identical
        // for serial and parallel batches).
        for (genome, decision) in genomes.iter().zip(&decisions) {
            let point = match self.space.decode(genome) {
                Ok(p) => p.as_assignments(),
                Err(_) => "<invalid>".to_string(),
            };
            let choice = match decision {
                Decision::Cached(_) => "cached",
                Decision::Estimate(_) => "estimated",
                Decision::Evaluate => "evaluated",
            };
            self.evaluator
                .spine()
                .emit_next(ObsEvent::SurrogateDecision { point, choice });
        }

        // Slots the tool must answer. Identical genomes get identical
        // decisions (pure classification against one snapshot), so each
        // dedup group has a single decision.
        let tool_slots: Vec<usize> = decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| !matches!(d, Decision::Estimate(_)))
            .map(|(i, _)| i)
            .collect();
        let tool_genomes: Vec<Vec<i64>> = tool_slots.iter().map(|&i| genomes[i].clone()).collect();
        let (unique, back) = unique_in_batch(&tool_genomes);
        let unique_results = self.dispatch_unique(&tool_genomes, &unique);

        // Record phase: novel points with genuine measurements enter the
        // dataset once each, in first-occurrence order.
        for (k, &u) in unique.iter().enumerate() {
            let slot = tool_slots[u];
            if matches!(decisions[slot], Decision::Evaluate) {
                if let Some(values) = &unique_results[k] {
                    self.surrogate
                        .as_mut()
                        .expect("surrogate enabled")
                        .record(genomes[slot].clone(), values.clone());
                }
            }
        }
        // Retrains and Γ moves from the record fold (and any bandwidth
        // refresh in the decide phase) follow the batch on the spine.
        let mut controller = self.surrogate.take().expect("surrogate enabled");
        self.forward_control_events(&mut controller);
        self.surrogate = Some(controller);

        // Assemble outputs in slot order, counting decisions per input
        // slot (duplicates each count — they each consumed a decision).
        let mut t = 0;
        decisions
            .iter()
            .map(|d| match d {
                Decision::Estimate(v) => {
                    self.stats.estimates += 1;
                    v.clone()
                }
                Decision::Cached(_) | Decision::Evaluate => {
                    if matches!(d, Decision::Cached(_)) {
                        self.stats.cached_runs += 1;
                    }
                    let k = back[t];
                    t += 1;
                    self.penalized(unique_results[k].clone())
                }
            })
            .collect()
    }
}

impl Problem for DseProblem {
    fn variables(&self) -> &[IntVar] {
        &self.vars
    }

    fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// A single genome is a one-element batch: the same staged pipeline
    /// (decide → evaluate → record) answers it, so there is exactly one
    /// evaluation path regardless of how the optimizer asks.
    fn evaluate(&mut self, genome: &[i64]) -> Vec<f64> {
        let mut out = self.evaluate_batch(&[genome.to_vec()]);
        out.pop().expect("one output per genome")
    }

    fn evaluate_batch(&mut self, genomes: &[Vec<i64>]) -> Vec<Vec<f64>> {
        let out = if self.surrogate.is_some() {
            self.surrogate_batch(genomes)
        } else {
            self.tool_batch(genomes)
        };
        self.sync_retries();
        out
    }

    fn external_cost(&self) -> f64 {
        self.evaluator.total_tool_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::SurrogateConfig;
    use crate::flow::{EvalConfig, HdlSource};
    use crate::metrics::Metric;
    use crate::space::Domain;
    use dovado_fpga::ResourceKind;
    use dovado_hdl::Language;
    use dovado_surrogate::ThresholdPolicy;

    const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32
)(input logic clk_i, input logic [DATA_WIDTH-1:0] data_i);
endmodule"#;

    fn evaluator() -> Evaluator {
        Evaluator::new(
            vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
            "fifo_v3",
            EvalConfig::default(),
        )
        .unwrap()
    }

    fn space() -> ParameterSpace {
        ParameterSpace::new().with(
            "DEPTH",
            Domain::Range {
                lo: 2,
                hi: 1000,
                step: 2,
            },
        )
    }

    fn metrics() -> MetricSet {
        MetricSet::new(vec![
            Metric::Utilization(ResourceKind::Register),
            Metric::Utilization(ResourceKind::Lut),
            Metric::Fmax,
        ])
    }

    #[test]
    fn tool_only_problem_evaluates() {
        let mut p = DseProblem::new(evaluator(), space(), metrics(), None).unwrap();
        let v = p.evaluate(&[31]); // DEPTH = 64
        assert_eq!(v.len(), 3);
        assert!(v[0] > 1000.0); // registers
        assert!(v[2] > 50.0); // fmax
        assert_eq!(p.stats.tool_runs, 1);
        assert!(p.external_cost() > 0.0);
    }

    #[test]
    fn surrogate_pretrain_calls_tool() {
        let cfg = SurrogateConfig {
            policy: ThresholdPolicy::paper_default(),
            pretrain_samples: 12,
            ..Default::default()
        };
        let p = DseProblem::new(evaluator(), space(), metrics(), Some(&cfg)).unwrap();
        assert_eq!(p.stats.tool_runs, 12);
        assert_eq!(p.surrogate().unwrap().dataset().len(), 12);
    }

    #[test]
    fn surrogate_estimates_near_known_points() {
        let cfg = SurrogateConfig {
            policy: ThresholdPolicy::paper_default(),
            pretrain_samples: 40,
            ..Default::default()
        };
        let mut p = DseProblem::new(evaluator(), space(), metrics(), Some(&cfg)).unwrap();
        let before = p.stats;
        // Evaluate a sweep; with 40 samples over 500 indices, many queries
        // fall within Γ of the dataset.
        for idx in (0..500).step_by(25) {
            let _ = p.evaluate(&[idx]);
        }
        let d = p.stats;
        assert!(d.estimates > before.estimates, "no estimates served: {d:?}");
        // And estimates must be in a plausible metric range.
    }

    #[test]
    fn surrogate_learns_new_points() {
        let cfg = SurrogateConfig {
            policy: ThresholdPolicy::Fixed(0.0001),
            pretrain_samples: 5,
            ..Default::default()
        };
        let mut p = DseProblem::new(evaluator(), space(), metrics(), Some(&cfg)).unwrap();
        let n0 = p.surrogate().unwrap().dataset().len();
        let _ = p.evaluate(&[123]);
        assert_eq!(p.surrogate().unwrap().dataset().len(), n0 + 1);
        // Re-query: exact hit → cached tool call.
        let _ = p.evaluate(&[123]);
        assert_eq!(p.stats.cached_runs, 1);
    }

    #[test]
    fn estimate_accuracy_is_reasonable() {
        let cfg = SurrogateConfig {
            policy: ThresholdPolicy::paper_default(),
            pretrain_samples: 60,
            ..Default::default()
        };
        let mut p = DseProblem::new(evaluator(), space(), metrics(), Some(&cfg)).unwrap();
        // Find an estimated point away from the space boundary (where
        // kernel smoothing is weakest) and compare against a fresh run.
        for idx in 100..400 {
            if matches!(p.surrogate().unwrap().peek(&[idx]), Decision::Estimate(_)) {
                let est = p.evaluate(&[idx]);
                let truth = {
                    let mut q = DseProblem::new(evaluator(), space(), metrics(), None).unwrap();
                    q.evaluate(&[idx])
                };
                // Registers are linear in DEPTH — the estimate should be
                // within 20 % on a 60-sample dataset.
                let rel = (est[0] - truth[0]).abs() / truth[0];
                assert!(rel < 0.2, "estimate {est:?} vs truth {truth:?}");
                return;
            }
        }
        panic!("no estimated point found");
    }

    #[test]
    fn invalid_genome_penalized() {
        let mut p = DseProblem::new(evaluator(), space(), metrics(), None).unwrap();
        let v = p.evaluate(&[100_000]);
        assert_eq!(v[2], 0.0); // fmax penalty
        assert_eq!(p.stats.failures, 1);
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let mut seq = DseProblem::new(evaluator(), space(), metrics(), None).unwrap();
        let mut par = DseProblem::new(evaluator(), space(), metrics(), None).unwrap();
        par.schedule = Schedule::Parallel;
        let genomes: Vec<Vec<i64>> = (0..6).map(|i| vec![i * 50]).collect();
        let a = seq.evaluate_batch(&genomes);
        let b = par.evaluate_batch(&genomes);
        assert_eq!(a, b);
        assert_eq!(par.stats.tool_runs, 6);
        assert_eq!(seq.stats, par.stats);
    }

    #[test]
    fn batch_dedups_duplicate_genomes() {
        let mut p = DseProblem::new(evaluator(), space(), metrics(), None).unwrap();
        p.schedule = Schedule::Parallel;
        let genomes = vec![vec![30], vec![60], vec![30], vec![30], vec![60]];
        let out = p.evaluate_batch(&genomes);
        assert_eq!(out.len(), 5);
        assert_eq!(out[0], out[2]);
        assert_eq!(out[0], out[3]);
        assert_eq!(out[1], out[4]);
        assert_ne!(out[0], out[1]);
        // Each distinct genome is dispatched exactly once.
        assert_eq!(p.stats.tool_runs, 2);
    }

    #[test]
    fn batch_penalizes_invalid_genomes_per_slot() {
        let mut p = DseProblem::new(evaluator(), space(), metrics(), None).unwrap();
        let genomes = vec![vec![30], vec![100_000], vec![100_000]];
        let out = p.evaluate_batch(&genomes);
        assert_eq!(out[1][2], 0.0, "fmax penalty");
        assert_eq!(out[1], out[2]);
        // The invalid genome fails once (deduped), not once per slot.
        assert_eq!(p.stats.failures, 1);
        assert_eq!(p.stats.tool_runs, 1);
    }

    fn surrogate_problem(parallel: bool) -> DseProblem {
        let cfg = SurrogateConfig {
            policy: ThresholdPolicy::paper_default(),
            pretrain_samples: 30,
            ..Default::default()
        };
        let mut p = DseProblem::new(evaluator(), space(), metrics(), Some(&cfg)).unwrap();
        p.schedule = Schedule::from_parallel_flag(parallel);
        p
    }

    #[test]
    fn surrogate_batch_parallel_is_bitwise_serial() {
        let mut seq = surrogate_problem(false);
        let mut par = surrogate_problem(true);
        // Two generations so the second decides against a dataset grown by
        // the first (exercises the record phase and the Γ/bandwidth fold).
        for gen in 0..2 {
            let genomes: Vec<Vec<i64>> = (0..16).map(|i| vec![gen * 160 + i * 9 + 1]).collect();
            let a = seq.evaluate_batch(&genomes);
            let b = par.evaluate_batch(&genomes);
            for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(seq.stats, par.stats);
        let (ds, dp) = (
            seq.surrogate().unwrap().dataset(),
            par.surrogate().unwrap().dataset(),
        );
        assert_eq!(ds.len(), dp.len());
        assert_eq!(ds.raw_points(), dp.raw_points());
        assert_eq!(
            seq.surrogate().unwrap().model().bandwidth,
            par.surrogate().unwrap().model().bandwidth
        );
    }

    #[test]
    fn surrogate_batch_serves_all_three_cases() {
        let mut p = surrogate_problem(true);
        // Mix: exact pretrain points are unknown (random), so force the
        // three cases with a learned point, a near miss and a far miss.
        let _ = p.evaluate_batch(&[vec![123]]); // likely Evaluate or Estimate
        let before = p.stats;
        let genomes = vec![vec![123], vec![123]];
        let out = p.evaluate_batch(&genomes);
        assert_eq!(out[0], out[1]);
        let d = p.stats;
        // The repeated genome was answered without a fresh full run:
        // either cached (recorded before) or estimated (within Γ).
        assert!(
            d.cached_runs + d.estimates > before.cached_runs + before.estimates,
            "{d:?}"
        );
    }

    #[test]
    fn batch_retries_match_trace_summary() {
        let mut p = DseProblem::new(evaluator(), space(), metrics(), None).unwrap();
        p.schedule = Schedule::Parallel;
        let genomes: Vec<Vec<i64>> = (0..4).map(|i| vec![i * 40 + 2]).collect();
        let _ = p.evaluate_batch(&genomes);
        assert_eq!(p.stats.retries, p.evaluator().trace_summary().retries);
        let _ = p.evaluate(&[30]);
        assert_eq!(p.stats.retries, p.evaluator().trace_summary().retries);
    }
}
