//! The DSE fitness function, with the approximation control model.
//!
//! A naive fitness "implies calling Vivado for each exploration iteration"
//! (§III-C); instead, each design point goes through the three-way control
//! model: exact dataset hit → tool (answers from cache), similar enough →
//! Nadaraya-Watson estimate, otherwise → tool run + dataset update +
//! retrain/revalidate.

use crate::dse::SurrogateConfig;
use crate::error::{DovadoResult, ErrorClass};
use crate::flow::Evaluator;
use crate::metrics::MetricSet;
use crate::point::DesignPoint;
use crate::space::ParameterSpace;
use dovado_moo::{IntVar, Objective, Problem};
use dovado_surrogate::{Decision, SurrogateController};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counters describing how the fitness function answered queries.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FitnessStats {
    /// Full tool evaluations (fresh synthesis/implementation).
    pub tool_runs: u64,
    /// Tool calls answered from the tool's own cache (exact dataset hits).
    pub cached_runs: u64,
    /// Estimates served by the surrogate.
    pub estimates: u64,
    /// Evaluations that failed (e.g. the design did not fit) and were
    /// penalized. Always `transient_failures + permanent_failures`.
    pub failures: u64,
    /// Failed evaluations whose final error was transient (retry budget
    /// exhausted on crashes/timeouts). These are *not* truths about the
    /// design and are never recorded into the surrogate dataset.
    pub transient_failures: u64,
    /// Failed evaluations whose error was a property of the design
    /// (infeasible point, overflow). Penalizing these is meaningful.
    pub permanent_failures: u64,
    /// Extra tool attempts spent retrying transient faults (mirror of the
    /// evaluator's [`crate::TraceSummary::retries`]).
    pub retries: u64,
}

impl FitnessStats {
    fn count_failure(&mut self, class: ErrorClass) {
        self.failures += 1;
        match class {
            ErrorClass::Transient => self.transient_failures += 1,
            ErrorClass::Permanent => self.permanent_failures += 1,
        }
    }
}

/// The multi-objective problem Dovado hands to NSGA-II.
pub struct DseProblem {
    evaluator: Evaluator,
    space: ParameterSpace,
    metrics: MetricSet,
    vars: Vec<IntVar>,
    objectives: Vec<Objective>,
    surrogate: Option<SurrogateController>,
    /// Worst-case objective values used to penalize failed evaluations.
    penalty: Vec<f64>,
    /// Whether tool-only batches may run in parallel.
    pub parallel: bool,
    /// Decision counters.
    pub stats: FitnessStats,
}

impl DseProblem {
    /// Builds the problem; optionally pre-trains the surrogate with
    /// `cfg.pretrain_samples` random tool evaluations (the paper's synthetic
    /// dataset of M = 100 "distinct calls to Vivado").
    pub fn new(
        evaluator: Evaluator,
        space: ParameterSpace,
        metrics: MetricSet,
        surrogate_cfg: Option<&SurrogateConfig>,
    ) -> DovadoResult<DseProblem> {
        let vars = space.index_vars();
        let objectives = metrics.objectives();
        // Penalty: a point that fails synthesis is worse than anything
        // real — zero frequency, full-device utilization.
        let penalty: Vec<f64> = metrics
            .metrics()
            .iter()
            .map(|m| match m {
                crate::metrics::Metric::Fmax => 0.0,
                crate::metrics::Metric::Utilization(_) | crate::metrics::Metric::Power => 1e9,
            })
            .collect();

        let mut problem = DseProblem {
            evaluator,
            space,
            metrics,
            vars,
            objectives,
            surrogate: None,
            penalty,
            parallel: false,
            stats: FitnessStats::default(),
        };

        if let Some(cfg) = surrogate_cfg {
            let mut controller = SurrogateController::new(
                problem.space.index_bounds(),
                problem.metrics.len(),
                cfg.policy,
            )
            .with_kernel(cfg.kernel);

            if cfg.pretrain_samples > 0 {
                let mut rng = StdRng::seed_from_u64(cfg.seed);
                let genomes = dovado_moo::ops::sampling::random_population(
                    &problem.vars,
                    cfg.pretrain_samples,
                    &mut rng,
                );
                let mut pairs = Vec::with_capacity(genomes.len());
                for g in genomes {
                    // Only genuine evaluations enter the pretrain dataset;
                    // a failed sample must not teach the model its penalty
                    // vector as if it were a measurement.
                    if let Some(values) = problem.tool_evaluate_checked(&g) {
                        pairs.push((g, values));
                    }
                }
                controller.pretrain(pairs);
            }
            problem.surrogate = Some(controller);
        }
        Ok(problem)
    }

    /// The surrogate controller, if enabled.
    pub fn surrogate(&self) -> Option<&SurrogateController> {
        self.surrogate.as_ref()
    }

    /// Decodes an index genome (helper for reporting).
    pub fn decode(&self, genome: &[i64]) -> DovadoResult<DesignPoint> {
        self.space.decode(genome)
    }

    /// The metric set.
    pub fn metrics(&self) -> &MetricSet {
        &self.metrics
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// Runs the tool for a genome, returning metric values (penalty vector
    /// on failure).
    fn tool_evaluate(&mut self, genome: &[i64]) -> Vec<f64> {
        self.tool_evaluate_checked(genome)
            .unwrap_or_else(|| self.penalty.clone())
    }

    /// Runs the tool for a genome; `None` means the evaluation failed and
    /// the caller must decide how to penalize — the distinction matters
    /// because penalty vectors are *not* measurements and must never be
    /// recorded into the surrogate dataset.
    fn tool_evaluate_checked(&mut self, genome: &[i64]) -> Option<Vec<f64>> {
        let point = match self.space.decode(genome) {
            Ok(p) => p,
            Err(_) => {
                self.stats.count_failure(ErrorClass::Permanent);
                return None;
            }
        };
        let result = self.evaluator.evaluate(&point);
        self.stats.retries = self.evaluator.trace_summary().retries;
        match result {
            Ok(eval) => {
                self.stats.tool_runs += 1;
                Some(self.metrics.extract(&eval))
            }
            Err(e) => {
                self.stats.count_failure(e.class());
                None
            }
        }
    }
}

impl Problem for DseProblem {
    fn variables(&self) -> &[IntVar] {
        &self.vars
    }

    fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    fn evaluate(&mut self, genome: &[i64]) -> Vec<f64> {
        if self.surrogate.is_some() {
            let decision = self.surrogate.as_mut().expect("checked").decide(genome);
            match decision {
                Decision::Cached(_) => {
                    // Paper case 1: the tool is called; its checkpoint cache
                    // answers cheaply and exactly.
                    self.stats.cached_runs += 1;
                    self.tool_evaluate(genome)
                }
                Decision::Estimate(values) => {
                    self.stats.estimates += 1;
                    values
                }
                Decision::Evaluate => {
                    // Record only genuine evaluations. A failed run's
                    // penalty vector is a sentinel for the optimizer, not a
                    // truth about the design — recording it would poison
                    // the Nadaraya-Watson estimates for every neighboring
                    // point.
                    match self.tool_evaluate_checked(genome) {
                        Some(values) => {
                            self.surrogate
                                .as_mut()
                                .expect("checked")
                                .record(genome.to_vec(), values.clone());
                            values
                        }
                        None => self.penalty.clone(),
                    }
                }
            }
        } else {
            self.tool_evaluate(genome)
        }
    }

    fn evaluate_batch(&mut self, genomes: &[Vec<i64>]) -> Vec<Vec<f64>> {
        if self.surrogate.is_none() && self.parallel {
            use rayon::prelude::*;
            let evaluator = self.evaluator.clone();
            let space = self.space.clone();
            let metrics = self.metrics.clone();
            let penalty = self.penalty.clone();
            let results: Vec<(Vec<f64>, Option<ErrorClass>)> = genomes
                .par_iter()
                .map(|g| match space.decode(g) {
                    Ok(point) => match evaluator.evaluate(&point) {
                        Ok(eval) => (metrics.extract(&eval), None),
                        Err(e) => (penalty.clone(), Some(e.class())),
                    },
                    Err(_) => (penalty.clone(), Some(ErrorClass::Permanent)),
                })
                .collect();
            for (_, failure) in &results {
                match failure {
                    None => self.stats.tool_runs += 1,
                    Some(class) => self.stats.count_failure(*class),
                }
            }
            self.stats.retries = self.evaluator.trace_summary().retries;
            results.into_iter().map(|(v, _)| v).collect()
        } else {
            genomes.iter().map(|g| self.evaluate(g)).collect()
        }
    }

    fn external_cost(&self) -> f64 {
        self.evaluator.total_tool_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::SurrogateConfig;
    use crate::flow::{EvalConfig, HdlSource};
    use crate::metrics::Metric;
    use crate::space::Domain;
    use dovado_fpga::ResourceKind;
    use dovado_hdl::Language;
    use dovado_surrogate::ThresholdPolicy;

    const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32
)(input logic clk_i, input logic [DATA_WIDTH-1:0] data_i);
endmodule"#;

    fn evaluator() -> Evaluator {
        Evaluator::new(
            vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
            "fifo_v3",
            EvalConfig::default(),
        )
        .unwrap()
    }

    fn space() -> ParameterSpace {
        ParameterSpace::new().with(
            "DEPTH",
            Domain::Range {
                lo: 2,
                hi: 1000,
                step: 2,
            },
        )
    }

    fn metrics() -> MetricSet {
        MetricSet::new(vec![
            Metric::Utilization(ResourceKind::Register),
            Metric::Utilization(ResourceKind::Lut),
            Metric::Fmax,
        ])
    }

    #[test]
    fn tool_only_problem_evaluates() {
        let mut p = DseProblem::new(evaluator(), space(), metrics(), None).unwrap();
        let v = p.evaluate(&[31]); // DEPTH = 64
        assert_eq!(v.len(), 3);
        assert!(v[0] > 1000.0); // registers
        assert!(v[2] > 50.0); // fmax
        assert_eq!(p.stats.tool_runs, 1);
        assert!(p.external_cost() > 0.0);
    }

    #[test]
    fn surrogate_pretrain_calls_tool() {
        let cfg = SurrogateConfig {
            policy: ThresholdPolicy::paper_default(),
            pretrain_samples: 12,
            ..Default::default()
        };
        let p = DseProblem::new(evaluator(), space(), metrics(), Some(&cfg)).unwrap();
        assert_eq!(p.stats.tool_runs, 12);
        assert_eq!(p.surrogate().unwrap().dataset().len(), 12);
    }

    #[test]
    fn surrogate_estimates_near_known_points() {
        let cfg = SurrogateConfig {
            policy: ThresholdPolicy::paper_default(),
            pretrain_samples: 40,
            ..Default::default()
        };
        let mut p = DseProblem::new(evaluator(), space(), metrics(), Some(&cfg)).unwrap();
        let before = p.stats;
        // Evaluate a sweep; with 40 samples over 500 indices, many queries
        // fall within Γ of the dataset.
        for idx in (0..500).step_by(25) {
            let _ = p.evaluate(&[idx]);
        }
        let d = p.stats;
        assert!(d.estimates > before.estimates, "no estimates served: {d:?}");
        // And estimates must be in a plausible metric range.
    }

    #[test]
    fn surrogate_learns_new_points() {
        let cfg = SurrogateConfig {
            policy: ThresholdPolicy::Fixed(0.0001),
            pretrain_samples: 5,
            ..Default::default()
        };
        let mut p = DseProblem::new(evaluator(), space(), metrics(), Some(&cfg)).unwrap();
        let n0 = p.surrogate().unwrap().dataset().len();
        let _ = p.evaluate(&[123]);
        assert_eq!(p.surrogate().unwrap().dataset().len(), n0 + 1);
        // Re-query: exact hit → cached tool call.
        let _ = p.evaluate(&[123]);
        assert_eq!(p.stats.cached_runs, 1);
    }

    #[test]
    fn estimate_accuracy_is_reasonable() {
        let cfg = SurrogateConfig {
            policy: ThresholdPolicy::paper_default(),
            pretrain_samples: 60,
            ..Default::default()
        };
        let mut p = DseProblem::new(evaluator(), space(), metrics(), Some(&cfg)).unwrap();
        // Find an estimated point away from the space boundary (where
        // kernel smoothing is weakest) and compare against a fresh run.
        for idx in 100..400 {
            if matches!(p.surrogate().unwrap().peek(&[idx]), Decision::Estimate(_)) {
                let est = p.evaluate(&[idx]);
                let truth = {
                    let mut q = DseProblem::new(evaluator(), space(), metrics(), None).unwrap();
                    q.evaluate(&[idx])
                };
                // Registers are linear in DEPTH — the estimate should be
                // within 20 % on a 60-sample dataset.
                let rel = (est[0] - truth[0]).abs() / truth[0];
                assert!(rel < 0.2, "estimate {est:?} vs truth {truth:?}");
                return;
            }
        }
        panic!("no estimated point found");
    }

    #[test]
    fn invalid_genome_penalized() {
        let mut p = DseProblem::new(evaluator(), space(), metrics(), None).unwrap();
        let v = p.evaluate(&[100_000]);
        assert_eq!(v[2], 0.0); // fmax penalty
        assert_eq!(p.stats.failures, 1);
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let mut seq = DseProblem::new(evaluator(), space(), metrics(), None).unwrap();
        let mut par = DseProblem::new(evaluator(), space(), metrics(), None).unwrap();
        par.parallel = true;
        let genomes: Vec<Vec<i64>> = (0..6).map(|i| vec![i * 50]).collect();
        let a = seq.evaluate_batch(&genomes);
        let b = par.evaluate_batch(&genomes);
        assert_eq!(a, b);
        assert_eq!(par.stats.tool_runs, 6);
    }
}
