//! End-to-end flow benchmarks: the cost (in host time — the *simulated*
//! tool time is reported by the experiment binaries) of one design-point
//! evaluation, of a cached rerun, and of one short exploration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dovado::casestudies::cv32e40p;
use dovado::{DesignPoint, DseConfig};
use dovado_moo::{Nsga2Config, Termination};

fn bench_flow(c: &mut Criterion) {
    c.bench_function("single_point_evaluation_cold", |b| {
        let cs = cv32e40p::case_study();
        let mut depth = 2i64;
        b.iter(|| {
            // Fresh tool each iteration, new depth to defeat caching.
            let tool = cs.dovado().unwrap();
            depth = if depth >= 1000 { 2 } else { depth + 2 };
            let e = tool
                .evaluate_point(&DesignPoint::from_pairs(&[("DEPTH", depth)]))
                .unwrap();
            black_box(e.fmax_mhz)
        })
    });

    c.bench_function("single_point_evaluation_cached", |b| {
        let cs = cv32e40p::case_study();
        let tool = cs.dovado().unwrap();
        let p = DesignPoint::from_pairs(&[("DEPTH", 64)]);
        tool.evaluate_point(&p).unwrap(); // warm the checkpoint store
        b.iter(|| black_box(tool.evaluate_point(&p).unwrap().fmax_mhz))
    });

    c.bench_function("dse_2generations_pop8", |b| {
        let cs = cv32e40p::case_study();
        b.iter(|| {
            let tool = cs.dovado().unwrap();
            let r = tool
                .explore(&DseConfig {
                    algorithm: Nsga2Config {
                        pop_size: 8,
                        seed: 3,
                        ..Default::default()
                    },
                    termination: Termination::Generations(2),
                    metrics: cs.metrics.clone(),
                    surrogate: None,
                    parallel: false,
                    explorer: Default::default(),
                    jobs: None,
                    workers: None,
                })
                .unwrap();
            black_box(r.evaluations)
        })
    });
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
