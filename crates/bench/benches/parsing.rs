//! HDL front-end throughput: lexing + declaration parsing of the three
//! case-study sources (one per language).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dovado::casestudies::{corundum, cv32e40p, neorv32};
use dovado_hdl::{parse_source, Language};

fn bench_parsing(c: &mut Criterion) {
    let cases = [
        (
            "systemverilog_fifo",
            Language::SystemVerilog,
            cv32e40p::FIFO_SV,
        ),
        (
            "verilog_queue_manager",
            Language::Verilog,
            corundum::CPL_QUEUE_MANAGER_V,
        ),
        ("vhdl_neorv32_top", Language::Vhdl, neorv32::NEORV32_TOP_VHD),
    ];
    let mut group = c.benchmark_group("hdl_parsing");
    for (name, lang, src) in cases {
        group.throughput(Throughput::Bytes(src.len() as u64));
        group.bench_function(name, |b| {
            b.iter(|| {
                let (file, diags) = parse_source(lang, black_box(src)).unwrap();
                assert!(!diags.has_errors());
                black_box(file.modules.len())
            })
        });
    }
    group.finish();

    // A large synthetic file: 100 modules.
    let big: String = (0..100)
        .map(|i| {
            format!(
                "module m{i} #(parameter W = {i} + 1)(input wire clk, \
                 input wire [W-1:0] d, output reg [W-1:0] q);\n\
                 always @(posedge clk) q <= d;\nendmodule\n"
            )
        })
        .collect();
    let mut group = c.benchmark_group("hdl_parsing_large");
    group.throughput(Throughput::Bytes(big.len() as u64));
    group.bench_function("verilog_100_modules", |b| {
        b.iter(|| {
            let (file, _) = parse_source(Language::Verilog, black_box(&big)).unwrap();
            assert_eq!(file.modules.len(), 100);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parsing);
criterion_main!(benches);
