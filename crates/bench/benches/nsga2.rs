//! Optimizer micro-benchmarks: NSGA-II generations on an analytic problem,
//! non-dominated sorting at scale, and hypervolume computation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dovado_moo::{
    fast_non_dominated_sort, hypervolume, nsga2, Individual, Nsga2Config, Schaffer, Termination,
};

fn bench_nsga2(c: &mut Criterion) {
    c.bench_function("nsga2_schaffer_20gen_pop40", |b| {
        b.iter(|| {
            let mut p = Schaffer::new();
            let cfg = Nsga2Config {
                pop_size: 40,
                seed: 1,
                ..Default::default()
            };
            let r = nsga2(&mut p, &cfg, &Termination::Generations(20));
            black_box(r.pareto.len())
        })
    });

    let mut group = c.benchmark_group("fast_non_dominated_sort");
    for n in [100usize, 400, 1600] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let pop: Vec<Individual> = (0..n)
                .map(|i| {
                    let x = (i % 97) as f64;
                    let y = ((i * 31) % 89) as f64;
                    let o = vec![x, y, (x - y).abs()];
                    Individual::new(vec![i as i64], o.clone(), o)
                })
                .collect();
            b.iter(|| {
                let mut p = pop.clone();
                fast_non_dominated_sort(black_box(&mut p)).len()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("hypervolume");
    for n in [8usize, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            // A 3-D trade-off surface.
            let pts: Vec<Vec<f64>> = (0..n)
                .map(|i| {
                    let t = i as f64 / n as f64;
                    vec![t, 1.0 - t, (t - 0.5).abs()]
                })
                .collect();
            let r = [1.5, 1.5, 1.5];
            b.iter(|| hypervolume(black_box(&pts), &r))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nsga2);
criterion_main!(benches);
