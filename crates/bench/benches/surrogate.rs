//! Surrogate micro-benchmarks: Nadaraya-Watson prediction vs dataset size,
//! LOO-CV bandwidth selection, and control-model decisions — the costs
//! the paper calls "cheap computational cost" of the NWM.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dovado_surrogate::{
    select_bandwidth, Bounds, Dataset, Kernel, NadarayaWatson, SurrogateController, ThresholdPolicy,
};

fn dataset(n: usize) -> Dataset {
    let mut d = Dataset::new(Bounds::new(vec![(0, 10_000), (0, 64)]), 3);
    for i in 0..n {
        let x = (i * 9973 % 10_000) as i64;
        let y = (i * 31 % 64) as i64;
        let xf = x as f64 / 10_000.0;
        d.insert(vec![x, y], vec![xf * 100.0, (1.0 - xf) * 50.0, y as f64]);
    }
    d
}

fn bench_surrogate(c: &mut Criterion) {
    let nw = NadarayaWatson {
        kernel: Kernel::Gaussian,
        bandwidth: 0.08,
    };

    let mut group = c.benchmark_group("nw_predict");
    for n in [50usize, 200, 1000] {
        let d = dataset(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| nw.predict(black_box(&d), &[4321, 17]).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("loocv_select_bandwidth");
    for n in [25usize, 100] {
        let d = dataset(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| select_bandwidth(black_box(&d), Kernel::Gaussian, &[]))
        });
    }
    group.finish();

    c.bench_function("controller_decide_100pt_dataset", |b| {
        let mut ctl = SurrogateController::new(
            Bounds::new(vec![(0, 10_000), (0, 64)]),
            3,
            ThresholdPolicy::paper_default(),
        );
        let d = dataset(100);
        ctl.pretrain(
            d.raw_points()
                .iter()
                .cloned()
                .zip(d.outputs().iter().cloned())
                .collect(),
        );
        b.iter(|| black_box(ctl.peek(&[5000, 30])))
    });
}

criterion_group!(benches, bench_surrogate);
criterion_main!(benches);
