//! TCL engine micro-benchmarks: script parsing, substitution-heavy
//! evaluation, and `expr`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dovado_eda::tcl::expr::eval_expr;
use dovado_eda::tcl::interp::{Interp, NoContext};
use dovado_eda::tcl::parse_script;

fn bench_tcl(c: &mut Criterion) {
    let script = r#"
set period 1.0
set wns -4.0
set fmax [expr {1000.0 / ($period - $wns)}]
if {$fmax > 100} { set class fast } else { set class slow }
foreach p {8 16 32 64 128} { set last $p }
puts "done $class $last"
"#;

    c.bench_function("tcl_parse_script", |b| {
        b.iter(|| parse_script(black_box(script)).unwrap().len())
    });

    c.bench_function("tcl_eval_script", |b| {
        b.iter(|| {
            let mut i = Interp::new();
            i.eval(&mut NoContext, black_box(script)).unwrap();
            i.output.len()
        })
    });

    c.bench_function("tcl_expr_eval", |b| {
        b.iter(|| eval_expr(black_box("1000.0 / (1.0 - (-4.0)) + max(3, 2 ** 8) % 7")).unwrap())
    });
}

criterion_group!(benches, bench_tcl);
criterion_main!(benches);
