//! Figure 7 + Table II (bottom): TiReX exploration on the Kintex-7
//! XC7K70T (28 nm). The paper reports 8 non-dominated configurations with
//! frequencies around 190 MHz — the technology comparison against Fig. 6.

use dovado_bench::{banner, run_tirex};

fn main() {
    banner(
        "Figure 7 / Table II (bottom) — TiReX DSE on XC7K70T (28 nm)",
        "objectives: LUT, FF, BRAM, Fmax",
    );
    let report = run_tirex("xc7k70tfbv676-1", "Figure 7", "fig7_tirex_xc7k.csv");

    println!();
    println!("shape checks against the paper:");
    let fmax: Vec<f64> = report.pareto.iter().map(|e| e.values[3]).collect();
    let best = fmax.iter().cloned().fold(0.0, f64::max);
    println!(
        "  best frequency in the ~190 MHz region: {} ({best:.1} MHz)",
        if (140.0..300.0).contains(&best) {
            "✓"
        } else {
            "✗"
        }
    );
    println!(
        "  front size: {} (paper reports 8 configurations on the XC7K70T)",
        report.pareto.len()
    );
    println!(
        "  28 nm device is ~2.5-3x slower than the 16 nm ZU3EG at similar \
         configurations (run fig6_tirex_zu3eg to compare)"
    );
}
