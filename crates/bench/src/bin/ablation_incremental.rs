//! Ablation: Vivado's incremental design flow (§III-B2).
//!
//! "Thanks to these checkpoints, Dovado avoids repeating the exploration of
//! design parts not affected by parametrization." This ablation evaluates
//! the same sequence of neighbouring design points with and without the
//! incremental flow and reports the simulated tool time of each.

use dovado::casestudies::corundum;
use dovado::csv::CsvWriter;
use dovado::{DesignPoint, EvalConfig};
use dovado_bench::{banner, write_csv, write_trace};

fn main() {
    banner(
        "Ablation — incremental synthesis/implementation flow",
        "same 15-point sweep, checkpoints on vs off; simulated tool seconds",
    );

    let cs = corundum::case_study();
    let points: Vec<DesignPoint> = (0..15)
        .map(|i| {
            DesignPoint::from_pairs(&[
                ("OP_TABLE_SIZE", 8 + i),
                ("QUEUE_INDEX_WIDTH", 4),
                ("PIPELINE", 2 + (i % 3)),
            ])
        })
        .collect();

    let mut csv = CsvWriter::new();
    csv.header(&["mode", "total_tool_s", "per_point_s", "qor_identical"]);

    let mut results = Vec::new();
    for (name, incremental) in [("incremental", true), ("from-scratch", false)] {
        let tool = cs
            .dovado_with(EvalConfig {
                part: cs.part.to_string(),
                incremental,
                ..Default::default()
            })
            .expect("case study builds");
        let evals: Vec<_> = points
            .iter()
            .map(|p| tool.evaluate_point(p).expect("evaluates"))
            .collect();
        let total = tool.evaluator().total_tool_time();
        println!(
            "{name:<14} total {total:>9.0} simulated s   ({:.0} s/point)",
            total / points.len() as f64
        );
        let trace = write_trace(
            &format!("ablation_incremental_{name}.jsonl"),
            &tool.evaluator().snapshot(),
        );
        println!("wrote {}", trace.display());
        results.push((name, total, evals));
    }

    let (_, t_incr, evals_incr) = &results[0];
    let (_, t_full, evals_full) = &results[1];
    let identical = evals_incr
        .iter()
        .zip(evals_full.iter())
        .all(|(a, b)| a.utilization == b.utilization && a.wns_ns == b.wns_ns);
    for (name, total, _) in &results {
        csv.row(&[
            name.to_string(),
            format!("{total:.0}"),
            format!("{:.0}", total / points.len() as f64),
            identical.to_string(),
        ]);
    }
    let path = write_csv("ablation_incremental.csv", csv);
    println!("wrote {}", path.display());

    println!();
    println!("speedup: {:.2}x", t_full / t_incr);
    println!(
        "QoR identical across modes: {} (the incremental flow only buys time)",
        if identical { "✓" } else { "✗" }
    );
}
