//! Surrogate-mode batch-evaluation performance: the staged parallel
//! pipeline (decide → dedup + tool → record, amortized LOO-CV) against the
//! legacy genome-at-a-time serial loop with retrain-after-every-insert.
//!
//! Workload: 4 objectives (LUT, FF, Fmax, power), population 64, synthetic
//! dataset M = 500 — the ISSUE's reference configuration. Also measures the
//! per-record cost of eager vs amortized bandwidth reselection across
//! M ∈ {100 … 10⁵} (`--full` extends to 10⁶; `--smoke` is the CI subset),
//! showing the incremental/truncated hot path bending the cost curve from
//! ~M² toward ~M·log M. Writes `results/BENCH_surrogate.json`.

use dovado::{
    Domain, DseProblem, EvalConfig, Evaluator, HdlSource, Metric, MetricSet, ParameterSpace,
    SurrogateConfig,
};
use dovado_fpga::ResourceKind;
use dovado_hdl::Language;
use dovado_moo::Problem;
use dovado_surrogate::{Bounds, SurrogateController, ThresholdPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

const FIFO_SV: &str = r#"
module fifo_v3 #(
    parameter DEPTH = 8,
    parameter DATA_WIDTH = 32
)(input logic clk_i, input logic [DATA_WIDTH-1:0] data_i);
endmodule"#;

const POP: usize = 64;
const PRETRAIN_M: usize = 500;
const GENERATIONS: usize = 5;
const DEPTH_N: i64 = 4096;

fn problem(parallel: bool, reselect_every: usize) -> DseProblem {
    let evaluator = Evaluator::new(
        vec![HdlSource::new("fifo.sv", Language::SystemVerilog, FIFO_SV)],
        "fifo_v3",
        EvalConfig::default(),
    )
    .expect("evaluator builds");
    let space = ParameterSpace::new()
        .with(
            "DEPTH",
            Domain::Range {
                lo: 2,
                hi: DEPTH_N * 2,
                step: 2,
            },
        )
        .with("DATA_WIDTH", Domain::Explicit(vec![8, 16, 32, 64]));
    let metrics = MetricSet::new(vec![
        Metric::Utilization(ResourceKind::Lut),
        Metric::Utilization(ResourceKind::Register),
        Metric::Fmax,
        Metric::Power,
    ]);
    let cfg = SurrogateConfig {
        policy: ThresholdPolicy::paper_default(),
        pretrain_samples: PRETRAIN_M,
        seed: 0xD0BA,
        reselect_every,
        ..Default::default()
    };
    let mut p = DseProblem::new(evaluator, space, metrics, Some(&cfg)).expect("problem builds");
    p.schedule = dovado::Schedule::from_parallel_flag(parallel);
    p
}

fn generation_stream(seed: u64) -> Vec<Vec<Vec<i64>>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..GENERATIONS)
        .map(|_| {
            (0..POP)
                .map(|_| vec![rng.gen_range(0..DEPTH_N), rng.gen_range(0..4)])
                .collect()
        })
        .collect()
}

/// Legacy evaluation: genome at a time, eager reselection (K = 1).
fn run_legacy(gens: &[Vec<Vec<i64>>]) -> f64 {
    let mut p = problem(false, 1);
    let t0 = Instant::now();
    for genomes in gens {
        for g in genomes {
            let _ = p.evaluate(g);
        }
    }
    t0.elapsed().as_secs_f64() * 1e3
}

/// Staged pipeline: batched decide/evaluate/record, amortized reselection.
fn run_pipeline(gens: &[Vec<Vec<i64>>], parallel: bool, reselect_every: usize) -> f64 {
    let mut p = problem(parallel, reselect_every);
    let t0 = Instant::now();
    for genomes in gens {
        let _ = p.evaluate_batch(genomes);
    }
    t0.elapsed().as_secs_f64() * 1e3
}

/// Mean per-record cost (µs) into a dataset of `m` rows.
fn record_cost_us(m: usize, retrain_every: usize) -> f64 {
    let bounds = Bounds::new(vec![(0, 1_000_000)]);
    let mut c = SurrogateController::new(bounds, 4, ThresholdPolicy::paper_default());
    c.retrain_every = retrain_every;
    let mut rng = StdRng::seed_from_u64(7 + m as u64);
    let outputs = |x: i64| {
        let xf = x as f64 / 1e6;
        vec![xf * 900.0, xf * 700.0, 400.0 - 300.0 * xf, 1.0 + xf]
    };
    let pairs: Vec<(Vec<i64>, Vec<f64>)> = (0..m)
        .map(|_| {
            let x = rng.gen_range(0i64..=1_000_000);
            (vec![x], outputs(x))
        })
        .collect();
    c.pretrain(pairs);
    let fresh: Vec<i64> = (0..32).map(|_| rng.gen_range(0i64..=1_000_000)).collect();
    let t0 = Instant::now();
    for x in fresh.iter() {
        c.record(vec![*x], outputs(*x));
    }
    t0.elapsed().as_secs_f64() * 1e6 / fresh.len() as f64
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let mode = match std::env::args().nth(1).as_deref() {
        Some("--smoke") => "smoke",
        Some("--full") => "full",
        Some(other) => {
            eprintln!("usage: perf_surrogate [--smoke | --full] (got `{other}`)");
            std::process::exit(2);
        }
        None => "default",
    };
    // The record-cost sweep: smoke is the CI subset (seconds, still
    // spanning the dense→truncated switchover), full extends to 10⁶ rows.
    let sweep: &[usize] = match mode {
        "smoke" => &[100, 1000, 10_000],
        "full" => &[100, 500, 1000, 10_000, 100_000, 1_000_000],
        _ => &[100, 500, 1000, 10_000, 100_000],
    };
    dovado_bench::banner(
        "perf_surrogate — staged batch pipeline vs legacy serial loop",
        "4 objectives, pop 64, M = 500; record-cost sweep up to the mode's max M",
    );

    let gens = generation_stream(0xBEEF);
    // Warm-up so first-touch costs (allocator, checkpoint store) don't
    // land on whichever variant runs first.
    let _ = run_pipeline(&gens[..1], true, 25);

    let legacy_ms = run_legacy(&gens);
    let staged_serial_ms = run_pipeline(&gens, false, 25);
    let staged_parallel_ms = run_pipeline(&gens, true, 25);
    let speedup = legacy_ms / staged_parallel_ms;
    let per_gen = staged_parallel_ms / GENERATIONS as f64;

    println!("generation evaluation ({GENERATIONS} generations of {POP}):");
    println!("  legacy serial (K=1)       : {legacy_ms:9.1} ms");
    println!("  staged serial (K=25)      : {staged_serial_ms:9.1} ms");
    println!("  staged parallel (K=25)    : {staged_parallel_ms:9.1} ms  ({per_gen:.1} ms/gen)");
    println!("  speedup (legacy/parallel) : {speedup:9.2}x");

    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut records = String::new();
    let mut amortized_by_m: Vec<(usize, f64)> = Vec::new();
    println!();
    println!("record cost (one insert incl. Γ update; K = 25 amortized):");
    for (i, &m) in sweep.iter().enumerate() {
        let eager = record_cost_us(m, 1);
        let amortized = record_cost_us(m, 25);
        amortized_by_m.push((m, amortized));
        println!(
            "  M = {m:>7}: eager {eager:9.1} us/record, amortized {amortized:9.1} us/record ({:.1}x)",
            eager / amortized
        );
        if i > 0 {
            records.push(',');
        }
        let _ = write!(
            records,
            "\n    {{\"dataset_m\": {m}, \"eager_us_per_record\": {}, \"amortized_us_per_record\": {}, \"ratio\": {}}}",
            json_f(eager),
            json_f(amortized),
            json_f(eager / amortized)
        );
    }

    let json = format!(
        "{{\n  \"benchmark\": \"surrogate_batch_pipeline\",\n  \"mode\": \"{mode}\",\n  \"config\": {{\"objectives\": 4, \"pop\": {POP}, \"pretrain_m\": {PRETRAIN_M}, \"generations\": {GENERATIONS}, \"reselect_every\": 25, \"threads\": {threads}}},\n  \"generation_eval_ms\": {{\"legacy_serial\": {}, \"staged_serial\": {}, \"staged_parallel\": {}, \"speedup_legacy_over_parallel\": {}}},\n  \"record_cost\": [{records}\n  ]\n}}\n",
        json_f(legacy_ms),
        json_f(staged_serial_ms),
        json_f(staged_parallel_ms),
        json_f(speedup),
    );
    let path = dovado_bench::results_dir().join("BENCH_surrogate.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    println!();
    println!("wrote {}", path.display());

    assert!(
        speedup >= 1.0,
        "staged parallel pipeline slower than legacy serial loop"
    );
    // The sub-quadratic acceptance gate: growing the dataset 10× (10⁴ →
    // 10⁵ rows) must not cost anywhere near the 100× a quadratic hot path
    // would. The truncated/incremental path is ~flat in M, so even a
    // generous margin catches a regression to O(M²).
    let cost_at = |m: usize| {
        amortized_by_m
            .iter()
            .find(|&&(rows, _)| rows == m)
            .map(|&(_, us)| us)
    };
    if let (Some(big), Some(small)) = (cost_at(100_000), cost_at(10_000)) {
        let growth = big / small;
        println!("amortized cost growth 10^4 -> 10^5 rows: {growth:.2}x");
        assert!(
            growth < 30.0,
            "amortized record cost grew {growth:.1}x over a 10x dataset — hot path regressed toward quadratic"
        );
    }
}
