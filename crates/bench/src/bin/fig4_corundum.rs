//! Figure 4 + Table I: Corundum completion-queue-manager exploration.
//!
//! DSE over `OP_TABLE_SIZE`, `QUEUE_INDEX_WIDTH`, `PIPELINE` on the
//! Kintex-7 XC7K70T, approximator disabled ("disabling the approximator
//! model to employ direct Vivado evaluations"), objectives LUT / Register /
//! BRAM / Fmax. Prints Table I (the non-dominated configurations) and the
//! Fig. 4 metric series, then checks the paper's shape claims: BRAM
//! constant across the front and frequency near 200 MHz.

use dovado::casestudies::corundum;
use dovado::DseConfig;
use dovado_bench::{banner, emit_front, print_report};
use dovado_moo::{Nsga2Config, Termination};

fn main() {
    banner(
        "Figure 4 / Table I — Corundum cpl_queue_manager DSE (XC7K70T)",
        "NSGA-II, approximator disabled, objectives: LUT, FF, BRAM, Fmax",
    );

    let cs = corundum::case_study();
    let dovado = cs.dovado().expect("case study builds");

    let cfg = DseConfig {
        algorithm: Nsga2Config {
            pop_size: 26,
            seed: 0xC0FFEE,
            ..Default::default()
        },
        termination: Termination::Generations(14),
        metrics: cs.metrics.clone(),
        surrogate: None,
        parallel: true,
        explorer: Default::default(),
        jobs: None,
        workers: None,
    };
    let report = dovado.explore(&cfg).expect("exploration succeeds");

    print_report(
        &report,
        "Table I — non-dominated configurations",
        "Figure 4 — solution trade-offs",
    );
    emit_front(
        "fig4_table1_corundum.csv",
        &report,
        &[
            ("OP_TABLE_SIZE", "OP_TABLE_SIZE"),
            ("QUEUE_INDEX_WIDTH", "QUEUE_INDEX_WIDTH"),
            ("PIPELINE", "PIPELINE"),
        ],
    );

    // --- paper shape checks -------------------------------------------
    println!();
    println!("shape checks against the paper:");
    let brams: Vec<f64> = report.pareto.iter().map(|e| e.values[2]).collect();
    let bram_constant = brams.windows(2).all(|w| (w[0] - w[1]).abs() < 0.5);
    println!(
        "  BRAM constant across the front: {} (values {:?})",
        if bram_constant { "✓" } else { "✗" },
        brams
    );
    let fmax: Vec<f64> = report.pareto.iter().map(|e| e.values[3]).collect();
    let near_200 = fmax.iter().all(|f| (120.0..340.0).contains(f));
    println!(
        "  frequency in the ~200 MHz region: {} (min {:.1}, max {:.1})",
        if near_200 { "✓" } else { "✗" },
        fmax.iter().cloned().fold(f64::INFINITY, f64::min),
        fmax.iter().cloned().fold(0.0, f64::max),
    );
    let luts: Vec<f64> = report.pareto.iter().map(|e| e.values[0]).collect();
    let lut_spread = luts.iter().cloned().fold(0.0, f64::max)
        - luts.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "  LUT/FF vary across configurations: {} (LUT spread {:.0})",
        if lut_spread > 0.0 { "✓" } else { "✗" },
        lut_spread
    );
    println!(
        "  front size: {} (paper reports 13 configurations)",
        report.pareto.len()
    );
}
