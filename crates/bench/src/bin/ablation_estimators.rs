//! Ablation: statistical model choice (the paper's §V future work —
//! "explore different statistical models … to amortize the expensive
//! synthetic dataset generation").
//!
//! Runs the Fig. 3 accuracy protocol with the paper's Nadaraya-Watson
//! model against inverse-distance weighting and k-NN baselines, at two
//! dataset sizes.

use dovado::casestudies::cv32e40p;
use dovado::csv::CsvWriter;
use dovado_bench::{banner, write_csv, write_trace};
use dovado_surrogate::{Estimator, Kernel, NadarayaWatson, ProbeSet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    banner(
        "Ablation — statistical model choice (NW vs IDW vs k-NN)",
        "probe MSE (normalized, summed over FF/LUT/Fmax) at 20 and 80 samples",
    );

    let cs = cv32e40p::case_study();
    let tool = cs.dovado().expect("case study builds");
    let space = cs.space.clone();
    let metrics = cs.metrics.clone();
    let truth = |idx: i64| {
        let p = space.decode(&[idx]).expect("in range");
        metrics.extract(&tool.evaluate_point(&p).expect("evaluates"))
    };

    let probe_pairs: Vec<(Vec<i64>, Vec<f64>)> = (0..50)
        .map(|i| (vec![i * 10 + 3], truth(i * 10 + 3)))
        .collect();
    let probes = ProbeSet::new(probe_pairs.clone());
    let m = metrics.len();
    let mut lo = vec![f64::INFINITY; m];
    let mut hi = vec![f64::NEG_INFINITY; m];
    for (_, v) in &probe_pairs {
        for i in 0..m {
            lo[i] = lo[i].min(v[i]);
            hi[i] = hi[i].max(v[i]);
        }
    }
    let scales: Vec<f64> = lo.iter().zip(&hi).map(|(l, h)| (h - l).max(1e-9)).collect();

    let mut indices: Vec<i64> = (0..500).collect();
    indices.shuffle(&mut StdRng::seed_from_u64(17));

    let estimators = vec![
        Estimator::Nw(NadarayaWatson {
            kernel: Kernel::Gaussian,
            bandwidth: 0.1,
        }),
        Estimator::InverseDistance { power: 2.0 },
        Estimator::InverseDistance { power: 4.0 },
        Estimator::KNearest { k: 1 },
        Estimator::KNearest { k: 3 },
        Estimator::KNearest { k: 7 },
    ];

    let mut csv = CsvWriter::new();
    csv.header(&["estimator", "samples", "total_mse"]);
    println!("{:<16} {:>10} {:>14}", "estimator", "samples", "total MSE");

    for &n_samples in &[20usize, 80] {
        // Build the dataset once per size.
        let mut ds = dovado_surrogate::Dataset::new(space.index_bounds(), m);
        for &i in indices.iter().take(n_samples) {
            ds.insert(vec![i], truth(i));
        }
        for est in &estimators {
            let mut est = *est;
            est.retrain(&ds);
            // Probe MSE by hand (the estimator trait predicts per point).
            let mut total = 0.0f64;
            for (p, t) in &probes.pairs {
                let pred = est.predict(&ds, p).expect("non-empty dataset");
                for i in 0..m {
                    let e = (pred[i] - t[i]) / scales[i];
                    total += e * e;
                }
            }
            total /= (probes.len() * m) as f64;
            println!("{:<16} {:>10} {:>14.6}", est.name(), n_samples, total);
            csv.row(&[est.name(), n_samples.to_string(), format!("{total:.6}")]);
        }
        println!();
    }
    let path = write_csv("ablation_estimators.csv", csv);
    println!("wrote {}", path.display());
    let trace = write_trace("ablation_estimators.jsonl", &tool.evaluator().snapshot());
    println!("wrote {}", trace.display());
    println!(
        "reading: on smooth metric surfaces all local averagers are close; the \
         NW kernel wins as the dataset grows because LOO-CV shrinks its \
         bandwidth, while 1-NN plateaus at the sample-spacing error."
    );
}
