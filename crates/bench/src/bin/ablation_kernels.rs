//! Ablation: kernel choice for the Nadaraya-Watson estimator.
//!
//! The paper adopts the Gaussian kernel on the strength of Shapiai et al.
//! [28] ("the NWM model performs better with a Gaussian Kernel"). This
//! ablation re-runs the Fig. 3 accuracy protocol with each kernel.

use dovado::casestudies::cv32e40p;
use dovado::csv::CsvWriter;
use dovado_bench::{banner, write_csv, write_trace};
use dovado_surrogate::{mse_per_output, Kernel, ProbeSet, SurrogateController, ThresholdPolicy};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    banner(
        "Ablation — NW kernel choice (cv32e40p FIFO accuracy protocol)",
        "MSE per metric after 60 training samples, per kernel",
    );

    let cs = cv32e40p::case_study();
    let dovado = cs.dovado().expect("case study builds");
    let space = cs.space.clone();
    let metrics = cs.metrics.clone();

    let truth = |idx: i64| {
        let point = space.decode(&[idx]).expect("in range");
        metrics.extract(&dovado.evaluate_point(&point).expect("evaluates"))
    };

    let probe_pairs: Vec<(Vec<i64>, Vec<f64>)> = (0..50)
        .map(|i| (vec![i * 10 + 3], truth(i * 10 + 3)))
        .collect();
    let probes = ProbeSet::new(probe_pairs.clone());
    let m = metrics.len();
    let mut lo = vec![f64::INFINITY; m];
    let mut hi = vec![f64::NEG_INFINITY; m];
    for (_, v) in &probe_pairs {
        for i in 0..m {
            lo[i] = lo[i].min(v[i]);
            hi[i] = hi[i].max(v[i]);
        }
    }
    let scales: Vec<f64> = lo.iter().zip(&hi).map(|(l, h)| (h - l).max(1e-9)).collect();

    let mut indices: Vec<i64> = (0..500).collect();
    indices.shuffle(&mut StdRng::seed_from_u64(7));
    let train: Vec<i64> = indices.into_iter().take(60).collect();

    let mut csv = CsvWriter::new();
    csv.header(&["kernel", "mse_ff", "mse_lut", "mse_fmax", "bandwidth"]);
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}",
        "kernel", "MSE(FF)", "MSE(LUT)", "MSE(Fmax)", "bandwidth"
    );

    let mut rows: Vec<(Kernel, f64)> = Vec::new();
    for kernel in Kernel::ALL {
        let mut ctl =
            SurrogateController::new(space.index_bounds(), m, ThresholdPolicy::paper_default())
                .with_kernel(kernel);
        ctl.pretrain(train.iter().map(|&i| (vec![i], truth(i))).collect());
        let mse =
            mse_per_output(&ctl.model(), ctl.dataset(), &probes, &scales).expect("MSE computes");
        println!(
            "{:<14} {:>12.6} {:>12.6} {:>12.6} {:>10.3}",
            kernel.to_string(),
            mse[0],
            mse[1],
            mse[2],
            ctl.model().bandwidth
        );
        csv.row(&[
            kernel.to_string(),
            format!("{:.6}", mse[0]),
            format!("{:.6}", mse[1]),
            format!("{:.6}", mse[2]),
            format!("{:.3}", ctl.model().bandwidth),
        ]);
        rows.push((kernel, mse.iter().sum::<f64>()));
    }
    let path = write_csv("ablation_kernels.csv", csv);
    println!("wrote {}", path.display());
    let trace = write_trace("ablation_kernels.jsonl", &dovado.evaluator().snapshot());
    println!("wrote {}", trace.display());

    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!();
    println!("ranking by total normalized MSE (lower is better):");
    for (k, e) in &rows {
        println!("  {k:<14} {e:.6}");
    }
    println!(
        "paper's pick (gaussian) ranks #{} of {}",
        rows.iter()
            .position(|(k, _)| *k == Kernel::Gaussian)
            .unwrap()
            + 1,
        rows.len()
    );
}
