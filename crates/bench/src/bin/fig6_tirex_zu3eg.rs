//! Figure 6 + Table II (top): TiReX exploration on the Zynq UltraScale+
//! ZU3EG (16 nm). The paper reports 4 non-dominated configurations with
//! frequencies around 550 MHz.

use dovado_bench::{banner, run_tirex};

fn main() {
    banner(
        "Figure 6 / Table II (top) — TiReX DSE on XCZU3EG (16 nm)",
        "objectives: LUT, FF, BRAM, Fmax",
    );
    let report = run_tirex("xczu3eg-sbva484-1-e", "Figure 6", "fig6_tirex_zu3eg.csv");

    println!();
    println!("shape checks against the paper:");
    let fmax: Vec<f64> = report.pareto.iter().map(|e| e.values[3]).collect();
    let best = fmax.iter().cloned().fold(0.0, f64::max);
    println!(
        "  best frequency in the ~550 MHz region: {} ({best:.1} MHz)",
        if (400.0..750.0).contains(&best) {
            "✓"
        } else {
            "✗"
        }
    );
    println!(
        "  front size: {} (paper reports 4 configurations on the ZU3EG)",
        report.pareto.len()
    );
    let ncluster_one = report
        .pareto
        .iter()
        .filter(|e| e.point.get("NCLUSTER") == Some(1))
        .count();
    println!(
        "  NCLUSTER=1 dominates the front (as in Table II): {} ({ncluster_one}/{})",
        if ncluster_one * 2 >= report.pareto.len() {
            "✓"
        } else {
            "✗"
        },
        report.pareto.len()
    );
}
